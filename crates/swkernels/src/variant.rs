//! The eight GEMM micro-kernel variants.
//!
//! Paper, Appendix: "The GEMM design … has **eight variants** considering
//! the following differences. First, both A and B in SPM can be stored in
//! column-major or row-major layout. Second, the dimension to apply
//! vectorization can be different. Third, vectorization may be achieved
//! along the nested loop dimensions M or N."

use swtensor::MatLayout;

/// Which GEMM loop dimension is vectorised (the `swVecDim` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecDim {
    M,
    N,
}

/// One of the eight hand-scheduled kernel variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmVariant {
    pub a_layout: MatLayout,
    pub b_layout: MatLayout,
    pub vec: VecDim,
}

/// All eight variants, in a stable order (index = 4·a_col + 2·b_col + vecN).
pub const ALL_VARIANTS: [GemmVariant; 8] = {
    use MatLayout::{ColMajor, RowMajor};
    [
        GemmVariant { a_layout: RowMajor, b_layout: RowMajor, vec: VecDim::M },
        GemmVariant { a_layout: RowMajor, b_layout: RowMajor, vec: VecDim::N },
        GemmVariant { a_layout: RowMajor, b_layout: ColMajor, vec: VecDim::M },
        GemmVariant { a_layout: RowMajor, b_layout: ColMajor, vec: VecDim::N },
        GemmVariant { a_layout: ColMajor, b_layout: RowMajor, vec: VecDim::M },
        GemmVariant { a_layout: ColMajor, b_layout: RowMajor, vec: VecDim::N },
        GemmVariant { a_layout: ColMajor, b_layout: ColMajor, vec: VecDim::M },
        GemmVariant { a_layout: ColMajor, b_layout: ColMajor, vec: VecDim::N },
    ]
};

impl GemmVariant {
    /// Stable index 0..8 used as a cache / fit-table key.
    pub fn index(&self) -> usize {
        let a = matches!(self.a_layout, MatLayout::ColMajor) as usize;
        let b = matches!(self.b_layout, MatLayout::ColMajor) as usize;
        let v = matches!(self.vec, VecDim::N) as usize;
        4 * a + 2 * b + v
    }

    pub fn from_index(i: usize) -> Self {
        ALL_VARIANTS[i]
    }

    /// Whether the vectorised operand can be loaded with the vector-load
    /// broadcast (`vlddr`/`vlddc`, Set 1 of the paper) — possible when the
    /// vectorised dimension is contiguous in that operand's SPM layout.
    /// Otherwise the kernel falls back to scalar-load-extend broadcasts
    /// (`vldder`/`vlddec`, Set 2), which cost one instruction per element
    /// instead of one per 4-vector.
    pub fn vector_load_ok(&self) -> bool {
        match self.vec {
            // Vectorising M: A is accessed down its M column; contiguous iff
            // A is column-major. (C is written along M too, but C stays in
            // registers through the K loop, so A dominates.)
            VecDim::M => matches!(self.a_layout, MatLayout::ColMajor),
            // Vectorising N: B is accessed along its N row; contiguous iff
            // B is row-major.
            VecDim::N => matches!(self.b_layout, MatLayout::RowMajor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_a_bijection() {
        for (i, v) in ALL_VARIANTS.iter().enumerate() {
            assert_eq!(v.index(), i);
            assert_eq!(GemmVariant::from_index(i), *v);
        }
    }

    #[test]
    fn vector_load_feasibility() {
        use MatLayout::*;
        let fast = GemmVariant { a_layout: ColMajor, b_layout: RowMajor, vec: VecDim::M };
        assert!(fast.vector_load_ok());
        let slow = GemmVariant { a_layout: RowMajor, b_layout: RowMajor, vec: VecDim::M };
        assert!(!slow.vector_load_ok());
        let fast_n = GemmVariant { a_layout: RowMajor, b_layout: RowMajor, vec: VecDim::N };
        assert!(fast_n.vector_load_ok());
        let slow_n = GemmVariant { a_layout: RowMajor, b_layout: ColMajor, vec: VecDim::N };
        assert!(!slow_n.vector_load_ok());
    }
}
