//! Cached kernel cost queries.
//!
//! Black-box tuning executes thousands of candidate schedules, each invoking
//! `spm_gemm` many times with a handful of distinct shapes. The scoreboard
//! simulation is deterministic, so its results are memoised here, keyed on
//! the variant, per-CPE block shape and a fingerprint of the machine
//! configuration's timing parameters.
//!
//! The cache is shared by every tuner worker thread, so it is guarded by a
//! read/write lock: the steady state of a tuning run is ~100% hits, and
//! concurrent readers proceed without contention. A miss races at worst to
//! recompute the same deterministic value; whichever insert lands last wins
//! with an identical result, so queries are consistent across threads.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use sw26010::{Cycles, MachineConfig, MESH};

use crate::microkernel::per_cpe_cycles;
use crate::variant::{GemmVariant, VecDim};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    variant: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    cfg_fp: u64,
}

fn cfg_fingerprint(cfg: &MachineConfig) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cfg.vmad_latency.hash(&mut h);
    cfg.vldd_latency.hash(&mut h);
    cfg.bcast_latency.hash(&mut h);
    cfg.vstd_latency.hash(&mut h);
    cfg.regcomm_switch.get().hash(&mut h);
    cfg.kernel_call_overhead.get().hash(&mut h);
    h.finish()
}

static CACHE: RwLock<Option<HashMap<Key, u64>>> = RwLock::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Cycle cost of one `spm_gemm(M, N, K)` call with the given variant.
///
/// Dimensions are the *global* matrix dimensions; they must already satisfy
/// the kernel contract (divisible by the mesh; vectorised per-CPE dimension
/// divisible by 4) — [`crate::spm_gemm`] validates before costing.
pub fn gemm_cycles(cfg: &MachineConfig, variant: GemmVariant, m: usize, n: usize, k: usize) -> Cycles {
    let (mb, nb, kb) = (m / MESH, n / MESH, k / MESH);
    let key = Key { variant: variant.index(), mb, nb, kb, cfg_fp: cfg_fingerprint(cfg) };
    {
        let guard = CACHE.read();
        if let Some(map) = guard.as_ref() {
            if let Some(&c) = map.get(&key) {
                HITS.fetch_add(1, Ordering::Relaxed);
                return Cycles(c);
            }
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let (v_len, s_len) = match variant.vec {
        VecDim::M => (mb, nb),
        VecDim::N => (nb, mb),
    };
    let cycles = per_cpe_cycles(cfg, v_len, s_len, kb, variant.vector_load_ok());
    let mut guard = CACHE.write();
    guard.get_or_insert_with(HashMap::new).insert(key, cycles);
    Cycles(cycles)
}

/// Number of entries currently memoised (observability for tests/benches).
pub fn cache_len() -> usize {
    CACHE.read().as_ref().map_or(0, |m| m.len())
}

/// `(hits, misses, entries)` of the kernel-cost cache since process start.
/// Counters are relaxed atomics: approximate under concurrency (two workers
/// racing on a cold key may both count a miss), exact serially — they are
/// observability for the telemetry snapshot, never control flow.
pub fn cache_stats() -> (u64, u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed), cache_len() as u64)
}

/// FLOPs of one `C += A·B` call: 2·M·N·K multiply-accumulates. The single
/// flop-accounting definition shared by the kernel (which feeds the machine
/// counters) and the observatory's roofline metrics.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Operand bytes of one GEMM call: A (M·K) and B (K·N) read, C (M·N) read
/// and written, at 4 bytes per f32 element.
pub fn gemm_operand_bytes(m: usize, n: usize, k: usize) -> u64 {
    4 * ((m * k) as u64 + (k * n) as u64 + 2 * (m * n) as u64)
}

/// Arithmetic intensity (flops per operand byte) of one GEMM call — the
/// variant-independent upper bound a schedule's *measured* intensity
/// (flops / DMA bus bytes) approaches as tiling amortises reloads.
pub fn gemm_intensity(m: usize, n: usize, k: usize) -> f64 {
    let bytes = gemm_operand_bytes(m, n, k);
    if bytes == 0 {
        return 0.0;
    }
    gemm_flops(m, n, k) as f64 / bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::ALL_VARIANTS;

    #[test]
    fn cache_returns_consistent_results() {
        let cfg = MachineConfig::default();
        let v = ALL_VARIANTS[4]; // A col-major, vec M: fast vector loads
        let a = gemm_cycles(&cfg, v, 64, 64, 64);
        let b = gemm_cycles(&cfg, v, 64, 64, 64);
        assert_eq!(a, b);
        assert!(a.get() > 0);
    }

    #[test]
    fn variants_differ_in_cost() {
        let cfg = MachineConfig::default();
        // Fast-vector-load variant must beat the scalar-extend fallback.
        let fast = ALL_VARIANTS.iter().find(|v| v.vector_load_ok()).unwrap();
        let slow = ALL_VARIANTS.iter().find(|v| !v.vector_load_ok()).unwrap();
        let cf = gemm_cycles(&cfg, *fast, 128, 128, 128);
        let cs = gemm_cycles(&cfg, *slow, 128, 128, 128);
        assert!(cf < cs, "fast {cf} !< slow {cs}");
    }

    #[test]
    fn cost_monotone_in_k() {
        let cfg = MachineConfig::default();
        let v = ALL_VARIANTS[0];
        let c1 = gemm_cycles(&cfg, v, 64, 64, 64);
        let c2 = gemm_cycles(&cfg, v, 64, 64, 128);
        assert!(c2 > c1);
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        // The tuner pool hammers this cache from every worker; all threads
        // must observe the same deterministic costs as a serial querier,
        // whether they hit the cache or race to fill it.
        let cfg = MachineConfig::default();
        let shapes: Vec<(usize, usize, usize)> = (1..=6)
            .flat_map(|i| (1..=4).map(move |j| (32 * i, 32 * j, 8 * i)))
            .collect();
        let serial: Vec<Vec<u64>> = ALL_VARIANTS
            .iter()
            .map(|v| shapes.iter().map(|&(m, n, k)| gemm_cycles(&cfg, *v, m, n, k).get()).collect())
            .collect();
        std::thread::scope(|s| {
            for t in 0..8 {
                let cfg = &cfg;
                let shapes = &shapes;
                let serial = &serial;
                s.spawn(move || {
                    // Stagger starting points so threads interleave hits
                    // and misses differently.
                    for (vi, v) in ALL_VARIANTS.iter().enumerate() {
                        for i in 0..shapes.len() {
                            let (m, n, k) = shapes[(i + t) % shapes.len()];
                            let got = gemm_cycles(cfg, *v, m, n, k).get();
                            assert_eq!(got, serial[vi][(i + t) % shapes.len()]);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn flop_and_byte_accounting() {
        assert_eq!(gemm_flops(64, 64, 64), 2 * 64 * 64 * 64);
        assert_eq!(gemm_operand_bytes(8, 8, 8), 4 * (64 + 64 + 128));
        // Square GEMM intensity grows linearly with the dimension:
        // 2n³ / (16n²) = n/8 flops per byte.
        assert!((gemm_intensity(64, 64, 64) - 8.0).abs() < 1e-12);
        assert!((gemm_intensity(128, 128, 128) - 16.0).abs() < 1e-12);
        assert_eq!(gemm_intensity(0, 0, 0), 0.0);
    }

    #[test]
    fn config_changes_invalidate_cache_key() {
        let cfg = MachineConfig::default();
        let mut slow_cfg = cfg.clone();
        slow_cfg.vmad_latency = 20;
        let v = ALL_VARIANTS[4];
        let base = gemm_cycles(&cfg, v, 64, 64, 64);
        let slower = gemm_cycles(&slow_cfg, v, 64, 64, 64);
        assert!(slower >= base);
    }
}
