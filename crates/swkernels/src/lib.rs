//! # swkernels — hardware-dependent tensorized primitives
//!
//! This crate is the *hardware-dependent* half of swATOP's separation of
//! concerns: the hand-optimised GEMM micro-kernels of the paper's Appendix,
//! expressed against the simulated SW26010 core group.
//!
//! `spm_gemm` computes `C += A·B` where all three matrices live **in the
//! SPMs**, partitioned 8×8 across the CPE mesh (Fig. 12 of the paper):
//! CPE `(r,c)` holds block `(r,c)` of each matrix. The kernel
//!
//! * fetches remote panels by **register communication** (row broadcast for
//!   A, column broadcast for B),
//! * **vectorises** along either the M or the N loop (the `swVecDim`
//!   parameter of the paper's interface),
//! * keeps a **4×4 register block** of C vectors resident across the K loop,
//! * and **software-pipelines** the two issue pipes so that the 16 `vmad`s
//!   of one step dual-issue with the broadcast loads of the next.
//!
//! There are **eight variants** (A layout × B layout × vectorised dim); the
//! cycle cost of each is obtained from the dual-issue scoreboard of the
//! `sw26010` crate by simulating the actual instruction schedule, with a
//! cache keyed on `(variant, Mb, Nb, Kb)`. This simulated cost is the ground
//! truth that swATOP's fitted Eq. (2) model approximates.

pub mod cost;
pub mod distribute;
pub mod microkernel;
pub mod spm_gemm;
pub mod variant;

pub use cost::{gemm_cycles, gemm_flops, gemm_intensity, gemm_operand_bytes};
pub use distribute::{block_dims, BlockOwner};
pub use spm_gemm::{spm_gemm, SpmMatrix};
pub use variant::{GemmVariant, VecDim, ALL_VARIANTS};
