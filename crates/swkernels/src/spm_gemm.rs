//! The `spm_gemm` tensorized primitive.
//!
//! Mirrors the paper's interface (Sec. 4.1):
//!
//! ```c
//! spm_gemm(int M, int N, int K, float ALPHA, float* A, int LDA,
//!          float* B, int LDB, float BETA, float* C, int LDC, swVecDim vd)
//! ```
//!
//! `A`, `B`, `C` reside in the SPMs, block-partitioned 8×8 across the mesh
//! ([`crate::distribute`]). The kernel variant is determined by the operand
//! layouts plus the vectorisation dimension `vd`; its cycle cost comes from
//! the pipeline-scoreboard simulation ([`crate::cost`]), and in
//! [`ExecMode::Functional`](sw26010::ExecMode) the arithmetic is actually
//! performed so that schedule bugs surface as wrong results.

use sw26010::{CoreGroup, ExecMode, MachineError, MachineResult, MESH};
use swtensor::MatLayout;

use crate::cost::gemm_cycles;
use crate::variant::{GemmVariant, VecDim};

/// Descriptor of one SPM-resident distributed matrix operand: every CPE
/// holds its block at the same SPM `offset`, stored with `layout` and
/// leading dimension `ld` (in elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmMatrix {
    pub offset: usize,
    pub layout: MatLayout,
    pub ld: usize,
}

impl SpmMatrix {
    pub fn new(offset: usize, layout: MatLayout, ld: usize) -> Self {
        SpmMatrix { offset, layout, ld }
    }

    /// SPM elements spanned by an `rows × cols` block in this descriptor.
    fn span(&self, rows: usize, cols: usize) -> usize {
        match self.layout {
            MatLayout::RowMajor => (rows - 1) * self.ld + cols,
            MatLayout::ColMajor => (cols - 1) * self.ld + rows,
        }
    }

    fn check_ld(&self, rows: usize, cols: usize, name: &str) -> MachineResult<()> {
        if self.ld < self.layout.min_ld(rows, cols) {
            return Err(MachineError::BadKernelArgs(format!(
                "{name}: ld {} < minimum {} for {rows}×{cols} {:?} block",
                self.ld,
                self.layout.min_ld(rows, cols),
                self.layout
            )));
        }
        Ok(())
    }
}

/// Validate an `spm_gemm` call and return the kernel variant it will use.
pub fn validate(
    m: usize,
    n: usize,
    k: usize,
    a: &SpmMatrix,
    b: &SpmMatrix,
    c: &SpmMatrix,
    vd: VecDim,
) -> MachineResult<GemmVariant> {
    if m == 0 || n == 0 || k == 0 {
        return Err(MachineError::BadKernelArgs("zero dimension".into()));
    }
    if !m.is_multiple_of(MESH) || !n.is_multiple_of(MESH) || !k.is_multiple_of(MESH) {
        return Err(MachineError::BadKernelArgs(format!(
            "dims ({m},{n},{k}) not divisible by the {MESH}×{MESH} mesh"
        )));
    }
    let (mb, nb, kb) = (m / MESH, n / MESH, k / MESH);
    let v_len = match vd {
        VecDim::M => mb,
        VecDim::N => nb,
    };
    if v_len % 4 != 0 {
        return Err(MachineError::BadKernelArgs(format!(
            "vectorised per-CPE dim {v_len} not divisible by the vector width 4"
        )));
    }
    a.check_ld(mb, kb, "A")?;
    b.check_ld(kb, nb, "B")?;
    c.check_ld(mb, nb, "C")?;
    Ok(GemmVariant { a_layout: a.layout, b_layout: b.layout, vec: vd })
}

/// Execute `C = ALPHA·A·B + BETA·C` on the distributed SPM operands.
#[allow(clippy::too_many_arguments)]
pub fn spm_gemm(
    cg: &mut CoreGroup,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: SpmMatrix,
    b: SpmMatrix,
    beta: f32,
    c: SpmMatrix,
    vd: VecDim,
) -> MachineResult<()> {
    let variant = validate(m, n, k, &a, &b, &c, vd)?;
    let (mb, nb, kb) = (m / MESH, n / MESH, k / MESH);

    if cg.mode() == ExecMode::Functional {
        // Gather the distributed operands into whole host matrices. On the
        // machine this data movement is the register communication already
        // priced into the kernel cycles.
        let ga = gather(cg, a, m, k, mb, kb)?;
        let gb = gather(cg, b, k, n, kb, nb)?;
        let mut gc = gather(cg, c, m, n, mb, nb)?;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += ga[i * k + p] * gb[p * n + j];
                }
                gc[i * n + j] = alpha * acc + beta * gc[i * n + j];
            }
        }
        scatter(cg, c, &gc, m, n, mb, nb)?;
    } else {
        // Cost-only: still verify the blocks fit in the SPM. The capacity is
        // the *effective* one — an active fault session may have shrunk it.
        for (mat, rows, cols) in [(&a, mb, kb), (&b, kb, nb), (&c, mb, nb)] {
            let span = mat.span(rows, cols);
            let cap = cg.spm_capacity_elems();
            if mat.offset + span > cap {
                return Err(MachineError::SpmOverflow {
                    cpe: 0,
                    offset: mat.offset,
                    len: span,
                    capacity: cap,
                });
            }
        }
    }

    // SPM high-water mark: the furthest element any operand block reaches
    // (same in both modes — functional gather/scatter touch the same spans).
    for (mat, rows, cols) in [(&a, mb, kb), (&b, kb, nb), (&c, mb, nb)] {
        cg.counters.note_spm_use((mat.offset + mat.span(rows, cols)) as u64);
    }

    let cycles = gemm_cycles(&cg.cfg, variant, m, n, k);
    let flops = crate::cost::gemm_flops(m, n, k);
    // Issue counts are analytic (the memoised cycle cache bypasses the
    // scoreboard on hits, so they cannot come from the simulation itself).
    let (v_len, s_len) = match vd {
        VecDim::M => (mb, nb),
        VecDim::N => (nb, mb),
    };
    let issue = crate::microkernel::per_cpe_issue_counts(
        v_len,
        s_len,
        kb,
        variant.vector_load_ok(),
    );
    cg.counters.issue_p0 += issue.p0;
    cg.counters.issue_p1 += issue.p1;
    cg.counters.regcomm_broadcasts += issue.broadcasts;
    cg.kernel(cycles, flops, m, n, k);
    Ok(())
}

/// Read a distributed matrix out of the 64 SPMs into a row-major host copy.
fn gather(
    cg: &CoreGroup,
    mat: SpmMatrix,
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
) -> MachineResult<Vec<f32>> {
    let mut out = vec![0.0f32; rows * cols];
    for cpe in 0..sw26010::N_CPE {
        let (r0, c0) = (sw26010::rid(cpe) * br, sw26010::cid(cpe) * bc);
        let spm = cg.spm(cpe);
        let span = mat.span(br, bc);
        let block = spm.slice(mat.offset, span)?;
        for lr in 0..br {
            for lc in 0..bc {
                out[(r0 + lr) * cols + (c0 + lc)] = block[mat.layout.offset(lr, lc, mat.ld)];
            }
        }
    }
    Ok(out)
}

/// Write a row-major host matrix back into its 64 distributed SPM blocks.
fn scatter(
    cg: &mut CoreGroup,
    mat: SpmMatrix,
    data: &[f32],
    _rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
) -> MachineResult<()> {
    for cpe in 0..sw26010::N_CPE {
        let (r0, c0) = (sw26010::rid(cpe) * br, sw26010::cid(cpe) * bc);
        let span = mat.span(br, bc);
        let spm = cg.spm_mut(cpe);
        let block = spm.slice_mut(mat.offset, span)?;
        for lr in 0..br {
            for lc in 0..bc {
                block[mat.layout.offset(lr, lc, mat.ld)] = data[(r0 + lr) * cols + (c0 + lc)];
            }
        }
    }
    Ok(())
}

/// Load a row-major host matrix into the distributed SPM blocks (test and
/// baseline helper; generated schedules use DMA instead).
pub fn load_distributed(
    cg: &mut CoreGroup,
    mat: SpmMatrix,
    data: &[f32],
    rows: usize,
    cols: usize,
) -> MachineResult<()> {
    let (br, bc) = crate::distribute::block_dims(rows, cols)?;
    scatter(cg, mat, data, rows, cols, br, bc)
}

/// Read a distributed matrix back into a row-major host copy (test helper).
pub fn read_distributed(
    cg: &CoreGroup,
    mat: SpmMatrix,
    rows: usize,
    cols: usize,
) -> MachineResult<Vec<f32>> {
    let (br, bc) = crate::distribute::block_dims(rows, cols)?;
    gather(cg, mat, rows, cols, br, bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::{CoreGroup, ExecMode};
    use swtensor::compare::assert_close;
    use swtensor::gemm::gemm_rowmajor;
    use swtensor::init::random_vec;
    use swtensor::MatLayout::*;

    fn run_case(m: usize, n: usize, k: usize, la: MatLayout, lb: MatLayout, vd: VecDim) {
        let mut cg = CoreGroup::with_mode(ExecMode::Functional);
        let (mb, nb, kb) = (m / 8, n / 8, k / 8);
        let a_desc = SpmMatrix::new(0, la, la.min_ld(mb, kb));
        let b_off = a_desc.span(mb, kb);
        let b_desc = SpmMatrix::new(b_off, lb, lb.min_ld(kb, nb));
        let c_off = b_off + b_desc.span(kb, nb);
        let c_desc = SpmMatrix::new(c_off, RowMajor, nb);

        let a = random_vec(m * k, 1);
        let b = random_vec(k * n, 2);
        let c0 = random_vec(m * n, 3);
        load_distributed(&mut cg, a_desc, &a, m, k).unwrap();
        load_distributed(&mut cg, b_desc, &b, k, n).unwrap();
        load_distributed(&mut cg, c_desc, &c0, m, n).unwrap();

        spm_gemm(&mut cg, m, n, k, 1.0, a_desc, b_desc, 1.0, c_desc, vd).unwrap();

        let mut expect = c0.clone();
        gemm_rowmajor(m, n, k, &a, &b, &mut expect);
        let got = read_distributed(&cg, c_desc, m, n).unwrap();
        assert_close(&got, &expect, 1e-4, 1e-5, "spm_gemm");
        assert!(cg.now().get() > 0, "kernel must cost cycles");
        assert_eq!(cg.flops, 2 * (m * n * k) as u64);
    }

    #[test]
    fn all_eight_variants_compute_correctly() {
        for la in [RowMajor, ColMajor] {
            for lb in [RowMajor, ColMajor] {
                for vd in [VecDim::M, VecDim::N] {
                    run_case(32, 32, 16, la, lb, vd);
                }
            }
        }
    }

    #[test]
    fn rectangular_shapes() {
        run_case(64, 32, 8, ColMajor, RowMajor, VecDim::M);
        run_case(32, 64, 24, RowMajor, RowMajor, VecDim::N);
    }

    #[test]
    fn alpha_beta() {
        let (m, n, k) = (32, 32, 8);
        let mut cg = CoreGroup::with_mode(ExecMode::Functional);
        let a_desc = SpmMatrix::new(0, RowMajor, k / 8);
        let b_desc = SpmMatrix::new(64, RowMajor, n / 8);
        let c_desc = SpmMatrix::new(128, RowMajor, n / 8);
        let a = random_vec(m * k, 4);
        let b = random_vec(k * n, 5);
        let c0 = random_vec(m * n, 6);
        load_distributed(&mut cg, a_desc, &a, m, k).unwrap();
        load_distributed(&mut cg, b_desc, &b, k, n).unwrap();
        load_distributed(&mut cg, c_desc, &c0, m, n).unwrap();
        spm_gemm(&mut cg, m, n, k, 2.0, a_desc, b_desc, -1.0, c_desc, VecDim::M).unwrap();
        let mut prod = vec![0.0; m * n];
        gemm_rowmajor(m, n, k, &a, &b, &mut prod);
        let expect: Vec<f32> =
            prod.iter().zip(&c0).map(|(p, c)| 2.0 * p - c).collect();
        let got = read_distributed(&cg, c_desc, m, n).unwrap();
        assert_close(&got, &expect, 1e-4, 1e-5, "alpha/beta");
    }

    #[test]
    fn contract_violations_rejected() {
        let mut cg = CoreGroup::with_mode(ExecMode::Functional);
        let d = SpmMatrix::new(0, RowMajor, 8);
        // Not divisible by mesh.
        assert!(spm_gemm(&mut cg, 30, 32, 8, 1.0, d, d, 1.0, d, VecDim::M).is_err());
        // Vector dim (mb = 16/8 = 2) not divisible by 4.
        assert!(spm_gemm(&mut cg, 16, 32, 8, 1.0, d, d, 1.0, d, VecDim::M).is_err());
        // ld too small for the block.
        let tiny = SpmMatrix::new(0, RowMajor, 1);
        assert!(spm_gemm(&mut cg, 32, 32, 32, 1.0, tiny, d, 1.0, d, VecDim::M).is_err());
        // Zero dimension.
        assert!(spm_gemm(&mut cg, 0, 32, 8, 1.0, d, d, 1.0, d, VecDim::M).is_err());
    }

    #[test]
    fn cost_only_skips_math_but_counts_cycles() {
        let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
        let (m, n, k) = (32, 32, 8);
        let a_desc = SpmMatrix::new(0, RowMajor, k / 8);
        let b_desc = SpmMatrix::new(64, RowMajor, n / 8);
        let c_desc = SpmMatrix::new(128, RowMajor, n / 8);
        spm_gemm(&mut cg, m, n, k, 1.0, a_desc, b_desc, 1.0, c_desc, VecDim::M).unwrap();
        assert!(cg.now().get() > 0);
        // SPM untouched.
        assert_eq!(cg.spm(0).load(128).unwrap(), 0.0);
    }

    #[test]
    fn kernel_updates_machine_counters() {
        let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
        let (m, n, k) = (32, 32, 8);
        let a_desc = SpmMatrix::new(0, RowMajor, k / 8);
        let b_desc = SpmMatrix::new(64, RowMajor, n / 8);
        let c_desc = SpmMatrix::new(128, RowMajor, n / 8);
        spm_gemm(&mut cg, m, n, k, 1.0, a_desc, b_desc, 1.0, c_desc, VecDim::M).unwrap();
        let counters = cg.counters;
        assert_eq!(counters.kernel_calls, 1);
        assert_eq!(counters.kernel_cycles, cg.now().get());
        // vec M: v_len = mb = 4, s_len = nb = 4, kb = 1.
        let variant = validate(m, n, k, &a_desc, &b_desc, &c_desc, VecDim::M).unwrap();
        let issue =
            crate::microkernel::per_cpe_issue_counts(4, 4, 1, variant.vector_load_ok());
        assert_eq!(counters.issue_p0, issue.p0);
        assert_eq!(counters.issue_p1, issue.p1);
        assert_eq!(counters.regcomm_broadcasts, issue.broadcasts);
        assert!(counters.issue_p0 > 0 && counters.regcomm_broadcasts > 0);
        // C ends at offset 128 + span(4×4 row-major, ld 4) = 128 + 16.
        assert_eq!(counters.spm_high_water_elems, 144);
        assert!(counters.issue_slot_utilization() > 0.0);
    }

    #[test]
    fn cost_only_still_checks_spm_capacity() {
        let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
        let cap = cg.cfg.spm_elems();
        let a_desc = SpmMatrix::new(cap - 4, RowMajor, 8);
        let d = SpmMatrix::new(0, RowMajor, 8);
        assert!(spm_gemm(&mut cg, 64, 64, 64, 1.0, a_desc, d, 1.0, d, VecDim::M).is_err());
    }
}
