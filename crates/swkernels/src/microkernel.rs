//! Micro-kernel instruction scheduling: the ground-truth cycle cost.
//!
//! The hand-written assembly kernels of swDNN/swATOP keep a 4×4 block of C
//! vectors resident in registers, and software-pipeline the inner K loop so
//! the broadcast loads for step `k+1` dual-issue (on P1) under the 16
//! `vmad`s of step `k` (on P0). We reproduce that schedule as an explicit
//! instruction stream and run it through the dual-issue scoreboard — hazard
//! stalls at short K, pipeline drains at panel switches and register-block
//! boundaries all emerge from the simulation instead of being assumed.

use sw26010::pipeline::{Instruction, Pipe, Scoreboard};
use sw26010::regcomm;
use sw26010::{MachineConfig, MESH};

/// Shape of one register block: `vecs` 4-wide C vectors along the
/// vectorised dimension × `scalars` positions along the other dimension.
/// `vecs · scalars ≤ 16` accumulator registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegBlock {
    pub vecs: usize,
    pub scalars: usize,
}

impl RegBlock {
    pub fn new(vecs: usize, scalars: usize) -> Self {
        assert!((1..=4).contains(&vecs) && (1..=4).contains(&scalars));
        RegBlock { vecs, scalars }
    }

    /// MACs per K step: 4 lanes × vecs × scalars.
    pub fn macs_per_step(&self) -> usize {
        4 * self.vecs * self.scalars
    }
}

// Register map (32 vector registers):
//   0..16   C accumulators
//   16..20  vec-operand loads, even k      20..24 scalar-operand, even k
//   24..28  vec-operand loads, odd k       28..32 scalar-operand, odd k
const ACC_BASE: u16 = 0;
const VEC_BASE: [u16; 2] = [16, 24];
const SCA_BASE: [u16; 2] = [20, 28];

/// Emit the broadcast loads feeding step `k` into register set `set`.
///
/// `fast_vec_load`: the vectorised operand is contiguous in SPM, so one
/// `vlddr`/`vlddc` fetches a whole 4-vector; otherwise four scalar
/// load-extend-broadcasts (`vldder`/`vlddec`) build it.
fn emit_loads(
    cfg: &MachineConfig,
    blk: RegBlock,
    set: usize,
    fast_vec_load: bool,
    out: &mut Vec<Instruction>,
) {
    for v in 0..blk.vecs {
        let dst = VEC_BASE[set] + v as u16;
        if fast_vec_load {
            out.push(Instruction::new(Pipe::P1, Some(dst), &[], cfg.bcast_latency));
        } else {
            // Four element loads merged into one vector register; the
            // register becomes ready when the last insert completes.
            for _ in 0..4 {
                out.push(Instruction::new(Pipe::P1, Some(dst), &[], cfg.bcast_latency));
            }
        }
    }
    for s in 0..blk.scalars {
        let dst = SCA_BASE[set] + s as u16;
        out.push(Instruction::new(Pipe::P1, Some(dst), &[], cfg.bcast_latency));
    }
}

/// Emit the `vecs × scalars` vmads of step `k` reading register set `set`,
/// interleaved with `next_loads` (the loads of step `k+1`) for dual issue.
fn emit_step(
    cfg: &MachineConfig,
    blk: RegBlock,
    set: usize,
    next_loads: Option<Vec<Instruction>>,
    out: &mut Vec<Instruction>,
) {
    let mut vmads = Vec::with_capacity(blk.vecs * blk.scalars);
    for v in 0..blk.vecs {
        for s in 0..blk.scalars {
            let acc = ACC_BASE + (v * blk.scalars + s) as u16;
            let srcs = [VEC_BASE[set] + v as u16, SCA_BASE[set] + s as u16, acc];
            vmads.push(Instruction::new(Pipe::P0, Some(acc), &srcs, cfg.vmad_latency));
        }
    }
    // Interleave P0 vmads with P1 loads so the decoder can pair them.
    let loads = next_loads.unwrap_or_default();
    let mut li = loads.into_iter();
    for vmad in vmads {
        out.push(vmad);
        if let Some(l) = li.next() {
            out.push(l);
        }
    }
    out.extend(li);
}

/// Simulate the software-pipelined inner loop over `k_len` steps for one
/// register block and return the total cycles (C load, K loop, C store).
fn simulate_block(
    cfg: &MachineConfig,
    blk: RegBlock,
    k_len: usize,
    fast_vec_load: bool,
) -> u64 {
    let mut sb = Scoreboard::default();
    let n_acc = (blk.vecs * blk.scalars) as u16;
    // Load the C accumulators from SPM.
    for a in 0..n_acc {
        sb.issue(&Instruction::new(Pipe::P1, Some(ACC_BASE + a), &[], cfg.vldd_latency));
    }
    let mut stream = Vec::new();
    emit_loads(cfg, blk, 0, fast_vec_load, &mut stream);
    for k in 0..k_len {
        let set = k % 2;
        let next = if k + 1 < k_len {
            let mut nl = Vec::new();
            emit_loads(cfg, blk, 1 - set, fast_vec_load, &mut nl);
            Some(nl)
        } else {
            None
        };
        emit_step(cfg, blk, set, next, &mut stream);
    }
    sb.run(&stream);
    // Store C back to SPM: stores consume the accumulators.
    for a in 0..n_acc {
        sb.issue(&Instruction::new(
            Pipe::P1,
            None,
            &[ACC_BASE + a],
            cfg.vstd_latency,
        ));
    }
    sb.finish_time().get()
}

/// Cycles for one register block running `k_len` accumulation steps.
///
/// Short loops are simulated exactly; long loops are extrapolated from the
/// simulated steady-state cadence (the schedule is periodic after warm-up),
/// keeping the cost model fast enough for black-box tuning while remaining
/// a genuine pipeline simulation.
pub fn block_cycles(cfg: &MachineConfig, blk: RegBlock, k_len: usize, fast_vec_load: bool) -> u64 {
    const EXACT: usize = 96;
    const PROBE: usize = 64;
    if k_len <= EXACT {
        return simulate_block(cfg, blk, k_len, fast_vec_load);
    }
    let c_hi = simulate_block(cfg, blk, EXACT, fast_vec_load);
    let c_lo = simulate_block(cfg, blk, PROBE, fast_vec_load);
    let steady_num = c_hi - c_lo; // cycles for (EXACT-PROBE) steady iterations
    let extra = (k_len - EXACT) as u64;
    c_hi + steady_num * extra / (EXACT - PROBE) as u64
}

/// Cycles for the complete per-CPE kernel: the local `Mb × Nb` C tile
/// accumulated over the full K (eight mesh panels of `Kb` each), decomposed
/// into register blocks of at most 4 vectors × 4 scalars.
///
/// `v_len` is the per-CPE length of the vectorised dimension (must be a
/// multiple of 4), `s_len` the other dimension, `kb` the per-CPE K panel.
pub fn per_cpe_cycles(
    cfg: &MachineConfig,
    v_len: usize,
    s_len: usize,
    kb: usize,
    fast_vec_load: bool,
) -> u64 {
    debug_assert_eq!(v_len % 4, 0, "vectorised dim must be a multiple of 4");
    let n_vec = v_len / 4;
    let k_total = MESH * kb; // all 8 panels accumulate into the same C block
    let mut total = cfg.kernel_call_overhead.get();
    // Rotating through the 8 broadcast producers costs a pattern switch per
    // panel (charged once per kernel call: all register blocks stream
    // through panels together in the generated schedule).
    total += regcomm::panel_rotation_overhead(cfg).get();
    let mut done_v = 0;
    while done_v < n_vec {
        let vb = (n_vec - done_v).min(4);
        let mut done_s = 0;
        while done_s < s_len {
            let sb = (s_len - done_s).min(4);
            let blk = RegBlock::new(vb, sb);
            // Per-block loop bookkeeping (branch, address updates).
            total += 8;
            total += block_cycles(cfg, blk, k_total, fast_vec_load);
            done_s += sb;
        }
        done_v += vb;
    }
    total
}

/// Per-CPE instruction issue counts of one kernel call, derived analytically
/// from the same register-blocking walk as [`per_cpe_cycles`]. Used by
/// telemetry to report issue-slot utilization and register-communication
/// traffic without re-running the scoreboard (kernel *cycles* are memoised;
/// these counts are exact regardless of hazard stalls, since in-order issue
/// never drops instructions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueCounts {
    /// P0 (floating-point/vector) instructions: the vmads.
    pub p0: u64,
    /// P1 (memory/register-comm) instructions: broadcast loads plus the
    /// C-accumulator load/store traffic.
    pub p1: u64,
    /// Register-communication broadcast loads (subset of `p1`).
    pub broadcasts: u64,
}

/// Count the instructions one CPE issues for a full kernel call of shape
/// (`v_len`, `s_len`, `kb`), mirroring the blocking of [`per_cpe_cycles`]:
/// per register block of `vb × sb`, each of the `8·kb` K steps issues
/// `vb·sb` vmads on P0 and its broadcast loads on P1, and the block loads
/// and stores its `vb·sb` C accumulators once.
pub fn per_cpe_issue_counts(
    v_len: usize,
    s_len: usize,
    kb: usize,
    fast_vec_load: bool,
) -> IssueCounts {
    debug_assert_eq!(v_len % 4, 0, "vectorised dim must be a multiple of 4");
    let n_vec = v_len / 4;
    let k_total = (MESH * kb) as u64;
    let mut counts = IssueCounts::default();
    let mut done_v = 0;
    while done_v < n_vec {
        let vb = (n_vec - done_v).min(4);
        let mut done_s = 0;
        while done_s < s_len {
            let sb = (s_len - done_s).min(4);
            let n_acc = (vb * sb) as u64;
            counts.p0 += n_acc * k_total;
            let per_step_loads =
                (if fast_vec_load { vb } else { 4 * vb } + sb) as u64;
            counts.broadcasts += per_step_loads * k_total;
            counts.p1 += per_step_loads * k_total + 2 * n_acc;
            done_s += sb;
        }
        done_v += vb;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    #[test]
    fn full_block_reaches_steady_sixteen_cycles() {
        // 4 vecs × 4 scalars = 16 vmads/step; P0-bound steady state must be
        // ~16 cycles/step ("16 vmad operations in 16 cycles").
        let c = cfg();
        let blk = RegBlock::new(4, 4);
        let c256 = simulate_block(&c, blk, 256, true);
        let c128 = simulate_block(&c, blk, 128, true);
        let steady = (c256 - c128) as f64 / 128.0;
        assert!(
            (steady - 16.0).abs() < 0.5,
            "steady-state {steady} cycles/step, expected ≈16"
        );
    }

    #[test]
    fn slow_vector_loads_bound_on_p1() {
        // Without contiguous vector loads, 4·4+4 = 20 P1 ops/step dominate
        // the 16 P0 vmads; in-order issue adds bubbles on top of the raw
        // P1 bound, so the steady state lands well above the fast variant's
        // 16 cycles/step but stays below 2× of it.
        let c = cfg();
        let blk = RegBlock::new(4, 4);
        let c256 = simulate_block(&c, blk, 256, false);
        let c128 = simulate_block(&c, blk, 128, false);
        let steady = (c256 - c128) as f64 / 128.0;
        assert!(
            steady > 20.0 && steady < 32.0,
            "steady-state {steady} cycles/step, expected in (20, 32)"
        );
    }

    #[test]
    fn small_blocks_are_latency_bound() {
        // A 1×1 block has 1 vmad/step but the RAW chain through the
        // accumulator (latency 7) bounds it at ~7 cycles/step — far off the
        // dense schedule. This non-linearity is what Eq. (2) cannot see.
        let c = cfg();
        let blk = RegBlock::new(1, 1);
        let c256 = simulate_block(&c, blk, 256, true);
        let c128 = simulate_block(&c, blk, 128, true);
        let steady = (c256 - c128) as f64 / 128.0;
        assert!(steady >= 6.5, "steady {steady}");
    }

    #[test]
    fn extrapolation_matches_exact_simulation() {
        let c = cfg();
        let blk = RegBlock::new(4, 4);
        for &k in &[100usize, 200, 500] {
            let exact = simulate_block(&c, blk, k, true);
            let fast = block_cycles(&c, blk, k, true);
            let err = (exact as f64 - fast as f64).abs() / exact as f64;
            assert!(err < 0.01, "k={k}: exact {exact} vs extrapolated {fast}");
        }
    }

    #[test]
    fn per_cpe_cost_scales_with_work() {
        let c = cfg();
        let small = per_cpe_cycles(&c, 8, 8, 8, true);
        let big = per_cpe_cycles(&c, 16, 16, 16, true);
        assert!(big > 4 * small, "8× the MACs must cost >4× (small {small}, big {big})");
    }

    #[test]
    fn efficiency_of_peak_shape() {
        // v=32, s=8, kb=64: per-CPE MACs = 32·8·512. At 8 flops/cycle ideal
        // cycles = 2·32·8·512/8 = 32768. Overheads should keep us within 85%
        // of peak for this large tile.
        let c = cfg();
        let cycles = per_cpe_cycles(&c, 32, 8, 64, true);
        let ideal = 2.0 * 32.0 * 8.0 * 512.0 / 8.0;
        let eff = ideal / cycles as f64;
        assert!(eff > 0.85, "efficiency {eff} (cycles {cycles}, ideal {ideal})");
        assert!(eff <= 1.0, "cannot exceed peak (eff {eff})");
    }

    #[test]
    #[should_panic]
    fn reg_block_bounds_checked() {
        RegBlock::new(5, 1);
    }

    #[test]
    fn issue_counts_match_emitted_streams() {
        // One full 4×4 block over one panel: counts must equal the vmads and
        // loads the emitter actually produces, plus 2·16 accumulator moves.
        let c = cfg();
        let k_total = MESH * 2;
        for &fast in &[true, false] {
            let counts = per_cpe_issue_counts(16, 4, 2, fast);
            let blk = RegBlock::new(4, 4);
            let mut loads = Vec::new();
            emit_loads(&c, blk, 0, fast, &mut loads);
            let per_step_loads = loads.len() as u64;
            assert_eq!(counts.p0, 16 * k_total as u64);
            assert_eq!(counts.broadcasts, per_step_loads * k_total as u64);
            assert_eq!(counts.p1, per_step_loads * k_total as u64 + 32);
        }
    }

    #[test]
    fn issue_counts_cover_ragged_blocks() {
        // v_len 20 → n_vec 5 → blocks of 4+1 vectors; s_len 6 → 4+2.
        // Total vmads must still equal n_vec·s_len per K step.
        let counts = per_cpe_issue_counts(20, 6, 1, true);
        let k_total = MESH as u64;
        assert_eq!(counts.p0, 5 * 6 * k_total);
        // Four blocks: (4,4), (4,2), (1,4), (1,2); loads = (vb+sb)·k each.
        let loads: u64 = [(4, 4), (4, 2), (1, 4), (1, 2)]
            .iter()
            .map(|&(vb, sb): &(u64, u64)| (vb + sb) * k_total)
            .sum();
        assert_eq!(counts.broadcasts, loads);
        let accs: u64 = [(4, 4), (4, 2), (1, 4), (1, 2)]
            .iter()
            .map(|&(vb, sb): &(u64, u64)| 2 * vb * sb)
            .sum();
        assert_eq!(counts.p1, loads + accs);
    }
}
