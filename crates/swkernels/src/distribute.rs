//! Block distribution of SPM-resident matrices across the 8×8 CPE mesh.
//!
//! Per the paper's Fig. 12, an `R × C` matrix participating in `spm_gemm`
//! is partitioned uniformly into 8×8 blocks; CPE `(r, c)` owns block
//! `(r, c)`. Global dimensions must therefore be divisible by the mesh side,
//! which the scheduler's validity filter and the boundary-processing pass
//! guarantee before a kernel is ever invoked.

use sw26010::{MachineError, MESH};

/// Per-CPE block dimensions `(rows/8, cols/8)` of a distributed matrix, or
/// an error if the matrix cannot be partitioned.
pub fn block_dims(rows: usize, cols: usize) -> Result<(usize, usize), MachineError> {
    if !rows.is_multiple_of(MESH) || !cols.is_multiple_of(MESH) {
        return Err(MachineError::BadKernelArgs(format!(
            "matrix {rows}×{cols} not divisible by the {MESH}×{MESH} mesh"
        )));
    }
    Ok((rows / MESH, cols / MESH))
}

/// Which CPE owns global element `(r, c)` of a distributed `rows × cols`
/// matrix, and the element's local coordinates in that CPE's block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOwner {
    pub cpe: usize,
    pub local_r: usize,
    pub local_c: usize,
}

/// Locate a global element.
pub fn owner_of(rows: usize, cols: usize, r: usize, c: usize) -> BlockOwner {
    let br = rows / MESH;
    let bc = cols / MESH;
    debug_assert!(r < rows && c < cols);
    BlockOwner { cpe: (r / br) * MESH + c / bc, local_r: r % br, local_c: c % bc }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_dims_divide() {
        assert_eq!(block_dims(64, 128).unwrap(), (8, 16));
        assert!(block_dims(60, 64).is_err());
        assert!(block_dims(64, 60).is_err());
    }

    #[test]
    fn ownership_partitions_matrix() {
        let (rows, cols) = (16, 24);
        let mut counts = vec![0usize; 64];
        for r in 0..rows {
            for c in 0..cols {
                let o = owner_of(rows, cols, r, c);
                assert!(o.cpe < 64);
                assert!(o.local_r < rows / 8 && o.local_c < cols / 8);
                counts[o.cpe] += 1;
            }
        }
        // Every CPE owns exactly (rows/8)·(cols/8) elements.
        assert!(counts.iter().all(|&n| n == (rows / 8) * (cols / 8)));
    }

    #[test]
    fn corner_ownership() {
        let o = owner_of(64, 64, 0, 0);
        assert_eq!(o.cpe, 0);
        let o = owner_of(64, 64, 63, 63);
        assert_eq!(o.cpe, 63);
        assert_eq!((o.local_r, o.local_c), (7, 7));
    }
}
