//! Property-based tests for the IR: affine algebra laws and loop
//! transformations preserving iteration semantics.

use proptest::prelude::*;
use swatop_ir::transform::{perfect_nest, reorder, split, subst_var};
use swatop_ir::{AVar, AffineExpr, Cond, DmaCpe, Env, MemBufId, ReplyId, SpmBufId, SpmSlot, Stmt};

fn arb_expr() -> impl Strategy<Value = AffineExpr> {
    (
        proptest::collection::vec((0usize..4, -20i64..20), 0..4),
        -100i64..100,
    )
        .prop_map(|(terms, konst)| {
            let mut e = AffineExpr::konst(konst);
            for (v, c) in terms {
                e = e.add_term(AVar::Loop(v), c);
            }
            e
        })
}

fn env(vals: &[i64; 4]) -> Env {
    let mut e = Env::new(4);
    for (i, &v) in vals.iter().enumerate() {
        e.set(i, v);
    }
    e
}

proptest! {
    /// Substitution commutes with evaluation:
    /// eval(e[v := f]) == eval(e) with env[v] := eval(f).
    #[test]
    fn subst_eval_commute(
        e in arb_expr(), f in arb_expr(),
        vals in proptest::array::uniform4(-50i64..50),
        var in 0usize..4,
    ) {
        let environment = env(&vals);
        let f_val = f.eval(&environment, 0, 0);
        let mut env2 = environment.clone();
        env2.set(var, f_val);
        let direct = e.eval(&env2, 0, 0);
        let substituted = e.subst(var, &f).eval(&environment, 0, 0);
        prop_assert_eq!(direct, substituted);
    }

    /// Addition and scaling behave like the affine functions they denote.
    #[test]
    fn add_scale_semantics(
        a in arb_expr(), b in arb_expr(), k in -10i64..10,
        vals in proptest::array::uniform4(-50i64..50),
    ) {
        let environment = env(&vals);
        prop_assert_eq!(
            a.add(&b).eval(&environment, 0, 0),
            a.eval(&environment, 0, 0) + b.eval(&environment, 0, 0)
        );
        prop_assert_eq!(a.scale(k).eval(&environment, 0, 0), k * a.eval(&environment, 0, 0));
    }

    /// `split` preserves the set of addresses a loop touches, for any
    /// extent/factor combination (boundary guard included).
    #[test]
    fn split_preserves_iteration_space(extent in 1usize..30, factor in 1usize..12) {
        let body = Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset: AffineExpr::loop_var(0).scale(3).add_const(7),
            block: 1,
            stride: 1,
            n_blocks: 1,
            direction: sw26010::DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: ReplyId(0),
            bcast: None,
            fused: false,
        });
        let orig = Stmt::for_(0, extent, body);
        let s = split(&orig, factor, 1, 2);
        prop_assert_eq!(collect_offsets(&orig), collect_offsets(&s));
    }

    /// `reorder` permutes but never changes the multiset of addresses.
    #[test]
    fn reorder_preserves_multiset(e0 in 1usize..6, e1 in 1usize..6, swapped: bool) {
        let body = Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset: AffineExpr::loop_var(0).scale(100).add(&AffineExpr::loop_var(1)),
            block: 1,
            stride: 1,
            n_blocks: 1,
            direction: sw26010::DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: ReplyId(0),
            bcast: None,
            fused: false,
        });
        let nest = Stmt::for_(0, e0, Stmt::for_(1, e1, body));
        let perm = if swapped { vec![1, 0] } else { vec![0, 1] };
        let r = reorder(&nest, &perm);
        let mut a = collect_offsets(&nest);
        let mut b = collect_offsets(&r);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // And the nest structure survives.
        let (loops, _) = perfect_nest(&r);
        prop_assert_eq!(loops.len(), 2);
    }

    /// Substituting a variable a statement does not use is the identity.
    #[test]
    fn subst_unused_var_identity(extent in 1usize..10) {
        let body = Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset: AffineExpr::loop_var(0),
            block: 1,
            stride: 1,
            n_blocks: 1,
            direction: sw26010::DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: ReplyId(0),
            bcast: None,
            fused: false,
        });
        let s = Stmt::for_(0, extent, body);
        prop_assert_eq!(subst_var(&s, 3, &AffineExpr::konst(42)), s);
    }

    /// Conditions evaluate consistently with their affine parts.
    #[test]
    fn cond_semantics(a in arb_expr(), b in arb_expr(), vals in proptest::array::uniform4(-50i64..50)) {
        let environment = env(&vals);
        let (av, bv) = (a.eval(&environment, 0, 0), b.eval(&environment, 0, 0));
        prop_assert_eq!(Cond::Lt(a.clone(), b.clone()).eval(&environment, 0, 0), av < bv);
        prop_assert_eq!(Cond::Ge(a.clone(), b.clone()).eval(&environment, 0, 0), av >= bv);
        prop_assert_eq!(Cond::Eq(a, b).eval(&environment, 0, 0), av == bv);
    }
}

/// Enumerate the addresses a (guarded) nest touches.
fn collect_offsets(stmt: &Stmt) -> Vec<i64> {
    fn walk(s: &Stmt, env: &mut Env, out: &mut Vec<i64>) {
        match s {
            Stmt::Seq(ss) => ss.iter().for_each(|x| walk(x, env, out)),
            Stmt::For { var, extent, body } => {
                for i in 0..*extent {
                    env.set(*var, i as i64);
                    walk(body, env, out);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                if cond.eval(env, 0, 0) {
                    walk(then_, env, out);
                } else if let Some(e) = else_ {
                    walk(e, env, out);
                }
            }
            Stmt::DmaCpe(d) => out.push(d.offset.eval(env, 0, 0)),
            _ => {}
        }
    }
    let mut env = Env::new(8);
    let mut out = Vec::new();
    walk(stmt, &mut env, &mut out);
    out
}
