//! # swatop-ir — the intermediate representation
//!
//! swATOP lowers every schedule strategy into an IR (paper Sec. 4.4): an
//! abstract syntax tree of statement nodes — `for`, `if-then-else`, `DMA`,
//! `gemm_op`, … — whose attributes (loop extents, address expressions, tile
//! shapes, buffer bindings) the scheduler and IR optimizer mutate.
//!
//! Key design points mirrored from the paper:
//!
//! * **Affine address expressions** ([`expr::AffineExpr`]) over the enclosing
//!   loop variables plus the CPE mesh coordinates `rid`/`cid`. These are the
//!   `Φ(I) = addr` functions that DMA inference and auto-prefetching reason
//!   about (Sec. 4.5.1–4.5.2).
//! * **Two levels of DMA node**: [`stmt::DmaCg`] describes a whole-core-group
//!   tile access (`DMA_CG(addr, totalsize, direction)`); the DMA-inference
//!   pass lowers it to a per-CPE strided node ([`stmt::DmaCpe`]) with the
//!   `(offset, block, stride, size)` attributes derived from `(rid, cid)`
//!   and the layout, exactly as in Fig. 4 (right).
//! * **Double-buffer slots** ([`stmt::SpmSlot::Double`]): the auto-prefetch
//!   pass retargets DMA and GEMM operands through a parity selector — an
//!   affine expression over the loop variables — so that software
//!   prefetching is expressed *in* the IR rather than bolted onto the
//!   interpreter.
//! * **Host-side transform nodes** ([`stmt::TransformOp`]): layout packing,
//!   im2col expansion, Winograd transforms and boundary padding run as
//!   bandwidth-costed bulk operations, the way the real system executes them
//!   as memory-bound CPE loops.

pub mod analysis;
pub mod expr;
pub mod printer;
pub mod program;
pub mod stmt;
pub mod transform;

pub use expr::{AVar, AffineExpr, Cond, Env, VarId};
pub use program::{MemBufDecl, MemRole, Program, ScheduleHints, SpmBufDecl};
pub use stmt::{
    DmaCg, DmaCpe, GemmOp, MatDesc, MemBufId, ReplyId, SpmBufId, SpmSlot, Stmt, TransformKind,
    TransformOp,
};
