//! IR statement nodes.

use sw26010::regcomm::BcastBus;
use sw26010::DmaDirection;
use swkernels::VecDim;
use swtensor::{ConvShape, MatLayout};

use crate::expr::{AffineExpr, Cond, VarId};

/// Index of an SPM buffer in the program's SPM table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpmBufId(pub usize);

/// Index of a main-memory buffer in the program's buffer table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemBufId(pub usize);

/// Index of a reply word in the program's reply table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplyId(pub usize);

/// An SPM buffer reference, possibly double-buffered.
///
/// `Double` is what the auto-prefetch pass produces: the buffer actually
/// used is `even` when `sel` evaluates to an even number, `odd` otherwise.
/// `sel` is typically the linearised iteration index of the prefetched loop
/// nest — an affine expression, so the selection is resolvable both by the
/// interpreter and by the C code generator.
#[derive(Debug, Clone, PartialEq)]
pub enum SpmSlot {
    Single(SpmBufId),
    Double { even: SpmBufId, odd: SpmBufId, sel: AffineExpr },
}

impl SpmSlot {
    pub fn single(id: SpmBufId) -> Self {
        SpmSlot::Single(id)
    }

    /// All buffer ids this slot can refer to.
    pub fn bufs(&self) -> Vec<SpmBufId> {
        match self {
            SpmSlot::Single(b) => vec![*b],
            SpmSlot::Double { even, odd, .. } => vec![*even, *odd],
        }
    }
}

/// A GEMM operand: an SPM slot interpreted as a distributed matrix block
/// with a layout and leading dimension (per-CPE).
#[derive(Debug, Clone, PartialEq)]
pub struct MatDesc {
    pub slot: SpmSlot,
    pub layout: MatLayout,
    pub ld: usize,
    /// Per-CPE element offset of the block's origin within the slot. Zero
    /// for whole-buffer operands; nonzero when the operand is a sub-block of
    /// a larger SPM-resident panel (resident-reuse schedules index the k-th
    /// `t_k`-slice of a resident A/B panel this way).
    pub offset: usize,
}

impl MatDesc {
    /// Operand covering a whole slot (offset 0).
    pub fn new(slot: SpmSlot, layout: MatLayout, ld: usize) -> Self {
        MatDesc { slot, layout, ld, offset: 0 }
    }
}

/// Core-group-level DMA node (`DMA_CG`): move a `rows × cols` sub-matrix
/// whose element `(i, j)` lives at `offset + i·row_stride + j` in main
/// memory. This is the form DSL lowering produces; DMA inference rewrites
/// it into [`DmaCpe`].
#[derive(Debug, Clone, PartialEq)]
pub struct DmaCg {
    pub buf: MemBufId,
    /// Element offset of the tile origin within `buf` (no rid/cid terms).
    pub offset: AffineExpr,
    pub rows: usize,
    pub cols: usize,
    /// Main-memory distance between consecutive tile rows, in elements.
    pub row_stride: usize,
    /// Mesh mapping: normally CPE `(r, c)` takes block `(r, c)` of the
    /// tile; with `mesh_swap` it takes block `(c, r)`. Used when the tile
    /// is a *transposed* view of the distributed matrix (column-major SPM
    /// layouts fetched from a pre-packed `Xᵀ` buffer), so the block still
    /// lands on the CPE that owns it in the GEMM distribution.
    pub mesh_swap: bool,
    pub direction: DmaDirection,
    pub spm: SpmSlot,
    pub reply: ReplyId,
}

/// Per-CPE strided DMA node (`DMA_CPE`), the executable form: CPE
/// `(rid, cid)` transfers `n_blocks` blocks of `block` elements, `stride`
/// apart, starting at `offset` (which references `rid`/`cid`).
#[derive(Debug, Clone, PartialEq)]
pub struct DmaCpe {
    pub buf: MemBufId,
    /// Per-CPE element offset within `buf`; references `Rid`/`Cid`.
    pub offset: AffineExpr,
    pub block: usize,
    pub stride: usize,
    pub n_blocks: usize,
    pub direction: DmaDirection,
    pub spm: SpmSlot,
    pub reply: ReplyId,
    /// Broadcast tiling: when set, only the leader CPE of each mesh row
    /// (`BcastBus::Row`, leaders `(r, 0)`) or column (`BcastBus::Column`,
    /// leaders `(0, c)`) fetches the whole line's blocks from DRAM and
    /// scatters them over the register-communication bus. Valid only when
    /// the 8 per-CPE fetches of a line are contiguous (the bcast-axis mesh
    /// coefficient of `offset` equals `block`).
    pub bcast: Option<BcastBus>,
    /// Batch fusion: this transfer is issued back-to-back with the
    /// immediately preceding DMA node (no wait or compute in between), so
    /// its descriptors chain onto the engine's in-flight batch and the
    /// per-batch start-up latency is amortised away. Set by the optimizer's
    /// get-fusion pass; never set on the first node of a run.
    pub fused: bool,
}

impl DmaCpe {
    /// Elements landing in (or read from) each CPE's SPM.
    pub fn spm_elems(&self) -> usize {
        self.block * self.n_blocks
    }
}

/// A tensorized GEMM primitive call: `C = alpha·A·B + beta·C` on
/// SPM-distributed operands.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmOp {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub alpha: f32,
    pub beta: f32,
    pub a: MatDesc,
    pub b: MatDesc,
    pub c: MatDesc,
    pub vd: VecDim,
}

impl GemmOp {
    pub fn flops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

/// Bulk host-side transforms: layout packing, operator-specific expansions
/// and boundary padding. Executed as bandwidth-costed block operations.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformOp {
    pub kind: TransformKind,
    /// Chain fusion: this transform runs back-to-back with the immediately
    /// preceding transform, so its block stream chains onto the engine's
    /// open pipeline and the per-transform start-up latency is amortised
    /// away. Set by the optimizer's transform-fusion pass; never set on the
    /// first transform of a run.
    pub fused: bool,
}

/// The transform vocabulary. Buffer dimensions are tracked in the program's
/// buffer table; kinds carry the semantic parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformKind {
    /// im2col expansion of an NCHW input into the `(Ni·Kr·Kc) × (B·Ro·Co)`
    /// column matrix (explicit-GEMM convolution, Fig. 2 left).
    Im2col { shape: ConvShape, src: MemBufId, dst: MemBufId },
    /// Materialise spatial zero padding: NCHW input → padded NCHW copy
    /// (`ri + 2·pad` × `ci + 2·pad`), so downstream tiling sees `pad = 0`.
    PadImageNchw { shape: ConvShape, src: MemBufId, dst: MemBufId },
    /// Winograd filter transform `[No][Ni][3][3] → [16][No][Ni]`
    /// (or `[16][Ni][No]` when `transposed` — the column-major layout).
    WinogradFilter { shape: ConvShape, src: MemBufId, dst: MemBufId, transposed: bool },
    /// Winograd input transform NCHW → `[16][Ni][nt_pad]`: the tile axis is
    /// zero-padded to `nt_pad` at generation time so the batched GEMMs see
    /// an aligned N dimension.
    WinogradInput { shape: ConvShape, src: MemBufId, dst: MemBufId, nt_pad: usize },
    /// Winograd inverse output transform `[16][No][nt_pad]` → NCHW.
    WinogradOutput { shape: ConvShape, src: MemBufId, dst: MemBufId, nt_pad: usize },
    /// Materialised dimension permutation of a dense tensor
    /// (layout transformation): `dst = permute(src, perm)`.
    PackTensor { src: MemBufId, dst: MemBufId, src_dims: Vec<usize>, perm: Vec<usize> },
    /// Rotate a filter 180° spatially and swap its channel axes:
    /// `dst[ni][no][kr][kc] = src[no][ni][Kr-1-kr][Kc-1-kc]` — the weight
    /// transform of backward-data convolution.
    RotateFilter { shape: ConvShape, src: MemBufId, dst: MemBufId },
    /// Copy sub-matrix `src[r0.., c0..]` (clipped to `take_rows×take_cols`)
    /// into the top-left of `dst` (`dst_rows × dst_cols`, row-major),
    /// zeroing the remainder — the padding primitive. `zero_first` decides
    /// whether the whole destination is cleared (aux buffers are reused).
    PadSubmatrix {
        src: MemBufId,
        src_rows: usize,
        src_cols: usize,
        r0: usize,
        c0: usize,
        take_rows: usize,
        take_cols: usize,
        dst: MemBufId,
        dst_rows: usize,
        dst_cols: usize,
        zero_first: bool,
    },
    /// Copy the top-left `take_rows × take_cols` of `src` into
    /// `dst[r0.., c0..]` — the un-padding primitive for outputs.
    UnpadSubmatrix {
        src: MemBufId,
        src_rows: usize,
        src_cols: usize,
        dst: MemBufId,
        dst_rows: usize,
        dst_cols: usize,
        r0: usize,
        c0: usize,
        take_rows: usize,
        take_cols: usize,
    },
    /// Zero an entire buffer.
    ZeroBuf { buf: MemBufId },
    /// Transaction coalescing: gather the strided per-CPE tiles of a
    /// loop-nest's `DmaCg` get into a packed staging buffer, laid out
    /// `[iteration][cpe][block]` so the replacement per-CPE DMA is a single
    /// fully contiguous (transaction-aligned) block per CPE per step.
    /// `base` is the constant term of the source tile-origin offset and
    /// `iters` the `(extent, coefficient)` pairs of the loop variables it
    /// depends on, outermost first — together they enumerate every tile the
    /// nest will fetch. `rows`/`cols`/`row_stride`/`mesh_swap` mirror the
    /// replaced `DmaCg`.
    PackTiles {
        src: MemBufId,
        dst: MemBufId,
        rows: usize,
        cols: usize,
        row_stride: usize,
        mesh_swap: bool,
        base: i64,
        iters: Vec<(usize, i64)>,
    },
}

impl TransformKind {
    /// (elements read, elements written, extra flops per written element) —
    /// the inputs to the transform cost model.
    pub fn traffic(&self) -> (u64, u64, u64) {
        match self {
            TransformKind::Im2col { shape, .. } => {
                let written = swtensor::im2col::im2col_elems(shape) as u64;
                // Each written element is read once from the input.
                (written, written, 0)
            }
            TransformKind::PadImageNchw { shape, .. } => {
                let read = shape.input_shape().numel() as u64;
                let written =
                    (shape.b * shape.ni * (shape.ri() + 2 * shape.pad) * (shape.ci() + 2 * shape.pad))
                        as u64;
                (read, written, 0)
            }
            TransformKind::WinogradFilter { shape, .. } => {
                let read = (shape.no * shape.ni * 9) as u64;
                let written = (16 * shape.no * shape.ni) as u64;
                // G g Gᵀ: ~4 multiply-adds per output element.
                (read, written, 8)
            }
            TransformKind::WinogradInput { shape, nt_pad, .. } => {
                let written = 16 * (shape.ni * nt_pad) as u64;
                (written, written, 8)
            }
            TransformKind::WinogradOutput { shape, nt_pad, .. } => {
                let read = 16 * (shape.no * nt_pad) as u64;
                let written = (shape.b * shape.no * shape.ro * shape.co) as u64;
                (read, written, 8)
            }
            TransformKind::PackTensor { src_dims, .. } => {
                let n: u64 = src_dims.iter().product::<usize>() as u64;
                (n, n, 0)
            }
            TransformKind::RotateFilter { shape, .. } => {
                let n = shape.weight_shape().numel() as u64;
                (n, n, 0)
            }
            TransformKind::PadSubmatrix {
                take_rows, take_cols, dst_rows, dst_cols, zero_first, ..
            } => {
                let copied = (take_rows * take_cols) as u64;
                let zeroed =
                    if *zero_first { (dst_rows * dst_cols) as u64 - copied } else { 0 };
                (copied, copied + zeroed, 0)
            }
            TransformKind::UnpadSubmatrix { take_rows, take_cols, .. } => {
                let n = (take_rows * take_cols) as u64;
                (n, n, 0)
            }
            TransformKind::ZeroBuf { .. } => (0, 0, 0),
            TransformKind::PackTiles { rows, cols, iters, .. } => {
                let n_iters: u64 = iters.iter().map(|&(e, _)| e as u64).product();
                let n = n_iters * (rows * cols) as u64;
                (n, n, 0)
            }
        }
    }
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `for var in 0..extent` (splits normalise min to 0, stride to 1).
    For { var: VarId, extent: usize, body: Box<Stmt> },
    /// `if cond { then_ } else { else_ }`.
    If { cond: Cond, then_: Box<Stmt>, else_: Option<Box<Stmt>> },
    /// Core-group-level DMA (pre-inference form).
    DmaCg(DmaCg),
    /// Per-CPE DMA (executable form).
    DmaCpe(DmaCpe),
    /// Wait for `times` completions on a reply word.
    DmaWait { reply: ReplyId, times: usize },
    /// Tensorized GEMM primitive.
    Gemm(GemmOp),
    /// Bulk host-side transform.
    Transform(TransformOp),
    /// No-op (useful as a neutral element for builders).
    Nop,
}

impl Stmt {
    /// Wrap statements in a `Seq`, flattening nested `Seq`s and dropping
    /// `Nop`s.
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        fn push(out: &mut Vec<Stmt>, s: Stmt) {
            match s {
                Stmt::Seq(inner) => inner.into_iter().for_each(|x| push(out, x)),
                Stmt::Nop => {}
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        stmts.into_iter().for_each(|s| push(&mut out, s));
        match out.len() {
            0 => Stmt::Nop,
            1 => out.into_iter().next().unwrap(),
            _ => Stmt::Seq(out),
        }
    }

    /// `for var in 0..extent { body }`.
    pub fn for_(var: VarId, extent: usize, body: Stmt) -> Stmt {
        Stmt::For { var, extent, body: Box::new(body) }
    }

    /// `if cond { then_ }`.
    pub fn if_(cond: Cond, then_: Stmt) -> Stmt {
        Stmt::If { cond, then_: Box::new(then_), else_: None }
    }

    /// `if cond { then_ } else { else_ }`.
    pub fn if_else(cond: Cond, then_: Stmt, else_: Stmt) -> Stmt {
        Stmt::If { cond, then_: Box::new(then_), else_: Some(Box::new(else_)) }
    }

    /// Visit every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Seq(ss) => ss.iter().for_each(|s| s.visit(f)),
            Stmt::For { body, .. } => body.visit(f),
            Stmt::If { then_, else_, .. } => {
                then_.visit(f);
                if let Some(e) = else_ {
                    e.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Count nodes matching a predicate.
    pub fn count(&self, pred: impl Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if pred(s) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;

    #[test]
    fn seq_flattens_and_drops_nops() {
        let s = Stmt::seq(vec![
            Stmt::Nop,
            Stmt::Seq(vec![Stmt::Nop, Stmt::DmaWait { reply: ReplyId(0), times: 1 }]),
        ]);
        assert!(matches!(s, Stmt::DmaWait { .. }));
        assert_eq!(Stmt::seq(vec![]), Stmt::Nop);
    }

    #[test]
    fn visit_traverses_everything() {
        let body = Stmt::seq(vec![
            Stmt::DmaWait { reply: ReplyId(0), times: 1 },
            Stmt::if_(
                Cond::lt_const(AffineExpr::loop_var(0), 3),
                Stmt::DmaWait { reply: ReplyId(1), times: 1 },
            ),
        ]);
        let tree = Stmt::for_(0, 4, body);
        assert_eq!(tree.count(|s| matches!(s, Stmt::DmaWait { .. })), 2);
        assert_eq!(tree.count(|s| matches!(s, Stmt::For { .. })), 1);
        assert_eq!(tree.count(|s| matches!(s, Stmt::If { .. })), 1);
    }

    #[test]
    fn slot_bufs() {
        let d = SpmSlot::Double {
            even: SpmBufId(0),
            odd: SpmBufId(1),
            sel: AffineExpr::loop_var(0),
        };
        assert_eq!(d.bufs(), vec![SpmBufId(0), SpmBufId(1)]);
        assert_eq!(SpmSlot::single(SpmBufId(7)).bufs(), vec![SpmBufId(7)]);
    }

    #[test]
    fn pad_traffic_counts_lightweight_vs_full() {
        // Full pad of a 100×100 into 128×128 writes 128² elements; a strip
        // pad of 4×100 into 32×128 writes 32·128. The ratio is the paper's
        // Fig. 11 story in miniature.
        let full = TransformKind::PadSubmatrix {
            src: MemBufId(0), src_rows: 100, src_cols: 100,
            r0: 0, c0: 0, take_rows: 100, take_cols: 100,
            dst: MemBufId(1), dst_rows: 128, dst_cols: 128, zero_first: true,
        };
        let strip = TransformKind::PadSubmatrix {
            src: MemBufId(0), src_rows: 100, src_cols: 100,
            r0: 96, c0: 0, take_rows: 4, take_cols: 100,
            dst: MemBufId(2), dst_rows: 32, dst_cols: 128, zero_first: true,
        };
        let (fr, fw, _) = full.traffic();
        let (sr, sw, _) = strip.traffic();
        assert_eq!(fr, 10_000);
        assert_eq!(fw, 128 * 128);
        assert_eq!(sr, 400);
        assert_eq!(sw, 32 * 128);
        assert!(sw * 3 < fw);
    }

    #[test]
    fn pack_tiles_traffic_covers_every_iteration() {
        let k = TransformKind::PackTiles {
            src: MemBufId(0), dst: MemBufId(1),
            rows: 64, cols: 32, row_stride: 96, mesh_swap: false,
            base: 0, iters: vec![(3, 32), (2, 64 * 96)],
        };
        let (r, w, f) = k.traffic();
        assert_eq!(r, 6 * 64 * 32);
        assert_eq!(w, 6 * 64 * 32);
        assert_eq!(f, 0);
    }

    #[test]
    fn gemm_flops() {
        let d = MatDesc::new(SpmSlot::single(SpmBufId(0)), MatLayout::RowMajor, 8);
        let g = GemmOp {
            m: 64, n: 32, k: 16, alpha: 1.0, beta: 1.0,
            a: d.clone(), b: d.clone(), c: d, vd: swkernels::VecDim::M,
        };
        assert_eq!(g.flops(), 2 * 64 * 32 * 16);
    }
}
