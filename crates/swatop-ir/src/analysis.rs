//! IR analyses used by the optimizer passes.

use std::collections::BTreeSet;

use crate::expr::VarId;
use crate::stmt::{SpmSlot, Stmt};

/// Loop variables a statement's address expressions depend on (transitively
/// over the subtree, excluding variables bound *inside* the subtree).
///
/// DMA inference uses this to hoist a DMA node "as far as possible from
/// gemm_op": the node can move out of any loop whose variable it does not
/// reference.
pub fn free_loop_vars(stmt: &Stmt) -> BTreeSet<VarId> {
    fn slot_vars(s: &SpmSlot, out: &mut BTreeSet<VarId>) {
        if let SpmSlot::Double { sel, .. } = s {
            out.extend(sel.loop_vars());
        }
    }
    fn walk(stmt: &Stmt, bound: &mut Vec<VarId>, out: &mut BTreeSet<VarId>) {
        match stmt {
            Stmt::Seq(ss) => ss.iter().for_each(|s| walk(s, bound, out)),
            Stmt::For { var, body, .. } => {
                bound.push(*var);
                walk(body, bound, out);
                bound.pop();
            }
            Stmt::If { cond, then_, else_ } => {
                let mut cvars = BTreeSet::new();
                collect_cond(cond, &mut cvars);
                out.extend(cvars.into_iter().filter(|v| !bound.contains(v)));
                walk(then_, bound, out);
                if let Some(e) = else_ {
                    walk(e, bound, out);
                }
            }
            Stmt::DmaCg(d) => {
                out.extend(d.offset.loop_vars().into_iter().filter(|v| !bound.contains(v)));
                slot_vars(&d.spm, out);
            }
            Stmt::DmaCpe(d) => {
                out.extend(d.offset.loop_vars().into_iter().filter(|v| !bound.contains(v)));
                slot_vars(&d.spm, out);
            }
            Stmt::Gemm(g) => {
                for m in [&g.a, &g.b, &g.c] {
                    slot_vars(&m.slot, out);
                }
            }
            _ => {}
        }
    }
    fn collect_cond(c: &crate::expr::Cond, out: &mut BTreeSet<VarId>) {
        use crate::expr::Cond::*;
        match c {
            Lt(a, b) | Ge(a, b) | Eq(a, b) => {
                out.extend(a.loop_vars());
                out.extend(b.loop_vars());
            }
            And(a, b) => {
                collect_cond(a, out);
                collect_cond(b, out);
            }
        }
    }
    let mut bound = Vec::new();
    let mut out = BTreeSet::new();
    walk(stmt, &mut bound, &mut out);
    out
}

/// Static iteration count of the subtree's loops (product of extents along
/// each path, summed over sequence branches — an upper bound when guards
/// are present). Used for quick schedule-space statistics.
pub fn iteration_volume(stmt: &Stmt) -> u64 {
    match stmt {
        Stmt::Seq(ss) => ss.iter().map(iteration_volume).sum(),
        Stmt::For { extent, body, .. } => (*extent as u64) * iteration_volume(body).max(1),
        Stmt::If { then_, else_, .. } => {
            iteration_volume(then_) + else_.as_ref().map_or(0, |e| iteration_volume(e))
        }
        Stmt::Nop => 0,
        _ => 1,
    }
}

/// Count GEMM nodes that would execute (static count, ignoring guards).
pub fn count_gemms(stmt: &Stmt) -> usize {
    stmt.count(|s| matches!(s, Stmt::Gemm(_)))
}

/// Whether every `DmaCg` has been lowered (no CG-level nodes remain).
pub fn fully_lowered(stmt: &Stmt) -> bool {
    stmt.count(|s| matches!(s, Stmt::DmaCg(_))) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AffineExpr, Cond};
    use crate::stmt::{DmaCpe, MemBufId, ReplyId, SpmBufId};
    use sw26010::DmaDirection;

    fn dma(offset: AffineExpr) -> Stmt {
        Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset,
            block: 1,
            stride: 1,
            n_blocks: 1,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: ReplyId(0),
            bcast: None,
            fused: false,
        })
    }

    #[test]
    fn free_vars_exclude_bound() {
        // for v1 { dma @ v0 + v1 }: only v0 is free.
        let inner = dma(AffineExpr::loop_var(0).add(&AffineExpr::loop_var(1)));
        let nest = Stmt::for_(1, 4, inner);
        let fv = free_loop_vars(&nest);
        assert!(fv.contains(&0));
        assert!(!fv.contains(&1));
    }

    #[test]
    fn free_vars_see_conditions() {
        let s = Stmt::if_(Cond::lt_const(AffineExpr::loop_var(3), 2), Stmt::Nop);
        assert!(free_loop_vars(&s).contains(&3));
    }

    #[test]
    fn volume_and_counts() {
        let g = dma(AffineExpr::zero());
        let nest = Stmt::for_(0, 10, Stmt::for_(1, 5, g));
        assert_eq!(iteration_volume(&nest), 50);
        assert!(fully_lowered(&nest));
        assert_eq!(count_gemms(&nest), 0);
    }
}
