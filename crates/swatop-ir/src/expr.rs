//! Affine expressions and conditions over loop variables.
//!
//! Addresses in the IR are affine functions of the enclosing loop variables
//! and the CPE mesh coordinates:
//! `Φ(I) = Σ cᵢ·varᵢ + c_rid·rid + c_cid·cid + c₀`. Affine closure under
//! substitution is what makes the paper's DMA inference, hoisting analysis
//! and next-iteration prefetch inference mechanical.

use std::collections::BTreeMap;
use std::fmt;

/// Index of a loop variable in a program's variable table.
pub type VarId = usize;

/// A variable an affine expression may reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AVar {
    /// A loop iteration variable.
    Loop(VarId),
    /// The CPE's row id within the 8×8 mesh.
    Rid,
    /// The CPE's column id within the 8×8 mesh.
    Cid,
}

/// An affine expression `Σ coeff·var + constant` (i64 arithmetic).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// Sorted, deduplicated, zero-free terms.
    terms: Vec<(AVar, i64)>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn konst(c: i64) -> Self {
        AffineExpr { terms: Vec::new(), constant: c }
    }

    /// The expression `0`.
    pub fn zero() -> Self {
        Self::konst(0)
    }

    /// The single-variable expression `v`.
    pub fn var(v: AVar) -> Self {
        AffineExpr { terms: vec![(v, 1)], constant: 0 }
    }

    /// The loop-variable expression `varᵢ`.
    pub fn loop_var(v: VarId) -> Self {
        Self::var(AVar::Loop(v))
    }

    pub fn constant(&self) -> i64 {
        self.constant
    }

    pub fn terms(&self) -> &[(AVar, i64)] {
        &self.terms
    }

    /// Coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: AVar) -> i64 {
        self.terms.iter().find(|(t, _)| *t == v).map_or(0, |(_, c)| *c)
    }

    /// True if the expression has no variable terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// `self + other`.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut map: BTreeMap<AVar, i64> = self.terms.iter().copied().collect();
        for &(v, c) in &other.terms {
            *map.entry(v).or_insert(0) += c;
        }
        AffineExpr {
            terms: map.into_iter().filter(|&(_, c)| c != 0).collect(),
            constant: self.constant + other.constant,
        }
    }

    /// `self + c`.
    pub fn add_const(&self, c: i64) -> AffineExpr {
        let mut e = self.clone();
        e.constant += c;
        e
    }

    /// `self + coeff·v`.
    pub fn add_term(&self, v: AVar, coeff: i64) -> AffineExpr {
        self.add(&AffineExpr { terms: vec![(v, coeff)], constant: 0 })
    }

    /// `self · c`.
    pub fn scale(&self, c: i64) -> AffineExpr {
        if c == 0 {
            return AffineExpr::zero();
        }
        AffineExpr {
            terms: self.terms.iter().map(|&(v, k)| (v, k * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// Substitute loop variable `var` by expression `by` (affine closure).
    pub fn subst(&self, var: VarId, by: &AffineExpr) -> AffineExpr {
        let coeff = self.coeff(AVar::Loop(var));
        if coeff == 0 {
            return self.clone();
        }
        let mut rest = AffineExpr {
            terms: self.terms.iter().copied().filter(|(v, _)| *v != AVar::Loop(var)).collect(),
            constant: self.constant,
        };
        rest = rest.add(&by.scale(coeff));
        rest
    }

    /// Evaluate under an environment plus mesh coordinates.
    pub fn eval(&self, env: &Env, rid: i64, cid: i64) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            let val = match v {
                AVar::Loop(i) => env.get(i),
                AVar::Rid => rid,
                AVar::Cid => cid,
            };
            acc += c * val;
        }
        acc
    }

    /// Does the expression reference loop variable `v`?
    pub fn depends_on(&self, v: VarId) -> bool {
        self.coeff(AVar::Loop(v)) != 0
    }

    /// Does the expression reference `rid` or `cid`?
    pub fn uses_mesh(&self) -> bool {
        self.coeff(AVar::Rid) != 0 || self.coeff(AVar::Cid) != 0
    }

    /// Loop variables referenced, ascending.
    pub fn loop_vars(&self) -> Vec<VarId> {
        self.terms
            .iter()
            .filter_map(|(v, _)| match v {
                AVar::Loop(i) => Some(*i),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            let name = match v {
                AVar::Loop(i) => format!("v{i}"),
                AVar::Rid => "rid".into(),
                AVar::Cid => "cid".into(),
            };
            if c == 1 {
                write!(f, "{name}")?;
            } else {
                write!(f, "{c}*{name}")?;
            }
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// Loop-variable environment during interpretation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vals: Vec<i64>,
}

impl Env {
    pub fn new(n_vars: usize) -> Self {
        Env { vals: vec![0; n_vars] }
    }

    #[inline]
    pub fn get(&self, v: VarId) -> i64 {
        self.vals[v]
    }

    #[inline]
    pub fn set(&mut self, v: VarId, val: i64) {
        self.vals[v] = val;
    }
}

/// Boolean conditions over affine expressions (`if-then-else` nodes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `lhs < rhs`
    Lt(AffineExpr, AffineExpr),
    /// `lhs >= rhs`
    Ge(AffineExpr, AffineExpr),
    /// `lhs == rhs`
    Eq(AffineExpr, AffineExpr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
}

impl Cond {
    pub fn lt(l: AffineExpr, r: AffineExpr) -> Cond {
        Cond::Lt(l, r)
    }

    /// `expr < c`
    pub fn lt_const(l: AffineExpr, c: i64) -> Cond {
        Cond::Lt(l, AffineExpr::konst(c))
    }

    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    pub fn eval(&self, env: &Env, rid: i64, cid: i64) -> bool {
        match self {
            Cond::Lt(l, r) => l.eval(env, rid, cid) < r.eval(env, rid, cid),
            Cond::Ge(l, r) => l.eval(env, rid, cid) >= r.eval(env, rid, cid),
            Cond::Eq(l, r) => l.eval(env, rid, cid) == r.eval(env, rid, cid),
            Cond::And(a, b) => a.eval(env, rid, cid) && b.eval(env, rid, cid),
        }
    }

    /// Substitute a loop variable throughout.
    pub fn subst(&self, var: VarId, by: &AffineExpr) -> Cond {
        match self {
            Cond::Lt(l, r) => Cond::Lt(l.subst(var, by), r.subst(var, by)),
            Cond::Ge(l, r) => Cond::Ge(l.subst(var, by), r.subst(var, by)),
            Cond::Eq(l, r) => Cond::Eq(l.subst(var, by), r.subst(var, by)),
            Cond::And(a, b) => Cond::And(Box::new(a.subst(var, by)), Box::new(b.subst(var, by))),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Lt(l, r) => write!(f, "{l} < {r}"),
            Cond::Ge(l, r) => write!(f, "{l} >= {r}"),
            Cond::Eq(l, r) => write!(f, "{l} == {r}"),
            Cond::And(a, b) => write!(f, "({a}) && ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        // 3*v0 + 2*v1 + rid + 5
        let e = AffineExpr::zero()
            .add_term(AVar::Loop(0), 3)
            .add_term(AVar::Loop(1), 2)
            .add_term(AVar::Rid, 1)
            .add_const(5);
        let mut env = Env::new(2);
        env.set(0, 4);
        env.set(1, 10);
        assert_eq!(e.eval(&env, 7, 0), 12 + 20 + 7 + 5);
        assert!(e.depends_on(0));
        assert!(!e.depends_on(3));
        assert!(e.uses_mesh());
        assert_eq!(e.loop_vars(), vec![0, 1]);
    }

    #[test]
    fn add_cancels_terms() {
        let a = AffineExpr::loop_var(0).scale(3);
        let b = AffineExpr::loop_var(0).scale(-3).add_const(1);
        let s = a.add(&b);
        assert!(s.is_const());
        assert_eq!(s.constant(), 1);
    }

    #[test]
    fn substitution_is_affine() {
        // e = 4*v0 + 1; v0 := 2*v1 + 3 → 8*v1 + 13
        let e = AffineExpr::loop_var(0).scale(4).add_const(1);
        let by = AffineExpr::loop_var(1).scale(2).add_const(3);
        let s = e.subst(0, &by);
        assert_eq!(s.coeff(AVar::Loop(1)), 8);
        assert_eq!(s.coeff(AVar::Loop(0)), 0);
        assert_eq!(s.constant(), 13);
    }

    #[test]
    fn substitution_of_absent_var_is_identity() {
        let e = AffineExpr::loop_var(2).add_const(7);
        assert_eq!(e.subst(0, &AffineExpr::konst(100)), e);
    }

    #[test]
    fn scale_by_zero() {
        let e = AffineExpr::loop_var(0).add_const(9);
        assert_eq!(e.scale(0), AffineExpr::zero());
    }

    #[test]
    fn cond_eval_and_subst() {
        let mut env = Env::new(1);
        env.set(0, 3);
        let c = Cond::lt_const(AffineExpr::loop_var(0), 4);
        assert!(c.eval(&env, 0, 0));
        env.set(0, 4);
        assert!(!c.eval(&env, 0, 0));

        let c2 = c.subst(0, &AffineExpr::konst(1));
        assert!(c2.eval(&env, 0, 0)); // 1 < 4 regardless of env

        let both = Cond::lt_const(AffineExpr::loop_var(0), 10)
            .and(Cond::Ge(AffineExpr::loop_var(0), AffineExpr::konst(4)));
        assert!(both.eval(&env, 0, 0));
    }

    #[test]
    fn display_round_trips_visually() {
        let e = AffineExpr::loop_var(0).scale(2).add_term(AVar::Cid, 1).add_const(3);
        let s = e.to_string();
        assert!(s.contains("2*v0") && s.contains("cid") && s.contains('3'), "{s}");
    }
}
