//! Structural IR transformations: variable substitution, loop split,
//! loop reorder, loop fusion.
//!
//! These are the paper's *loop transformation* vocabulary (Sec. 4.3.1)
//! expressed as tree rewrites. The operator library usually lowers schedule
//! points parametrically (constructing already-tiled nests), but the
//! rewrites here are genuine and independently tested: `split` introduces
//! the outer/inner pair with a boundary guard when the factor does not
//! divide the extent, `reorder` permutes a perfect nest, and `fuse` merges
//! two adjacent loops over the same extent.

use crate::expr::{AffineExpr, Cond, VarId};
use crate::stmt::{DmaCg, DmaCpe, GemmOp, MatDesc, SpmSlot, Stmt};

/// Substitute loop variable `var` by `by` in every affine expression of the
/// subtree.
pub fn subst_var(stmt: &Stmt, var: VarId, by: &AffineExpr) -> Stmt {
    let slot = |s: &SpmSlot| match s {
        SpmSlot::Single(b) => SpmSlot::Single(*b),
        SpmSlot::Double { even, odd, sel } => {
            SpmSlot::Double { even: *even, odd: *odd, sel: sel.subst(var, by) }
        }
    };
    let mat = |m: &MatDesc| MatDesc { slot: slot(&m.slot), ..m.clone() };
    match stmt {
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(|s| subst_var(s, var, by)).collect()),
        Stmt::For { var: v, extent, body } => {
            debug_assert_ne!(*v, var, "substituting a bound variable");
            Stmt::For { var: *v, extent: *extent, body: Box::new(subst_var(body, var, by)) }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.subst(var, by),
            then_: Box::new(subst_var(then_, var, by)),
            else_: else_.as_ref().map(|e| Box::new(subst_var(e, var, by))),
        },
        Stmt::DmaCg(d) => Stmt::DmaCg(DmaCg {
            offset: d.offset.subst(var, by),
            spm: slot(&d.spm),
            ..d.clone()
        }),
        Stmt::DmaCpe(d) => Stmt::DmaCpe(DmaCpe {
            offset: d.offset.subst(var, by),
            spm: slot(&d.spm),
            ..d.clone()
        }),
        Stmt::Gemm(g) => Stmt::Gemm(GemmOp {
            a: mat(&g.a),
            b: mat(&g.b),
            c: mat(&g.c),
            ..g.clone()
        }),
        other => other.clone(),
    }
}

/// Split a `For` loop by `factor`, producing
/// `for outer in 0..ceil(extent/factor) { for inner in 0..factor { … } }`
/// with the body's `var` replaced by `outer·factor + inner`. When the
/// factor does not divide the extent, the body is guarded by
/// `outer·factor + inner < extent` — the boundary the paper's boundary
/// processing then optimises.
///
/// Panics if `stmt` is not a `For`.
pub fn split(stmt: &Stmt, factor: usize, outer: VarId, inner: VarId) -> Stmt {
    let Stmt::For { var, extent, body } = stmt else {
        panic!("split: not a For loop");
    };
    assert!(factor > 0, "split factor must be positive");
    let combined = AffineExpr::loop_var(outer)
        .scale(factor as i64)
        .add(&AffineExpr::loop_var(inner));
    let new_body = subst_var(body, *var, &combined);
    let guarded = if extent % factor == 0 {
        new_body
    } else {
        Stmt::if_(Cond::lt_const(combined, *extent as i64), new_body)
    };
    Stmt::for_(outer, extent.div_ceil(factor), Stmt::for_(inner, factor, guarded))
}

/// Extract the perfect loop nest at the root of `stmt`: the chain of `For`
/// nodes each of whose body is directly the next `For` (or the innermost
/// body). Returns `(loops, innermost_body)`.
pub fn perfect_nest(stmt: &Stmt) -> (Vec<(VarId, usize)>, Stmt) {
    let mut loops = Vec::new();
    let mut cur = stmt;
    loop {
        match cur {
            Stmt::For { var, extent, body } => {
                loops.push((*var, *extent));
                cur = body;
            }
            other => return (loops, other.clone()),
        }
    }
}

/// Rebuild a perfect nest from loops (outermost first) and a body.
pub fn build_nest(loops: &[(VarId, usize)], body: Stmt) -> Stmt {
    loops
        .iter()
        .rev()
        .fold(body, |acc, &(var, extent)| Stmt::for_(var, extent, acc))
}

/// Reorder the outermost perfect nest of `stmt` according to `perm`:
/// new position `i` holds the old loop `perm[i]`. The nest must be at least
/// `perm.len()` deep; deeper loops stay attached to the body.
pub fn reorder(stmt: &Stmt, perm: &[usize]) -> Stmt {
    let (loops, body) = perfect_nest(stmt);
    assert!(
        perm.len() <= loops.len(),
        "reorder: permutation deeper than nest ({} > {})",
        perm.len(),
        loops.len()
    );
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "reorder: invalid permutation");
        seen[p] = true;
    }
    let tail = build_nest(&loops[perm.len()..], body);
    let permuted: Vec<(VarId, usize)> = perm.iter().map(|&p| loops[p]).collect();
    build_nest(&permuted, tail)
}

/// Fuse two sibling loops of equal extent into one: `for i {A}; for j {B}`
/// becomes `for i {A; B[j := i]}`. This is the reverse of `split`'s effect
/// at the schedule level; swATOP uses it to enlarge GEMM dimensions by
/// merging independent multiplications.
pub fn fuse(a: &Stmt, b: &Stmt) -> Stmt {
    let (Stmt::For { var: va, extent: ea, body: ba }, Stmt::For { var: vb, extent: eb, body: bb }) =
        (a, b)
    else {
        panic!("fuse: both statements must be For loops");
    };
    assert_eq!(ea, eb, "fuse: extents differ ({ea} vs {eb})");
    let bb2 = subst_var(bb, *vb, &AffineExpr::loop_var(*va));
    Stmt::for_(*va, *ea, Stmt::seq(vec![(**ba).clone(), bb2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{MemBufId, ReplyId, SpmBufId};
    use sw26010::DmaDirection;

    fn dma_at(offset: AffineExpr) -> Stmt {
        Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset,
            block: 4,
            stride: 4,
            n_blocks: 1,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::single(SpmBufId(0)),
            reply: ReplyId(0),
            bcast: None,
            fused: false,
        })
    }

    /// Collect the offsets a nest would enumerate, by brute-force walking.
    fn enumerate_offsets(stmt: &Stmt, n_vars: usize) -> Vec<i64> {
        fn walk(s: &Stmt, env: &mut crate::expr::Env, out: &mut Vec<i64>) {
            match s {
                Stmt::Seq(ss) => ss.iter().for_each(|x| walk(x, env, out)),
                Stmt::For { var, extent, body } => {
                    for i in 0..*extent {
                        env.set(*var, i as i64);
                        walk(body, env, out);
                    }
                }
                Stmt::If { cond, then_, else_ } => {
                    if cond.eval(env, 0, 0) {
                        walk(then_, env, out);
                    } else if let Some(e) = else_ {
                        walk(e, env, out);
                    }
                }
                Stmt::DmaCpe(d) => out.push(d.offset.eval(env, 0, 0)),
                _ => {}
            }
        }
        let mut env = crate::expr::Env::new(n_vars);
        let mut out = Vec::new();
        walk(stmt, &mut env, &mut out);
        out
    }

    #[test]
    fn split_exact_preserves_iteration_space() {
        // for v0 in 0..12 { dma @ 5*v0 } split by 4
        let orig = Stmt::for_(0, 12, dma_at(AffineExpr::loop_var(0).scale(5)));
        let s = split(&orig, 4, 1, 2);
        let orig_offs = enumerate_offsets(&orig, 3);
        let split_offs = enumerate_offsets(&s, 3);
        assert_eq!(orig_offs, split_offs);
        // No boundary guard needed.
        assert_eq!(s.count(|x| matches!(x, Stmt::If { .. })), 0);
    }

    #[test]
    fn split_with_remainder_guards_boundary() {
        let orig = Stmt::for_(0, 10, dma_at(AffineExpr::loop_var(0)));
        let s = split(&orig, 4, 1, 2);
        assert_eq!(s.count(|x| matches!(x, Stmt::If { .. })), 1);
        let offs = enumerate_offsets(&s, 3);
        assert_eq!(offs, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn reorder_permutes_iteration_order() {
        // for i in 0..2 { for j in 0..3 { dma @ 10*i + j } }
        let body = dma_at(AffineExpr::loop_var(0).scale(10).add(&AffineExpr::loop_var(1)));
        let nest = Stmt::for_(0, 2, Stmt::for_(1, 3, body));
        let swapped = reorder(&nest, &[1, 0]);
        let offs = enumerate_offsets(&swapped, 2);
        // j outer now: (j, i) order.
        assert_eq!(offs, vec![0, 10, 1, 11, 2, 12]);
        // Same multiset as original.
        let mut a = enumerate_offsets(&nest, 2);
        let mut b = offs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn fuse_merges_same_extent_loops() {
        let a = Stmt::for_(0, 4, dma_at(AffineExpr::loop_var(0)));
        let b = Stmt::for_(1, 4, dma_at(AffineExpr::loop_var(1).scale(100)));
        let f = fuse(&a, &b);
        let offs = enumerate_offsets(&f, 2);
        assert_eq!(offs, vec![0, 0, 1, 100, 2, 200, 3, 300]);
        assert_eq!(f.count(|x| matches!(x, Stmt::For { .. })), 1);
    }

    #[test]
    fn subst_reaches_double_buffer_selectors() {
        let s = Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset: AffineExpr::loop_var(0),
            block: 1,
            stride: 1,
            n_blocks: 1,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Double {
                even: SpmBufId(0),
                odd: SpmBufId(1),
                sel: AffineExpr::loop_var(0),
            },
            reply: ReplyId(0),
            bcast: None,
            fused: false,
        });
        let r = subst_var(&s, 0, &AffineExpr::konst(7));
        if let Stmt::DmaCpe(d) = r {
            assert_eq!(d.offset, AffineExpr::konst(7));
            if let SpmSlot::Double { sel, .. } = d.spm {
                assert_eq!(sel, AffineExpr::konst(7));
            } else {
                panic!("slot kind changed");
            }
        } else {
            panic!("node kind changed");
        }
    }

    #[test]
    fn perfect_nest_extraction() {
        let body = dma_at(AffineExpr::zero());
        let nest = Stmt::for_(0, 2, Stmt::for_(1, 3, Stmt::for_(2, 4, body.clone())));
        let (loops, inner) = perfect_nest(&nest);
        assert_eq!(loops, vec![(0, 2), (1, 3), (2, 4)]);
        assert_eq!(inner, body);
        let rebuilt = build_nest(&loops, inner);
        assert_eq!(rebuilt, nest);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn reorder_rejects_bad_perm() {
        let nest = Stmt::for_(0, 2, Stmt::for_(1, 3, Stmt::Nop));
        reorder(&nest, &[0, 0]);
    }
}
