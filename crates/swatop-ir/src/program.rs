//! A complete lowered program: statement tree plus its symbol tables.

use crate::stmt::{MemBufId, SpmBufId, Stmt};

/// Role of a main-memory buffer with respect to the operator's interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRole {
    /// Provided by the caller (operator input).
    Input,
    /// Produced for the caller (operator output).
    Output,
    /// Scratch: packed layouts, im2col matrices, padded boundary copies…
    Temp,
}

/// Declaration of a main-memory buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct MemBufDecl {
    pub name: String,
    pub len: usize,
    pub role: MemRole,
}

/// Declaration of an SPM buffer (per-CPE length in elements). Offsets are
/// assigned by the code generator's coalescing allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmBufDecl {
    pub name: String,
    pub len: usize,
}

/// Optimisation directives a schedule point attaches to its lowered
/// program: which of the DMA-wall passes the optimizer pipeline should run
/// on it. Each is an independent schedule dimension the tuner searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleHints {
    /// Double-buffer the steady-state loop gets (ping/pong SPM tiles) so
    /// step k+1's DMA-in overlaps step k's compute.
    pub dbuf: bool,
    /// Coalesce strided tile gets into packed, transaction-aligned staging
    /// buffers (one contiguous block per CPE per step).
    pub coalesce: bool,
    /// Broadcast-tile eligible gets: one leader CPE per mesh row/column
    /// pays the DRAM cost, the register-communication bus fans out.
    pub bcast: bool,
}

/// A lowered schedule strategy, ready for optimization / costing /
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub name: String,
    pub body: Stmt,
    pub mem_bufs: Vec<MemBufDecl>,
    pub spm_bufs: Vec<SpmBufDecl>,
    pub n_replies: usize,
    pub var_names: Vec<String>,
    pub hints: ScheduleHints,
}

impl Program {
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            body: Stmt::Nop,
            mem_bufs: Vec::new(),
            spm_bufs: Vec::new(),
            n_replies: 0,
            var_names: Vec::new(),
            hints: ScheduleHints::default(),
        }
    }

    pub fn n_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Declare a loop variable, returning its id.
    pub fn fresh_var(&mut self, name: impl Into<String>) -> usize {
        self.var_names.push(name.into());
        self.var_names.len() - 1
    }

    /// Declare a main-memory buffer.
    pub fn mem_buf(&mut self, name: impl Into<String>, len: usize, role: MemRole) -> MemBufId {
        self.mem_bufs.push(MemBufDecl { name: name.into(), len, role });
        MemBufId(self.mem_bufs.len() - 1)
    }

    /// Declare a per-CPE SPM buffer of `len` elements.
    pub fn spm_buf(&mut self, name: impl Into<String>, len: usize) -> SpmBufId {
        self.spm_bufs.push(SpmBufDecl { name: name.into(), len });
        SpmBufId(self.spm_bufs.len() - 1)
    }

    /// Allocate a reply-word slot.
    pub fn fresh_reply(&mut self) -> crate::stmt::ReplyId {
        self.n_replies += 1;
        crate::stmt::ReplyId(self.n_replies - 1)
    }

    /// Total per-CPE SPM elements declared (before double-buffer expansion
    /// or coalescing): the scheduler's capacity filter uses this.
    pub fn spm_elems(&self) -> usize {
        self.spm_bufs.iter().map(|b| b.len).sum()
    }

    /// Buffers with a given role.
    pub fn bufs_with_role(&self, role: MemRole) -> Vec<MemBufId> {
        self.mem_bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.role == role)
            .map(|(i, _)| MemBufId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_accumulate() {
        let mut p = Program::new("t");
        let v0 = p.fresh_var("i");
        let v1 = p.fresh_var("j");
        assert_eq!((v0, v1), (0, 1));
        let a = p.mem_buf("in", 100, MemRole::Input);
        let b = p.mem_buf("out", 50, MemRole::Output);
        let t = p.mem_buf("tmp", 10, MemRole::Temp);
        assert_eq!(p.bufs_with_role(MemRole::Input), vec![a]);
        assert_eq!(p.bufs_with_role(MemRole::Output), vec![b]);
        assert_eq!(p.bufs_with_role(MemRole::Temp), vec![t]);
        p.spm_buf("x", 128);
        p.spm_buf("y", 64);
        assert_eq!(p.spm_elems(), 192);
        let r = p.fresh_reply();
        assert_eq!(r.0, 0);
        assert_eq!(p.n_replies, 1);
        assert_eq!(p.n_vars(), 2);
    }
}
