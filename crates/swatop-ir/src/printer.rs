//! Human-readable IR pretty-printer.
//!
//! The same traversal is reused by the code generator's C emitter; here the
//! output is a compact pseudo-code that shows up in logs, tests and the
//! `offline_codegen` example.

use std::fmt::Write;

use crate::program::Program;
use crate::stmt::{SpmSlot, Stmt, TransformKind};

/// Render a program to pseudo-code.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", p.name);
    for (i, b) in p.mem_bufs.iter().enumerate() {
        let _ = writeln!(out, "  mem m{i} \"{}\" [{}] ({:?})", b.name, b.len, b.role);
    }
    for (i, b) in p.spm_bufs.iter().enumerate() {
        let _ = writeln!(out, "  spm s{i} \"{}\" [{}]", b.name, b.len);
    }
    print_stmt(&p.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn slot_str(s: &SpmSlot) -> String {
    match s {
        SpmSlot::Single(b) => format!("s{}", b.0),
        SpmSlot::Double { even, odd, sel } => {
            format!("dbl(s{}, s{}; sel = {})", even.0, odd.0, sel)
        }
    }
}

/// Render one statement subtree at the given indent depth.
pub fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match s {
        Stmt::Seq(ss) => ss.iter().for_each(|x| print_stmt(x, depth, out)),
        Stmt::For { var, extent, body } => {
            let _ = writeln!(out, "{pad}for v{var} in 0..{extent} {{");
            print_stmt(body, depth + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(out, "{pad}if {cond} {{");
            print_stmt(then_, depth + 1, out);
            if let Some(e) = else_ {
                let _ = writeln!(out, "{pad}}} else {{");
                print_stmt(e, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::DmaCg(d) => {
            let _ = writeln!(
                out,
                "{pad}DMA_CG({:?}, m{}, @({}) , {}x{} rs={}) -> {} [r{}]",
                d.direction, d.buf.0, d.offset, d.rows, d.cols, d.row_stride,
                slot_str(&d.spm), d.reply.0
            );
        }
        Stmt::DmaCpe(d) => {
            let bc = match d.bcast {
                None => String::new(),
                Some(b) => format!(", bcast={b:?}"),
            };
            let _ = writeln!(
                out,
                "{pad}DMA_CPE({:?}, m{}, @({}), block={}, stride={}, n={}{bc}) -> {} [r{}]",
                d.direction, d.buf.0, d.offset, d.block, d.stride, d.n_blocks,
                slot_str(&d.spm), d.reply.0
            );
        }
        Stmt::DmaWait { reply, times } => {
            let _ = writeln!(out, "{pad}DMA_WAIT(r{}, {times})", reply.0);
        }
        Stmt::Gemm(g) => {
            let _ = writeln!(
                out,
                "{pad}GEMM(m={}, n={}, k={}, a={}, b={}, c={}, vd={:?}, alpha={}, beta={})",
                g.m, g.n, g.k,
                slot_str(&g.a.slot), slot_str(&g.b.slot), slot_str(&g.c.slot),
                g.vd, g.alpha, g.beta
            );
        }
        Stmt::Transform(t) => {
            let name = match &t.kind {
                TransformKind::Im2col { .. } => "im2col",
                TransformKind::PadImageNchw { .. } => "pad_image",
                TransformKind::WinogradFilter { .. } => "winograd_filter",
                TransformKind::WinogradInput { .. } => "winograd_input",
                TransformKind::WinogradOutput { .. } => "winograd_output",
                TransformKind::PackTensor { .. } => "pack",
                TransformKind::RotateFilter { .. } => "rotate_filter",
                TransformKind::PadSubmatrix { .. } => "pad",
                TransformKind::UnpadSubmatrix { .. } => "unpad",
                TransformKind::ZeroBuf { .. } => "zero",
                TransformKind::PackTiles { .. } => "pack_tiles",
            };
            let _ = writeln!(out, "{pad}TRANSFORM({name})");
        }
        Stmt::Nop => {
            let _ = writeln!(out, "{pad}nop");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AffineExpr, Cond};
    use crate::program::MemRole;
    use crate::stmt::{DmaCpe, MemBufId, SpmBufId};
    use sw26010::DmaDirection;

    #[test]
    fn prints_structure() {
        let mut p = Program::new("demo");
        let v = p.fresh_var("i");
        p.mem_buf("in", 64, MemRole::Input);
        p.spm_buf("buf", 8);
        let r = p.fresh_reply();
        let dma = Stmt::DmaCpe(DmaCpe {
            buf: MemBufId(0),
            offset: AffineExpr::loop_var(v).scale(8),
            block: 8,
            stride: 8,
            n_blocks: 1,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: r,
            bcast: None,
            fused: false,
        });
        p.body = Stmt::for_(
            v,
            4,
            Stmt::seq(vec![
                Stmt::if_(Cond::lt_const(AffineExpr::loop_var(v), 3), dma),
                Stmt::DmaWait { reply: r, times: 1 },
            ]),
        );
        let s = print_program(&p);
        assert!(s.contains("for v0 in 0..4"), "{s}");
        assert!(s.contains("DMA_CPE"), "{s}");
        assert!(s.contains("if v0 < 3"), "{s}");
        assert!(s.contains("DMA_WAIT(r0, 1)"), "{s}");
        assert!(s.contains("mem m0 \"in\""), "{s}");
    }
}
