//! Tier-ladder guarantees: the tiered tuner (analytic screen → adaptive
//! scoreboard top-k → functional winner) must pick the *same* winner as
//! the full-scoreboard sweep while measuring a fraction of the space;
//! memoized sub-cost estimation must be bit-identical to the unmemoized
//! walk; and the ladder must stay bit-deterministic across worker counts
//! and checkpoint interruption.

use proptest::prelude::*;
use sw26010::MachineConfig;
use swatop::model::memo::MemoCache;
use swatop::model::{estimate_program_memo, GemmModel};
use swatop::ops::{ImplicitConvOp, MatmulOp};
use swatop::scheduler::{Candidate, Scheduler};
use swatop::tuner::checkpoint::{self, CandCell};
use swatop::tuner::{
    blackbox_tune_jobs, tiered_tune, CheckpointPolicy, TierMode, TuneOptions, TuneOutcome,
};
use swtensor::ConvShape;

fn conv_space(cfg: &MachineConfig) -> Vec<Candidate> {
    let shape = ConvShape::square(32, 64, 64, 16);
    let cands = Scheduler::new(cfg.clone()).enumerate(&ImplicitConvOp::new(shape));
    assert!(cands.len() > 20, "need a nontrivial space, got {}", cands.len());
    cands
}

fn assert_same_pick(a: &TuneOutcome, b: &TuneOutcome, what: &str) {
    assert_eq!(a.best, b.best, "{what}: winner index");
    assert_eq!(a.cycles, b.cycles, "{what}: winner cycles");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The adaptive tier-0 top-k always contains the full-scoreboard
    /// winner: the tiered pick is byte-identical to brute force on random
    /// GEMM spaces, at a fraction of the measurements.
    #[test]
    fn tiered_matches_blackbox_on_random_gemms(
        m in 1usize..13, n in 1usize..13, k in 1usize..8,
    ) {
        let (m, n, k) = (8 * m, 8 * n, 8 * k);
        let cfg = MachineConfig::default();
        let cands = Scheduler::new(cfg.clone()).enumerate(&MatmulOp::new(m, n, k));
        prop_assume!(!cands.is_empty());
        let bb = blackbox_tune_jobs(&cfg, &cands, 1).unwrap();
        let td = tiered_tune(&cfg, &cands, &TuneOptions::with_jobs(1)).unwrap();
        prop_assert_eq!(td.best, bb.best, "gemm {}x{}x{}", m, n, k);
        prop_assert_eq!(td.cycles, bb.cycles);
        prop_assert_eq!(td.screened, cands.len());
        prop_assert!(td.executed <= bb.executed);
    }
}

/// Same agreement on a convolution space (layout + DMA-ladder + reduction
/// knobs — a much rougher cost surface than GEMM tiling alone).
#[test]
fn tiered_matches_blackbox_on_conv() {
    let cfg = MachineConfig::default();
    let cands = conv_space(&cfg);
    let bb = blackbox_tune_jobs(&cfg, &cands, 2).unwrap();
    let td = tiered_tune(&cfg, &cands, &TuneOptions::with_jobs(2)).unwrap();
    assert_same_pick(&bb, &td, "conv tiered vs blackbox");
    assert!(
        td.executed * 2 <= cands.len(),
        "tiered measured {} of {} — no saving",
        td.executed,
        cands.len()
    );
}

/// `--tiers full` is a true alias of the brute-force sweep.
#[test]
fn full_scoreboard_mode_matches_blackbox() {
    let cfg = MachineConfig::default();
    let cands = conv_space(&cfg);
    let bb = blackbox_tune_jobs(&cfg, &cands, 2).unwrap();
    let mut opts = TuneOptions::with_jobs(2);
    opts.tiers.mode = TierMode::FullScoreboard;
    let full = tiered_tune(&cfg, &cands, &opts).unwrap();
    assert_same_pick(&bb, &full, "full-scoreboard mode");
    assert_eq!(full.executed, cands.len());
    assert_eq!(full.all_cycles, bb.all_cycles);
}

/// Sub-cost memoization never changes a single bit of any estimate —
/// cold (filling) and warm (hitting) passes alike.
#[test]
fn memo_on_off_is_bit_identical() {
    let cfg = MachineConfig::default();
    let cands = conv_space(&cfg);
    let model = GemmModel::cached(&cfg);
    let cache = MemoCache::new();
    for pass in 0..2 {
        for c in &cands {
            let plain = estimate_program_memo(&cfg, &model, &c.raw, None);
            let memod = estimate_program_memo(&cfg, &model, &c.raw, Some(&cache));
            assert_eq!(
                plain.t_dma.to_bits(),
                memod.t_dma.to_bits(),
                "pass {pass} t_dma: {}",
                c.describe
            );
            assert_eq!(
                plain.t_compute.to_bits(),
                memod.t_compute.to_bits(),
                "pass {pass} t_compute: {}",
                c.describe
            );
        }
    }
    assert!(cache.hits() > 0, "warm pass never hit the cache");
}

/// Bit-identical tiered outcomes for every worker count, memo on or off.
#[test]
fn tiered_is_identical_for_any_job_count() {
    let cfg = MachineConfig::default();
    let cands = conv_space(&cfg);
    let serial = tiered_tune(&cfg, &cands, &TuneOptions::with_jobs(1)).unwrap();
    for jobs in [2, 4] {
        let par = tiered_tune(&cfg, &cands, &TuneOptions::with_jobs(jobs)).unwrap();
        assert_eq!(par.best, serial.best, "jobs={jobs}");
        assert_eq!(par.cycles, serial.cycles, "jobs={jobs}");
        assert_eq!(par.executed, serial.executed, "jobs={jobs}");
        assert_eq!(par.screened, serial.screened, "jobs={jobs}");
        assert_eq!(par.all_cycles, serial.all_cycles, "jobs={jobs}");
    }
    let mut nomemo = TuneOptions::with_jobs(4);
    nomemo.tiers.memo = false;
    let plain = tiered_tune(&cfg, &cands, &nomemo).unwrap();
    assert_eq!(plain.best, serial.best, "memo off");
    assert_eq!(plain.cycles, serial.cycles, "memo off");
    assert_eq!(plain.executed, serial.executed, "memo off");
}

/// A tiered sweep killed mid-run resumes from its checkpoint to the same
/// final answer as an uninterrupted sweep.
#[test]
fn tiered_resume_matches_uninterrupted() {
    let cfg = MachineConfig::default();
    let cands = conv_space(&cfg);
    let uninterrupted = tiered_tune(&cfg, &cands, &TuneOptions::with_jobs(2)).unwrap();

    let path =
        std::env::temp_dir().join(format!("swatop_tiers_resume_{}.ckpt", std::process::id()));
    let mut opts = TuneOptions::with_jobs(2);
    opts.checkpoint = Some(CheckpointPolicy::new(&path));
    tiered_tune(&cfg, &cands, &opts).unwrap();

    // Rewind the finished checkpoint to "killed after the first measured
    // candidate": everything but one Done cell back to Pending.
    let ck = checkpoint::load(&path).expect("checkpoint readable");
    let mut cells = ck.cells.clone();
    let mut kept = false;
    for c in &mut cells {
        if matches!(c, CandCell::Done { .. }) && !kept {
            kept = true;
        } else {
            *c = CandCell::Pending;
        }
    }
    checkpoint::save(&path, ck.fingerprint, &cells).unwrap();

    let mut ropts = TuneOptions::with_jobs(2);
    ropts.checkpoint = Some(CheckpointPolicy::resuming(&path));
    let resumed = tiered_tune(&cfg, &cands, &ropts).unwrap();
    std::fs::remove_file(&path).ok();
    assert_same_pick(&uninterrupted, &resumed, "resume vs uninterrupted");
    assert_eq!(resumed.all_cycles, uninterrupted.all_cycles, "resume vs uninterrupted");
}
