//! Fault-tolerance integration tests: the tuning engine must survive a
//! poisoned candidate space — injected DMA faults, SPM capacity pressure,
//! measurement jitter, and even panicking candidates — without aborting,
//! while staying bit-deterministic across worker counts, and an interrupted
//! sweep must resume from its checkpoint to the same final answer.

use sw26010::{FaultPlan, MachineConfig};
use swatop::ops::MatmulOp;
use swatop::scheduler::{Candidate, Scheduler};
use swatop::tuner::checkpoint::{self, CandCell};
use swatop::tuner::{
    blackbox_tune_opts, model_tune_topk_opts, prevalidate, CheckpointPolicy, TuneOptions,
    TuneOutcome,
};
use swatop_ir::Stmt;

/// The default poisoned machine: seed overridable via `SWATOP_FAULT_SEED`
/// (the CI fault leg sets it), so the suite is exercised under more than
/// one fault stream over time while every individual run stays exact. The
/// DMA rate is pushed far beyond the default envelope — the GEMM programs
/// here issue only ~60 batches each, and the stress test wants plenty of
/// retries and a visible population of terminal failures.
fn faulty_cfg() -> MachineConfig {
    let plan = FaultPlan::from_env().unwrap_or_else(|| FaultPlan::with_seed(0xF001));
    let plan = FaultPlan { dma_fail_ppm: plan.dma_fail_ppm.max(20_000), ..plan };
    MachineConfig { fault: Some(plan), ..MachineConfig::default() }
}

fn space(cfg: &MachineConfig) -> Vec<Candidate> {
    Scheduler::new(cfg.clone()).enumerate(&MatmulOp::new(96, 96, 48))
}

/// Field-by-field equality of everything that must be deterministic
/// (wall/cpu are host timings and legitimately differ).
fn assert_same_outcome(a: &TuneOutcome, b: &TuneOutcome, what: &str) {
    assert_eq!(a.best, b.best, "{what}: best");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.executed, b.executed, "{what}: executed");
    assert_eq!(a.all_cycles, b.all_cycles, "{what}: all_cycles");
    assert_eq!(a.failed, b.failed, "{what}: failed");
    assert_eq!(a.retried, b.retried, "{what}: retried");
    assert_eq!(a.reports, b.reports, "{what}: reports");
}

#[test]
fn poisoned_space_stress_is_deterministic_across_jobs() {
    let cfg = faulty_cfg();
    let cands = space(&cfg);
    assert!(cands.len() > 300, "space too small to stress: {}", cands.len());
    let run = |jobs: usize| {
        blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(jobs))
            .expect("a poisoned space must still tune")
    };
    let serial = run(1);
    // Faults were actually injected and recorded, not glossed over.
    assert!(serial.retried > 0, "stress plan should force retries");
    assert!(serial.failed > 0, "stress plan should fail some candidates terminally");
    let with_errors =
        serial.reports.iter().filter(|r| r.error.is_some()).count();
    assert_eq!(serial.failed, with_errors, "failed count must match reports");
    assert_eq!(serial.reports.len(), cands.len());
    // Jitter is on, so every successful measurement is a median of 3.
    assert!(serial.reports.iter().any(|r| r.samples == 3));
    // A failed candidate has no cycles; a measured one has some.
    for (c, r) in serial.all_cycles.iter().zip(&serial.reports) {
        assert_eq!(c.is_none(), r.error.is_some());
    }
    for jobs in [2, 8] {
        assert_same_outcome(&serial, &run(jobs), &format!("jobs={jobs}"));
    }
}

#[test]
fn model_tuner_survives_a_poisoned_space() {
    let cfg = faulty_cfg();
    let cands = space(&cfg);
    let run = |jobs: usize| {
        model_tune_topk_opts(&cfg, &cands, 8, &TuneOptions::with_jobs(jobs))
            .expect("model tuner must survive faults")
    };
    let serial = run(1);
    assert!(serial.executed >= 8);
    assert_same_outcome(&serial, &run(4), "jobs=4");
}

#[test]
fn prevalidation_rejects_impossible_candidates_before_execution() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let mut bad = cands[0].clone();
    bad.exe.spm_used = cfg.spm_elems() + 1;
    let err = prevalidate(&cfg, &bad).expect_err("oversized footprint must fail");
    assert!(err.to_string().contains("SPM footprint"), "got: {err}");
    // In a mixed space the bad candidate is reported, not fatal.
    let mixed = vec![bad, cands[1].clone()];
    let out = blackbox_tune_opts(&cfg, &mixed, &TuneOptions::with_jobs(1)).unwrap();
    assert_eq!(out.best, 1);
    assert_eq!(out.failed, 1);
    let msg = out.reports[0].error.as_deref().unwrap();
    assert!(msg.contains("SPM footprint"), "got: {msg}");
    assert_eq!(out.reports[0].retries, 0, "structural errors must not burn retries");
}

#[test]
fn a_panicking_candidate_fails_alone() {
    let cfg = MachineConfig::default();
    let mut cands = space(&cfg);
    let clean =
        blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(1)).unwrap();
    // Poison the clean winner: wrap its body in a loop over a variable id
    // far beyond the program's environment, so the interpreter's `Env::set`
    // panics on an out-of-bounds index at execution time.
    let bad = clean.best;
    let body = std::mem::replace(
        &mut cands[bad].exe.program.body,
        Stmt::Seq(Vec::new()),
    );
    cands[bad].exe.program.body =
        Stmt::For { var: 9999, extent: 1, body: Box::new(body) };
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = |jobs: usize| {
        blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(jobs)).unwrap()
    };
    let (serial, parallel) = (run(1), run(8));
    std::panic::set_hook(hook);
    assert_same_outcome(&serial, &parallel, "panic isolation across jobs");
    assert_ne!(serial.best, bad, "the poisoned winner must lose");
    assert!(serial.cycles >= clean.cycles);
    assert_eq!(serial.failed, 1);
    let msg = serial.reports[bad].error.as_deref().unwrap();
    assert!(msg.contains("panicked"), "got: {msg}");
}

/// Simulate a mid-run kill: take the checkpoint an interrupted sweep would
/// leave behind (a prefix of cells measured, the rest pending), resume from
/// it, and demand the same final outcome as an uninterrupted sweep.
#[test]
fn resumed_sweep_matches_uninterrupted() {
    let cfg = faulty_cfg();
    let cands = space(&cfg);
    let uninterrupted =
        blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(2)).unwrap();

    let path = std::env::temp_dir().join(format!("swatop_resume_{}.ckpt", std::process::id()));
    let mut opts = TuneOptions::with_jobs(2);
    opts.checkpoint = Some(CheckpointPolicy::new(&path));
    blackbox_tune_opts(&cfg, &cands, &opts).unwrap();

    // Rewind the finished checkpoint to "killed after candidate n/3".
    let ck = checkpoint::load(&path).expect("checkpoint readable");
    assert_eq!(ck.cells.len(), cands.len());
    let mut cells = ck.cells;
    let cut = cands.len() / 3;
    assert!(cells[..cut].iter().all(|c| !c.is_pending()));
    for cell in &mut cells[cut..] {
        *cell = CandCell::Pending;
    }
    checkpoint::save(&path, ck.fingerprint, &cells).unwrap();

    let mut ropts = TuneOptions::with_jobs(2);
    ropts.checkpoint = Some(CheckpointPolicy::resuming(&path));
    let resumed = blackbox_tune_opts(&cfg, &cands, &ropts).unwrap();
    std::fs::remove_file(&path).ok();
    assert_same_outcome(&uninterrupted, &resumed, "resume vs uninterrupted");
}

#[test]
fn foreign_checkpoint_is_ignored_not_trusted() {
    let cfg = faulty_cfg();
    let cands = space(&cfg);
    let fresh = blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(2)).unwrap();

    // A checkpoint from a *different* sweep: right length, wrong fingerprint,
    // and cells that would poison the result if trusted.
    let path = std::env::temp_dir().join(format!("swatop_foreign_{}.ckpt", std::process::id()));
    let lie = vec![CandCell::Done { cycles: 1, retries: 0, samples: 1 }; cands.len()];
    checkpoint::save(&path, 0xDEAD_BEEF, &lie).unwrap();

    let mut ropts = TuneOptions::with_jobs(2);
    ropts.checkpoint = Some(CheckpointPolicy::resuming(&path));
    let resumed = blackbox_tune_opts(&cfg, &cands, &ropts).unwrap();
    std::fs::remove_file(&path).ok();
    assert_same_outcome(&fresh, &resumed, "foreign checkpoint rejected");
}

#[test]
fn fault_free_machine_reports_clean_outcomes() {
    // The resilience bookkeeping must be invisible on a perfect machine:
    // no failures, no retries, single-sample measurements.
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let out = blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(2)).unwrap();
    assert_eq!(out.failed, 0);
    assert_eq!(out.retried, 0);
    assert!(out.reports.iter().all(|r| r.samples == 1 && r.error.is_none()));
}
