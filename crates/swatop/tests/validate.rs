//! Schedule verification & quarantine: the static legality checker and the
//! differential validator against real operator schedules, the seeded
//! miscompile-injection matrix (every class × several seeds must be
//! caught, with zero false positives on clean schedules), tuner
//! quarantine-and-fallback determinism, and checkpoint/resume through a
//! sweep whose winner gets quarantined.

use proptest::prelude::*;
use sw26010::fault::{MiscompileKind, MiscompilePlan};
use sw26010::{CoreGroup, ExecMode, FaultPlan, MachineConfig, MachineError};
use swatop::interp::{execute, instantiate};
use swatop::ops::matmul::{lower_matmul_body, MatmulKnobs, Resident};
use swatop::ops::tiling::PadMode;
use swatop::ops::{
    validate_candidate, validate_candidate_injected, DmaKnobs, MatmulOp,
};
use swatop::optimizer::verify::verify_executable;
use swatop::scheduler::{Candidate, Operator, Scheduler};
use swatop::tuner::checkpoint::{self, CandCell};
use swatop::tuner::{
    blackbox_tune_validated, model_tune_topk_validated, CheckpointPolicy, RetryPolicy,
    TuneOptions, TuneOutcome, WinnerValidator,
};
use swatop_ir::{MemRole, Program, Stmt};

fn candidates(op: &dyn Operator) -> Vec<Candidate> {
    Scheduler::new(MachineConfig::default()).enumerate(op)
}

/// Number of per-CPE DMA statements in a candidate's planned program,
/// optionally counting only members of fused chains.
fn dma_stmts(c: &Candidate, fused_only: bool) -> usize {
    let mut n = 0;
    c.exe.program.body.visit(&mut |s| {
        if let Stmt::DmaCpe(d) = s {
            if !fused_only || d.fused {
                n += 1;
            }
        }
    });
    n
}

/// Every enumerated matmul candidate — all knob combinations of the
/// DMA-wall passes — must pass the static legality checker: the optimizer
/// may only generate legal schedules.
#[test]
fn all_enumerated_matmul_candidates_are_statically_legal() {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(96, 96, 48);
    let cands = candidates(&op);
    assert!(!cands.is_empty());
    for c in &cands {
        if let Err(vs) = verify_executable(&c.exe, &cfg) {
            panic!("candidate {} ({}) flagged: {:?}", c.point_index, c.describe, vs);
        }
    }
}

/// Zero false positives on the clean path: full validation (static +
/// differential) passes for a stride-sample of the candidate space. The
/// static pass already covers every candidate above; the differential stage
/// costs a functional execution per candidate, so this samples with a
/// prime stride that crosses every knob dimension of the space.
#[test]
fn clean_candidates_validate_with_zero_false_positives() {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(96, 96, 48);
    let cands = candidates(&op);
    let mut checked = 0;
    for c in cands.iter().step_by(37).chain(cands.last()) {
        if let Err(msg) = validate_candidate(&cfg, &op, c) {
            panic!("false positive on candidate {} ({}): {msg}", c.point_index, c.describe);
        }
        checked += 1;
    }
    assert!(checked > 100, "sample too thin: {checked}");
}

/// The injection matrix: every miscompile class, across several seeds, must
/// be flagged by the differential validator — and the assertion only counts
/// when the injector actually fired (`events > 0`), so a schedule that
/// never exercises the corrupted path can't pass vacuously.
#[test]
fn injection_matrix_every_class_and_seed_is_caught() {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(96, 96, 48);
    let cands = candidates(&op);
    // One candidate exercising all corruptible machinery: double-buffered
    // (ping/pong parity to swap), with fused DMA chains (waits to drop),
    // and plenty of payload copies (periods: 61 copies / 7 parities / 2
    // chained batches).
    let cand = cands
        .iter()
        .find(|c| c.prefetched && dma_stmts(c, true) >= 2 && dma_stmts(c, false) >= 4)
        .expect("space contains a prefetched candidate with fused chains");
    for kind in MiscompileKind::ALL {
        for seed in [1u64, 5, 11, 23] {
            let plan = MiscompilePlan { kind, seed };
            let (verdict, events) = validate_candidate_injected(&cfg, &op, cand, plan);
            assert!(
                events > 0,
                "{} seed {seed}: injector never fired on {}",
                kind.name(),
                cand.describe
            );
            assert!(
                verdict.is_err(),
                "{} seed {seed}: miscompile escaped the validator ({events} events)",
                kind.name()
            );
        }
    }
}

/// Error classification feeding the retry policy: transient DMA faults are
/// always worth retrying, SPM overflow only under injected capacity
/// pressure, and deterministic contract violations never.
#[test]
fn retry_policy_never_retries_deterministic_errors() {
    let p = RetryPolicy::default();
    let dma = MachineError::DmaFault { batch: 3 };
    let spm = MachineError::SpmOverflow { cpe: 0, offset: 0, len: 9000, capacity: 8192 };
    let args = MachineError::BadKernelArgs("m % 8 != 0".into());
    assert!(dma.is_transient() && !dma.is_deterministic());
    assert!(spm.is_deterministic() && args.is_deterministic());
    assert!(p.should_retry(&dma, false) && p.should_retry(&dma, true));
    assert!(p.should_retry(&spm, true), "pressure may have caused it");
    assert!(!p.should_retry(&spm, false), "deterministic on a clean machine");
    assert!(!p.should_retry(&args, true) && !p.should_retry(&args, false));
}

fn assert_same_choice(a: &TuneOutcome, b: &TuneOutcome, what: &str) {
    assert_eq!(a.best, b.best, "{what}: best");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.quarantined, b.quarantined, "{what}: quarantined");
    assert_eq!(a.reports, b.reports, "{what}: reports");
}

/// A quarantined winner falls back to the next-best candidate, the
/// rejection reason lands in its report, and the whole dance is
/// bit-deterministic across worker counts.
#[test]
fn quarantined_winner_falls_back_deterministically() {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(96, 96, 48);
    let cands = candidates(&op);
    let clean = blackbox_tune_validated(&cfg, &cands, &TuneOptions::default(), None)
        .expect("clean tune");
    assert_eq!(clean.quarantined, 0);
    let banned = clean.best;
    let validator = move |i: usize, _: &Candidate| {
        if i == banned { Err("synthetic: rejected by test".to_string()) } else { Ok(()) }
    };
    let run = |jobs: usize| {
        let opts = TuneOptions::with_jobs(jobs);
        blackbox_tune_validated(&cfg, &cands, &opts, Some(&validator as &WinnerValidator))
            .expect("fallback tune")
    };
    let serial = run(1);
    assert_ne!(serial.best, banned, "quarantined winner must lose");
    assert_eq!(serial.quarantined, 1);
    assert!(serial.cycles >= clean.cycles, "fallback can't beat the true best");
    assert_eq!(
        serial.reports[banned].quarantined.as_deref(),
        Some("synthetic: rejected by test")
    );
    assert!(serial.reports[serial.best].quarantined.is_none());
    for jobs in [2, 4] {
        assert_same_choice(&serial, &run(jobs), &format!("jobs={jobs}"));
    }
}

/// The model-guided tuner's fallback pulls candidates *beyond* its
/// measured wave when validation quarantines everything it proposed: only
/// one candidate outside the executed wave is acceptable, and the tuner
/// must keep walking its ranking until it finds it.
#[test]
fn model_tuner_fallback_walks_past_the_wave() {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(96, 96, 48);
    let cands = candidates(&op);
    let clean = model_tune_topk_validated(&cfg, &cands, 3, &TuneOptions::default(), None)
        .expect("clean model tune");
    assert!(clean.executed < cands.len(), "top-k must not execute everything");
    // Accept only a candidate the clean run never executed, forcing the
    // fallback loop to exhaust the wave and pull from the remaining ranking.
    let target = (0..cands.len())
        .find(|&i| clean.all_cycles[i].is_none())
        .expect("an unexecuted candidate exists");
    let validator = move |i: usize, _: &Candidate| {
        if i == target { Ok(()) } else { Err("synthetic: only one acceptable".to_string()) }
    };
    let out = model_tune_topk_validated(
        &cfg,
        &cands,
        3,
        &TuneOptions::default(),
        Some(&validator as &WinnerValidator),
    )
    .expect("fallback must reach the acceptable candidate");
    assert_eq!(out.best, target);
    assert!(out.quarantined >= 3, "the whole wave was rejected");
    assert!(out.executed > clean.executed, "fallback executed beyond the wave");
    assert!(out.reports[target].quarantined.is_none());
}

/// Satellite: an interrupted *validated* sweep — quarantined winner and
/// all — resumes from its checkpoint to a bit-identical outcome at any
/// worker count. Quarantine verdicts are recomputed on resume (they are a
/// pure function of the candidate), so the checkpoint format is unchanged.
#[test]
fn resumed_validated_sweep_is_bit_identical_across_jobs() {
    let cfg = MachineConfig {
        fault: Some(FaultPlan::with_seed(0xF001)),
        ..MachineConfig::default()
    };
    let op = MatmulOp::new(96, 96, 48);
    let cands = Scheduler::new(cfg.clone()).enumerate(&op);
    let clean = blackbox_tune_validated(&cfg, &cands, &TuneOptions::with_jobs(2), None)
        .expect("clean tune");
    let banned = clean.best;
    let validator = move |i: usize, _: &Candidate| {
        if i == banned { Err("synthetic: rejected by test".to_string()) } else { Ok(()) }
    };
    let v = Some(&validator as &WinnerValidator);
    let uninterrupted = blackbox_tune_validated(&cfg, &cands, &TuneOptions::with_jobs(2), v)
        .expect("uninterrupted tune");
    assert_eq!(uninterrupted.quarantined, 1);
    assert_ne!(uninterrupted.best, banned);

    let path =
        std::env::temp_dir().join(format!("swatop_validate_{}.ckpt", std::process::id()));
    let mut opts = TuneOptions::with_jobs(2);
    opts.checkpoint = Some(CheckpointPolicy::new(&path));
    blackbox_tune_validated(&cfg, &cands, &opts, v).expect("checkpointed tune");
    let ck = checkpoint::load(&path).expect("checkpoint readable");
    assert_eq!(ck.cells.len(), cands.len());
    let cut = cands.len() / 3;

    for jobs in [1, 4] {
        // Rewind the finished checkpoint to "killed after candidate n/3".
        let mut cells = ck.cells.clone();
        for cell in &mut cells[cut..] {
            *cell = CandCell::Pending;
        }
        checkpoint::save(&path, ck.fingerprint, &cells).unwrap();
        let mut ropts = TuneOptions::with_jobs(jobs);
        ropts.checkpoint = Some(CheckpointPolicy::resuming(&path));
        let resumed =
            blackbox_tune_validated(&cfg, &cands, &ropts, v).expect("resumed tune");
        assert_same_choice(&uninterrupted, &resumed, &format!("resume jobs={jobs}"));
    }
    std::fs::remove_file(&path).ok();
}

/// Base knob set the fused-chain equivalence proptest perturbs.
fn base_knobs(t_m: usize, t_n: usize, t_k: usize) -> MatmulKnobs {
    MatmulKnobs {
        t_m,
        t_n,
        t_k,
        a_col: false,
        b_col: false,
        vec_m: false,
        n_outer: false,
        dma: DmaKnobs::default(),
        resident: Resident::None,
    }
}

/// Lower, optimize, plan and functionally execute one matmul schedule on a
/// machine that may carry an armed fault plan, returning the output bits.
/// `None` when the knobs are inapplicable or a fault killed the run.
fn run_matmul_bits(
    cfg: &MachineConfig,
    m: usize,
    n: usize,
    k: usize,
    knobs: &MatmulKnobs,
) -> Option<Vec<u32>> {
    let mut p = Program::new(format!("mm_{m}x{n}x{k}"));
    let a = p.mem_buf("A", m * k, MemRole::Input);
    let b = p.mem_buf("B", k * n, MemRole::Input);
    let c = p.mem_buf("C", m * n, MemRole::Output);
    let body = lower_matmul_body(&mut p, knobs, a, b, c, m, n, k, PadMode::Lightweight)?;
    p.body = Stmt::seq(body);
    let opt = swatop::optimizer::optimize(p, true);
    let exe = swatop::codegen::plan(opt, cfg).ok()?;
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::Functional);
    let binding = instantiate(&mut cg, &exe);
    let inputs =
        [swtensor::init::random_vec(m * k, 0xA), swtensor::init::random_vec(k * n, 0xB)];
    let input_ids = exe.program.bufs_with_role(MemRole::Input);
    for (id, data) in input_ids.iter().zip(&inputs) {
        cg.mem.write(binding.bufs[id.0], 0, data).ok()?;
    }
    execute(&mut cg, &exe, &binding).ok()?;
    let out_ids = exe.program.bufs_with_role(MemRole::Output);
    Some(cg.mem.buffer(binding.bufs[out_ids[0].0]).iter().map(|v| v.to_bits()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite: fused DMA chains produced by `optimizer::coalesce` move
    /// byte-identical data compared to their unfused counterparts, across
    /// random shapes and random *fault seeds* — injected transient faults
    /// may kill a run, but a surviving run's bytes never differ.
    #[test]
    fn fused_chains_move_identical_bytes_under_fault_seeds(
        m in 8usize..80,
        n in 8usize..80,
        k in 8usize..48,
        seed in any::<u64>(),
        dbuf: bool,
        faulted: bool,
    ) {
        let mut cfg = MachineConfig::default();
        if faulted {
            cfg.fault = Some(FaultPlan::with_seed(seed));
        }
        let mut plain = base_knobs(32, 32, 16);
        plain.dma.dbuf = dbuf;
        let mut fused = plain;
        fused.dma.coalesce = true;
        let (Some(bits_plain), Some(bits_fused)) = (
            run_matmul_bits(&cfg, m, n, k, &plain),
            run_matmul_bits(&cfg, m, n, k, &fused),
        ) else {
            return Ok(());
        };
        prop_assert_eq!(bits_plain, bits_fused, "m={} n={} k={} seed={:#x}", m, n, k, seed);
    }
}
