//! Integration tests for the candidate microscope: profile artifacts are
//! deterministic and `--jobs`-independent, tracing never perturbs the
//! measured cycles, and the Perfetto export is structurally well-formed
//! (parseable, per-track monotonic, begin/end balanced).

use sw26010::json::{parse, Json};
use sw26010::trace::Trace;
use sw26010::{CoreGroup, ExecMode, MachineConfig};
use swatop::interp::{execute, instantiate};
use swatop::observatory::Peaks;
use swatop::ops::MatmulOp;
use swatop::profiler::{
    corpus_text, feature_rows, profile_candidate, profile_json, profile_perfetto,
};
use swatop::scheduler::{Candidate, Scheduler};
use swatop::telemetry::{validate_json, Telemetry};
use swatop::tuner::{model_tune_topk_validated, TuneOptions};

fn space() -> (MachineConfig, Vec<Candidate>) {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(96, 96, 48);
    let cands = Scheduler::new(cfg.clone()).enumerate(&op);
    (cfg, cands)
}

/// The corpus is a deterministic artifact: an instrumented sweep at
/// `--jobs 1` and `--jobs 4` yields byte-identical corpus text even though
/// candidate spans are recorded in racy worker-completion order.
#[test]
fn corpus_bytes_are_jobs_independent() {
    let (cfg, cands) = space();
    let peaks = Peaks::of(&cfg);
    let mut texts = Vec::new();
    for jobs in [1usize, 4] {
        let tel = Telemetry::new();
        let mut opts = TuneOptions::with_jobs(jobs);
        opts.telemetry = Some(tel.clone());
        let outcome = model_tune_topk_validated(&cfg, &cands, 3, &opts, None).unwrap();
        let rows = feature_rows(&tel, &peaks);
        assert_eq!(
            rows.len(),
            outcome.executed,
            "one corpus row per evaluated candidate (jobs {jobs})"
        );
        texts.push(corpus_text(&rows));
    }
    assert_eq!(texts[0], texts[1], "corpus bytes must not depend on --jobs");
    // Every line of the artifact is standalone-parseable JSON.
    for line in texts[0].lines() {
        validate_json(line).unwrap();
    }
}

/// Enabling the trace must never move the clock: the cost model is the
/// same whether or not events are being recorded.
#[test]
fn tracing_does_not_perturb_measured_cycles() {
    let (cfg, cands) = space();
    for cand in cands.iter().step_by(cands.len() / 7) {
        let mut plain = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
        let binding = instantiate(&mut plain, &cand.exe);
        let untraced = execute(&mut plain, &cand.exe, &binding).unwrap();

        let mut traced = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
        traced.trace = Trace::enabled(1_000_000);
        let binding = instantiate(&mut traced, &cand.exe);
        let with_trace = execute(&mut traced, &cand.exe, &binding).unwrap();

        assert_eq!(untraced, with_trace, "tracing perturbed {}", cand.describe);
    }
}

/// Profiling the same candidate twice yields byte-identical JSON, and the
/// phases always partition the traced horizon.
#[test]
fn profile_artifact_is_deterministic() {
    let (cfg, cands) = space();
    let p1 = profile_candidate(&cfg, "mm96", 0, &cands[0]).unwrap();
    let p2 = profile_candidate(&cfg, "mm96", 0, &cands[0]).unwrap();
    assert_eq!(profile_json(&p1), profile_json(&p2));
    validate_json(&profile_json(&p1)).unwrap();
    let phase_sum: u64 = p1.timeline.phases.iter().map(|p| p.cycles()).sum();
    assert_eq!(phase_sum, p1.timeline.total, "phases partition the timeline");
}

/// The Perfetto export of a profiled trace is valid JSON, every track's
/// timestamps are monotonically non-decreasing, and every `B` (begin)
/// slice has a matching `E` (end) on the same track.
#[test]
fn perfetto_export_is_well_formed() {
    let (cfg, cands) = space();
    let winner = model_tune_topk_validated(&cfg, &cands, 3, &TuneOptions::default(), None)
        .unwrap()
        .best;
    let p = profile_candidate(&cfg, "mm96", winner, &cands[winner]).unwrap();
    let text = profile_perfetto(&p, cfg.clock_ghz);
    validate_json(&text).unwrap();

    let doc = parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr("traceEvents").unwrap();
    assert!(!events.is_empty());

    let field_u64 = |e: &Json, k: &str| e.get(k).map(|v| v.as_u64(k).unwrap());
    let field_f64 = |e: &Json, k: &str| e.get(k).map(|v| v.as_f64(k).unwrap());
    let mut last_ts: std::collections::HashMap<(u64, u64), f64> =
        std::collections::HashMap::new();
    let mut open: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    for e in events {
        let ph = e.get("ph").unwrap().as_str("ph").unwrap();
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let track = (
            field_u64(e, "pid").expect("event has pid"),
            field_u64(e, "tid").expect("event has tid"),
        );
        let ts = field_f64(e, "ts").expect("non-metadata event has ts");
        let prev = last_ts.insert(track, ts).unwrap_or(f64::NEG_INFINITY);
        assert!(ts >= prev, "track {track:?}: ts went backwards ({prev} -> {ts})");
        match ph {
            "B" => {
                let name = e.get("name").unwrap().as_str("name").unwrap().to_string();
                open.entry(track).or_default().push(name);
            }
            "E" => {
                assert!(
                    open.get_mut(&track).and_then(Vec::pop).is_some(),
                    "track {track:?}: E without a matching B"
                );
            }
            "X" | "C" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(
        open.values().all(Vec::is_empty),
        "unclosed B slices at end of trace: {open:?}"
    );
    // The profile's truncation flag is surfaced in the candidate span args.
    assert!(text.contains("\"truncated\""));
}
