//! Observability guarantees: the event bus, the pool monitor/watchdog and
//! the `/metrics` endpoint are strictly report-only.
//!
//! * The *multiset* of deterministic event keys a tuning run emits is
//!   identical for every `--jobs` value (worker ids and host timing never
//!   leak into lifecycle payloads).
//! * A run with the bus and watchdog attached produces bit-identical
//!   winners, cycles and convergence to a run with observability disabled.
//! * The watchdog flags an injected wedged candidate (fault-plan hook) and
//!   never fires on a clean sweep.
//! * `/metrics` serves valid Prometheus text under concurrent scrapes in
//!   the middle of a sweep.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sw26010::{FaultPlan, MachineConfig};
use swatop::ops::MatmulOp;
use swatop::scheduler::{Candidate, Scheduler};
use swatop::telemetry::bus::{Event, EventBus};
use swatop::telemetry::metrics::{MetricsHub, MetricsServer};
use swatop::tuner::pool::{MonitorConfig, PoolMonitor};
use swatop::tuner::{tiered_tune, TuneOptions};

fn gemm_space(cfg: &MachineConfig) -> Vec<Candidate> {
    let cands = Scheduler::new(cfg.clone()).enumerate(&MatmulOp::new(64, 64, 32));
    assert!(cands.len() > 10, "need a nontrivial space, got {}", cands.len());
    cands
}

fn opts(jobs: usize, bus: Option<EventBus>, monitor: Option<Arc<PoolMonitor>>) -> TuneOptions {
    TuneOptions { jobs, bus, monitor, ..TuneOptions::default() }
}

/// A fault plan that injects nothing at all except the requested wedge:
/// measured cycles stay bit-identical to the clean machine.
fn wedge_only(index: usize, wedge_ms: u32) -> FaultPlan {
    FaultPlan {
        wedge_run: Some(index as u64),
        wedge_ms,
        dma_fail_ppm: 0,
        spm_pressure_ppm: 0,
        spm_steal_max_permille: 0,
        jitter_permille: 0,
        ..FaultPlan::with_seed(1)
    }
}

/// The multiset of deterministic event keys is `--jobs`-invariant: same
/// sweep, same lifecycle story, whatever the scheduling.
#[test]
fn event_key_multiset_is_jobs_invariant() {
    let cfg = MachineConfig::default();
    let cands = gemm_space(&cfg);
    let mut keysets: Vec<Vec<String>> = Vec::new();
    for jobs in [1, 4] {
        let bus = EventBus::default();
        let sub = bus.subscribe(1 << 16);
        let out = tiered_tune(&cfg, &cands, &opts(jobs, Some(bus.clone()), None)).unwrap();
        assert!(out.executed > 0);
        let events = sub.drain();
        assert_eq!(sub.dropped(), 0, "ring must be big enough for the whole run");
        let mut keys: Vec<String> =
            events.iter().filter_map(Event::deterministic_key).collect();
        assert!(
            keys.iter().any(|k| k.starts_with("cand ")),
            "expected candidate lifecycle events"
        );
        keys.sort();
        keysets.push(keys);
    }
    assert_eq!(keysets[0], keysets[1], "jobs=1 vs jobs=4 event multiset");
}

/// Attaching the bus and the watchdog perturbs nothing: every
/// decision-bearing field of the outcome is bit-identical to an
/// observability-disabled run — and a clean sweep never trips the
/// watchdog.
#[test]
fn bus_and_watchdog_never_perturb_results() {
    let cfg = MachineConfig::default();
    let cands = gemm_space(&cfg);
    let plain = tiered_tune(&cfg, &cands, &opts(2, None, None)).unwrap();

    let bus = EventBus::default();
    let sub = bus.subscribe(1 << 16);
    let monitor = Arc::new(PoolMonitor::new(MonitorConfig::default(), Some(bus.clone())));
    let watched =
        tiered_tune(&cfg, &cands, &opts(2, Some(bus), Some(monitor.clone()))).unwrap();

    assert_eq!(plain.best, watched.best);
    assert_eq!(plain.cycles, watched.cycles);
    assert_eq!(plain.all_cycles, watched.all_cycles);
    assert_eq!(plain.convergence, watched.convergence);
    assert_eq!(plain.screened, watched.screened);
    assert_eq!(plain.executed, watched.executed);

    // Clean sweep: the 30 s default threshold never fires on
    // millisecond-scale measurements.
    assert!(monitor.stalls().is_empty(), "watchdog fired on a clean sweep");
    assert!(
        !sub.drain().iter().any(|e| matches!(e, Event::StallFlagged { .. })),
        "StallFlagged on a clean sweep"
    );
    // The monitor did account the work, though.
    let items: u64 = monitor.worker_stats().iter().map(|s| s.items).sum();
    assert_eq!(items as usize, watched.executed);
}

/// The fault plan's wedge hook stalls one candidate's host wall (never its
/// simulated cycles); the watchdog flags exactly that candidate, with its
/// span path, and the tuning answer is unchanged.
#[test]
fn watchdog_flags_injected_wedge() {
    let cfg = MachineConfig::default();
    let cands = gemm_space(&cfg);
    let clean = tiered_tune(&cfg, &cands, &opts(2, None, None)).unwrap();
    // Wedge a candidate the ladder certainly measures: the winner.
    let wedge_idx = clean.best;

    let fcfg = MachineConfig { fault: Some(wedge_only(wedge_idx, 300)), ..cfg.clone() };
    let bus = EventBus::default();
    let sub = bus.subscribe(1 << 16);
    let monitor = Arc::new(PoolMonitor::new(
        MonitorConfig {
            stall_after: Duration::from_millis(50),
            poll: Duration::from_millis(10),
        },
        Some(bus.clone()),
    ));
    let wedged =
        tiered_tune(&fcfg, &cands, &opts(2, Some(bus), Some(monitor.clone()))).unwrap();

    // Report-only: the wedge slept host time, the answer is bit-identical.
    assert_eq!(wedged.best, clean.best);
    assert_eq!(wedged.cycles, clean.cycles);

    let stalls = monitor.stalls();
    assert!(
        stalls.iter().any(|s| s.index == wedge_idx),
        "watchdog missed the wedged candidate {wedge_idx}: {stalls:?}"
    );
    let flagged = stalls.iter().find(|s| s.index == wedge_idx).unwrap();
    assert!(flagged.stalled_ms >= 50, "flagged too early: {}", flagged.stalled_ms);
    assert!(!flagged.path.is_empty(), "stall report must carry the span path");
    assert!(
        sub.drain().iter().any(
            |e| matches!(e, Event::StallFlagged { index, .. } if *index == wedge_idx)
        ),
        "StallFlagged event not broadcast"
    );
}

/// One blocking scrape of `http://{addr}/metrics`; returns the body after
/// asserting the status line and exposition content type.
fn scrape(addr: &std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect /metrics");
    // One write_all: the server answers after its first read, so a
    // multi-write request could race its response.
    let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    assert!(head.contains("text/plain; version=0.0.4"), "bad content type: {head}");
    body.to_string()
}

/// Every line of a Prometheus exposition is a comment or `name[{labels}]
/// value` with a finite numeric value.
fn assert_prometheus(body: &str) {
    assert!(!body.is_empty());
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        assert!(series.starts_with("swatop_"), "bad series name in {line:?}");
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        assert!(v.is_finite());
    }
}

/// `/metrics` answers concurrent scrapers with valid exposition text while
/// a sweep is mid-flight, and reflects the sweep's volume once it lands.
#[test]
fn metrics_endpoint_survives_concurrent_scrapes_mid_sweep() {
    let cfg = MachineConfig::default();
    let cands = gemm_space(&cfg);
    let bus = EventBus::default();
    let monitor = Arc::new(PoolMonitor::new(MonitorConfig::default(), Some(bus.clone())));
    let hub = Arc::new(MetricsHub::new(&bus, Some(monitor.clone()), 1 << 14));
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u32;
                while !stop.load(Ordering::Acquire) {
                    assert_prometheus(&scrape(&addr));
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let out = tiered_tune(&cfg, &cands, &opts(4, Some(bus), Some(monitor))).unwrap();
    // One more scrape after the run so the final counters are folded.
    stop.store(true, Ordering::Release);
    let total: u32 = scrapers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "no scrape completed");

    let text = hub.prometheus_text();
    assert_prometheus(&text);
    let measured = text
        .lines()
        .find_map(|l| l.strip_prefix("swatop_candidates_measured_total "))
        .expect("candidates_measured_total series")
        .trim()
        .parse::<f64>()
        .unwrap();
    assert_eq!(measured as usize, out.executed);

    server.shutdown();
}
