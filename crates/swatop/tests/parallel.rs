//! Tier-1 guarantee of the parallel tuning engine: for any worker count,
//! every tuner returns results *bit-identical* to the serial run — same
//! `best`, same `cycles`, same `executed`, same `all_cycles` vector in
//! input order. Determinism is what lets `--jobs N` be the default
//! everywhere without perturbing a single paper table.

use sw26010::MachineConfig;
use swatop::ops::ImplicitConvOp;
use swatop::scheduler::{Candidate, Scheduler};
use swatop::tuner::{blackbox_tune_jobs, model_rank_jobs, model_tune_topk_jobs};
use swtensor::ConvShape;

/// A nontrivial implicit-conv schedule space (the ISSUE floor is 200
/// candidates; this shape enumerates 300+).
fn space(cfg: &MachineConfig) -> Vec<Candidate> {
    let shape = ConvShape::square(32, 64, 64, 16);
    let cands = Scheduler::new(cfg.clone()).enumerate(&ImplicitConvOp::new(shape));
    assert!(
        cands.len() >= 200,
        "need a nontrivial space, got {} candidates",
        cands.len()
    );
    cands
}

#[test]
fn blackbox_is_identical_for_any_job_count() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let serial = blackbox_tune_jobs(&cfg, &cands, 1).expect("serial tune");
    assert_eq!(serial.jobs, 1);
    assert_eq!(serial.executed, cands.len());
    for jobs in [2, 4, 8] {
        let par = blackbox_tune_jobs(&cfg, &cands, jobs).expect("parallel tune");
        assert_eq!(par.best, serial.best, "jobs={jobs}");
        assert_eq!(par.cycles, serial.cycles, "jobs={jobs}");
        assert_eq!(par.executed, serial.executed, "jobs={jobs}");
        assert_eq!(par.all_cycles, serial.all_cycles, "jobs={jobs}");
        assert_eq!(par.jobs, jobs);
    }
}

#[test]
fn model_topk_is_identical_for_any_job_count() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    for k in [1, 3, 8] {
        let serial = model_tune_topk_jobs(&cfg, &cands, k, 1).expect("serial tune");
        for jobs in [2, 4, 8] {
            let par = model_tune_topk_jobs(&cfg, &cands, k, jobs).expect("parallel tune");
            assert_eq!(par.best, serial.best, "k={k} jobs={jobs}");
            assert_eq!(par.cycles, serial.cycles, "k={k} jobs={jobs}");
            assert_eq!(par.executed, serial.executed, "k={k} jobs={jobs}");
            assert_eq!(par.all_cycles, serial.all_cycles, "k={k} jobs={jobs}");
        }
    }
}

#[test]
fn model_ranking_is_identical_for_any_job_count() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let serial = model_rank_jobs(&cfg, &cands, 1);
    assert_eq!(serial.len(), cands.len());
    for jobs in [2, 4, 8] {
        let par = model_rank_jobs(&cfg, &cands, jobs);
        // Scores are f64: require exact equality, not approximate — the
        // parallel path must compute the very same floats.
        assert_eq!(par, serial, "jobs={jobs}");
    }
}

#[test]
fn cpu_time_aggregates_per_candidate_cost() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let out = blackbox_tune_jobs(&cfg, &cands, 2).expect("tune");
    // The serial-equivalent aggregate must be positive; with one host core
    // wall may equal cpu, with more cores wall should not exceed it by much
    // (scheduling noise aside), so only the lower bound is asserted.
    assert!(out.cpu.as_nanos() > 0);
}
