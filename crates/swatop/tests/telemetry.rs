//! Tier-1 guarantees of the telemetry layer:
//!
//! * **disabled = free** — without a recorder the tuners return results
//!   bit-identical to the instrumented run and carry no telemetry;
//! * **span determinism** — the *set* of simulation-derived span facts
//!   (kind, label, candidate index, measured cycles, prediction, counters)
//!   is identical for any `--jobs` value; only wall-clock and worker-track
//!   assignment may differ;
//! * **accuracy coverage** — every executed candidate of a top-k run
//!   contributes one (predicted, measured) pair, including wave members
//!   that lost the pick;
//! * **exporters** — both JSON exports are structurally valid and the
//!   Perfetto export names one thread per worker track.

use sw26010::MachineConfig;
use swatop::ops::ImplicitConvOp;
use swatop::scheduler::{Candidate, Scheduler};
use swatop::telemetry::{validate_json, SpanKind, Telemetry};
use swatop::tuner::{blackbox_tune_opts, model_tune_topk_opts, TuneOptions, TuneOutcome};
use swtensor::ConvShape;

fn space(cfg: &MachineConfig) -> Vec<Candidate> {
    let shape = ConvShape::square(32, 64, 64, 16);
    let cands = Scheduler::new(cfg.clone()).enumerate(&ImplicitConvOp::new(shape));
    assert!(cands.len() >= 200, "need a nontrivial space, got {}", cands.len());
    cands
}

fn opts(jobs: usize, tel: Option<&Telemetry>) -> TuneOptions {
    TuneOptions { jobs, telemetry: tel.cloned(), ..TuneOptions::default() }
}

/// The deterministic projection of a candidate span: everything except
/// wall-clock timing and worker-track assignment.
fn span_facts(tel: &Telemetry) -> Vec<String> {
    let mut facts: Vec<String> = tel
        .spans()
        .iter()
        .map(|s| {
            format!(
                "{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}",
                s.kind, s.label, s.index, s.cycles, s.predicted, s.retries, s.samples, s.error,
                s.counters
            )
        })
        .collect();
    facts.sort();
    facts
}

fn same_outcome(a: &TuneOutcome, b: &TuneOutcome) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.all_cycles, b.all_cycles);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.retried, b.retried);
    assert_eq!(a.reports, b.reports);
}

#[test]
fn disabled_telemetry_is_bit_identical_and_absent() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    for jobs in [1, 4] {
        let tel = Telemetry::new();
        let plain = model_tune_topk_opts(&cfg, &cands, 5, &opts(jobs, None)).unwrap();
        let inst = model_tune_topk_opts(&cfg, &cands, 5, &opts(jobs, Some(&tel))).unwrap();
        same_outcome(&plain, &inst);
        assert!(plain.telemetry.is_none(), "no recorder => no telemetry");
        assert!(inst.telemetry.is_some(), "recorder => condensed telemetry");
    }
}

#[test]
fn span_set_is_identical_for_any_job_count() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let run = |jobs: usize| {
        let tel = Telemetry::new();
        model_tune_topk_opts(&cfg, &cands, 8, &opts(jobs, Some(&tel))).unwrap();
        (span_facts(&tel), tel)
    };
    let (serial, serial_tel) = run(1);
    assert!(!serial.is_empty());
    for jobs in [2, 8] {
        let (par, _) = run(jobs);
        assert_eq!(par, serial, "jobs={jobs}");
    }
    // Serial runs place every candidate span on worker track 0.
    assert!(serial_tel
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Candidate)
        .all(|s| s.track == Some(0)));
}

#[test]
fn every_executed_candidate_feeds_the_accuracy_tracker() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    for k in [1, 3, 8] {
        let tel = Telemetry::new();
        let outcome = model_tune_topk_opts(&cfg, &cands, k, &opts(2, Some(&tel))).unwrap();
        let pairs = tel.pairs();
        // On the fault-free machine nothing fails, so pair count == executed
        // — including top-k wave members that lost the final pick.
        assert_eq!(pairs.len(), outcome.executed, "k={k}");
        let summary = outcome.telemetry.expect("instrumented");
        assert_eq!(summary.pairs, outcome.executed, "k={k}");
        // The winner's measured cycles must appear among the pairs.
        assert!(pairs.iter().any(|p| p.index == outcome.best
            && p.measured == outcome.cycles.get()));
    }
}

#[test]
fn blackbox_records_a_pair_for_the_whole_space() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let tel = Telemetry::new();
    let outcome = blackbox_tune_opts(&cfg, &cands, &opts(4, Some(&tel))).unwrap();
    assert_eq!(outcome.executed, cands.len());
    assert_eq!(tel.pairs().len(), cands.len());
    let summary = outcome.telemetry.expect("instrumented");
    assert!(summary.counters.dma_payload_bytes > 0);
    assert!(summary.counters.kernel_calls > 0);
    // With the whole space measured, rank correlation is well-defined.
    assert!(summary.rank_correlation.is_some());
}

#[test]
fn exporters_are_valid_json_with_one_thread_per_worker() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    let tel = Telemetry::new();
    let sweep = tel.open(SpanKind::Sweep, "test sweep");
    let op_handle = tel.child_of(sweep);
    let op = op_handle.open(SpanKind::Operator, "implicit conv");
    model_tune_topk_opts(&cfg, &cands, 6, &opts(3, Some(&op_handle.child_of(op)))).unwrap();
    op_handle.close(op);
    tel.close(sweep);

    let snapshot = tel.snapshot_json();
    validate_json(&snapshot).expect("snapshot JSON well-formed");
    assert!(snapshot.contains("\"predicted\""));
    assert!(snapshot.contains("\"dma_payload_bytes\""));

    let timeline = tel.perfetto_json();
    validate_json(&timeline).expect("timeline JSON well-formed");
    assert!(timeline.contains("\"traceEvents\""));
    assert!(timeline.contains("\"orchestrator\""));
    // Every worker track that recorded a span gets a thread_name entry.
    let tracks: std::collections::BTreeSet<usize> =
        tel.spans().iter().filter_map(|s| s.track).collect();
    assert!(!tracks.is_empty());
    for w in tracks {
        assert!(
            timeline.contains(&format!("\"worker {w}\"")),
            "missing thread name for worker {w}"
        );
    }
}
