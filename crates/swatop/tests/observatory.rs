//! Determinism guarantees of the performance observatory: derived metrics
//! and bottleneck classes are pure functions of (peaks, cycles, counters),
//! so they must be bit-identical across worker counts, and attaching a
//! telemetry recorder must never change what the tuner picks.

use sw26010::MachineConfig;
use swatop::observatory::{self, Bottleneck, MetricSet, Peaks};
use swatop::ops::ImplicitConvOp;
use swatop::scheduler::{Candidate, Scheduler};
use swatop::telemetry::Telemetry;
use swatop::tuner::{blackbox_tune_opts, model_tune_opts, TuneOptions};

fn space(cfg: &MachineConfig) -> Vec<Candidate> {
    let shape = swtensor::ConvShape::square(32, 64, 64, 16);
    let cands = Scheduler::new(cfg.clone()).enumerate(&ImplicitConvOp::new(shape));
    assert!(cands.len() >= 200, "need a nontrivial space, got {}", cands.len());
    cands
}

fn opts(jobs: usize, tel: Option<&Telemetry>) -> TuneOptions {
    TuneOptions { jobs, telemetry: tel.cloned(), ..TuneOptions::default() }
}

/// Per-candidate (index, metrics, bottleneck) for every executed candidate
/// of an instrumented run, in candidate-index order.
fn attributions(tel: &Telemetry, peaks: &Peaks) -> Vec<(usize, MetricSet, Bottleneck)> {
    let mut out = Vec::new();
    for g in tel.rollups() {
        for c in &g.candidates {
            if let Some(cycles) = c.measured {
                let a = observatory::attribute(peaks, cycles, &c.counters);
                out.push((c.index, a.metrics, a.bottleneck));
            }
        }
    }
    out.sort_by_key(|(i, _, _)| *i);
    out
}

#[test]
fn metrics_and_bottlenecks_identical_across_job_counts() {
    let cfg = MachineConfig::default();
    let peaks = Peaks::of(&cfg);
    let cands = space(&cfg);

    let tel1 = Telemetry::new();
    let serial = blackbox_tune_opts(&cfg, &cands, &opts(1, Some(&tel1))).expect("serial");
    let base = attributions(&tel1, &peaks);
    assert_eq!(base.len(), cands.len(), "blackbox executes everything");
    assert!(base.iter().any(|(_, m, _)| m.get("achieved_gflops").unwrap() > 0.0));

    for jobs in [2, 8] {
        let tel = Telemetry::new();
        let par = blackbox_tune_opts(&cfg, &cands, &opts(jobs, Some(&tel))).expect("parallel");
        assert_eq!(par.best, serial.best, "jobs={jobs}");
        assert_eq!(par.cycles, serial.cycles, "jobs={jobs}");
        let got = attributions(&tel, &peaks);
        assert_eq!(got.len(), base.len(), "jobs={jobs}");
        for ((bi, bm, bb), (gi, gm, gb)) in base.iter().zip(&got) {
            assert_eq!(bi, gi, "jobs={jobs}");
            assert_eq!(bb, gb, "jobs={jobs} candidate {bi}");
            // Bit-identical, not approximately equal: metrics derive from
            // integer counters through the same float expressions.
            for (name, v) in bm.iter() {
                let w = gm.get(name).unwrap();
                assert_eq!(
                    v.to_bits(),
                    w.to_bits(),
                    "jobs={jobs} candidate {bi} metric {name}: {v} vs {w}"
                );
            }
        }
    }
}

#[test]
fn overlap_efficiency_is_derived_bounded_and_exported() {
    let cfg = MachineConfig::default();
    let peaks = Peaks::of(&cfg);
    let counters = sw26010::Counters {
        flops: 1_000_000,
        kernel_cycles: 40_000,
        dma_bus_bytes: 500_000,
        dma_stall_cycles: 2_000,
        ..Default::default()
    };
    let m = observatory::derive(&peaks, 50_000, &counters);
    let v = m.get("overlap_efficiency").expect("metric in schema");
    assert!((0.0..=1.0).contains(&v), "overlap_efficiency out of range: {v}");
    assert!(v > 0.0, "partial overlap must register: {v}");
    assert!(m.to_json().contains("\"overlap_efficiency\":"));
    assert!(m.prometheus_text(&[]).contains("swatop_overlap_efficiency"));
    // No hideable traffic at all counts as perfectly overlapped.
    let idle = observatory::derive(&peaks, 1_000, &sw26010::Counters::default());
    assert_eq!(idle.get("overlap_efficiency"), Some(1.0));
}

#[test]
fn bottleneck_mix_on_outcome_matches_recount_across_jobs() {
    let cfg = MachineConfig::default();
    let peaks = Peaks::of(&cfg);
    let cands = space(&cfg);
    let mut mixes = Vec::new();
    for jobs in [1, 2, 8] {
        let tel = Telemetry::new();
        let outcome = model_tune_opts(&cfg, &cands, &opts(jobs, Some(&tel))).expect("tune");
        let summary = outcome.telemetry.expect("instrumented run carries telemetry");
        assert!(summary.mix.total() > 0, "jobs={jobs}: executed candidates were classified");
        assert_eq!(summary.mix.total(), outcome.executed - outcome.failed, "jobs={jobs}");
        assert_eq!(summary.mix, tel.bottleneck_mix(&peaks), "jobs={jobs}");
        mixes.push(summary.mix);
    }
    assert_eq!(mixes[0], mixes[1]);
    assert_eq!(mixes[0], mixes[2]);
}

#[test]
fn telemetry_attachment_does_not_change_tuning() {
    let cfg = MachineConfig::default();
    let cands = space(&cfg);
    for jobs in [1, 4] {
        let bare = model_tune_opts(&cfg, &cands, &opts(jobs, None)).expect("bare");
        assert!(bare.telemetry.is_none());
        let tel = Telemetry::new();
        let instrumented =
            model_tune_opts(&cfg, &cands, &opts(jobs, Some(&tel))).expect("instrumented");
        assert_eq!(instrumented.best, bare.best, "jobs={jobs}");
        assert_eq!(instrumented.cycles, bare.cycles, "jobs={jobs}");
        assert_eq!(instrumented.executed, bare.executed, "jobs={jobs}");
        assert_eq!(instrumented.all_cycles, bare.all_cycles, "jobs={jobs}");
    }
}
