//! Property-based tests for the framework: random schedule points of a
//! random matmul shape must compute the right answer, optimizer passes
//! must never change results, fault streams must be pure functions of
//! their keys, and checkpoints must round-trip exactly.

use proptest::prelude::*;
use sw26010::{Cycles, FaultPlan, MachineConfig};
use swatop::ops::tiling::{DimTiles, PadMode};
use swatop::ops::{verify_candidate, MatmulOp};
use swatop::optimizer::boundary::round_up;
use swatop::scheduler::{Operator, Scheduler};
use swatop::tuner::checkpoint::{self, CandCell, Checkpoint};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid schedule point of any (small, possibly unaligned) matmul
    /// computes the correct product — boundary machinery, layouts and
    /// vectorisation choices included.
    #[test]
    fn random_matmul_schedules_are_correct(
        m in 8usize..130,
        n in 8usize..130,
        k in 4usize..80,
        point_seed in 0usize..10_000,
        traditional: bool,
    ) {
        let cfg = MachineConfig::default();
        let op = if traditional {
            MatmulOp::new(m, n, k).with_pad_mode(PadMode::Traditional)
        } else {
            MatmulOp::new(m, n, k)
        };
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let point = space.point(point_seed % space.size());
        if let Some(cand) = sched.lower_point(&op, &space, &point) {
            let err = verify_candidate(&cfg, &op, &cand).unwrap();
            prop_assert!(
                err < 1e-2,
                "m={m} n={n} k={k} {}: err {err}",
                point.describe(&space)
            );
        }
    }

    /// The prefetch pass never changes results, only timing — and never
    /// makes the schedule slower.
    #[test]
    fn prefetch_preserves_results_and_helps(
        m in 8usize..100, n in 8usize..100, k in 8usize..64, point_seed in 0usize..10_000,
    ) {
        let cfg = MachineConfig::default();
        let op = MatmulOp::new(m, n, k);
        let space = op.space();
        let point = space.point(point_seed % space.size());
        let with_pf = Scheduler::new(cfg.clone());
        let mut without_pf = Scheduler::new(cfg.clone());
        without_pf.enable_prefetch = false;
        let (Some(a), Some(b)) = (
            with_pf.lower_point(&op, &space, &point),
            without_pf.lower_point(&op, &space, &point),
        ) else {
            return Ok(());
        };
        let ea = verify_candidate(&cfg, &op, &a).unwrap();
        let eb = verify_candidate(&cfg, &op, &b).unwrap();
        prop_assert!(ea < 1e-2 && eb < 1e-2);
        let ca = swatop::tuner::run_candidate(&cfg, &a).unwrap();
        let cb = swatop::tuner::run_candidate(&cfg, &b).unwrap();
        prop_assert!(ca <= cb, "prefetched {ca} slower than baseline {cb}");
    }

    /// Tiling invariants: full tiles plus the true tail cover the
    /// dimension exactly; padded tails are aligned and minimal.
    #[test]
    fn dim_tiles_cover(len in 1usize..2000, tile_pow in 0usize..5, align_pow in 0usize..3) {
        let align = 8 << align_pow;           // 8, 16, 32
        let tile = align * (1 << tile_pow);   // aligned tile
        let d = DimTiles::new(len, tile, align);
        prop_assert_eq!(d.full * d.tile + d.tail, len);
        prop_assert_eq!(d.padded_len() % align, 0);
        prop_assert!(d.padded_len() >= len);
        prop_assert!(d.padded_len() < len + align);
        for s in d.segs() {
            // Every segment's kernel size satisfies the alignment.
            prop_assert_eq!(s.size % align, 0, "{:?}", d);
            prop_assert!(s.count >= 1);
        }
        // The tail segment (if any) starts where the full tiles end.
        if d.tail > 0 {
            let segs = d.segs();
            let tail_seg = segs.last().unwrap();
            prop_assert_eq!(tail_seg.start, d.full * d.tile);
            prop_assert!(tail_seg.size >= d.tail);
            prop_assert_eq!(tail_seg.aux, !d.tail.is_multiple_of(align));
        }
    }

    /// round_up is the least aligned value ≥ n.
    #[test]
    fn round_up_minimal(n in 0usize..10_000, align_pow in 0usize..6) {
        let align = 1usize << (align_pow + 2);
        let r = round_up(n, align);
        prop_assert!(r >= n && r.is_multiple_of(align) && r < n + align);
    }
}

/// One arbitrary candidate cell, covering all three states and arbitrary
/// (unicode, control-character) error strings.
fn cand_cell() -> impl Strategy<Value = CandCell> {
    prop_oneof![
        Just(CandCell::Pending),
        (any::<u64>(), 0u32..100, 1u32..10).prop_map(|(cycles, retries, samples)| {
            CandCell::Done { cycles, retries, samples }
        }),
        (".{0,40}", 0u32..100)
            .prop_map(|(error, retries)| CandCell::Failed { error, retries }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fault stream is a pure function of `(seed, run, attempt)`:
    /// re-deriving a session replays it bit-for-bit, whatever the knobs.
    #[test]
    fn fault_sessions_replay_exactly(
        seed: u64,
        run: u64,
        attempt in 0u32..16,
        dma_ppm in 0u32..200_000,
        pressure_ppm in 0u32..1_000_000,
        steal in 0u32..999,
        jitter in 0u32..999,
    ) {
        let plan = FaultPlan {
            seed,
            dma_fail_ppm: dma_ppm,
            spm_pressure_ppm: pressure_ppm,
            spm_steal_max_permille: steal,
            jitter_permille: jitter,
            wedge_run: None,
            wedge_ms: 0,
        };
        let mut a = plan.session(run, attempt);
        let mut b = plan.session(run, attempt);
        prop_assert_eq!(a.spm_stolen_permille(), b.spm_stolen_permille());
        prop_assert_eq!(a.spm_capacity(16_384), b.spm_capacity(16_384));
        for _ in 0..64 {
            prop_assert_eq!(a.dma_fault(), b.dma_fault());
            prop_assert_eq!(a.jitter(Cycles(1 << 20)), b.jitter(Cycles(1 << 20)));
        }
    }

    /// Jitter is a bounded multiplicative perturbation: the observed count
    /// stays within ±j per-mille of the true count for any magnitude.
    #[test]
    fn jitter_stays_within_its_envelope(
        seed: u64,
        c in 1u64..u64::MAX / 2_000,
        jitter in 0u32..999,
    ) {
        let plan = FaultPlan { jitter_permille: jitter, ..FaultPlan::with_seed(seed) };
        let mut s = plan.session(0, 0);
        let lo = (c as i128 * (1000 - i128::from(jitter)) / 1000) as u64;
        let hi = (c as i128 * (1000 + i128::from(jitter)) / 1000) as u64;
        for _ in 0..32 {
            let got = s.jitter(Cycles(c)).get();
            prop_assert!((lo..=hi).contains(&got), "{got} outside [{lo}, {hi}]");
        }
        let mut quiet = plan;
        quiet.jitter_permille = 0;
        prop_assert_eq!(quiet.session(0, 0).jitter(Cycles(c)), Cycles(c));
    }

    /// A checkpoint survives render → parse bit-exactly, for any cell mix
    /// and any fingerprint.
    #[test]
    fn checkpoint_round_trips(
        fingerprint: u64,
        cells in prop::collection::vec(cand_cell(), 0..50),
    ) {
        let text = checkpoint::render(fingerprint, &cells);
        let parsed = checkpoint::parse(&text);
        prop_assert_eq!(parsed, Ok(Checkpoint { fingerprint, cells }));
    }
}
