//! Property-based tests for the framework: random schedule points of a
//! random matmul shape must compute the right answer, and optimizer passes
//! must never change results.

use proptest::prelude::*;
use sw26010::MachineConfig;
use swatop::ops::tiling::{DimTiles, PadMode};
use swatop::ops::{verify_candidate, MatmulOp};
use swatop::optimizer::boundary::round_up;
use swatop::scheduler::{Operator, Scheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid schedule point of any (small, possibly unaligned) matmul
    /// computes the correct product — boundary machinery, layouts and
    /// vectorisation choices included.
    #[test]
    fn random_matmul_schedules_are_correct(
        m in 8usize..130,
        n in 8usize..130,
        k in 4usize..80,
        point_seed in 0usize..10_000,
        traditional: bool,
    ) {
        let cfg = MachineConfig::default();
        let op = if traditional {
            MatmulOp::new(m, n, k).with_pad_mode(PadMode::Traditional)
        } else {
            MatmulOp::new(m, n, k)
        };
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let point = space.point(point_seed % space.size());
        if let Some(cand) = sched.lower_point(&op, &space, &point) {
            let err = verify_candidate(&cfg, &op, &cand).unwrap();
            prop_assert!(
                err < 1e-2,
                "m={m} n={n} k={k} {}: err {err}",
                point.describe(&space)
            );
        }
    }

    /// The prefetch pass never changes results, only timing — and never
    /// makes the schedule slower.
    #[test]
    fn prefetch_preserves_results_and_helps(
        m in 8usize..100, n in 8usize..100, k in 8usize..64, point_seed in 0usize..10_000,
    ) {
        let cfg = MachineConfig::default();
        let op = MatmulOp::new(m, n, k);
        let space = op.space();
        let point = space.point(point_seed % space.size());
        let with_pf = Scheduler::new(cfg.clone());
        let mut without_pf = Scheduler::new(cfg.clone());
        without_pf.enable_prefetch = false;
        let (Some(a), Some(b)) = (
            with_pf.lower_point(&op, &space, &point),
            without_pf.lower_point(&op, &space, &point),
        ) else {
            return Ok(());
        };
        let ea = verify_candidate(&cfg, &op, &a).unwrap();
        let eb = verify_candidate(&cfg, &op, &b).unwrap();
        prop_assert!(ea < 1e-2 && eb < 1e-2);
        let ca = swatop::tuner::run_candidate(&cfg, &a).unwrap();
        let cb = swatop::tuner::run_candidate(&cfg, &b).unwrap();
        prop_assert!(ca <= cb, "prefetched {ca} slower than baseline {cb}");
    }

    /// Tiling invariants: full tiles plus the true tail cover the
    /// dimension exactly; padded tails are aligned and minimal.
    #[test]
    fn dim_tiles_cover(len in 1usize..2000, tile_pow in 0usize..5, align_pow in 0usize..3) {
        let align = 8 << align_pow;           // 8, 16, 32
        let tile = align * (1 << tile_pow);   // aligned tile
        let d = DimTiles::new(len, tile, align);
        prop_assert_eq!(d.full * d.tile + d.tail, len);
        prop_assert_eq!(d.padded_len() % align, 0);
        prop_assert!(d.padded_len() >= len);
        prop_assert!(d.padded_len() < len + align);
        for s in d.segs() {
            // Every segment's kernel size satisfies the alignment.
            prop_assert_eq!(s.size % align, 0, "{:?}", d);
            prop_assert!(s.count >= 1);
        }
        // The tail segment (if any) starts where the full tiles end.
        if d.tail > 0 {
            let segs = d.segs();
            let tail_seg = segs.last().unwrap();
            prop_assert_eq!(tail_seg.start, d.full * d.tile);
            prop_assert!(tail_seg.size >= d.tail);
            prop_assert_eq!(tail_seg.aux, d.tail % align != 0);
        }
    }

    /// round_up is the least aligned value ≥ n.
    #[test]
    fn round_up_minimal(n in 0usize..10_000, align_pow in 0usize..6) {
        let align = 1usize << (align_pow + 2);
        let r = round_up(n, align);
        prop_assert!(r >= n && r % align == 0 && r < n + align);
    }
}
