//! DMA-wall schedule dimensions: functional equivalence and determinism.
//!
//! The four new dimensions (double buffering, transaction coalescing,
//! register-broadcast tiling, SPM-resident reuse) change *when and how*
//! bytes move, never *which* bytes arrive: a schedule with any combination
//! of them enabled must produce bit-identical output to the plain schedule,
//! and tuning over the enlarged space must stay bit-identical across
//! worker counts.

use proptest::prelude::*;
use sw26010::{CoreGroup, ExecMode, MachineConfig};
use swatop::interp::{execute, instantiate};
use swatop::ops::matmul::{lower_matmul_body, MatmulKnobs, Resident};
use swatop::ops::tiling::PadMode;
use swatop::ops::{DmaKnobs, MatmulOp};
use swatop::scheduler::{Operator, Scheduler};
use swatop::tuner::{blackbox_tune_opts, TuneOptions};
use swatop_ir::{MemRole, Program, SpmSlot, Stmt};

/// Base knob set the equivalence tests perturb.
fn base_knobs(t_m: usize, t_n: usize, t_k: usize) -> MatmulKnobs {
    MatmulKnobs {
        t_m,
        t_n,
        t_k,
        a_col: false,
        b_col: false,
        vec_m: false,
        n_outer: false,
        dma: DmaKnobs::default(),
        resident: Resident::None,
    }
}

/// Lower, optimize, plan and *functionally* execute one matmul schedule,
/// returning the exact output buffer (`None` when the knobs are
/// inapplicable to the shape). The optimizer runs with prefetching enabled,
/// so the program's own hints decide which DMA-wall passes apply.
fn run_matmul(
    cfg: &MachineConfig,
    m: usize,
    n: usize,
    k: usize,
    knobs: &MatmulKnobs,
) -> Option<(Vec<f32>, Program)> {
    let mut p = Program::new(format!("mm_{m}x{n}x{k}"));
    let a = p.mem_buf("A", m * k, MemRole::Input);
    let b = p.mem_buf("B", k * n, MemRole::Input);
    let c = p.mem_buf("C", m * n, MemRole::Output);
    let body = lower_matmul_body(&mut p, knobs, a, b, c, m, n, k, PadMode::Lightweight)?;
    p.body = Stmt::seq(body);
    let opt = swatop::optimizer::optimize(p, true);
    let exe = swatop::codegen::plan(opt, cfg).ok()?;
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::Functional);
    let binding = instantiate(&mut cg, &exe);
    let inputs = [
        swtensor::init::random_vec(m * k, 0xA),
        swtensor::init::random_vec(k * n, 0xB),
    ];
    let input_ids = exe.program.bufs_with_role(MemRole::Input);
    assert_eq!(input_ids.len(), 2);
    for (id, data) in input_ids.iter().zip(&inputs) {
        cg.mem.write(binding.bufs[id.0], 0, data).unwrap();
    }
    execute(&mut cg, &exe, &binding).ok()?;
    let out_ids = exe.program.bufs_with_role(MemRole::Output);
    let program = exe.program.clone();
    Some((cg.mem.buffer(binding.bufs[out_ids[0].0]).to_vec(), program))
}

/// Whether the planned program contains a double-buffered DMA.
fn has_double_slot(body: &Stmt) -> bool {
    let mut found = false;
    body.visit(&mut |s| {
        if let Stmt::DmaCpe(d) = s {
            if matches!(d.spm, SpmSlot::Double { .. }) {
                found = true;
            }
        }
    });
    found
}

/// Whether the planned program contains a packed-staging transform.
fn has_pack_tiles(p: &Program) -> bool {
    let mut found = false;
    p.body.visit(&mut |s| {
        if let Stmt::Transform(t) = s {
            if matches!(t.kind, swatop_ir::TransformKind::PackTiles { .. }) {
                found = true;
            }
        }
    });
    found
}

#[test]
fn double_buffered_gemm_matches_single_buffered_exactly() {
    let cfg = MachineConfig::default();
    let (m, n, k) = (96, 96, 96);
    let plain = base_knobs(32, 32, 16);
    let mut dbuf = plain;
    dbuf.dma.dbuf = true;
    let (out_plain, prog_plain) = run_matmul(&cfg, m, n, k, &plain).expect("plain runs");
    let (out_dbuf, prog_dbuf) = run_matmul(&cfg, m, n, k, &dbuf).expect("dbuf runs");
    assert!(!has_double_slot(&prog_plain.body), "dbuf off ⇒ no double slots");
    assert!(has_double_slot(&prog_dbuf.body), "dbuf on ⇒ prefetched schedule");
    assert_eq!(out_plain, out_dbuf, "double buffering changed the result");
}

#[test]
fn broadcast_and_resident_match_plain_exactly() {
    let cfg = MachineConfig::default();
    let (m, n, k) = (96, 96, 96);
    let plain = base_knobs(32, 32, 16);
    let (out_plain, _) = run_matmul(&cfg, m, n, k, &plain).expect("plain runs");

    let mut bcast = plain;
    bcast.dma.bcast = true;
    let (out_bcast, _) = run_matmul(&cfg, m, n, k, &bcast).expect("bcast runs");
    assert_eq!(out_plain, out_bcast, "broadcast tiling changed the result");

    // Resident A pairs with mn order, resident B with nm.
    let mut res_a = plain;
    res_a.resident = Resident::A;
    let (out_a, _) = run_matmul(&cfg, m, n, k, &res_a).expect("resident-a runs");
    assert_eq!(out_plain, out_a, "resident-A reuse changed the result");

    let mut res_b = plain;
    res_b.n_outer = true;
    res_b.resident = Resident::B;
    let (out_b, _) = run_matmul(&cfg, m, n, k, &res_b).expect("resident-b runs");
    assert_eq!(out_plain, out_b, "resident-B reuse changed the result");
}

#[test]
fn new_dimensions_are_bit_identical_across_job_counts() {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(64, 64, 32);
    let space = op.space();
    for knob in ["dbuf", "coal", "bcast", "resident"] {
        assert!(space.has_knob(knob), "matmul space exposes {knob}");
    }
    let all = Scheduler::new(cfg.clone()).enumerate(&op);
    // A strided sample keeps the blackbox run fast while still crossing
    // every new dimension (the stride is coprime with the knob arities).
    let cands: Vec<_> = all.iter().step_by(29).cloned().collect();
    assert!(cands.len() >= 64, "need a nontrivial sample, got {}", cands.len());
    assert!(
        cands.iter().any(|c| c.describe.contains("dbuf=true")),
        "sample crosses the dbuf dimension"
    );
    let serial = blackbox_tune_opts(&cfg, &cands, &TuneOptions::default()).expect("serial");
    for jobs in [2, 4] {
        let par = blackbox_tune_opts(&cfg, &cands, &TuneOptions::with_jobs(jobs))
            .expect("parallel");
        assert_eq!(par.best, serial.best, "jobs={jobs}");
        assert_eq!(par.cycles, serial.cycles, "jobs={jobs}");
        assert_eq!(par.all_cycles, serial.all_cycles, "jobs={jobs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The coalescer never changes the bytes delivered to SPM: any shape,
    /// any base knob set, output is bit-identical with coalescing on/off.
    #[test]
    fn coalescer_preserves_delivered_bytes(
        m in 8usize..100,
        n in 8usize..100,
        k in 8usize..64,
        t_sel in 0usize..4,
        dbuf: bool,
    ) {
        let cfg = MachineConfig::default();
        let tiles = [(32, 32, 8), (32, 32, 16), (32, 64, 16), (64, 32, 8)];
        let (t_m, t_n, t_k) = tiles[t_sel];
        let mut plain = base_knobs(t_m, t_n, t_k);
        plain.dma.dbuf = dbuf;
        let mut coal = plain;
        coal.dma.coalesce = true;
        let (Some((out_plain, _)), Some((out_coal, prog_coal))) = (
            run_matmul(&cfg, m, n, k, &plain),
            run_matmul(&cfg, m, n, k, &coal),
        ) else {
            return Ok(());
        };
        prop_assert_eq!(&out_plain, &out_coal, "m={} n={} k={}", m, n, k);
        // The knob must actually bite on strided fetches wider than one
        // tile row (otherwise the pass correctly leaves the program alone).
        if n > t_n && k > t_k {
            prop_assert!(has_pack_tiles(&prog_coal), "coalesce selected but no PackTiles");
        }
    }

    /// All four dimensions enabled at once still compute the exact same
    /// bytes as the plain schedule.
    #[test]
    fn all_dimensions_combined_preserve_results(
        m in 8usize..100,
        n in 8usize..100,
        k in 8usize..64,
        n_outer: bool,
    ) {
        let cfg = MachineConfig::default();
        let mut plain = base_knobs(32, 32, 16);
        plain.n_outer = n_outer;
        let mut full = plain;
        full.dma = DmaKnobs { dbuf: true, coalesce: true, bcast: true };
        full.resident = if n_outer { Resident::B } else { Resident::A };
        let (Some((out_plain, _)), Some((out_full, _))) = (
            run_matmul(&cfg, m, n, k, &plain),
            run_matmul(&cfg, m, n, k, &full),
        ) else {
            return Ok(());
        };
        prop_assert_eq!(&out_plain, &out_full, "m={} n={} k={}", m, n, k);
    }
}
