//! The scheduler (paper Sec. 4.3): enumerate the schedule space, lower each
//! valid strategy to IR, run the IR optimizer, and hand the candidates to
//! the autotuner.
//!
//! Validity filtering happens in two places, mirroring the paper: the
//! operator lowering itself rejects points whose factors violate kernel
//! constraints (mesh divisibility, vector alignment), and the code
//! generator's SPM planner rejects points whose working set exceeds the
//! 64 KB scratch pad — double buffering included, since prefetching doubles
//! the streamed buffers.

use sw26010::MachineConfig;
use swatop_dsl::{SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{Program, SpmSlot, Stmt};

use crate::codegen::{plan, Executable};
use crate::optimizer;

/// An operator that swATOP can tune: a schedule seed, a schedule space, and
/// a lowering from schedule points to IR.
pub trait Operator {
    /// Operator name (used in reports).
    fn name(&self) -> String;

    /// The DSL schedule seed (computation description).
    fn seed(&self) -> Seed;

    /// The DSL schedule space.
    fn space(&self) -> ScheduleSpace;

    /// Lower one schedule point to un-optimized IR. `None` marks the point
    /// invalid (factor combination violates a kernel or capacity rule that
    /// is cheaper to check here than to discover in `plan`).
    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program>;

    /// Deterministic input data for each `Input`-role buffer, in
    /// declaration order (used by functional verification).
    fn input_data(&self, program: &Program) -> Vec<Vec<f32>>;

    /// Golden output for the given inputs (row-major in the output buffer's
    /// declared layout).
    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32>;

    /// FLOPs of the operator (direct-convolution-normalised for convs).
    fn flops(&self) -> u64;
}

/// One lowered, optimized, plannable schedule strategy.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index of the schedule point within the space.
    pub point_index: usize,
    /// Human-readable knob assignment.
    pub describe: String,
    /// IR after DMA inference but *before* prefetching — the form the
    /// static performance model evaluates.
    pub raw: Program,
    /// Fully optimized executable (prefetched + SPM-planned).
    pub exe: Executable,
    /// Whether double buffering was applied (decides the overlap formula).
    pub prefetched: bool,
}

/// The scheduler: enumerates and lowers an operator's schedule space.
pub struct Scheduler {
    pub cfg: MachineConfig,
    /// Disable the prefetch pass (for the Fig. 10 ablation).
    pub enable_prefetch: bool,
}

impl Scheduler {
    pub fn new(cfg: MachineConfig) -> Self {
        Scheduler { cfg, enable_prefetch: true }
    }

    /// Enumerate all valid candidates of `op`'s space.
    pub fn enumerate(&self, op: &dyn Operator) -> Vec<Candidate> {
        let space = op.space();
        let mut out = Vec::new();
        for point in space.points() {
            if let Some(c) = self.lower_point(op, &space, &point) {
                out.push(c);
            }
        }
        out
    }

    /// Lower a single point (returns `None` if the point is invalid).
    pub fn lower_point(
        &self,
        op: &dyn Operator,
        space: &ScheduleSpace,
        point: &SchedulePoint,
    ) -> Option<Candidate> {
        let program = op.lower(space, point)?;
        let raw = optimizer::optimize(program.clone(), false);
        // Capacity check on the *raw* form first (cheap reject).
        plan(raw.clone(), &self.cfg).ok()?;
        let opt = if self.enable_prefetch {
            optimizer::optimize(program, true)
        } else {
            raw.clone()
        };
        let exe = match plan(opt, &self.cfg) {
            Ok(exe) => exe,
            // Double buffering blew the SPM budget: fall back to the
            // un-prefetched schedule rather than dropping the point.
            Err(_) => plan(raw.clone(), &self.cfg).ok()?,
        };
        let prefetched = has_double_slot(&exe.program.body);
        Some(Candidate {
            point_index: point.index(space),
            describe: point.describe(space),
            raw,
            exe,
            prefetched,
        })
    }
}

fn has_double_slot(stmt: &Stmt) -> bool {
    let mut found = false;
    stmt.visit(&mut |s| {
        let check = |slot: &SpmSlot| matches!(slot, SpmSlot::Double { .. });
        match s {
            Stmt::DmaCpe(d) if check(&d.spm) => found = true,
            Stmt::Gemm(g)
                if check(&g.a.slot) || check(&g.b.slot) || check(&g.c.slot) =>
            {
                found = true
            }
            _ => {}
        }
    });
    found
}
