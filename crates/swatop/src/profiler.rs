//! Candidate microscope: cycle-resolved profiles, schedule diffing and the
//! search-trajectory feature corpus.
//!
//! Three consumers of the same substrate live here:
//!
//! * [`profile_candidate`] — re-run one enumerated candidate cost-only with
//!   tracing enabled and fold the event stream into a
//!   [`Timeline`](sw26010::profile::Timeline) (per-engine busy intervals,
//!   prologue/steady/epilogue phases), paired with the machine counters and
//!   roofline bottleneck. Exported as a `profile` JSON artifact and as
//!   Perfetto slice/counter tracks.
//! * [`diff`] — align two candidate profiles of the same operator
//!   phase-by-phase and attribute the cycle delta to the schedule knobs
//!   that changed (dbuf / coal / bcast / residency / tiles) — the "why is
//!   B faster than A" answer the tuner's scalar ranking cannot give.
//! * [`corpus_text`] — harvest every evaluated candidate of a telemetry-
//!   instrumented sweep into a schema-versioned JSONL feature corpus
//!   (schedule knobs + machine counters + measured cycles + bottleneck):
//!   the training set for the future learned cost model (ROADMAP item 2).
//!
//! All outputs are bit-deterministic: rows are sorted by `(operator,
//! candidate index)` — candidate spans are *recorded* in worker-completion
//! order, which races across `--jobs` — and no wall-clock field is ever
//! written.

use std::fmt::Write as _;

use sw26010::json::{escape_json, fmt_f64};
use sw26010::profile::{PhaseKind, Timeline};
use sw26010::trace::Trace;
use sw26010::{Counters, CoreGroup, Cycles, ExecMode, MachineConfig, MachineResult};

use crate::interp::{execute, instantiate};
use crate::observatory::{classify, Bottleneck, Peaks};
use crate::scheduler::Candidate;
use crate::telemetry::Telemetry;

/// Event budget for profiling runs: generous enough for every op shape in
/// the bench suite; the `truncated` flag still guards the pathological case.
pub const PROFILE_TRACE_CAP: usize = 1_000_000;

/// Schema version stamped on the first line of every corpus file.
pub const CORPUS_SCHEMA: u64 = 1;

/// The fixed counter column order of corpus rows (must match
/// [`counter_values`]).
pub const COUNTER_COLUMNS: [&str; 15] = [
    "dma_payload_bytes",
    "dma_bus_bytes",
    "dma_batches",
    "dma_stall_cycles",
    "dma_waits",
    "kernel_calls",
    "kernel_cycles",
    "flops",
    "compute_cycles",
    "issue_p0",
    "issue_p1",
    "regcomm_broadcasts",
    "dma_bcast_batches",
    "regcomm_bytes",
    "spm_high_water_elems",
];

/// The counters in [`COUNTER_COLUMNS`] order.
pub fn counter_values(c: &Counters) -> [u64; 15] {
    [
        c.dma_payload_bytes,
        c.dma_bus_bytes,
        c.dma_batches,
        c.dma_stall_cycles,
        c.dma_waits,
        c.kernel_calls,
        c.kernel_cycles,
        c.flops,
        c.compute_cycles,
        c.issue_p0,
        c.issue_p1,
        c.regcomm_broadcasts,
        c.dma_bcast_batches,
        c.regcomm_bytes,
        c.spm_high_water_elems,
    ]
}

/// A cycle-resolved profile of one enumerated candidate.
#[derive(Debug, Clone)]
pub struct CandidateProfile {
    /// Operator label (e.g. `gemm_1024`).
    pub operator: String,
    /// Index of the candidate in the enumerated schedule list.
    pub index: usize,
    /// Knob assignment (`SchedulePoint::describe`).
    pub describe: String,
    /// Measured cycles — same measurement as the tuner (`execute` +
    /// `kernel_signal`), so profiles are comparable to sweep results.
    pub cycles: Cycles,
    /// Machine counters of the profiled execution.
    pub counters: Counters,
    /// Roofline bottleneck class of the profiled execution.
    pub bottleneck: Bottleneck,
    /// Per-engine activity timeline with phase segmentation. Note the
    /// timeline horizon excludes the constant `kernel_signal` launch tax
    /// (no machine event spans it).
    pub timeline: Timeline,
}

/// Re-run `cand` cost-only with tracing enabled and build its profile.
///
/// Faults are stripped from the config: a profile answers "where do this
/// schedule's cycles go", which fault jitter would only blur.
pub fn profile_candidate(
    cfg: &MachineConfig,
    operator: &str,
    index: usize,
    cand: &Candidate,
) -> MachineResult<CandidateProfile> {
    let mut clean = cfg.clone();
    clean.fault = None;
    let mut cg = CoreGroup::new(clean.clone(), ExecMode::CostOnly);
    cg.trace = Trace::enabled(PROFILE_TRACE_CAP);
    let binding = instantiate(&mut cg, &cand.exe);
    let cycles = execute(&mut cg, &cand.exe, &binding)? + clean.kernel_signal;
    let timeline = Timeline::build(&cg.trace);
    let peaks = Peaks::of(&clean);
    let bottleneck = classify(&peaks, cycles.get(), &cg.counters);
    Ok(CandidateProfile {
        operator: operator.to_string(),
        index,
        describe: cand.describe.clone(),
        cycles,
        counters: cg.counters,
        bottleneck,
        timeline,
    })
}

/// The `profile` JSON artifact: candidate identity + measurement + knobs +
/// the full timeline. Deterministic bytes.
pub fn profile_json(p: &CandidateProfile) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"profile_schema\":1,\"operator\":\"{}\",\"candidate\":{},\
         \"schedule\":\"{}\",\"cycles\":{},\"bottleneck\":\"{}\",\"knobs\":{{",
        escape_json(&p.operator),
        p.index,
        escape_json(&p.describe),
        p.cycles.get(),
        p.bottleneck.name()
    );
    for (i, (k, v)) in parse_knobs(&p.describe).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), knob_json(v));
    }
    out.push_str("},\"counters\":{");
    for (i, (name, v)) in
        COUNTER_COLUMNS.iter().zip(counter_values(&p.counters)).enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    let _ = write!(out, "}},\"timeline\":{}}}", p.timeline.to_json());
    out
}

/// Perfetto export of one profile (slice + counter tracks, candidate span
/// labelled with the knob assignment).
pub fn profile_perfetto(p: &CandidateProfile, clock_ghz: f64) -> String {
    let label = format!("{} #{} [{}]", p.operator, p.index, p.describe);
    p.timeline.to_perfetto_json(clock_ghz, &label)
}

/// Parse a `SchedulePoint::describe` string ("k=v, k=v, …") into ordered
/// knob pairs. Pairs without `=` are skipped (describe never emits them).
pub fn parse_knobs(describe: &str) -> Vec<(String, String)> {
    describe
        .split(',')
        .filter_map(|part| {
            let part = part.trim();
            let (k, v) = part.split_once('=')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

/// Render a knob value as JSON: numbers and booleans pass through bare,
/// choice strings are quoted.
fn knob_json(v: &str) -> String {
    if v.parse::<u64>().is_ok() || v == "true" || v == "false" {
        v.to_string()
    } else {
        format!("\"{}\"", escape_json(v))
    }
}

/// One knob that differs between the two diffed candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnobDelta {
    pub name: String,
    /// Value in candidate A (`"-"` if the knob is absent there).
    pub a: String,
    /// Value in candidate B.
    pub b: String,
}

/// Per-phase cycle attribution of the delta between two candidates.
#[derive(Debug, Clone)]
pub struct PhaseDelta {
    pub kind: PhaseKind,
    pub a_cycles: u64,
    pub b_cycles: u64,
    pub a_stall: u64,
    pub b_stall: u64,
    pub a_overlap: u64,
    pub b_overlap: u64,
}

impl PhaseDelta {
    /// Signed phase-duration change B − A (negative = B faster here).
    pub fn delta(&self) -> i64 {
        self.b_cycles as i64 - self.a_cycles as i64
    }
}

/// The aligned diff of two candidate profiles of the same operator.
#[derive(Debug, Clone)]
pub struct ScheduleDiff {
    pub operator: String,
    pub a_index: usize,
    pub b_index: usize,
    pub a_cycles: u64,
    pub b_cycles: u64,
    /// Per-phase attribution. The three phase deltas sum exactly to the
    /// timeline-horizon delta (phases partition each timeline).
    pub phases: Vec<PhaseDelta>,
    /// Knobs whose values differ between A and B.
    pub knobs: Vec<KnobDelta>,
    /// Human-readable attribution lines connecting changed knobs to the
    /// engine/phase metrics they moved.
    pub commentary: Vec<String>,
}

impl ScheduleDiff {
    /// Total signed delta B − A in measured cycles.
    pub fn delta(&self) -> i64 {
        self.b_cycles as i64 - self.a_cycles as i64
    }
}

/// Knob-specific commentary: what machine effect each changed knob had,
/// read off the two timelines.
fn knob_commentary(k: &KnobDelta, a: &CandidateProfile, b: &CandidateProfile) -> String {
    let stall = |p: &CandidateProfile| p.timeline.stall_cycles();
    let overlap = |p: &CandidateProfile| p.timeline.overlap_cycles();
    let dma = |p: &CandidateProfile| p.timeline.dma_busy();
    let base = format!("{} {} -> {}: ", k.name, k.a, k.b);
    match k.name.as_str() {
        "dbuf" | "dma" => format!(
            "{base}stall {} -> {} cycles, dma/compute overlap {} -> {} cycles",
            stall(a),
            stall(b),
            overlap(a),
            overlap(b)
        ),
        "coal" => format!(
            "{base}dma busy {} -> {} cycles, bus bytes {} -> {}",
            dma(a),
            dma(b),
            a.counters.dma_bus_bytes,
            b.counters.dma_bus_bytes
        ),
        "bcast" => format!(
            "{base}dma busy {} -> {} cycles, regcomm scatter {} -> {} cycles, bus bytes {} -> {}",
            dma(a),
            dma(b),
            a.timeline.regcomm_cycles(),
            b.timeline.regcomm_cycles(),
            a.counters.dma_bus_bytes,
            b.counters.dma_bus_bytes
        ),
        "resident" => format!(
            "{base}prologue dma {} -> {} cycles, dma batches {} -> {}",
            a.timeline.phase(PhaseKind::Prologue).dma_busy,
            b.timeline.phase(PhaseKind::Prologue).dma_busy,
            a.counters.dma_batches,
            b.counters.dma_batches
        ),
        _ => format!(
            "{base}compute busy {} -> {} cycles, dma busy {} -> {} cycles",
            a.timeline.compute_busy(),
            b.timeline.compute_busy(),
            dma(a),
            dma(b)
        ),
    }
}

/// Align two profiles phase-by-phase and attribute the delta.
pub fn diff(a: &CandidateProfile, b: &CandidateProfile) -> ScheduleDiff {
    let phases = [PhaseKind::Prologue, PhaseKind::Steady, PhaseKind::Epilogue]
        .into_iter()
        .map(|kind| {
            let (pa, pb) = (a.timeline.phase(kind), b.timeline.phase(kind));
            PhaseDelta {
                kind,
                a_cycles: pa.cycles(),
                b_cycles: pb.cycles(),
                a_stall: pa.stall,
                b_stall: pb.stall,
                a_overlap: pa.overlap,
                b_overlap: pb.overlap,
            }
        })
        .collect();
    let ka = parse_knobs(&a.describe);
    let kb = parse_knobs(&b.describe);
    let mut knobs = Vec::new();
    for (name, va) in &ka {
        let vb = kb.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
        match vb {
            Some(vb) if vb != *va => {
                knobs.push(KnobDelta { name: name.clone(), a: va.clone(), b: vb })
            }
            Some(_) => {}
            None => knobs.push(KnobDelta {
                name: name.clone(),
                a: va.clone(),
                b: "-".to_string(),
            }),
        }
    }
    for (name, vb) in &kb {
        if !ka.iter().any(|(n, _)| n == name) {
            knobs.push(KnobDelta {
                name: name.clone(),
                a: "-".to_string(),
                b: vb.clone(),
            });
        }
    }
    let commentary = knobs.iter().map(|k| knob_commentary(k, a, b)).collect();
    ScheduleDiff {
        operator: a.operator.clone(),
        a_index: a.index,
        b_index: b.index,
        a_cycles: a.cycles.get(),
        b_cycles: b.cycles.get(),
        phases,
        knobs,
        commentary,
    }
}

/// Render a diff as a human-readable report (the `profile --diff` output).
pub fn diff_report(d: &ScheduleDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule diff: {} candidate #{} vs #{}",
        d.operator, d.a_index, d.b_index
    );
    let _ = writeln!(
        out,
        "  cycles: {} -> {} ({:+} = {:+.2}%)",
        d.a_cycles,
        d.b_cycles,
        d.delta(),
        if d.a_cycles == 0 { 0.0 } else { 100.0 * d.delta() as f64 / d.a_cycles as f64 }
    );
    let _ = writeln!(out, "  phase attribution (B - A):");
    for p in &d.phases {
        let _ = writeln!(
            out,
            "    {:<9} {:>12} -> {:>12}  {:+10}  (stall {} -> {}, overlap {} -> {})",
            p.kind.name(),
            p.a_cycles,
            p.b_cycles,
            p.delta(),
            p.a_stall,
            p.b_stall,
            p.a_overlap,
            p.b_overlap
        );
    }
    if d.knobs.is_empty() {
        let _ = writeln!(out, "  knobs: identical schedules");
    } else {
        let _ = writeln!(out, "  changed knobs:");
        for line in &d.commentary {
            let _ = writeln!(out, "    {line}");
        }
    }
    out
}

/// Deterministic JSON rendering of a diff (machine-readable artifact).
pub fn diff_json(d: &ScheduleDiff) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"diff_schema\":1,\"operator\":\"{}\",\"a\":{},\"b\":{},\
         \"a_cycles\":{},\"b_cycles\":{},\"delta\":{},\"phases\":[",
        escape_json(&d.operator),
        d.a_index,
        d.b_index,
        d.a_cycles,
        d.b_cycles,
        d.delta()
    );
    for (i, p) in d.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"a_cycles\":{},\"b_cycles\":{},\"delta\":{},\
             \"a_stall\":{},\"b_stall\":{},\"a_overlap\":{},\"b_overlap\":{}}}",
            p.kind.name(),
            p.a_cycles,
            p.b_cycles,
            p.delta(),
            p.a_stall,
            p.b_stall,
            p.a_overlap,
            p.b_overlap
        );
    }
    out.push_str("],\"knobs\":[");
    for (i, k) in d.knobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"a\":\"{}\",\"b\":\"{}\"}}",
            escape_json(&k.name),
            escape_json(&k.a),
            escape_json(&k.b)
        );
    }
    out.push_str("]}");
    out
}

/// One row of the feature corpus: an evaluated candidate with its schedule
/// knobs, machine counters, measurement and bottleneck class.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    pub operator: String,
    pub index: usize,
    pub describe: String,
    pub predicted: Option<f64>,
    pub measured: u64,
    pub bottleneck: Bottleneck,
    pub counters: Counters,
}

/// Extract one corpus row per *measured* candidate from a telemetry-
/// instrumented sweep, sorted by `(operator, candidate index)` so the
/// output is independent of worker scheduling.
pub fn feature_rows(tel: &Telemetry, peaks: &Peaks) -> Vec<FeatureRow> {
    let mut rows: Vec<FeatureRow> = Vec::new();
    for rollup in tel.rollups() {
        for c in &rollup.candidates {
            let Some(measured) = c.measured else { continue };
            rows.push(FeatureRow {
                operator: rollup.label.clone(),
                index: c.index,
                describe: c.label.clone(),
                predicted: c.predicted,
                measured,
                bottleneck: classify(peaks, measured, &c.counters),
                counters: c.counters,
            });
        }
    }
    rows.sort_by(|x, y| x.operator.cmp(&y.operator).then(x.index.cmp(&y.index)));
    rows
}

/// Render rows as the corpus JSONL file: a schema header line, then one
/// JSON object per row. Byte-deterministic (no wall-clock fields; fixed
/// column order; rows pre-sorted by [`feature_rows`]).
pub fn corpus_text(rows: &[FeatureRow]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"corpus_schema\":{CORPUS_SCHEMA},\"counter_columns\":[");
    for (i, c) in COUNTER_COLUMNS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{c}\"");
    }
    let _ = writeln!(out, "],\"rows\":{}}}", rows.len());
    for r in rows {
        let _ = write!(
            out,
            "{{\"op\":\"{}\",\"index\":{},\"measured_cycles\":{},\"predicted\":{},\
             \"bottleneck\":\"{}\",\"knobs\":{{",
            escape_json(&r.operator),
            r.index,
            r.measured,
            r.predicted.map_or_else(|| "null".to_string(), fmt_f64),
            r.bottleneck.name()
        );
        for (i, (k, v)) in parse_knobs(&r.describe).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(k), knob_json(v));
        }
        out.push_str("},\"counters\":[");
        for (i, v) in counter_values(&r.counters).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::MatmulOp;
    use crate::scheduler::Scheduler;

    fn profiles() -> (CandidateProfile, CandidateProfile) {
        let cfg = MachineConfig::default();
        let op = MatmulOp::new(64, 64, 64);
        let cands = Scheduler::new(cfg.clone()).enumerate(&op);
        // Pick a dbuf-off/dbuf-on pair with otherwise identical knobs.
        let off = cands
            .iter()
            .find(|c| c.describe.contains("dbuf=false"))
            .expect("space has a dbuf=false point");
        let on = cands
            .iter()
            .find(|c| {
                c.describe.contains("dbuf=true")
                    && parse_knobs(&c.describe)
                        .iter()
                        .filter(|(k, _)| k != "dbuf")
                        .all(|(k, v)| {
                            parse_knobs(&off.describe).iter().any(|(k2, v2)| k2 == k && v2 == v)
                        })
            })
            .expect("space has the matching dbuf=true point");
        let off_i = cands.iter().position(|c| std::ptr::eq(c, off)).unwrap();
        let on_i = cands.iter().position(|c| std::ptr::eq(c, on)).unwrap();
        let a = profile_candidate(&cfg, "mm64", off_i, off).unwrap();
        let b = profile_candidate(&cfg, "mm64", on_i, on).unwrap();
        (a, b)
    }

    #[test]
    fn profile_measurement_matches_tuner() {
        let cfg = MachineConfig::default();
        let op = MatmulOp::new(64, 64, 64);
        let cands = Scheduler::new(cfg.clone()).enumerate(&op);
        let p = profile_candidate(&cfg, "mm64", 0, &cands[0]).unwrap();
        let tuner_cycles = crate::tuner::run_candidate(&cfg, &cands[0]).unwrap();
        assert_eq!(p.cycles, tuner_cycles, "profiling must not perturb the measurement");
        assert!(!p.timeline.truncated);
        assert!(p.timeline.total > 0);
    }

    #[test]
    fn parse_knobs_roundtrips_describe() {
        let knobs = parse_knobs("t_m=8, layout=blocked, dbuf=true");
        assert_eq!(
            knobs,
            vec![
                ("t_m".into(), "8".into()),
                ("layout".into(), "blocked".into()),
                ("dbuf".into(), "true".into())
            ]
        );
        assert!(parse_knobs("").is_empty());
    }

    #[test]
    fn diff_attributes_dbuf_to_stall_and_overlap() {
        let (a, b) = profiles();
        let d = diff(&a, &b);
        assert_eq!(d.knobs.len(), 1, "only dbuf differs: {:?}", d.knobs);
        assert_eq!(d.knobs[0].name, "dbuf");
        // Double buffering hides transfers: overlap must grow.
        assert!(
            b.timeline.overlap_cycles() > a.timeline.overlap_cycles(),
            "dbuf=true should overlap dma with compute"
        );
        let report = diff_report(&d);
        assert!(report.contains("dbuf false -> true"), "{report}");
        assert!(report.contains("phase attribution"), "{report}");
        // Phase deltas sum to the timeline-horizon delta.
        let phase_sum: i64 = d.phases.iter().map(PhaseDelta::delta).sum();
        assert_eq!(
            phase_sum,
            b.timeline.total as i64 - a.timeline.total as i64,
            "phases partition each timeline"
        );
        crate::telemetry::validate_json(&diff_json(&d)).unwrap();
    }

    #[test]
    fn profile_json_is_valid_and_deterministic() {
        let (a, _) = profiles();
        let j1 = profile_json(&a);
        let j2 = profile_json(&a);
        assert_eq!(j1, j2);
        crate::telemetry::validate_json(&j1).unwrap();
        assert!(j1.contains("\"profile_schema\":1"));
        assert!(j1.contains("\"truncated\":false"));
        assert!(j1.contains("\"dbuf\":false"));
    }

    #[test]
    fn corpus_renders_header_and_sorted_rows() {
        let rows = vec![
            FeatureRow {
                operator: "b_op".into(),
                index: 1,
                describe: "t_m=8, dbuf=true".into(),
                predicted: Some(123.5),
                measured: 1000,
                bottleneck: Bottleneck::Dma,
                counters: Counters::default(),
            },
            FeatureRow {
                operator: "a_op".into(),
                index: 2,
                describe: "t_m=4, layout=rowmajor".into(),
                predicted: None,
                measured: 900,
                bottleneck: Bottleneck::Compute,
                counters: Counters::default(),
            },
        ];
        let text = corpus_text(&rows);
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        crate::telemetry::validate_json(header).unwrap();
        assert!(header.contains("\"corpus_schema\":1"));
        assert!(header.contains("\"rows\":2"));
        for line in lines {
            crate::telemetry::validate_json(line).unwrap();
        }
        assert_eq!(text.lines().count(), 3, "header + 2 rows");
        assert!(text.contains("\"predicted\":null"));
        assert!(text.contains("\"layout\":\"rowmajor\""));
    }
}
