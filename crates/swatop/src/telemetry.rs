//! Tuning telemetry: spans, machine counters and model-accuracy tracking.
//!
//! The tuners are observable through three coordinated instruments:
//!
//! 1. **Spans** — a lightweight hierarchical recorder (sweep → operator →
//!    candidate → attempt). Every span carries wall-clock timing, an
//!    optional worker *track*, the simulated cycle count and the aggregated
//!    [`Counters`] of the execution it covers. Spans export to Perfetto /
//!    Chrome trace-event JSON ([`Telemetry::perfetto_json`]) with one
//!    timeline track per tuner worker.
//! 2. **Machine counters** — each candidate span absorbs the
//!    [`sw26010::Counters`] block its cost-only machine accumulated (DMA
//!    payload/bus traffic, stall cycles, pipeline issue slots, SPM
//!    high-water mark), turning "why is this variant slow" into a readable
//!    roofline-style breakdown.
//! 3. **Model accuracy** — every executed candidate contributes a
//!    (predicted, measured) cycle pair; per-operator MAPE and Spearman rank
//!    correlation summarize them (a live Fig. 9), and candidates the model
//!    misranks beyond a threshold are flagged.
//!
//! The layer is **zero-cost when disabled**: the tuners take
//! `Option<&Telemetry>` and the `None` path performs no allocation, no
//! locking and no arithmetic beyond the unconditional counter adds already
//! inside the machine model — tuning results are bit-identical either way.
//! A [`Telemetry`] handle is cheap to clone (an `Arc` plus two small
//! `Option`s) and thread-safe; worker threads append spans concurrently
//! under a mutex that is only touched at candidate granularity, never
//! inside the simulated execution.
//!
//! Exports are hand-rolled JSON in the same spirit as
//! [`checkpoint`](crate::tuner::checkpoint): no serde dependency, strings
//! escaped through [`sw26010::json::escape_json`], floats emitted
//! as plain decimals (`null` when non-finite), and a small structural
//! validator ([`validate_json`]) used by the test suite and the CI smoke
//! leg.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sw26010::json::escape_json;
use sw26010::Counters;

use crate::observatory::{self, BottleneckMix, Peaks};

pub mod bus;
pub mod metrics;

/// Identifier of a recorded span (index into the span table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub usize);

/// Hierarchy level of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A whole multi-operator sweep (e.g. every layer of a network).
    Sweep,
    /// Tuning one operator (one candidate space).
    Operator,
    /// Measuring one candidate schedule.
    Candidate,
    /// One execution attempt of a candidate (retries produce several).
    Attempt,
    /// Validating a prospective winner (static legality + differential
    /// functional check); an `error` on the span means it was quarantined.
    Validate,
    /// Tier-0 analytic screening of a whole candidate space (batch cost
    /// ranking, no scoreboard); `samples` carries the number of candidates
    /// screened.
    Screen,
}

impl SpanKind {
    fn name(self) -> &'static str {
        match self {
            SpanKind::Sweep => "sweep",
            SpanKind::Operator => "operator",
            SpanKind::Candidate => "candidate",
            SpanKind::Attempt => "attempt",
            SpanKind::Validate => "validate",
            SpanKind::Screen => "screen",
        }
    }
}

/// One recorded span. Wall-clock fields are microseconds since the
/// recorder's epoch; they vary run to run, while the simulation-derived
/// fields (`cycles`, `predicted`, `counters`, `index`, `retries`,
/// `samples`, `error`) are deterministic for a fixed machine and candidate
/// set, independent of worker count.
#[derive(Debug, Clone)]
pub struct Span {
    pub parent: Option<SpanId>,
    pub kind: SpanKind,
    pub label: String,
    /// Worker track the span ran on (`None` = orchestrator).
    pub track: Option<usize>,
    pub start_us: u64,
    /// Duration; 0 until the span is closed.
    pub dur_us: u64,
    /// Simulated cycles of the covered execution, if any.
    pub cycles: Option<u64>,
    /// Input index of the candidate this span measures.
    pub index: Option<usize>,
    /// Model-predicted cycles for the candidate, if it was scored.
    pub predicted: Option<f64>,
    /// Transient retries consumed.
    pub retries: u32,
    /// Successful measurement samples taken.
    pub samples: u32,
    /// Terminal error, if the covered work failed.
    pub error: Option<String>,
    /// Machine counters aggregated over the covered execution.
    pub counters: Counters,
}

/// One (predicted, measured) observation feeding the accuracy tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair {
    /// Operator span the observation belongs to (`None` = root).
    pub scope: Option<SpanId>,
    /// Candidate input index.
    pub index: usize,
    /// Model-predicted cycles.
    pub predicted: f64,
    /// Measured (simulated) cycles.
    pub measured: u64,
}

#[derive(Default)]
struct State {
    spans: Vec<Span>,
    pairs: Vec<Pair>,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// Handle to a shared telemetry recorder. Cloning is cheap; clones carry a
/// *scope* (the parent span new spans attach to) and a *track* (the worker
/// lane they render on), both adjusted functionally via
/// [`Telemetry::child_of`] / [`Telemetry::on_track`].
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
    parent: Option<SpanId>,
    track: Option<usize>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("parent", &self.parent)
            .field("track", &self.track)
            .field("spans", &self.inner.state.lock().spans.len())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner { epoch: Instant::now(), state: Mutex::new(State::default()) }),
            parent: None,
            track: None,
        }
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// A handle whose new spans attach under `id`.
    pub fn child_of(&self, id: SpanId) -> Telemetry {
        Telemetry { inner: Arc::clone(&self.inner), parent: Some(id), track: self.track }
    }

    /// A handle whose new spans render on worker track `w`.
    pub fn on_track(&self, w: usize) -> Telemetry {
        Telemetry { inner: Arc::clone(&self.inner), parent: self.parent, track: Some(w) }
    }

    /// The worker track of this handle, if pinned.
    pub fn track(&self) -> Option<usize> {
        self.track
    }

    /// The parent span new spans of this handle attach to.
    pub fn scope(&self) -> Option<SpanId> {
        self.parent
    }

    /// Open a span under this handle's scope; close it with
    /// [`Telemetry::close`].
    pub fn open(&self, kind: SpanKind, label: impl Into<String>) -> SpanId {
        let start_us = self.now_us();
        let mut st = self.inner.state.lock();
        st.spans.push(Span {
            parent: self.parent,
            kind,
            label: label.into(),
            track: self.track,
            start_us,
            dur_us: 0,
            cycles: None,
            index: None,
            predicted: None,
            retries: 0,
            samples: 0,
            error: None,
            counters: Counters::default(),
        });
        SpanId(st.spans.len() - 1)
    }

    /// Close a span, fixing its wall-clock duration.
    pub fn close(&self, id: SpanId) {
        let now = self.now_us();
        let mut st = self.inner.state.lock();
        if let Some(s) = st.spans.get_mut(id.0) {
            s.dur_us = now.saturating_sub(s.start_us);
        }
    }

    /// Mutate a recorded span in place (fill cycles, counters, errors…).
    pub fn update(&self, id: SpanId, f: impl FnOnce(&mut Span)) {
        let mut st = self.inner.state.lock();
        if let Some(s) = st.spans.get_mut(id.0) {
            f(s);
        }
    }

    /// Record a (predicted, measured) accuracy observation under this
    /// handle's scope.
    pub fn record_pair(&self, index: usize, predicted: f64, measured: u64) {
        let scope = self.parent;
        self.inner.state.lock().pairs.push(Pair { scope, index, predicted, measured });
    }

    /// Snapshot of all recorded spans (indexed by [`SpanId`]).
    pub fn spans(&self) -> Vec<Span> {
        self.inner.state.lock().spans.clone()
    }

    /// Snapshot of all accuracy observations.
    pub fn pairs(&self) -> Vec<Pair> {
        self.inner.state.lock().pairs.clone()
    }

    /// Machine counters merged over every candidate span.
    pub fn totals(&self) -> Counters {
        let st = self.inner.state.lock();
        let mut total = Counters::default();
        for s in &st.spans {
            if s.kind == SpanKind::Candidate {
                total.merge(&s.counters);
            }
        }
        total
    }

    /// Accuracy summary of the observations recorded under `scope`
    /// (`None` = pairs recorded at the root). `None` when the scope has no
    /// observations.
    pub fn accuracy_for(&self, scope: Option<SpanId>) -> Option<Accuracy> {
        let st = self.inner.state.lock();
        let pairs: Vec<Pair> = st.pairs.iter().filter(|p| p.scope == scope).copied().collect();
        drop(st);
        if pairs.is_empty() {
            return None;
        }
        Some(Accuracy::from_pairs(scope, pairs))
    }

    /// Accuracy summaries for every scope that recorded observations, in
    /// first-observation order.
    pub fn accuracy(&self) -> Vec<Accuracy> {
        let st = self.inner.state.lock();
        let mut scopes: Vec<Option<SpanId>> = Vec::new();
        for p in &st.pairs {
            if !scopes.contains(&p.scope) {
                scopes.push(p.scope);
            }
        }
        let all = st.pairs.clone();
        drop(st);
        scopes
            .into_iter()
            .map(|scope| {
                let pairs = all.iter().filter(|p| p.scope == scope).copied().collect();
                Accuracy::from_pairs(scope, pairs)
            })
            .collect()
    }

    /// Group candidate spans under their operator span (or a synthetic
    /// "(root)" group), with merged counters and the scope's accuracy
    /// summary. This is the structure the JSON snapshot and the summary
    /// tables render.
    pub fn rollups(&self) -> Vec<OperatorRollup> {
        let spans = self.spans();
        let mut groups: Vec<(Option<SpanId>, OperatorRollup)> = Vec::new();
        // Operator spans first, in recording order, so empty operators
        // still appear.
        for (i, s) in spans.iter().enumerate() {
            if s.kind == SpanKind::Operator {
                groups.push((
                    Some(SpanId(i)),
                    OperatorRollup {
                        scope: Some(SpanId(i)),
                        label: s.label.clone(),
                        wall_us: s.dur_us,
                        candidates: Vec::new(),
                        counters: Counters::default(),
                        accuracy: None,
                    },
                ));
            }
        }
        for s in spans.iter().filter(|s| s.kind == SpanKind::Candidate) {
            let key = s.parent.filter(|p| {
                spans.get(p.0).is_some_and(|ps| ps.kind == SpanKind::Operator)
            });
            let group = match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g,
                None => {
                    groups.push((
                        key,
                        OperatorRollup {
                            scope: key,
                            label: "(root)".to_string(),
                            wall_us: 0,
                            candidates: Vec::new(),
                            counters: Counters::default(),
                            accuracy: None,
                        },
                    ));
                    &mut groups.last_mut().expect("just pushed").1
                }
            };
            group.counters.merge(&s.counters);
            group.candidates.push(CandidateRow {
                index: s.index.unwrap_or(usize::MAX),
                label: s.label.clone(),
                predicted: s.predicted,
                measured: s.cycles,
                retries: s.retries,
                samples: s.samples,
                error: s.error.clone(),
                wall_us: s.dur_us,
                track: s.track,
                counters: s.counters,
            });
        }
        let mut out: Vec<OperatorRollup> = groups.into_iter().map(|(_, g)| g).collect();
        for g in &mut out {
            g.candidates.sort_by_key(|a| a.index);
            g.accuracy = self.accuracy_for(g.scope);
        }
        out
    }

    /// Condensed per-tune summary for [`TuneOutcome`](crate::tuner::TuneOutcome).
    pub fn tune_summary(&self, scope: Option<SpanId>, counters: Counters) -> TuneTelemetry {
        let acc = self.accuracy_for(scope);
        TuneTelemetry {
            counters,
            pairs: acc.as_ref().map_or(0, |a| a.pairs.len()),
            mape_pct: acc.as_ref().and_then(|a| a.mape_pct),
            rank_correlation: acc.as_ref().and_then(|a| a.rank_correlation),
            misranked: acc.as_ref().map_or(0, |a| a.misranked.len()),
            quarantined: 0,
            mix: BottleneckMix::default(),
        }
    }

    /// Bottleneck class counts over every executed candidate span, classified
    /// against the machine's roofline peaks. Deterministic: derived purely
    /// from per-candidate cycles + counters.
    pub fn bottleneck_mix(&self, peaks: &Peaks) -> BottleneckMix {
        let mut mix = BottleneckMix::default();
        for s in self.spans() {
            if s.kind == SpanKind::Candidate {
                if let Some(cycles) = s.cycles {
                    mix.note(observatory::classify(peaks, cycles, &s.counters));
                }
            }
        }
        mix
    }

    /// Structured metrics snapshot (hand-rolled JSON): per-operator
    /// candidate tables with (predicted, measured) pairs and counters,
    /// accuracy summaries, and whole-run counter totals.
    pub fn snapshot_json(&self) -> String {
        self.snapshot_json_with(None)
    }

    /// [`Telemetry::snapshot_json`] enriched with the observatory: when
    /// `peaks` is given, every measured candidate additionally carries an
    /// `"observatory"` object (the full derived-metric schema plus its
    /// bottleneck class) and the top level gains a `"bottleneck_mix"`
    /// object. With `peaks = None` the output is byte-identical to
    /// [`Telemetry::snapshot_json`].
    pub fn snapshot_json_with(&self, peaks: Option<&Peaks>) -> String {
        let mut out = String::from("{\"v\":1,\"operators\":[");
        for (gi, g) in self.rollups().iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"wall_us\":{},\"counters\":{},",
                escape_json(&g.label),
                g.wall_us,
                counters_json(&g.counters)
            ));
            match &g.accuracy {
                Some(a) => out.push_str(&format!(
                    "\"accuracy\":{{\"pairs\":{},\"mape_pct\":{},\
                     \"rank_correlation\":{},\"misranked\":[{}]}},",
                    a.pairs.len(),
                    float_json(a.mape_pct),
                    float_json(a.rank_correlation),
                    a.misranked
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )),
                None => out.push_str("\"accuracy\":null,"),
            }
            out.push_str("\"candidates\":[");
            for (ci, c) in g.candidates.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                let obs = match (peaks, c.measured) {
                    (Some(p), Some(cycles)) => {
                        let a = observatory::attribute(p, cycles, &c.counters);
                        format!(
                            ",\"observatory\":{{\"bottleneck\":\"{}\",\"metrics\":{}}}",
                            a.bottleneck.name(),
                            a.metrics.to_json()
                        )
                    }
                    _ => String::new(),
                };
                out.push_str(&format!(
                    "{{\"index\":{},\"label\":\"{}\",\"predicted\":{},\
                     \"measured\":{},\"retries\":{},\"samples\":{},\
                     \"error\":{},\"wall_us\":{},\"track\":{},\"counters\":{}{obs}}}",
                    c.index,
                    escape_json(&c.label),
                    float_json(c.predicted),
                    c.measured.map_or_else(|| "null".to_string(), |m| m.to_string()),
                    c.retries,
                    c.samples,
                    c.error.as_ref().map_or_else(
                        || "null".to_string(),
                        |e| format!("\"{}\"", escape_json(e))
                    ),
                    c.wall_us,
                    c.track.map_or_else(|| "null".to_string(), |t| t.to_string()),
                    counters_json(&c.counters)
                ));
            }
            out.push_str("]}");
        }
        out.push_str(&format!("],\"totals\":{}", counters_json(&self.totals())));
        // Winner-validation outcomes: Validate spans with an error are
        // quarantined winners (the error is the rejection reason).
        let spans = self.spans();
        let quarantines = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Validate && s.error.is_some())
            .count();
        out.push_str(&format!(",\"quarantines\":{quarantines}"));
        // Tier ladder volume: tier-0 analytic screenings (samples on Screen
        // spans), tier-1 scoreboard measurements (Candidate spans), tier-2
        // winner validations. Deterministic — derived from the span set.
        let screened: u64 = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Screen)
            .map(|s| u64::from(s.samples))
            .sum();
        let measured = spans.iter().filter(|s| s.kind == SpanKind::Candidate).count();
        let validated = spans.iter().filter(|s| s.kind == SpanKind::Validate).count();
        out.push_str(&format!(
            ",\"tiers\":{{\"screened\":{screened},\"measured\":{measured},\
             \"validated\":{validated}}}"
        ));
        // Shared-cache observability. Process-global counters, approximate
        // under concurrency — never compared byte-for-byte across runs.
        out.push_str(&format!(",\"caches\":{}", caches_json()));
        if let Some(p) = peaks {
            let mix = self.bottleneck_mix(p);
            out.push_str(&format!(
                ",\"bottleneck_mix\":{{\"dma\":{},\"compute\":{},\"stall\":{},\
                 \"spm_capacity\":{}}}",
                mix.dma, mix.compute, mix.stall, mix.spm_capacity
            ));
        }
        out.push('}');
        out
    }

    /// Perfetto / Chrome trace-event JSON of the whole tuning run: one
    /// timeline track per worker (tid `w + 1`) plus an orchestrator track
    /// (tid 0) for sweep/operator spans. Loadable in `ui.perfetto.dev` or
    /// `chrome://tracing`.
    pub fn perfetto_json(&self) -> String {
        self.perfetto_json_with(None)
    }

    /// [`Telemetry::perfetto_json`] enriched with the observatory: when
    /// `peaks` is given, every measured candidate span's `args` additionally
    /// carry its bottleneck class and headline roofline percentages, so the
    /// attribution is visible directly in the Perfetto UI. With
    /// `peaks = None` the output is byte-identical to
    /// [`Telemetry::perfetto_json`].
    pub fn perfetto_json_with(&self, peaks: Option<&Peaks>) -> String {
        let spans = self.spans();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut tracks: Vec<Option<usize>> = Vec::new();
        for s in &spans {
            if !tracks.contains(&s.track) {
                tracks.push(s.track);
            }
            let tid = s.track.map_or(0, |w| w + 1);
            let mut args = format!("\"kind\":\"{}\"", s.kind.name());
            if let Some(c) = s.cycles {
                args.push_str(&format!(",\"cycles\":{c}"));
            }
            if let Some(p) = s.predicted {
                args.push_str(&format!(",\"predicted_cycles\":{}", float_json(Some(p))));
            }
            if let Some(i) = s.index {
                args.push_str(&format!(",\"index\":{i}"));
            }
            if let Some(e) = &s.error {
                args.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
            }
            if s.kind == SpanKind::Candidate {
                // The candidate label *is* its schedule-point description
                // (knob=value list) — mirror it into args so trace tooling
                // can filter on schedule knobs without parsing span names.
                args.push_str(&format!(",\"schedule\":\"{}\"", escape_json(&s.label)));
                args.push_str(&format!(",\"counters\":{}", counters_json(&s.counters)));
                if let (Some(p), Some(cycles)) = (peaks, s.cycles) {
                    let a = observatory::attribute(p, cycles, &s.counters);
                    let pct = |name: &str| {
                        float_json(Some(a.metrics.get(name).unwrap_or(0.0)))
                    };
                    args.push_str(&format!(
                        ",\"bottleneck\":\"{}\",\"pct_peak_gflops\":{},\
                         \"pct_peak_dma_bw\":{},\"pct_roofline\":{}",
                        a.bottleneck.name(),
                        pct("pct_peak_gflops"),
                        pct("pct_peak_dma_bw"),
                        pct("pct_roofline")
                    ));
                }
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                escape_json(&s.label),
                s.start_us,
                s.dur_us.max(1)
            ));
        }
        tracks.sort_by_key(|t| t.map_or(0, |w| w + 1));
        for t in tracks {
            let (tid, name) = match t {
                None => (0, "orchestrator".to_string()),
                Some(w) => (w + 1, format!("worker {w}")),
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(&name)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Per-operator model-accuracy summary over its (predicted, measured)
/// pairs: the live Fig. 9.
#[derive(Debug, Clone)]
pub struct Accuracy {
    /// Operator span the summary covers (`None` = root scope).
    pub scope: Option<SpanId>,
    /// The observations, in recording order.
    pub pairs: Vec<Pair>,
    /// Mean absolute percentage error of predicted vs measured cycles.
    pub mape_pct: Option<f64>,
    /// Spearman rank correlation between the predicted and measured
    /// orderings (`None` below 2 pairs or when an ordering is constant).
    pub rank_correlation: Option<f64>,
    /// Candidate indices whose predicted rank is displaced from their
    /// measured rank by more than [`Accuracy::rank_threshold`].
    pub misranked: Vec<usize>,
    /// Rank-displacement tolerance: `max(1, n/4)`.
    pub rank_threshold: usize,
}

impl Accuracy {
    fn from_pairs(scope: Option<SpanId>, pairs: Vec<Pair>) -> Accuracy {
        let obs: Vec<(f64, f64)> =
            pairs.iter().map(|p| (p.predicted, p.measured as f64)).collect();
        let mape_pct = mape(&obs);
        let rank_correlation = rank_correlation(&obs);
        let threshold = (pairs.len() / 4).max(1);
        let pr = ranks(&obs.iter().map(|o| o.0).collect::<Vec<_>>());
        let mr = ranks(&obs.iter().map(|o| o.1).collect::<Vec<_>>());
        let misranked: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| (pr[i] - mr[i]).abs() > threshold as f64)
            .map(|(_, p)| p.index)
            .collect();
        Accuracy { scope, pairs, mape_pct, rank_correlation, misranked, rank_threshold: threshold }
    }
}

/// One candidate row of an [`OperatorRollup`].
#[derive(Debug, Clone)]
pub struct CandidateRow {
    pub index: usize,
    pub label: String,
    pub predicted: Option<f64>,
    pub measured: Option<u64>,
    pub retries: u32,
    pub samples: u32,
    pub error: Option<String>,
    pub wall_us: u64,
    pub track: Option<usize>,
    pub counters: Counters,
}

/// Candidate spans grouped under their operator span.
#[derive(Debug, Clone)]
pub struct OperatorRollup {
    pub scope: Option<SpanId>,
    pub label: String,
    pub wall_us: u64,
    pub candidates: Vec<CandidateRow>,
    /// Counters merged over the operator's candidates.
    pub counters: Counters,
    pub accuracy: Option<Accuracy>,
}

/// Condensed telemetry carried on a
/// [`TuneOutcome`](crate::tuner::TuneOutcome): counter totals and the
/// model-accuracy headline numbers of one tuning run.
#[derive(Debug, Clone, Default)]
pub struct TuneTelemetry {
    /// Machine counters merged over every executed candidate.
    pub counters: Counters,
    /// (predicted, measured) observations recorded.
    pub pairs: usize,
    /// Mean absolute percentage error of the model on those pairs.
    pub mape_pct: Option<f64>,
    /// Spearman rank correlation of predicted vs measured orderings.
    pub rank_correlation: Option<f64>,
    /// Candidates misranked beyond the threshold.
    pub misranked: usize,
    /// Prospective winners rejected by the validator and quarantined
    /// (each forced a fallback to the next-best legal candidate).
    pub quarantined: usize,
    /// Roofline bottleneck classes over every executed candidate
    /// ([`crate::observatory::classify`]): the run's dma / compute / stall /
    /// spm-capacity mix.
    pub mix: BottleneckMix,
}

/// Mean absolute percentage error of (predicted, measured) observations,
/// in percent. `None` when empty or every measurement is zero.
pub fn mape(obs: &[(f64, f64)]) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(p, m) in obs {
        if m != 0.0 {
            sum += ((p - m) / m).abs();
            n += 1;
        }
    }
    (n > 0).then(|| 100.0 * sum / n as f64)
}

/// Average ranks (1-based; ties get the mean of their positions).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over average ranks) between the two
/// components of the observations. `None` below 2 points or when either
/// ordering is constant.
pub fn rank_correlation(obs: &[(f64, f64)]) -> Option<f64> {
    if obs.len() < 2 {
        return None;
    }
    let xr = ranks(&obs.iter().map(|o| o.0).collect::<Vec<_>>());
    let yr = ranks(&obs.iter().map(|o| o.1).collect::<Vec<_>>());
    let n = obs.len() as f64;
    let mx = xr.iter().sum::<f64>() / n;
    let my = yr.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for i in 0..obs.len() {
        let (dx, dy) = (xr[i] - mx, yr[i] - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Render an optional float as a JSON value: plain decimal, or `null` when
/// absent or non-finite (JSON has no NaN/Infinity).
pub(crate) fn float_json(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => {
            let s = format!("{v}");
            // Rust's float Display can produce exponent-free decimals only,
            // which are valid JSON numbers as-is.
            if s.contains('e') || s.contains('E') {
                format!("{v:.6}")
            } else {
                s
            }
        }
        _ => "null".to_string(),
    }
}

/// Render a counter block as a JSON object.
fn counters_json(c: &Counters) -> String {
    format!(
        "{{\"dma_payload_bytes\":{},\"dma_bus_bytes\":{},\"dma_batches\":{},\
         \"dma_bcast_batches\":{},\"dma_stall_cycles\":{},\"dma_waits\":{},\
         \"kernel_calls\":{},\"kernel_cycles\":{},\"flops\":{},\
         \"compute_cycles\":{},\"issue_p0\":{},\"issue_p1\":{},\
         \"regcomm_broadcasts\":{},\"regcomm_bytes\":{},\
         \"spm_high_water_elems\":{}}}",
        c.dma_payload_bytes,
        c.dma_bus_bytes,
        c.dma_batches,
        c.dma_bcast_batches,
        c.dma_stall_cycles,
        c.dma_waits,
        c.kernel_calls,
        c.kernel_cycles,
        c.flops,
        c.compute_cycles,
        c.issue_p0,
        c.issue_p1,
        c.regcomm_broadcasts,
        c.regcomm_bytes,
        c.spm_high_water_elems
    )
}

/// Hit/miss/entry counters of the process-wide evaluation caches as a JSON
/// object: the PR 1 kernel-cost cache ([`swkernels::cost::cache_stats`])
/// and the model sub-cost memo cache ([`crate::model::memo`]). Counters are
/// relaxed atomics — approximate under concurrency, exact serially — so
/// they are observability, never an input to tuning decisions.
pub fn caches_json() -> String {
    let (kh, km, ke) = swkernels::cost::cache_stats();
    let (mh, mm, me) = crate::model::memo::stats();
    format!(
        "{{\"kernel_cost\":{{\"hits\":{kh},\"misses\":{km},\"entries\":{ke}}},\
         \"memo\":{{\"hits\":{mh},\"misses\":{mm},\"entries\":{me}}}}}"
    )
}

/// Prometheus text exposition of the same process-wide cache counters as
/// [`caches_json`]: `swatop_cache_{hits,misses}_total` counters and a
/// `swatop_cache_entries` gauge, one sample per cache
/// (`cache="kernel_cost"` / `cache="memo"`). Appended alongside
/// [`crate::observatory::MetricSet::prometheus_text`] by scrapers that
/// want cache observability next to the roofline gauges.
pub fn caches_prometheus_text() -> String {
    let (kh, km, ke) = swkernels::cost::cache_stats();
    let (mh, mm, me) = crate::model::memo::stats();
    let mut out = String::new();
    let mut series = |name: &str, help: &str, kind: &str, kernel: u64, memo: u64| {
        out.push_str(&format!(
            "# HELP swatop_{name} {help}\n# TYPE swatop_{name} {kind}\n\
             swatop_{name}{{cache=\"kernel_cost\"}} {kernel}\n\
             swatop_{name}{{cache=\"memo\"}} {memo}\n"
        ));
    };
    series("cache_hits_total", "Evaluation-cache hits since process start", "counter", kh, mh);
    series(
        "cache_misses_total",
        "Evaluation-cache misses since process start",
        "counter",
        km,
        mm,
    );
    series("cache_entries", "Resident evaluation-cache entries", "gauge", ke, me);
    out
}

/// Structural JSON well-formedness check (objects, arrays, strings with
/// escapes, numbers incl. floats/exponents, booleans, null). Returns the
/// first syntax error. Used by tests and the CI telemetry smoke leg; the
/// exporters above must always satisfy it.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                parse_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                parse_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at {i}", *c as char)),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5
                            || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| -> usize {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i - s
    };
    if digits(b, i) == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if digits(b, i) == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if digits(b, i) == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_hierarchy_and_updates() {
        let t = Telemetry::new();
        let sweep = t.open(SpanKind::Sweep, "sweep");
        let op_handle = t.child_of(sweep);
        let op = op_handle.open(SpanKind::Operator, "gemm 64x64x64");
        let cand_handle = op_handle.child_of(op).on_track(2);
        let cand = cand_handle.open(SpanKind::Candidate, "tile 8x8");
        t.update(cand, |s| {
            s.index = Some(5);
            s.cycles = Some(1234);
            s.predicted = Some(1200.0);
        });
        t.close(cand);
        t.close(op);
        t.close(sweep);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].parent, Some(sweep));
        assert_eq!(spans[2].parent, Some(op));
        assert_eq!(spans[2].track, Some(2));
        assert_eq!(spans[2].cycles, Some(1234));
        assert_eq!(spans[0].track, None);
    }

    #[test]
    fn cache_exports_are_well_formed() {
        validate_json(&caches_json()).unwrap();
        let prom = caches_prometheus_text();
        for line in prom.lines() {
            assert!(
                line.starts_with("# HELP swatop_cache_")
                    || line.starts_with("# TYPE swatop_cache_")
                    || line.starts_with("swatop_cache_"),
                "unexpected line: {line:?}"
            );
        }
        for name in ["cache_hits_total", "cache_misses_total", "cache_entries"] {
            for cache in ["kernel_cost", "memo"] {
                assert!(prom.contains(&format!("swatop_{name}{{cache=\"{cache}\"}} ")));
            }
        }
    }

    #[test]
    fn mape_and_rank_correlation_basics() {
        // Perfect predictions: MAPE 0, correlation 1.
        let perfect: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, i as f64)).collect();
        assert!(mape(&perfect).unwrap() < 1e-12);
        assert!((rank_correlation(&perfect).unwrap() - 1.0).abs() < 1e-12);
        // Reversed ordering: correlation -1.
        let reversed: Vec<(f64, f64)> =
            (1..=5).map(|i| (i as f64, (6 - i) as f64)).collect();
        assert!((rank_correlation(&reversed).unwrap() + 1.0).abs() < 1e-12);
        // 10% uniform over-prediction: MAPE 10, correlation still 1.
        let off: Vec<(f64, f64)> = (1..=5).map(|i| (1.1 * i as f64, i as f64)).collect();
        assert!((mape(&off).unwrap() - 10.0).abs() < 1e-9);
        assert!((rank_correlation(&off).unwrap() - 1.0).abs() < 1e-12);
        // Degenerate inputs.
        assert!(mape(&[]).is_none());
        assert!(rank_correlation(&[(1.0, 1.0)]).is_none());
        assert!(rank_correlation(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[10.0, 20.0, 10.0, 30.0]);
        assert_eq!(r, vec![1.5, 3.0, 1.5, 4.0]);
    }

    #[test]
    fn rank_statistics_edge_cases() {
        // Length 0 and 1: no correlation is defined, never NaN.
        assert!(rank_correlation(&[]).is_none());
        assert!(rank_correlation(&[(7.0, 3.0)]).is_none());
        assert!(mape(&[]).is_none());
        // Constant vectors on either side: zero rank variance ⇒ None
        // (a NaN would otherwise leak from 0/0).
        let const_pred: Vec<(f64, f64)> = (0..5).map(|i| (42.0, i as f64)).collect();
        let const_meas: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 42.0)).collect();
        let both_const: Vec<(f64, f64)> = (0..5).map(|_| (1.0, 2.0)).collect();
        assert!(rank_correlation(&const_pred).is_none());
        assert!(rank_correlation(&const_meas).is_none());
        assert!(rank_correlation(&both_const).is_none());
        // Tied predictions with distinct measurements: ties get average
        // ranks and the coefficient stays in [-1, 1].
        let tied = [(10.0, 100.0), (10.0, 200.0), (20.0, 300.0), (20.0, 400.0)];
        let rho = rank_correlation(&tied).unwrap();
        assert!(rho.is_finite() && (-1.0..=1.0).contains(&rho));
        // Perfectly tied pairs (same tie structure both sides) correlate 1.
        let sym = [(1.0, 10.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0)];
        assert!((rank_correlation(&sym).unwrap() - 1.0).abs() < 1e-12);
        // All measurements zero: MAPE undefined rather than infinite.
        assert!(mape(&[(5.0, 0.0), (6.0, 0.0)]).is_none());
        // None of the degenerate summaries leaks NaN into JSON.
        for acc in [
            rank_correlation(&const_pred),
            mape(&[]),
            Some(f64::NAN),
        ] {
            let rendered = float_json(acc);
            validate_json(&rendered).unwrap();
            assert!(!rendered.contains("NaN"));
        }
    }

    #[test]
    fn misranked_candidates_are_flagged() {
        let t = Telemetry::new();
        // 8 pairs; candidate 0 predicted fastest but measured slowest —
        // displacement 7 > threshold max(1, 8/4) = 2.
        t.record_pair(0, 10.0, 9000);
        for i in 1..8 {
            t.record_pair(i, 100.0 * i as f64, 1000 + 100 * i as u64);
        }
        let acc = t.accuracy_for(None).unwrap();
        assert_eq!(acc.rank_threshold, 2);
        assert!(acc.misranked.contains(&0), "misranked: {:?}", acc.misranked);
        assert!(!acc.misranked.contains(&4));
    }

    #[test]
    fn accuracy_is_scoped_per_operator() {
        let t = Telemetry::new();
        let op_a = t.open(SpanKind::Operator, "a");
        let op_b = t.open(SpanKind::Operator, "b");
        let ha = t.child_of(op_a);
        let hb = t.child_of(op_b);
        for i in 0..3 {
            ha.record_pair(i, i as f64 + 1.0, i as u64 + 1);
            hb.record_pair(i, (3 - i) as f64, i as u64 + 1);
        }
        let a = t.accuracy_for(Some(op_a)).unwrap();
        let b = t.accuracy_for(Some(op_b)).unwrap();
        assert!((a.rank_correlation.unwrap() - 1.0).abs() < 1e-12);
        assert!((b.rank_correlation.unwrap() + 1.0).abs() < 1e-12);
        assert!(t.accuracy_for(None).is_none());
        assert_eq!(t.accuracy().len(), 2);
    }

    #[test]
    fn rollups_group_candidates_under_operators() {
        let t = Telemetry::new();
        let op = t.open(SpanKind::Operator, "conv");
        let h = t.child_of(op);
        for i in [2usize, 0, 1] {
            let c = h.open(SpanKind::Candidate, format!("cand {i}"));
            t.update(c, |s| {
                s.index = Some(i);
                s.cycles = Some(100 + i as u64);
                s.counters.kernel_calls = 1;
            });
            t.close(c);
        }
        // A stray candidate with no operator parent lands in "(root)".
        let stray = t.open(SpanKind::Candidate, "stray");
        t.update(stray, |s| s.index = Some(9));
        let rollups = t.rollups();
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].label, "conv");
        assert_eq!(rollups[0].candidates.len(), 3);
        // Sorted by index despite insertion order 2, 0, 1.
        let idx: Vec<usize> = rollups[0].candidates.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert_eq!(rollups[0].counters.kernel_calls, 3);
        assert_eq!(rollups[1].label, "(root)");
    }

    #[test]
    fn exporters_emit_valid_json() {
        let t = Telemetry::new();
        let op = t.open(SpanKind::Operator, "gemm \"quoted\" \\ name");
        let h = t.child_of(op).on_track(0);
        let c = h.open(SpanKind::Candidate, "cand\twith\ncontrols");
        t.update(c, |s| {
            s.index = Some(0);
            s.cycles = Some(500);
            s.predicted = Some(512.25);
            s.error = Some("bad \"thing\"".to_string());
            s.counters.dma_payload_bytes = 4096;
        });
        t.close(c);
        h.record_pair(0, 512.25, 500);
        t.close(op);
        let snap = t.snapshot_json();
        validate_json(&snap).unwrap_or_else(|e| panic!("snapshot invalid: {e}\n{snap}"));
        let perf = t.perfetto_json();
        validate_json(&perf).unwrap_or_else(|e| panic!("perfetto invalid: {e}\n{perf}"));
        assert!(perf.contains("\"worker 0\""));
        assert!(perf.contains("\"orchestrator\""));
        assert!(snap.contains("\"predicted\":512.25"));
        assert!(snap.contains("\"measured\":500"));
        // The peaks-enriched variants stay valid JSON and carry the
        // observatory fields; the `None` forms are byte-identical to the
        // plain exporters.
        let peaks = Peaks::of(&sw26010::MachineConfig::default());
        let snap2 = t.snapshot_json_with(Some(&peaks));
        validate_json(&snap2).unwrap_or_else(|e| panic!("rich snapshot invalid: {e}\n{snap2}"));
        assert!(snap2.contains("\"observatory\":{\"bottleneck\":\""));
        assert!(snap2.contains("\"bottleneck_mix\":{"));
        let perf2 = t.perfetto_json_with(Some(&peaks));
        validate_json(&perf2).unwrap_or_else(|e| panic!("rich perfetto invalid: {e}\n{perf2}"));
        assert!(perf2.contains("\"bottleneck\":\""));
        assert!(perf2.contains("\"pct_peak_gflops\":"));
        assert_eq!(t.snapshot_json_with(None), snap);
        assert_eq!(t.perfetto_json_with(None), perf);
    }

    #[test]
    fn float_json_guards_non_finite() {
        assert_eq!(float_json(Some(f64::NAN)), "null");
        assert_eq!(float_json(Some(f64::INFINITY)), "null");
        assert_eq!(float_json(None), "null");
        assert_eq!(float_json(Some(1.5)), "1.5");
        validate_json(&float_json(Some(1e-9))).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e4,\"x\\n\",true,false,null],\"b\":{}}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("01").is_ok(), "leading zeros tolerated (lenient)");
    }

    #[test]
    fn totals_merge_candidate_counters_only() {
        let t = Telemetry::new();
        let op = t.open(SpanKind::Operator, "op");
        t.update(op, |s| s.counters.kernel_calls = 99); // not a candidate
        let c = t.open(SpanKind::Candidate, "c");
        t.update(c, |s| {
            s.counters.kernel_calls = 2;
            s.counters.dma_bus_bytes = 128;
        });
        let totals = t.totals();
        assert_eq!(totals.kernel_calls, 2);
        assert_eq!(totals.dma_bus_bytes, 128);
    }
}
