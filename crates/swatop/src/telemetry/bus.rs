//! Lock-light broadcast bus for live sweep lifecycle events.
//!
//! The recorder in [`crate::telemetry`] is *post-hoc*: spans are folded
//! into reports after the run finishes. This bus is the live counterpart —
//! the tuner engine, the worker pool and the sweep harnesses publish typed
//! [`Event`]s as they happen, and any number of subscribers (a progress
//! printer, a `/metrics` endpoint, a flight-report accountant) drain them
//! concurrently. Design constraints, in order:
//!
//! * **Zero-cost when nobody listens.** [`EventBus::emit_with`] takes a
//!   closure and checks a relaxed atomic subscriber count before building
//!   the event: with no subscriber the cost is one load, no allocation, no
//!   lock. A tuning run with `bus: None` in its options never even pays
//!   that load.
//! * **Bounded, never blocking.** Each subscriber owns a bounded ring;
//!   when a slow consumer falls behind, the *oldest* events are dropped
//!   (latest-wins) and counted. Publishers never wait, so the bus can sit
//!   inside the measurement loop without perturbing walls more than a
//!   mutex push.
//! * **Report-only determinism.** Events describe tuning decisions; they
//!   never feed them. Lifecycle events carry only simulation-derived
//!   payloads and expose a [`Event::deterministic_key`] that is identical
//!   (as a multiset) for every `--jobs` value; host-timing events
//!   (heartbeats, stalls, cache ticks) return `None` there and are
//!   excluded from cross-run comparisons.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

/// A typed sweep lifecycle event. Variants that describe *what the tuner
/// decided* are deterministic in content; variants that describe *how the
/// host behaved* (heartbeats, stalls, cache ticks) are not — see
/// [`Event::deterministic_key`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A multi-operator sweep began.
    SweepStart { label: String },
    /// The sweep finished.
    SweepEnd { label: String },
    /// Tuning of one operator began over `candidates` enumerated schedules.
    OperatorStart { label: String, candidates: usize },
    /// Tuning of one operator finished.
    OperatorEnd {
        label: String,
        /// Winning-schedule cycles (`None` when nothing measured).
        best_cycles: Option<u64>,
        /// Candidates actually executed on the scoreboard.
        executed: usize,
        /// Prospective winners quarantined by validation.
        quarantined: usize,
    },
    /// The engine started measuring a wave of `size` pending candidates.
    WaveStart { size: usize },
    /// The wave finished; counts cover only the wave's own candidates.
    WaveEnd { measured: usize, failed: usize },
    /// One candidate's measurement completed (successfully or not).
    CandidateMeasured {
        /// Stable input index of the candidate.
        index: usize,
        /// Median measured cycles; `None` when the candidate failed.
        cycles: Option<u64>,
        /// Transient retries the measurement consumed.
        retries: u32,
        /// Worker that ran it — scheduling-dependent, excluded from the
        /// deterministic key.
        worker: usize,
    },
    /// A prospective winner was rejected by the validator.
    Quarantined { index: usize, reason: String },
    /// Shared evaluation-cache counters at a wave boundary. Process-global
    /// and order-dependent under concurrency: host-timing, not lifecycle.
    MemoTick {
        kernel_hits: u64,
        kernel_misses: u64,
        memo_hits: u64,
        memo_misses: u64,
    },
    /// A checkpoint file was written with `done` of `total` cells settled.
    CheckpointSaved { done: usize, total: usize },
    /// Periodic per-worker liveness sample from the pool monitor.
    Heartbeat {
        worker: usize,
        /// Items the worker has finished so far.
        items: u64,
        /// Milliseconds since the worker last finished an item (0 while
        /// idle before its first claim).
        idle_ms: u64,
    },
    /// The stall watchdog flagged a wedged worker/candidate. Report-only:
    /// the measurement keeps running.
    StallFlagged {
        worker: usize,
        /// Input index of the stuck candidate.
        index: usize,
        /// Span path of the stuck work: `operator-context / candidate
        /// knobs`.
        path: String,
        stalled_ms: u64,
    },
}

impl Event {
    /// Canonical content key for cross-run comparison, or `None` for
    /// host-timing events. The key of a lifecycle event is a pure function
    /// of tuning decisions (never of worker ids or wall time), so the
    /// *multiset* of keys emitted by a run is identical for every `--jobs`
    /// value — the property the determinism tests assert.
    pub fn deterministic_key(&self) -> Option<String> {
        match self {
            Event::SweepStart { label } => Some(format!("sweep-start {label}")),
            Event::SweepEnd { label } => Some(format!("sweep-end {label}")),
            Event::OperatorStart { label, candidates } => {
                Some(format!("op-start {label} cands={candidates}"))
            }
            Event::OperatorEnd { label, best_cycles, executed, quarantined } => Some(format!(
                "op-end {label} best={best_cycles:?} executed={executed} \
                 quarantined={quarantined}"
            )),
            Event::WaveStart { size } => Some(format!("wave-start {size}")),
            Event::WaveEnd { measured, failed } => {
                Some(format!("wave-end measured={measured} failed={failed}"))
            }
            Event::CandidateMeasured { index, cycles, retries, .. } => {
                Some(format!("cand {index} cycles={cycles:?} retries={retries}"))
            }
            Event::Quarantined { index, reason } => {
                Some(format!("quarantine {index} {reason}"))
            }
            Event::CheckpointSaved { done, total } => {
                Some(format!("checkpoint {done}/{total}"))
            }
            Event::MemoTick { .. } | Event::Heartbeat { .. } | Event::StallFlagged { .. } => None,
        }
    }
}

/// One subscriber's bounded mailbox.
struct Mailbox {
    ring: Mutex<VecDeque<Event>>,
    cap: usize,
    /// Events delivered to this mailbox (including later-dropped ones).
    received: AtomicU64,
    /// Events evicted because the consumer fell behind the ring capacity.
    dropped: AtomicU64,
}

impl Mailbox {
    fn push(&self, e: Event) {
        self.received.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() >= self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(e);
    }
}

struct BusInner {
    subs: Mutex<Vec<Arc<Mailbox>>>,
    /// Live subscriber count, mirrored outside the lock so the no-listener
    /// fast path of [`EventBus::emit_with`] is a single relaxed load.
    active: AtomicUsize,
}

/// Broadcast handle; cloning shares the bus. `Default` builds an empty bus
/// with no subscribers.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.inner.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventBus {
    pub fn new() -> EventBus {
        EventBus {
            inner: Arc::new(BusInner { subs: Mutex::new(Vec::new()), active: AtomicUsize::new(0) }),
        }
    }

    /// Attach a subscriber with a ring of `cap` events (clamped to at
    /// least 1). Dropping the returned handle detaches it; when the last
    /// subscriber detaches, emission returns to the single-load fast path.
    pub fn subscribe(&self, cap: usize) -> Subscriber {
        let mailbox = Arc::new(Mailbox {
            ring: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        self.inner.subs.lock().push(Arc::clone(&mailbox));
        self.inner.active.fetch_add(1, Ordering::Relaxed);
        Subscriber { mailbox, bus: Arc::downgrade(&self.inner) }
    }

    /// Number of live subscribers.
    pub fn subscribers(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Publish the event built by `f` to every subscriber. With no
    /// subscriber, `f` is never called and the cost is one relaxed load.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> Event) {
        if self.inner.active.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.emit(f());
    }

    /// Publish an already-built event (use [`EventBus::emit_with`] on hot
    /// paths so construction is skipped when nobody listens).
    pub fn emit(&self, e: Event) {
        let subs = self.inner.subs.lock();
        let Some((last, rest)) = subs.split_last() else { return };
        for s in rest {
            s.push(e.clone());
        }
        last.push(e);
    }
}

/// Receiving end of one bus subscription. Dropping it detaches from the
/// bus (publishers stop paying for it).
pub struct Subscriber {
    mailbox: Arc<Mailbox>,
    bus: Weak<BusInner>,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("received", &self.received())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Subscriber {
    /// Take every buffered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut ring = self.mailbox.ring.lock();
        ring.drain(..).collect()
    }

    /// Events delivered to this subscriber so far (including any that were
    /// later evicted from the ring).
    pub fn received(&self) -> u64 {
        self.mailbox.received.load(Ordering::Relaxed)
    }

    /// Events this subscriber lost to ring overflow. Anything non-zero
    /// means drained data is a *sample*, not the full stream — exporters
    /// surface this count instead of implying completeness.
    pub fn dropped(&self) -> u64 {
        self.mailbox.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        if let Some(inner) = self.bus.upgrade() {
            inner.subs.lock().retain(|s| !Arc::ptr_eq(s, &self.mailbox));
            inner.active.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_subscriber_never_builds_the_event() {
        let bus = EventBus::new();
        // The closure panics if called; with no subscriber it must not be.
        bus.emit_with(|| panic!("event built with no subscriber"));
        assert_eq!(bus.subscribers(), 0);
    }

    #[test]
    fn events_broadcast_to_every_subscriber_in_order() {
        let bus = EventBus::new();
        let a = bus.subscribe(16);
        let b = bus.subscribe(16);
        for size in [1usize, 2, 3] {
            bus.emit_with(|| Event::WaveStart { size });
        }
        for sub in [&a, &b] {
            let sizes: Vec<usize> = sub
                .drain()
                .iter()
                .map(|e| match e {
                    Event::WaveStart { size } => *size,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(sizes, vec![1, 2, 3]);
            assert_eq!(sub.received(), 3);
            assert_eq!(sub.dropped(), 0);
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let bus = EventBus::new();
        let sub = bus.subscribe(4);
        for size in 0..10usize {
            bus.emit(Event::WaveStart { size });
        }
        let kept: Vec<usize> = sub
            .drain()
            .iter()
            .map(|e| match e {
                Event::WaveStart { size } => *size,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Latest-wins: the newest 4 survive, the oldest 6 are counted out.
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(sub.received(), 10);
        assert_eq!(sub.dropped(), 6);
    }

    #[test]
    fn dropping_the_subscriber_detaches_it() {
        let bus = EventBus::new();
        let sub = bus.subscribe(4);
        assert_eq!(bus.subscribers(), 1);
        drop(sub);
        assert_eq!(bus.subscribers(), 0);
        bus.emit_with(|| panic!("no live subscriber"));
    }

    #[test]
    fn deterministic_keys_exclude_host_timing() {
        let lifecycle = Event::CandidateMeasured { index: 7, cycles: Some(42), retries: 1, worker: 3 };
        let key = lifecycle.deterministic_key().unwrap();
        assert!(key.contains('7') && key.contains("42"), "{key}");
        // The worker id is scheduling noise and must not leak into the key.
        let other_worker =
            Event::CandidateMeasured { index: 7, cycles: Some(42), retries: 1, worker: 0 };
        assert_eq!(other_worker.deterministic_key().unwrap(), key);
        for host in [
            Event::Heartbeat { worker: 0, items: 1, idle_ms: 5 },
            Event::StallFlagged { worker: 0, index: 1, path: "x".into(), stalled_ms: 9 },
            Event::MemoTick { kernel_hits: 1, kernel_misses: 2, memo_hits: 3, memo_misses: 4 },
        ] {
            assert!(host.deterministic_key().is_none(), "{host:?}");
        }
    }
}
