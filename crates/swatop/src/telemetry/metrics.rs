//! Live `/metrics` endpoint: a Prometheus text-exposition scrape surface
//! for a running sweep.
//!
//! [`MetricsHub`] subscribes to the [`bus`](crate::telemetry::bus) and
//! folds drained events into live gauges at *scrape* time — the tuner
//! never blocks on a scraper, and a scraper never blocks the tuner beyond
//! one mailbox mutex push. [`MetricsServer`] is a deliberately minimal
//! `std::net` HTTP/1.1 responder (serial accept loop, fixed headers,
//! `Connection: close`): it serves exactly one document, so a real HTTP
//! stack would be dead weight. The text is the existing observatory cache
//! exposition ([`super::caches_prometheus_text`]) plus live sweep gauges:
//! candidate funnel and throughput, ETA for the operator in flight,
//! per-worker utilization from the [`PoolMonitor`], stall and quarantine
//! counts, memo hit rates, and the bus's own received/dropped counters so
//! a scraper can tell sampled data from complete data.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::telemetry::bus::{Event, EventBus, Subscriber};
use crate::tuner::pool::PoolMonitor;

/// Folded view of the event stream, updated on every scrape.
#[derive(Debug, Clone, Default)]
struct Live {
    sweeps_started: u64,
    sweeps_ended: u64,
    operators_started: u64,
    operators_ended: u64,
    /// `(label, planned candidates, measured so far)` of the operator in
    /// flight — the ETA numerator.
    current_op: Option<(String, u64, u64)>,
    measured: u64,
    failed: u64,
    retried: u64,
    quarantined: u64,
    waves: u64,
    checkpoints: u64,
    stalls: u64,
    heartbeats: u64,
}

impl Live {
    fn fold(&mut self, e: Event) {
        match e {
            Event::SweepStart { .. } => self.sweeps_started += 1,
            Event::SweepEnd { .. } => self.sweeps_ended += 1,
            Event::OperatorStart { label, candidates } => {
                self.operators_started += 1;
                self.current_op = Some((label, candidates as u64, 0));
            }
            Event::OperatorEnd { .. } => {
                self.operators_ended += 1;
                self.current_op = None;
            }
            Event::WaveStart { .. } => self.waves += 1,
            Event::WaveEnd { failed, .. } => self.failed += failed as u64,
            Event::CandidateMeasured { cycles, retries, .. } => {
                self.measured += 1;
                self.retried += u64::from(retries);
                if cycles.is_none() {
                    self.failed += 1;
                }
                if let Some((_, _, done)) = &mut self.current_op {
                    *done += 1;
                }
            }
            Event::Quarantined { .. } => self.quarantined += 1,
            Event::CheckpointSaved { .. } => self.checkpoints += 1,
            Event::StallFlagged { .. } => self.stalls += 1,
            Event::Heartbeat { .. } => self.heartbeats += 1,
            Event::MemoTick { .. } => {}
        }
    }
}

/// Aggregates live sweep state for the `/metrics` endpoint (and the flight
/// report's live section). Thread-safe; scrapes are serialized on an
/// internal mutex.
pub struct MetricsHub {
    sub: Subscriber,
    monitor: Option<Arc<PoolMonitor>>,
    live: Mutex<Live>,
    /// Artifacts known to be silently capped (e.g. a truncated trace);
    /// surfaced as a labelled gauge so capped data is visible, not
    /// implied-complete.
    truncated: Mutex<Vec<String>>,
    epoch: Instant,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub").field("live", &*self.live.lock()).finish()
    }
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn esc_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

impl MetricsHub {
    /// Subscribe to `bus` (ring of `cap` events — overflow only loses
    /// granularity of the fold between scrapes, and is itself exported as
    /// `swatop_bus_events_dropped_total`).
    pub fn new(bus: &EventBus, monitor: Option<Arc<PoolMonitor>>, cap: usize) -> MetricsHub {
        MetricsHub {
            sub: bus.subscribe(cap),
            monitor,
            live: Mutex::new(Live::default()),
            truncated: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Record an artifact whose contents were silently capped.
    pub fn note_truncated(&self, artifact: &str) {
        self.truncated.lock().push(artifact.to_string());
    }

    /// Fold any pending events and render the full Prometheus text
    /// exposition.
    pub fn prometheus_text(&self) -> String {
        let live = {
            let mut live = self.live.lock();
            for e in self.sub.drain() {
                live.fold(e);
            }
            live.clone()
        };
        let elapsed = self.epoch.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { live.measured as f64 / elapsed } else { 0.0 };
        let eta = match &live.current_op {
            Some((_, planned, done)) if rate > 0.0 => {
                planned.saturating_sub(*done) as f64 / rate
            }
            _ => 0.0,
        };

        let mut out = super::caches_prometheus_text();
        fn single(out: &mut String, name: &str, help: &str, kind: &str, value: String) {
            out.push_str(&format!(
                "# HELP swatop_{name} {help}\n# TYPE swatop_{name} {kind}\nswatop_{name} {value}\n"
            ));
        }
        single(
            &mut out,
            "candidates_measured_total",
            "Candidates measured this run (funnel numerator)",
            "counter",
            live.measured.to_string(),
        );
        single(
            &mut out,
            "candidates_failed_total",
            "Candidates that failed terminally this run",
            "counter",
            live.failed.to_string(),
        );
        single(
            &mut out,
            "candidate_retries_total",
            "Transient-failure retries consumed this run",
            "counter",
            live.retried.to_string(),
        );
        single(
            &mut out,
            "quarantined_total",
            "Prospective winners quarantined by validation this run",
            "counter",
            live.quarantined.to_string(),
        );
        single(
            &mut out,
            "operators_started_total",
            "Operators whose tuning started this run",
            "counter",
            live.operators_started.to_string(),
        );
        single(
            &mut out,
            "operators_completed_total",
            "Operators whose tuning completed this run",
            "counter",
            live.operators_ended.to_string(),
        );
        single(
            &mut out,
            "sweeps_started_total",
            "Multi-operator sweeps started this run",
            "counter",
            live.sweeps_started.to_string(),
        );
        single(
            &mut out,
            "waves_total",
            "Scoreboard measurement waves dispatched this run",
            "counter",
            live.waves.to_string(),
        );
        single(
            &mut out,
            "checkpoints_saved_total",
            "Checkpoint files written this run",
            "counter",
            live.checkpoints.to_string(),
        );
        single(
            &mut out,
            "stalls_flagged_total",
            "Wedged worker/candidate pairs flagged by the watchdog",
            "counter",
            live.stalls.to_string(),
        );
        single(
            &mut out,
            "worker_heartbeats_total",
            "Liveness samples received from the pool monitor",
            "counter",
            live.heartbeats.to_string(),
        );
        single(
            &mut out,
            "candidates_per_sec",
            "Measured-candidate throughput since endpoint start",
            "gauge",
            format!("{rate:.3}"),
        );
        single(
            &mut out,
            "eta_seconds",
            "Estimated seconds left for the operator in flight (0 = idle)",
            "gauge",
            format!("{eta:.3}"),
        );

        // Memo hit rates as ratios (the raw counters precede them in the
        // cache exposition block).
        let (kh, km, _) = swkernels::cost::cache_stats();
        let (mh, mm, _) = crate::model::memo::stats();
        let ratio = |h: u64, m: u64| {
            let total = h + m;
            if total > 0 {
                h as f64 / total as f64
            } else {
                0.0
            }
        };
        out.push_str(&format!(
            "# HELP swatop_memo_hit_rate Evaluation-cache hit rate since process start\n\
             # TYPE swatop_memo_hit_rate gauge\n\
             swatop_memo_hit_rate{{cache=\"kernel_cost\"}} {:.4}\n\
             swatop_memo_hit_rate{{cache=\"memo\"}} {:.4}\n",
            ratio(kh, km),
            ratio(mh, mm)
        ));

        if let Some(m) = &self.monitor {
            let elapsed_ms = m.elapsed_ms().max(1);
            let stats = m.worker_stats();
            if !stats.is_empty() {
                out.push_str(
                    "# HELP swatop_worker_utilization Fraction of host time each worker \
                     slot spent inside candidate bodies\n\
                     # TYPE swatop_worker_utilization gauge\n",
                );
                for (w, s) in stats.iter().enumerate() {
                    out.push_str(&format!(
                        "swatop_worker_utilization{{worker=\"{w}\"}} {:.4}\n",
                        s.busy_ms as f64 / elapsed_ms as f64
                    ));
                }
                out.push_str(
                    "# HELP swatop_worker_items_total Items finished per worker slot\n\
                     # TYPE swatop_worker_items_total counter\n",
                );
                for (w, s) in stats.iter().enumerate() {
                    out.push_str(&format!(
                        "swatop_worker_items_total{{worker=\"{w}\"}} {}\n",
                        s.items
                    ));
                }
            }
        }

        single(
            &mut out,
            "bus_events_received_total",
            "Lifecycle events delivered to the metrics subscriber",
            "counter",
            self.sub.received().to_string(),
        );
        single(
            &mut out,
            "bus_events_dropped_total",
            "Lifecycle events the metrics subscriber lost to ring overflow",
            "counter",
            self.sub.dropped().to_string(),
        );

        let truncated = self.truncated.lock();
        single(
            &mut out,
            "truncated_artifacts",
            "Artifacts whose contents were silently capped this run",
            "gauge",
            truncated.len().to_string(),
        );
        for artifact in truncated.iter() {
            out.push_str(&format!(
                "swatop_truncated_artifacts{{artifact=\"{}\"}} 1\n",
                esc_label(artifact)
            ));
        }
        out
    }

    /// Condensed live accounting for the flight report: `(events received,
    /// events dropped, stalls flagged, candidates failed, retries,
    /// quarantined, truncated artifacts)`.
    #[allow(clippy::type_complexity)]
    pub fn accounting(&self) -> (u64, u64, u64, u64, u64, u64, Vec<String>) {
        // Fold pending events first so the numbers are current.
        let _ = self.prometheus_text();
        let live = self.live.lock().clone();
        (
            self.sub.received(),
            self.sub.dropped(),
            live.stalls,
            live.failed,
            live.retried,
            live.quarantined,
            self.truncated.lock().clone(),
        )
    }
}

/// Minimal HTTP responder serving [`MetricsHub::prometheus_text`] on
/// `GET /metrics` (and `GET /`). One request per connection, serial accept
/// loop — a scrape cadence of seconds against a sub-millisecond render
/// needs nothing more.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks an ephemeral port,
    /// see [`MetricsServer::addr`]) and serve scrapes on a background
    /// thread until [`MetricsServer::shutdown`].
    pub fn start(addr: &str, hub: Arc<MetricsHub>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("swatop-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut buf = [0u8; 1024];
                    let n = stream.read(&mut buf).unwrap_or(0);
                    let req = String::from_utf8_lossy(&buf[..n]);
                    let (status, body) = if req.starts_with("GET / ")
                        || req.starts_with("GET /metrics")
                        || req.is_empty()
                    {
                        ("200 OK", hub.prometheus_text())
                    } else {
                        ("404 Not Found", "not found\n".to_string())
                    };
                    let response = format!(
                        "HTTP/1.1 {status}\r\n\
                         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                         Content-Length: {}\r\n\
                         Connection: close\r\n\r\n{body}",
                        body.len()
                    );
                    let _ = stream.write_all(response.as_bytes());
                }
            })?;
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the ephemeral port chosen).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::pool::MonitorConfig;

    /// Line-level Prometheus text-exposition check: every non-comment line
    /// is `name[{labels}] value` with a parseable float value.
    fn assert_prometheus(text: &str) {
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {line:?}"));
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad series name in {line:?}"
            );
        }
    }

    #[test]
    fn hub_folds_events_into_valid_exposition() {
        let bus = EventBus::new();
        let monitor = Arc::new(PoolMonitor::new(MonitorConfig::default(), Some(bus.clone())));
        monitor.begin(0, 3, "dbuf=true");
        monitor.finish(0);
        let hub = MetricsHub::new(&bus, Some(Arc::clone(&monitor)), 1024);
        bus.emit(Event::OperatorStart { label: "gemm".into(), candidates: 10 });
        for i in 0..4usize {
            bus.emit(Event::CandidateMeasured {
                index: i,
                cycles: (i != 2).then_some(100 + i as u64),
                retries: u32::from(i == 1),
                worker: 0,
            });
        }
        bus.emit(Event::Quarantined { index: 0, reason: "bad".into() });
        hub.note_truncated("trace \"t\"");
        let text = hub.prometheus_text();
        assert_prometheus(&text);
        assert!(text.contains("swatop_candidates_measured_total 4"), "{text}");
        assert!(text.contains("swatop_candidates_failed_total 1"), "{text}");
        assert!(text.contains("swatop_candidate_retries_total 1"), "{text}");
        assert!(text.contains("swatop_quarantined_total 1"), "{text}");
        assert!(text.contains("swatop_cache_hits_total"), "{text}");
        assert!(text.contains("swatop_worker_items_total{worker=\"0\"} 1"), "{text}");
        assert!(text.contains("swatop_truncated_artifacts 1"), "{text}");
        assert!(text.contains("artifact=\"trace \\\"t\\\"\""), "{text}");
        assert!(text.contains("swatop_eta_seconds"), "{text}");
    }

    #[test]
    fn server_serves_scrapes_and_404s_unknown_paths() {
        let bus = EventBus::new();
        let hub = Arc::new(MetricsHub::new(&bus, None, 64));
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.addr();
        let get = |path: &str| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let ok = get("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        let body = ok.split("\r\n\r\n").nth(1).unwrap();
        assert_prometheus(body);
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }
}
