//! Implicit-GEMM convolution (paper Alg. 2, Fig. 2 right).
//!
//! The direct convolution is tensorized by replacing the innermost loops
//! with GEMM primitives: for each output row `ro`, filter tap `(kr, kc)`
//! and channel chunk, a `No × Ni` weight slab multiplies an
//! `Ni × (B · t_co)` input slab, accumulating into an `No × (B · t_co)`
//! output slab. Fusing `t_co` adjacent output pixels into the GEMM's N
//! dimension is the paper's loop-fusion "enlarging a specific dimension of
//! GEMM primitives by merging loops".
//!
//! Layouts are schedule decisions: the input is packed to
//! `[Ri][Ni][Ci][B]` (row-major `D_i`) or `[Ri][Ci][B][Ni]` (column-major
//! `D_i`), the weight to `[Kr][Kc][No][Ni]` or `[Kr][Kc][Ni][No]`, and the
//! output accumulates in `[Ro][No][Co][B]` before being unpacked to NCHW.
//!
//! Constraints: stride 1 (strided layers take the explicit-GEMM path, as
//! swDNN does) and mesh-divisible channel counts — which is why the paper
//! excludes each network's first layer ("its input channel is too small to
//! be handled by implicit CONV"). Spatial padding is materialised by a
//! padded-input transform before packing.

use sw26010::DmaDirection::{MemToSpm, SpmToMem};
use swatop_dsl::{factors_of, SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{
    AVar, AffineExpr, Cond, DmaCg, GemmOp, MatDesc, MemRole, Program, SpmSlot, Stmt,
    TransformKind, TransformOp,
};
use swkernels::VecDim;
use swtensor::{ConvShape, MatLayout};

use crate::scheduler::Operator;

/// Implicit-GEMM convolution operator instance.
#[derive(Debug, Clone)]
pub struct ImplicitConvOp {
    pub shape: ConvShape,
}

impl ImplicitConvOp {
    pub fn new(shape: ConvShape) -> Self {
        ImplicitConvOp { shape }
    }

    /// Whether the implicit method applies to this shape at all.
    pub fn applicable(shape: &ConvShape) -> bool {
        shape.stride == 1 && shape.ni.is_multiple_of(8) && shape.no.is_multiple_of(8)
    }

    /// The shape after materialising spatial padding.
    fn padded_shape(&self) -> ConvShape {
        ConvShape { pad: 0, ..self.shape }
    }
}

/// Cap on unrolled reduction steps for the SPM-resident schedule: beyond
/// this the per-step slots bloat both the SPM footprint and the program
/// (2 gets + 1 GEMM per step), so larger reductions must use `red=loop`.
const MAX_RESIDENT_STEPS: usize = 16;

/// Divisor candidates of `n` that are multiples of `mult`, capped in count.
fn divisor_menu(n: usize, mult: usize, cap: usize) -> Vec<usize> {
    let v: Vec<usize> =
        factors_of(n).into_iter().filter(|d| d % mult == 0).collect();
    spread(v, cap)
}

/// Keep at most `cap` values, evenly spread (always including the largest).
fn spread(v: Vec<usize>, cap: usize) -> Vec<usize> {
    if v.len() <= cap {
        return v;
    }
    let step = (v.len() - 1) as f64 / (cap - 1) as f64;
    let mut out: Vec<usize> = (0..cap).map(|i| v[(i as f64 * step).round() as usize]).collect();
    out.dedup();
    out
}

impl Operator for ImplicitConvOp {
    fn name(&self) -> String {
        let s = &self.shape;
        format!("implicit_conv_b{}_ni{}_no{}_r{}x{}", s.b, s.ni, s.no, s.ro, s.co)
    }

    fn seed(&self) -> Seed {
        Seed::implicit_conv(self.name(), self.shape)
    }

    fn space(&self) -> ScheduleSpace {
        let s = &self.shape;
        let mut sp = ScheduleSpace::new();
        sp.factor("t_no", divisor_menu(s.no, 8, 4));
        sp.factor("t_ni", divisor_menu(s.ni, 8, 4));
        sp.factor("t_co", spread(factors_of(s.co), 4));
        sp.choice("w_layout", vec!["row".into(), "col".into()]);
        sp.choice("d_layout", vec!["row".into(), "col".into()]);
        sp.toggle("vec_m");
        sp.choice("order", vec!["kr_kc_ni".into(), "ni_kr_kc".into()]);
        crate::ops::DmaKnobs::add_compact(&mut sp);
        // Reduction schedule: `loop` iterates the (kr, kc, ni_t) nest and
        // re-waits per step; `resident` unrolls it — every step's weight and
        // input tile gets its own SPM slot, all fetched up front as one run
        // of back-to-back gets (one engine batch group under fusion, one
        // latency instead of kr·kc·ni_t of them).
        sp.choice("red", vec!["loop".into(), "resident".into()]);
        sp
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        let s = self.padded_shape();
        if !Self::applicable(&self.shape) {
            return None;
        }
        let t_no = point.factor(space, "t_no");
        let t_ni = point.factor(space, "t_ni");
        let t_co = point.factor(space, "t_co");
        let w_col = point.choice(space, "w_layout") == "col";
        let d_col = point.choice(space, "d_layout") == "col";
        let vec_m = point.toggle(space, "vec_m");
        let ni_outer = point.choice(space, "order") == "ni_kr_kc";
        let dma = crate::ops::DmaKnobs::from_point(space, point);
        let resident = space.has_knob("red") && point.choice(space, "red") == "resident";

        let n_dim = t_co * s.b;
        // Kernel contract: mesh divisibility + vector alignment.
        if !n_dim.is_multiple_of(8) || !t_no.is_multiple_of(8) || !t_ni.is_multiple_of(8) {
            return None;
        }
        // Prior-knowledge pruning: candidates whose GEMM-invocation count
        // is far above the best achievable for this shape are DMA-latency
        // bound and never competitive; drop them before they slow black-box
        // tuning to a crawl.
        {
            let space_min = |len: usize, menu_max: usize| len.div_ceil(menu_max).max(1);
            let max_no = swatop_dsl::factors_of(s.no).into_iter().filter(|d| d % 8 == 0).max().unwrap_or(8);
            let max_ni = swatop_dsl::factors_of(s.ni).into_iter().filter(|d| d % 8 == 0).max().unwrap_or(8);
            let max_co = s.co;
            let min_inv = s.ro
                * space_min(s.no, max_no)
                * space_min(s.co, max_co)
                * s.kr
                * s.kc
                * space_min(s.ni, max_ni);
            let inv = s.ro * (s.no / t_no) * (s.co / t_co) * s.kr * s.kc * (s.ni / t_ni);
            if inv > 16 * min_inv && inv > 4096 {
                return None;
            }
        }
        if vec_m && !(t_no / 8).is_multiple_of(4) {
            return None;
        }
        if !vec_m && !(n_dim / 8).is_multiple_of(4) {
            return None;
        }

        let (b, ni, no) = (s.b, s.ni, s.no);
        let (ro, co) = (s.ro, s.co);
        let (kr, kc) = (s.kr, s.kc);
        let (ri, ci) = (s.ri(), s.ci());

        let mut p = Program::new(self.name());
        p.hints = dma.hints();
        let in_buf = p.mem_buf("in", self.shape.input_shape().numel(), MemRole::Input);
        let w_buf = p.mem_buf("weight", s.weight_shape().numel(), MemRole::Input);
        let out_buf = p.mem_buf("out", s.output_shape().numel(), MemRole::Output);

        let mut setup = Vec::new();

        // Materialise spatial zero padding, if any, as a padded NCHW copy.
        let nchw_buf = if self.shape.pad > 0 {
            let padded = p.mem_buf("in_padded", b * ni * ri * ci, MemRole::Temp);
            setup.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::PadImageNchw {
                    shape: self.shape,
                    src: in_buf,
                    dst: padded,
                },
            }));
            padded
        } else {
            in_buf
        };

        // Layout packing.
        let d_buf = p.mem_buf("d_packed", b * ni * ri * ci, MemRole::Temp);
        setup.push(Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::PackTensor {
                src: nchw_buf,
                dst: d_buf,
                src_dims: vec![b, ni, ri, ci],
                // [Ri][Ni][Ci][B] or [Ri][Ci][B][Ni].
                perm: if d_col { vec![2, 3, 0, 1] } else { vec![2, 1, 3, 0] },
            },
        }));
        let w_packed = p.mem_buf("w_packed", no * ni * kr * kc, MemRole::Temp);
        setup.push(Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::PackTensor {
                src: w_buf,
                dst: w_packed,
                src_dims: vec![no, ni, kr, kc],
                // [Kr][Kc][No][Ni] or [Kr][Kc][Ni][No].
                perm: if w_col { vec![2, 3, 1, 0] } else { vec![2, 3, 0, 1] },
            },
        }));
        let o_buf = p.mem_buf("o_acc", ro * no * co * b, MemRole::Temp);

        // Unrolled reduction steps of the SPM-resident schedule: every
        // (kr, kc, ni_t) tap keeps its own weight/input slot, so all the
        // fetches of a tile issue as one back-to-back run.
        let k_steps = kr * kc * (ni / t_ni);
        if resident && k_steps > MAX_RESIDENT_STEPS {
            return None;
        }

        // SPM buffers (the resident per-step slots are created below).
        let spm_o = p.spm_buf("spm_o", (t_no / 8) * (n_dim / 8));
        let r_in = p.fresh_reply();
        let r_oget = p.fresh_reply();
        let r_oput = p.fresh_reply();

        // Loop variables.
        let v_ro = p.fresh_var("ro");
        let v_not = p.fresh_var("no_t");
        let v_cot = p.fresh_var("co_t");
        let v_kr = p.fresh_var("kr");
        let v_kc = p.fresh_var("kc");
        let v_nit = p.fresh_var("ni_t");

        let lv = AffineExpr::loop_var;

        // Weight tile DMA (target slot and offset are supplied per use: the
        // resident schedule substitutes the reduction variables away and
        // lands each step in its own slot).
        let w_slab =
            lv(v_kr).scale((kc * no * ni) as i64).add(&lv(v_kc).scale((no * ni) as i64));
        let (w_rows, w_cols, w_row_stride, w_offset) = if w_col {
            (
                t_ni,
                t_no,
                no,
                w_slab
                    .add(&lv(v_nit).scale((t_ni * no) as i64))
                    .add(&lv(v_not).scale(t_no as i64)),
            )
        } else {
            (
                t_no,
                t_ni,
                ni,
                w_slab
                    .add(&lv(v_not).scale((t_no * ni) as i64))
                    .add(&lv(v_nit).scale(t_ni as i64)),
            )
        };
        let w_get_to = |spm: swatop_ir::SpmBufId, offset: AffineExpr| {
            Stmt::DmaCg(DmaCg {
                buf: w_packed,
                offset,
                rows: w_rows,
                cols: w_cols,
                row_stride: w_row_stride,
                mesh_swap: w_col,
                direction: MemToSpm,
                spm: SpmSlot::Single(spm),
                reply: r_in,
            })
        };

        // Input tile DMA: ri = ro + kr, ci window = (co_t·t_co + kc)·B.
        let ri_expr = lv(v_ro).add(&lv(v_kr));
        let (d_rows, d_cols, d_row_stride, d_offset) = if d_col {
            // [Ri][Ci][B][Ni]
            (
                n_dim,
                t_ni,
                ni,
                ri_expr
                    .scale((ci * b * ni) as i64)
                    .add(&lv(v_cot).scale((t_co * b * ni) as i64))
                    .add(&lv(v_kc).scale((b * ni) as i64))
                    .add(&lv(v_nit).scale(t_ni as i64)),
            )
        } else {
            // [Ri][Ni][Ci][B]
            (
                t_ni,
                n_dim,
                ci * b,
                ri_expr
                    .scale((ni * ci * b) as i64)
                    .add(&lv(v_nit).scale((t_ni * ci * b) as i64))
                    .add(&lv(v_cot).scale((t_co * b) as i64))
                    .add(&lv(v_kc).scale(b as i64)),
            )
        };
        let d_get_to = |spm: swatop_ir::SpmBufId, offset: AffineExpr| {
            Stmt::DmaCg(DmaCg {
                buf: d_buf,
                offset,
                rows: d_rows,
                cols: d_cols,
                row_stride: d_row_stride,
                mesh_swap: d_col,
                direction: MemToSpm,
                spm: SpmSlot::Single(spm),
                reply: r_in,
            })
        };

        // Output accumulator tile in [Ro][No][Co][B].
        let o_offset = lv(v_ro)
            .scale((no * co * b) as i64)
            .add(&lv(v_not).scale((t_no * co * b) as i64))
            .add(&lv(v_cot).scale((t_co * b) as i64));
        let o_dma = |direction, reply, slot: SpmSlot| {
            Stmt::DmaCg(DmaCg {
                buf: o_buf,
                offset: o_offset.clone(),
                rows: t_no,
                cols: n_dim,
                row_stride: co * b,
                mesh_swap: false,
                direction,
                spm: slot,
                reply,
            })
        };

        let gemm_with = |wa: swatop_ir::SpmBufId, db: swatop_ir::SpmBufId, c_slot: SpmSlot, beta: f32| {
            Stmt::Gemm(GemmOp {
                m: t_no,
                n: n_dim,
                k: t_ni,
                alpha: 1.0,
                beta,
                a: MatDesc::new(
                    SpmSlot::Single(wa),
                    if w_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                    if w_col { t_no / 8 } else { t_ni / 8 },
                ),
                b: MatDesc::new(
                    SpmSlot::Single(db),
                    if d_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                    if d_col { t_ni / 8 } else { n_dim / 8 },
                ),
                c: MatDesc::new(c_slot, MatLayout::RowMajor, n_dim / 8),
                vd: if vec_m { VecDim::M } else { VecDim::N },
            })
        };

        let w_words = (t_no / 8) * (t_ni / 8);
        let d_words = (t_ni / 8) * (n_dim / 8);

        let tile_body = if resident {
            // SPM-resident reduction: unroll the (kr, kc, ni_t) nest, give
            // every step its own weight/input slot, and issue all 2·k_steps
            // gets as one leading run followed by a single wait. Under
            // get-batch fusion the run chains into one engine batch (one
            // start-up latency per tile); the GEMMs execute in the same step
            // order as the loop schedule, so accumulation is bit-identical.
            let ni_t = ni / t_ni;
            let mut steps = Vec::with_capacity(k_steps);
            if ni_outer {
                for init in 0..ni_t {
                    for ikr in 0..kr {
                        for ikc in 0..kc {
                            steps.push((ikr, ikc, init));
                        }
                    }
                }
            } else {
                for ikr in 0..kr {
                    for ikc in 0..kc {
                        for init in 0..ni_t {
                            steps.push((ikr, ikc, init));
                        }
                    }
                }
            }
            // Double-buffer the output tile by tile parity and defer each
            // put's wait by two tiles: the put streams out behind the next
            // tile's compute instead of stalling the issue slot, and the
            // parity twin guarantees the tile being written out is never the
            // one the current GEMMs accumulate into.
            let o_words = (t_no / 8) * (n_dim / 8);
            let spm_o_dbl = p.spm_buf("spm_o_dbl", o_words);
            let tiles = ro * (no / t_no) * (co / t_co);
            let lin = crate::optimizer::prefetch::linear_index(&[
                (v_ro, ro),
                (v_not, no / t_no),
                (v_cot, co / t_co),
            ]);
            let o_slot = SpmSlot::Double { even: spm_o, odd: spm_o_dbl, sel: lin.clone() };
            let mut gets = Vec::with_capacity(2 * k_steps);
            let mut gemms = Vec::with_capacity(k_steps);
            for (i, &(ikr, ikc, init)) in steps.iter().enumerate() {
                let spm_w_s = p.spm_buf(format!("spm_w_s{i}"), w_words);
                let spm_d_s = p.spm_buf(format!("spm_d_s{i}"), d_words);
                let sub = |e: &AffineExpr| {
                    e.subst(v_kr, &AffineExpr::konst(ikr as i64))
                        .subst(v_kc, &AffineExpr::konst(ikc as i64))
                        .subst(v_nit, &AffineExpr::konst(init as i64))
                };
                gets.push(w_get_to(spm_w_s, sub(&w_offset)));
                gets.push(d_get_to(spm_d_s, sub(&d_offset)));
                // The output tile is visited exactly once, so the first
                // step initialises it (β = 0) instead of accumulating onto
                // a preloaded tile — the accumulator get (and its wait,
                // which would queue behind the next tile's prefetched run
                // on the FIFO engine) disappears entirely.
                gemms.push(gemm_with(
                    spm_w_s,
                    spm_d_s,
                    o_slot.clone(),
                    if i == 0 { 0.0 } else { 1.0 },
                ));
            }
            let mut body = gets;
            body.push(Stmt::DmaWait { reply: r_in, times: 2 * k_steps });
            if tiles >= 3 {
                // Reclaim the parity slot we are about to accumulate into:
                // the put issued two tiles ago targeted the same twin.
                body.push(Stmt::if_(
                    Cond::Ge(lin.clone(), AffineExpr::konst(2)),
                    Stmt::DmaWait { reply: r_oput, times: 1 },
                ));
            }
            body.extend(gemms);
            body.push(o_dma(SpmToMem, r_oput, o_slot));
            Stmt::seq(body)
        } else {
            // Looped reduction nest over (kr, kc, ni_t) — order is a
            // schedule choice; one shared slot pair, re-waited per step.
            let spm_w = p.spm_buf("spm_w", w_words);
            let spm_d = p.spm_buf("spm_d", d_words);
            let inner_body = Stmt::seq(vec![
                w_get_to(spm_w, w_offset.clone()),
                d_get_to(spm_d, d_offset.clone()),
                Stmt::DmaWait { reply: r_in, times: 2 },
                gemm_with(spm_w, spm_d, SpmSlot::Single(spm_o), 1.0),
            ]);
            let red_nest = if ni_outer {
                Stmt::for_(
                    v_nit,
                    ni / t_ni,
                    Stmt::for_(v_kr, kr, Stmt::for_(v_kc, kc, inner_body)),
                )
            } else {
                Stmt::for_(
                    v_kr,
                    kr,
                    Stmt::for_(v_kc, kc, Stmt::for_(v_nit, ni / t_ni, inner_body)),
                )
            };
            Stmt::seq(vec![
                o_dma(MemToSpm, r_oget, SpmSlot::Single(spm_o)),
                Stmt::DmaWait { reply: r_oget, times: 1 },
                red_nest,
                o_dma(SpmToMem, r_oput, SpmSlot::Single(spm_o)),
                Stmt::DmaWait { reply: r_oput, times: 1 },
            ])
        };

        let mut nest = Stmt::for_(
            v_ro,
            ro,
            Stmt::for_(v_not, no / t_no, Stmt::for_(v_cot, co / t_co, tile_body)),
        );
        if resident {
            // Drain the (up to two) in-flight deferred puts before unpacking.
            let tiles = ro * (no / t_no) * (co / t_co);
            nest = Stmt::seq(vec![
                nest,
                Stmt::DmaWait { reply: r_oput, times: tiles.min(2) },
            ]);
        }

        // Unpack [Ro][No][Co][B] → NCHW.
        let unpack = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::PackTensor {
                src: o_buf,
                dst: out_buf,
                src_dims: vec![ro, no, co, b],
                perm: vec![3, 1, 0, 2],
            },
        });

        let mut body = setup;
        body.push(nest);
        body.push(unpack);
        p.body = Stmt::seq(body);
        let _ = AVar::Rid; // (mesh terms are injected by DMA inference)
        Some(p)
    }

    fn input_data(&self, _program: &Program) -> Vec<Vec<f32>> {
        vec![
            swtensor::init::random_vec(self.shape.input_shape().numel(), 0x1D),
            swtensor::init::random_vec(self.shape.weight_shape().numel(), 0x2D),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let input = swtensor::Tensor::from_vec(
            self.shape.input_shape().dims().to_vec(),
            inputs[0].clone(),
        );
        let weight = swtensor::Tensor::from_vec(
            self.shape.weight_shape().dims().to_vec(),
            inputs[1].clone(),
        );
        swtensor::conv::conv2d_ref(&self.shape, &input, &weight).into_vec()
    }

    fn flops(&self) -> u64 {
        self.shape.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::verify_candidate;
    use crate::scheduler::Scheduler;
    use sw26010::MachineConfig;

    fn verify_shape(shape: ConvShape, max_points: usize) {
        let cfg = MachineConfig::default();
        let op = ImplicitConvOp::new(shape);
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            let Some(cand) = sched.lower_point(&op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, &op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(err < 1e-3, "{}: max err {err}", point.describe(&space));
            checked += 1;
            if checked >= max_points {
                break;
            }
        }
        assert!(checked > 0, "no valid candidates for {shape:?}");
    }

    #[test]
    fn small_conv_batch8_correct() {
        verify_shape(ConvShape::square(8, 16, 16, 4), 8);
    }

    #[test]
    fn batch1_needs_co_fusion() {
        // B = 1: the GEMM N dimension comes entirely from fused pixels.
        verify_shape(ConvShape::square(1, 32, 32, 8), 4);
    }

    #[test]
    fn rectangular_kernel_and_channels() {
        let shape = ConvShape { b: 4, ni: 24, no: 16, ro: 4, co: 8, kr: 1, kc: 3, stride: 1, pad: 0 };
        verify_shape(shape, 3);
    }

    #[test]
    fn padded_conv_correct() {
        let shape = ConvShape { b: 8, ni: 16, no: 16, ro: 8, co: 8, kr: 3, kc: 3, stride: 1, pad: 1 };
        verify_shape(shape, 3);
    }

    #[test]
    fn strided_shape_is_inapplicable() {
        let mut shape = ConvShape::square(4, 16, 16, 4);
        shape.stride = 2;
        assert!(!ImplicitConvOp::applicable(&shape));
        let op = ImplicitConvOp::new(shape);
        let space = op.space();
        assert!(op.lower(&space, &space.point(0)).is_none());
    }

    #[test]
    fn tiny_channels_are_inapplicable() {
        let shape = ConvShape { b: 4, ni: 3, no: 16, ro: 4, co: 4, kr: 3, kc: 3, stride: 1, pad: 0 };
        assert!(!ImplicitConvOp::applicable(&shape));
    }

    #[test]
    fn schedules_get_prefetched() {
        let cfg = MachineConfig::default();
        let op = ImplicitConvOp::new(ConvShape::square(8, 16, 16, 4));
        let sched = Scheduler::new(cfg);
        let cands = sched.enumerate(&op);
        assert!(!cands.is_empty());
        assert!(
            cands.iter().any(|c| c.prefetched),
            "at least some implicit-conv schedules must double-buffer"
        );
    }
}
