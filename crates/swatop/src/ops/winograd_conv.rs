//! Winograd F(2×2,3×3) convolution (paper Fig. 2, middle).
//!
//! The input and filter are transformed into the 4×4 tile domain; each of
//! the **16** transform positions becomes an independent GEMM
//!
//! ```text
//! M[pos] (No × nt) = U[pos] (No × Ni) · V[pos] (Ni × nt)
//! ```
//!
//! and the results are inverse-transformed back. The tile axis is padded to
//! `nt_pad = ⌈nt/32⌉·32` *inside the input transform*, so every GEMM shape
//! is kernel-legal without boundary buffers — generation-time padding is
//! cheaper than runtime boundary switching here because the transform
//! already touches every element.
//!
//! Schedule knobs: channel tiles `t_no`/`t_ni`, tile-axis tile `t_nt`,
//! the U layout (row/column-major — the latter enables the fast
//! vector-load path under M-vectorisation), the vectorised dimension, the
//! DMA ladder and the reduction schedule (`red=loop` re-waits per `ni`
//! step; `red=resident` unrolls the reduction with per-step SPM slots, one
//! fused get run per tile and a double-buffered M tile with deferred puts
//! — the same ladder that lifted implicit conv off the DMA wall).

use sw26010::DmaDirection::{MemToSpm, SpmToMem};
use swatop_dsl::{factors_of, SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{
    AffineExpr, Cond, DmaCg, GemmOp, MatDesc, MemRole, Program, SpmSlot, Stmt, TransformKind,
    TransformOp,
};
use swkernels::VecDim;
use swtensor::{ConvShape, MatLayout};

use crate::ops::tiling::DimTiles;
use crate::optimizer::boundary::round_up;
use crate::scheduler::Operator;

/// Winograd convolution operator instance.
#[derive(Debug, Clone)]
pub struct WinogradConvOp {
    pub shape: ConvShape,
}

impl WinogradConvOp {
    pub fn new(shape: ConvShape) -> Self {
        WinogradConvOp { shape }
    }

    /// Winograd applies to 3×3 stride-1 layers with mesh-aligned channels.
    pub fn applicable(shape: &ConvShape) -> bool {
        shape.winograd_applicable() && shape.ni.is_multiple_of(8) && shape.no.is_multiple_of(8)
    }

    fn nt(&self) -> usize {
        swtensor::winograd::n_tiles(&self.shape)
    }

    fn nt_pad(&self) -> usize {
        round_up(self.nt(), 32)
    }
}

/// Cap on unrolled reduction steps for the SPM-resident schedule (matches
/// the implicit-conv ladder): beyond this the per-step slots bloat the SPM
/// footprint and the program, so larger reductions must use `red=loop`.
const MAX_RESIDENT_STEPS: usize = 16;

fn divisor_menu(n: usize, mult: usize, cap: usize) -> Vec<usize> {
    let v: Vec<usize> = factors_of(n).into_iter().filter(|d| d % mult == 0).collect();
    spread(v, cap)
}

/// Keep at most `cap` values, evenly spread (always including the largest).
fn spread(v: Vec<usize>, cap: usize) -> Vec<usize> {
    if v.len() <= cap {
        return v;
    }
    let step = (v.len() - 1) as f64 / (cap - 1) as f64;
    let mut out: Vec<usize> = (0..cap).map(|i| v[(i as f64 * step).round() as usize]).collect();
    out.dedup();
    out
}

const NT_MENU: &[usize] = &[32, 64, 128, 256, 512];

impl Operator for WinogradConvOp {
    fn name(&self) -> String {
        let s = &self.shape;
        format!("winograd_conv_b{}_ni{}_no{}_r{}x{}", s.b, s.ni, s.no, s.ro, s.co)
    }

    fn seed(&self) -> Seed {
        Seed::winograd_conv(self.name(), self.shape)
    }

    fn space(&self) -> ScheduleSpace {
        let s = &self.shape;
        let mut sp = ScheduleSpace::new();
        sp.factor("t_no", divisor_menu(s.no, 8, 4));
        sp.factor("t_ni", divisor_menu(s.ni, 8, 4));
        sp.factor("t_nt", crate::ops::matmul::tile_menu(self.nt_pad(), 32, NT_MENU, 64));
        sp.choice("u_layout", vec!["row".into(), "col".into()]);
        sp.toggle("vec_m");
        crate::ops::DmaKnobs::add_compact(&mut sp);
        // Reduction schedule over the `ni` axis of each position's GEMM:
        // `loop` re-waits every step, `resident` unrolls with per-step SPM
        // slots and one fused get run per tile (see the module doc).
        sp.choice("red", vec!["loop".into(), "resident".into()]);
        sp
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        if !Self::applicable(&self.shape) {
            return None;
        }
        let s = &self.shape;
        let t_no = point.factor(space, "t_no");
        let t_ni = point.factor(space, "t_ni");
        let t_nt = point.factor(space, "t_nt");
        let u_col = point.choice(space, "u_layout") == "col";
        let vec_m = point.toggle(space, "vec_m");
        let dma = crate::ops::DmaKnobs::from_point(space, point);
        let resident = space.has_knob("red") && point.choice(space, "red") == "resident";

        if !t_no.is_multiple_of(8) || !t_ni.is_multiple_of(8) || !t_nt.is_multiple_of(32) {
            return None;
        }
        if vec_m && !(t_no / 8).is_multiple_of(4) {
            return None;
        }
        let (no, ni) = (s.no, s.ni);
        let nt_pad = self.nt_pad();
        // Prior-knowledge pruning (see implicit conv): cap the GEMM
        // invocation count relative to the best achievable.
        {
            let max_no = swatop_dsl::factors_of(no).into_iter().filter(|d| d % 8 == 0).max().unwrap_or(8);
            let max_ni = swatop_dsl::factors_of(ni).into_iter().filter(|d| d % 8 == 0).max().unwrap_or(8);
            let max_nt = 512usize.min(crate::optimizer::boundary::round_up(nt_pad, 32));
            let min_inv = 16 * (no / max_no).max(1) * nt_pad.div_ceil(max_nt) * (ni / max_ni).max(1);
            let inv = 16 * (no / t_no) * nt_pad.div_ceil(t_nt) * (ni / t_ni);
            if inv > 16 * min_inv && inv > 4096 {
                return None;
            }
        }
        // Tile-axis segments: full tiles plus an aligned (switchable) tail.
        let nt_tiles = DimTiles::new(nt_pad, t_nt, 32);
        debug_assert!(!nt_tiles.tail_aux, "nt_pad and t_nt are 32-aligned");

        let mut p = Program::new(self.name());
        p.hints = dma.hints();
        let in_buf = p.mem_buf("in", s.input_shape().numel(), MemRole::Input);
        let w_buf = p.mem_buf("weight", s.weight_shape().numel(), MemRole::Input);
        let out_buf = p.mem_buf("out", s.output_shape().numel(), MemRole::Output);
        let u_buf = p.mem_buf("U", 16 * no * ni, MemRole::Temp);
        let v_buf = p.mem_buf("V", 16 * ni * nt_pad, MemRole::Temp);
        let m_buf = p.mem_buf("M", 16 * no * nt_pad, MemRole::Temp);

        let setup = vec![
            Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::WinogradFilter {
                    shape: *s,
                    src: w_buf,
                    dst: u_buf,
                    transposed: u_col,
                },
            }),
            Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::WinogradInput {
                    shape: *s,
                    src: in_buf,
                    dst: v_buf,
                    nt_pad,
                },
            }),
        ];

        // Unrolled `ni` reduction steps of the SPM-resident schedule: every
        // step keeps its own U/V slot so all the fetches of a tile issue as
        // one back-to-back run (one engine batch under get fusion).
        let k_steps = ni / t_ni;
        if resident && k_steps > MAX_RESIDENT_STEPS {
            return None;
        }
        let u_words = (t_no / 8) * (t_ni / 8);
        let v_words = (t_ni / 8) * (t_nt / 8);
        let m_words = (t_no / 8) * (t_nt / 8);
        let spm_m = p.spm_buf("spm_m", m_words);
        // Parity twin for the resident schedule's deferred M puts.
        let spm_m_dbl = resident.then(|| p.spm_buf("spm_m_dbl", m_words));
        // Per-step slots for `resident`; `loop` shares one pair. Segments
        // run sequentially, so the slots (sized for the full `t_nt` tile)
        // are reused across them.
        let step_slots: Vec<(swatop_ir::SpmBufId, swatop_ir::SpmBufId)> = if resident {
            (0..k_steps)
                .map(|i| {
                    (
                        p.spm_buf(format!("spm_u_s{i}"), u_words),
                        p.spm_buf(format!("spm_v_s{i}"), v_words),
                    )
                })
                .collect()
        } else {
            vec![(p.spm_buf("spm_u", u_words), p.spm_buf("spm_v", v_words))]
        };
        let r_in = p.fresh_reply();
        let r_mget = p.fresh_reply();
        let r_mput = p.fresh_reply();

        let lv = AffineExpr::loop_var;
        let mut nests = Vec::new();
        for seg in nt_tiles.segs() {
            let v_pos = p.fresh_var("pos");
            let v_not = p.fresh_var("no_t");
            let v_ntt = p.fresh_var("nt_t");
            let v_nit = p.fresh_var("ni_t");

            let (u_rows, u_cols, u_rs, u_offset) = if u_col {
                (
                    t_ni,
                    t_no,
                    no,
                    lv(v_pos)
                        .scale((ni * no) as i64)
                        .add(&lv(v_nit).scale((t_ni * no) as i64))
                        .add(&lv(v_not).scale(t_no as i64)),
                )
            } else {
                (
                    t_no,
                    t_ni,
                    ni,
                    lv(v_pos)
                        .scale((no * ni) as i64)
                        .add(&lv(v_not).scale((t_no * ni) as i64))
                        .add(&lv(v_nit).scale(t_ni as i64)),
                )
            };
            let u_get_to = |spm: swatop_ir::SpmBufId, offset: AffineExpr| {
                Stmt::DmaCg(DmaCg {
                    buf: u_buf,
                    offset,
                    rows: u_rows,
                    cols: u_cols,
                    row_stride: u_rs,
                    mesh_swap: u_col,
                    direction: MemToSpm,
                    spm: SpmSlot::Single(spm),
                    reply: r_in,
                })
            };
            let v_offset = lv(v_pos)
                .scale((ni * nt_pad) as i64)
                .add(&lv(v_nit).scale((t_ni * nt_pad) as i64))
                .add(&lv(v_ntt).scale(seg.stride as i64))
                .add_const(seg.start as i64);
            let v_get_to = |spm: swatop_ir::SpmBufId, offset: AffineExpr| {
                Stmt::DmaCg(DmaCg {
                    buf: v_buf,
                    offset,
                    rows: t_ni,
                    cols: seg.size,
                    row_stride: nt_pad,
                    mesh_swap: false,
                    direction: MemToSpm,
                    spm: SpmSlot::Single(spm),
                    reply: r_in,
                })
            };
            let m_offset = lv(v_pos)
                .scale((no * nt_pad) as i64)
                .add(&lv(v_not).scale((t_no * nt_pad) as i64))
                .add(&lv(v_ntt).scale(seg.stride as i64))
                .add_const(seg.start as i64);
            let m_dma = |direction, reply, slot: SpmSlot| {
                Stmt::DmaCg(DmaCg {
                    buf: m_buf,
                    offset: m_offset.clone(),
                    rows: t_no,
                    cols: seg.size,
                    row_stride: nt_pad,
                    mesh_swap: false,
                    direction,
                    spm: slot,
                    reply,
                })
            };
            let gemm_with = |ua: swatop_ir::SpmBufId, vb: swatop_ir::SpmBufId, c_slot: SpmSlot, beta: f32| {
                Stmt::Gemm(GemmOp {
                    m: t_no,
                    n: seg.size,
                    k: t_ni,
                    alpha: 1.0,
                    beta,
                    a: MatDesc::new(
                        SpmSlot::Single(ua),
                        if u_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                        if u_col { t_no / 8 } else { t_ni / 8 },
                    ),
                    b: MatDesc::new(SpmSlot::Single(vb), MatLayout::RowMajor, seg.size / 8),
                    c: MatDesc::new(c_slot, MatLayout::RowMajor, seg.size / 8),
                    vd: if vec_m { VecDim::M } else { VecDim::N },
                })
            };

            let tiles = 16 * (no / t_no) * seg.count;
            let tile_body = if resident {
                // SPM-resident reduction (the implicit-conv ladder applied
                // to the position GEMMs): unroll the `ni` steps, issue all
                // 2·k_steps gets as one leading run with a single wait, and
                // double-buffer the M tile by tile parity with each put's
                // wait deferred by two tiles. The M tile is visited exactly
                // once, so the first step initialises it (β = 0) and the
                // accumulator get disappears entirely.
                let lin = crate::optimizer::prefetch::linear_index(&[
                    (v_pos, 16),
                    (v_not, no / t_no),
                    (v_ntt, seg.count),
                ]);
                let m_slot = SpmSlot::Double {
                    even: spm_m,
                    odd: spm_m_dbl.expect("resident twin"),
                    sel: lin.clone(),
                };
                let mut body = Vec::with_capacity(3 * k_steps + 3);
                for (i, &(su, _)) in step_slots.iter().enumerate() {
                    let at = AffineExpr::konst(i as i64);
                    body.push(u_get_to(su, u_offset.subst(v_nit, &at)));
                }
                for (i, &(_, sv)) in step_slots.iter().enumerate() {
                    let at = AffineExpr::konst(i as i64);
                    body.push(v_get_to(sv, v_offset.subst(v_nit, &at)));
                }
                body.push(Stmt::DmaWait { reply: r_in, times: 2 * k_steps });
                if tiles >= 3 {
                    // Reclaim the parity slot we are about to write: the
                    // put issued two tiles ago targeted the same twin.
                    body.push(Stmt::if_(
                        Cond::Ge(lin.clone(), AffineExpr::konst(2)),
                        Stmt::DmaWait { reply: r_mput, times: 1 },
                    ));
                }
                for (i, &(su, sv)) in step_slots.iter().enumerate() {
                    body.push(gemm_with(su, sv, m_slot.clone(), if i == 0 { 0.0 } else { 1.0 }));
                }
                body.push(m_dma(SpmToMem, r_mput, m_slot));
                Stmt::seq(body)
            } else {
                let (spm_u, spm_v) = step_slots[0];
                let ni_loop = Stmt::for_(
                    v_nit,
                    k_steps,
                    Stmt::seq(vec![
                        u_get_to(spm_u, u_offset.clone()),
                        v_get_to(spm_v, v_offset.clone()),
                        Stmt::DmaWait { reply: r_in, times: 2 },
                        gemm_with(spm_u, spm_v, SpmSlot::Single(spm_m), 1.0),
                    ]),
                );
                Stmt::seq(vec![
                    m_dma(MemToSpm, r_mget, SpmSlot::Single(spm_m)),
                    Stmt::DmaWait { reply: r_mget, times: 1 },
                    ni_loop,
                    m_dma(SpmToMem, r_mput, SpmSlot::Single(spm_m)),
                    Stmt::DmaWait { reply: r_mput, times: 1 },
                ])
            };
            let mut seg_nest = Stmt::for_(
                v_pos,
                16,
                Stmt::for_(v_not, no / t_no, Stmt::for_(v_ntt, seg.count, tile_body)),
            );
            if resident {
                // Drain the (up to two) in-flight deferred puts before the
                // next segment (or the output transform) reads M.
                seg_nest = Stmt::seq(vec![
                    seg_nest,
                    Stmt::DmaWait { reply: r_mput, times: tiles.min(2) },
                ]);
            }
            nests.push(seg_nest);
        }

        let output = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::WinogradOutput { shape: *s, src: m_buf, dst: out_buf, nt_pad },
        });

        let mut body = setup;
        body.extend(nests);
        body.push(output);
        p.body = Stmt::seq(body);
        Some(p)
    }

    fn input_data(&self, _program: &Program) -> Vec<Vec<f32>> {
        vec![
            swtensor::init::random_vec(self.shape.input_shape().numel(), 0x5F),
            swtensor::init::random_vec(self.shape.weight_shape().numel(), 0x6F),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let input = swtensor::Tensor::from_vec(
            self.shape.input_shape().dims().to_vec(),
            inputs[0].clone(),
        );
        let weight = swtensor::Tensor::from_vec(
            self.shape.weight_shape().dims().to_vec(),
            inputs[1].clone(),
        );
        swtensor::conv::conv2d_ref(&self.shape, &input, &weight).into_vec()
    }

    fn flops(&self) -> u64 {
        // Direct-convolution FLOPs: the efficiency denominator, which is why
        // Winograd "efficiency" may exceed 100% (paper Fig. 8).
        self.shape.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::verify_candidate;
    use crate::scheduler::Scheduler;
    use sw26010::MachineConfig;

    fn verify_some(shape: ConvShape, max_points: usize) {
        let cfg = MachineConfig::default();
        let op = WinogradConvOp::new(shape);
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            let Some(cand) = sched.lower_point(&op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, &op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(err < 5e-3, "{}: max err {err}", point.describe(&space));
            checked += 1;
            if checked >= max_points {
                break;
            }
        }
        assert!(checked > 0, "no valid candidates for {shape:?}");
    }

    #[test]
    fn square_conv_correct() {
        verify_some(ConvShape::square(2, 16, 16, 8), 6);
    }

    #[test]
    fn odd_output_needs_padded_tiles() {
        // ro = 7 → 4×4 tile grid with cropped edges; nt = 2·16 = 32.
        verify_some(ConvShape::square(2, 8, 8, 7), 3);
    }

    #[test]
    fn unaligned_tile_count_padded() {
        // b=1, ro=14 → nt = 49, padded to 64.
        let op = WinogradConvOp::new(ConvShape::square(1, 8, 8, 14));
        assert_eq!(op.nt(), 49);
        assert_eq!(op.nt_pad(), 64);
        verify_some(op.shape, 3);
    }

    #[test]
    fn padded_conv_correct() {
        let shape = ConvShape { b: 1, ni: 8, no: 8, ro: 8, co: 8, kr: 3, kc: 3, stride: 1, pad: 1 };
        verify_some(shape, 3);
    }

    #[test]
    fn resident_reduction_correct() {
        let cfg = MachineConfig::default();
        let op = WinogradConvOp::new(ConvShape::square(2, 16, 16, 8));
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            if point.choice(&space, "red") != "resident" {
                continue;
            }
            let Some(cand) = sched.lower_point(&op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, &op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(err < 5e-3, "{}: max err {err}", point.describe(&space));
            checked += 1;
            if checked >= 4 {
                break;
            }
        }
        assert!(checked > 0, "no valid resident candidates");
    }

    #[test]
    fn inapplicable_shapes() {
        let mut shape = ConvShape::square(1, 8, 8, 8);
        shape.kr = 5;
        shape.kc = 5;
        assert!(!WinogradConvOp::applicable(&shape));
        let mut strided = ConvShape::square(1, 8, 8, 8);
        strided.stride = 2;
        assert!(!WinogradConvOp::applicable(&strided));
    }
}
