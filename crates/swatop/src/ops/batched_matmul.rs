//! Batched matrix multiplication: `C[i] = A[i]·B[i]` for `batch`
//! independent GEMMs of identical shape.
//!
//! This is the generalisation of Winograd's 16-position batch to arbitrary
//! batch sizes (the building block of attention layers and grouped
//! convolutions). The schedule space adds one knob over plain matmul:
//! whether to **fuse** the batch into the GEMM N dimension when all
//! multiplications share the A operand — the paper's loop fusion rule ("if
//! n independent matrix multiplications share the same input, then they can
//! be combined into one larger matrix multiplication with an output n times
//! larger"). With per-batch A operands the batch is a plain outer loop with
//! shared SPM workspace.

use swatop_dsl::{SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{MemRole, Program, Stmt};

use crate::ops::matmul::{lower_matmul_body_with_spm, MatmulKnobs};
use crate::ops::tiling::PadMode;
use crate::scheduler::Operator;

/// Batched GEMM operator instance.
#[derive(Debug, Clone)]
pub struct BatchedMatmulOp {
    pub batch: usize,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// All batch elements share the same A operand (enables fusion).
    pub shared_a: bool,
}

impl BatchedMatmulOp {
    pub fn new(batch: usize, m: usize, n: usize, k: usize) -> Self {
        BatchedMatmulOp { batch, m, n, k, shared_a: false }
    }

    pub fn with_shared_a(mut self) -> Self {
        self.shared_a = true;
        self
    }
}

impl Operator for BatchedMatmulOp {
    fn name(&self) -> String {
        format!(
            "batched_matmul_{}x_{}x{}x{}{}",
            self.batch,
            self.m,
            self.n,
            self.k,
            if self.shared_a { "_sharedA" } else { "" }
        )
    }

    fn seed(&self) -> Seed {
        Seed::matmul(self.name(), self.m, self.n * self.batch, self.k)
    }

    fn space(&self) -> ScheduleSpace {
        let mut s = MatmulKnobs::space(self.m, self.n, self.k);
        if self.shared_a {
            s.toggle("fuse_batch");
        }
        s
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        let knobs = MatmulKnobs::from_point(space, point);
        let fuse = self.shared_a && point.toggle(space, "fuse_batch");
        let mut p = Program::new(self.name());
        let a_len = if self.shared_a { self.m * self.k } else { self.batch * self.m * self.k };
        let a = p.mem_buf("A", a_len, MemRole::Input);
        let b = p.mem_buf("B", self.batch * self.k * self.n, MemRole::Input);
        let c = p.mem_buf("C", self.batch * self.m * self.n, MemRole::Output);

        if fuse {
            // One big GEMM: B batches are concatenated along N. The stored
            // B is [batch][k][n]; the fused GEMM needs [k][batch·n], which
            // is a dimension permutation.
            let bt = p.mem_buf("B_fused", self.batch * self.k * self.n, MemRole::Temp);
            let ct = p.mem_buf("C_fused", self.batch * self.m * self.n, MemRole::Temp);
            let pack = Stmt::Transform(swatop_ir::TransformOp { fused: false,
                kind: swatop_ir::TransformKind::PackTensor {
                    src: b,
                    dst: bt,
                    src_dims: vec![self.batch, self.k, self.n],
                    perm: vec![1, 0, 2], // [k][batch][n] = k × (batch·n)
                },
            });
            let body = lower_matmul_body_with_spm(
                &mut p,
                &knobs,
                a,
                bt,
                ct,
                self.m,
                self.batch * self.n,
                self.k,
                PadMode::Lightweight,
                None,
            )?;
            // C_fused is [m][batch][n]; the interface layout is [batch][m][n].
            let unpack = Stmt::Transform(swatop_ir::TransformOp { fused: false,
                kind: swatop_ir::TransformKind::PackTensor {
                    src: ct,
                    dst: c,
                    src_dims: vec![self.m, self.batch, self.n],
                    perm: vec![1, 0, 2],
                },
            });
            let mut stmts = vec![pack];
            stmts.extend(body);
            stmts.push(unpack);
            p.body = Stmt::seq(stmts);
            return Some(p);
        }

        // Unfused: one GEMM per batch element, sharing the SPM workspace.
        // Per-batch main-memory views are separate Temp buffers filled by
        // sub-matrix copies (the batch stride is uniform, so a single
        // strided DMA family per element would also work; the copy keeps
        // the matmul core reusable and is bandwidth-cheap).
        let a_el = p.mem_buf("A_el", self.m * self.k, MemRole::Temp);
        let b_el = p.mem_buf("B_el", self.k * self.n, MemRole::Temp);
        let c_el = p.mem_buf("C_el", self.m * self.n, MemRole::Temp);
        let spm = [
            p.spm_buf("spm_a", (knobs.t_m / 8) * (knobs.t_k / 8)),
            p.spm_buf("spm_b", (knobs.t_k / 8) * (knobs.t_n / 8)),
            p.spm_buf("spm_c", (knobs.t_m / 8) * (knobs.t_n / 8)),
        ];
        let mut stmts = Vec::new();
        for i in 0..self.batch {
            if !self.shared_a {
                stmts.push(copy_in(a, self.batch, i, self.m * self.k, a_el));
            }
            stmts.push(copy_in(b, self.batch, i, self.k * self.n, b_el));
            // The per-element C workspace accumulates (beta = 1): clear it
            // between batch elements.
            stmts.push(Stmt::Transform(swatop_ir::TransformOp { fused: false,
                kind: swatop_ir::TransformKind::ZeroBuf { buf: c_el },
            }));
            let body = lower_matmul_body_with_spm(
                &mut p,
                &knobs,
                if self.shared_a { a } else { a_el },
                b_el,
                c_el,
                self.m,
                self.n,
                self.k,
                PadMode::Lightweight,
                Some(spm),
            )?;
            stmts.extend(body);
            stmts.push(copy_out(c_el, self.m * self.n, c, self.batch, i));
        }
        p.body = Stmt::seq(stmts);
        Some(p)
    }

    fn input_data(&self, program: &Program) -> Vec<Vec<f32>> {
        let a_len = program.mem_bufs[0].len;
        vec![
            swtensor::init::random_vec(a_len, 0x7A),
            swtensor::init::random_vec(self.batch * self.k * self.n, 0x7B),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut c = vec![0.0f32; self.batch * self.m * self.n];
        for i in 0..self.batch {
            let a = if self.shared_a {
                &inputs[0][..]
            } else {
                &inputs[0][i * self.m * self.k..(i + 1) * self.m * self.k]
            };
            let b = &inputs[1][i * self.k * self.n..(i + 1) * self.k * self.n];
            let ci = &mut c[i * self.m * self.n..(i + 1) * self.m * self.n];
            swtensor::gemm::gemm_rowmajor(self.m, self.n, self.k, a, b, ci);
        }
        c
    }

    fn flops(&self) -> u64 {
        2 * (self.batch * self.m * self.n * self.k) as u64
    }
}

/// Copy row `row` of `src` (viewed as `src_rows × len` row-major) into the
/// whole of `dst` (a `1 × len` buffer).
fn copy_in(
    src: swatop_ir::MemBufId,
    src_rows: usize,
    row: usize,
    len: usize,
    dst: swatop_ir::MemBufId,
) -> Stmt {
    Stmt::Transform(swatop_ir::TransformOp { fused: false,
        kind: swatop_ir::TransformKind::PadSubmatrix {
            src,
            src_rows,
            src_cols: len,
            r0: row,
            c0: 0,
            take_rows: 1,
            take_cols: len,
            dst,
            dst_rows: 1,
            dst_cols: len,
            zero_first: false,
        },
    })
}

/// Copy the whole of `src` (a `1 × len` buffer) into row `row` of `dst`
/// (viewed as `dst_rows × len` row-major).
fn copy_out(
    src: swatop_ir::MemBufId,
    len: usize,
    dst: swatop_ir::MemBufId,
    dst_rows: usize,
    row: usize,
) -> Stmt {
    Stmt::Transform(swatop_ir::TransformOp { fused: false,
        kind: swatop_ir::TransformKind::UnpadSubmatrix {
            src,
            src_rows: 1,
            src_cols: len,
            dst,
            dst_rows,
            dst_cols: len,
            r0: row,
            c0: 0,
            take_rows: 1,
            take_cols: len,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::verify_candidate;
    use crate::scheduler::Scheduler;
    use sw26010::MachineConfig;

    fn verify_some(op: &BatchedMatmulOp, max_points: usize) {
        let cfg = MachineConfig::default();
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            let Some(cand) = sched.lower_point(op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(err < 2e-3, "{}: err {err}", point.describe(&space));
            checked += 1;
            if checked >= max_points {
                break;
            }
        }
        assert!(checked > 0, "no valid candidate for {}", op.name());
    }

    #[test]
    fn unfused_batched_matmul_correct() {
        verify_some(&BatchedMatmulOp::new(3, 40, 48, 24), 3);
    }

    #[test]
    fn shared_a_fused_and_unfused_correct() {
        let op = BatchedMatmulOp::new(4, 32, 40, 16).with_shared_a();
        let cfg = MachineConfig::default();
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut fused = 0;
        let mut unfused = 0;
        for point in space.points() {
            let want_fused = point.toggle(&space, "fuse_batch");
            if (want_fused && fused >= 2) || (!want_fused && unfused >= 2) {
                continue;
            }
            let Some(cand) = sched.lower_point(&op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, &op, &cand).unwrap();
            assert!(err < 2e-3, "{}: err {err}", point.describe(&space));
            if want_fused {
                fused += 1;
            } else {
                unfused += 1;
            }
        }
        assert!(fused > 0 && unfused > 0);
    }

    #[test]
    fn fusion_beats_per_element_calls_for_small_n() {
        // Small per-element N: fusing into one wide GEMM amortises kernel
        // overheads — the paper's loop-fusion motivation.
        let cfg = MachineConfig::default();
        let op = BatchedMatmulOp::new(8, 32, 8, 32).with_shared_a();
        let sched = Scheduler::new(cfg.clone());
        let cands = sched.enumerate(&op);
        let best_fused = cands
            .iter()
            .filter(|c| c.describe.contains("fuse_batch=true"))
            .filter_map(|c| crate::tuner::run_candidate(&cfg, c).ok())
            .min();
        let best_unfused = cands
            .iter()
            .filter(|c| c.describe.contains("fuse_batch=false"))
            .filter_map(|c| crate::tuner::run_candidate(&cfg, c).ok())
            .min();
        let (Some(f), Some(u)) = (best_fused, best_unfused) else {
            panic!("both variants must produce candidates");
        };
        assert!(f < u, "fused {f} must beat unfused {u}");
    }
}
