//! Shared tiling and boundary-processing machinery (paper Sec. 4.5.3).
//!
//! A GEMM dimension of length `len` tiled by `tile` decomposes into `full`
//! whole tiles plus a tail. Three cases per the paper:
//!
//! * no tail — nothing to do;
//! * tail still satisfies the kernel alignment — **parameter switching**:
//!   the generated code calls the primitive with the smaller size at the
//!   boundary, reading directly from the source tensor;
//! * tail misaligned — **zero padding**: either *traditional* (copy the
//!   whole matrix into a freshly padded buffer) or *lightweight* (copy only
//!   the boundary strips into small auxiliary buffers and switch the DMA
//!   source at the boundary, "reducing the copy overhead").
//!
//! [`SrcFamily`] encapsulates a (possibly packed/transposed) matrix source
//! together with its strips and produces the per-tile `DMA_CG` nodes; the
//! operator lowerings emit one loop nest per segment combination, so no
//! per-iteration guards are needed in the hot loop.

use sw26010::DmaDirection;
use swatop_ir::{
    AffineExpr, DmaCg, MemBufId, MemRole, Program, ReplyId, SpmSlot, Stmt, TransformKind,
    TransformOp, VarId,
};

use crate::optimizer::boundary::round_up;

/// Tiling of one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimTiles {
    pub len: usize,
    pub tile: usize,
    pub align: usize,
    /// Whole tiles.
    pub full: usize,
    /// True tail length (`len % tile`).
    pub tail: usize,
    /// Kernel size of the tail tile (tail rounded up to `align`; 0 if no
    /// tail).
    pub tail_size: usize,
    /// Whether the tail needs zero padding (misaligned tail).
    pub tail_aux: bool,
}

impl DimTiles {
    pub fn new(len: usize, tile: usize, align: usize) -> Self {
        assert!(tile > 0 && align > 0 && tile.is_multiple_of(align), "tile must be aligned");
        let full = len / tile;
        let tail = len % tile;
        let tail_aux = tail > 0 && !tail.is_multiple_of(align);
        let tail_size = if tail > 0 { round_up(tail, align) } else { 0 };
        DimTiles { len, tile, align, full, tail, tail_size, tail_aux }
    }

    /// Length after padding the tail to its kernel size.
    pub fn padded_len(&self) -> usize {
        self.full * self.tile + self.tail_size
    }

    /// Number of tiles (segments' total count).
    pub fn count(&self) -> usize {
        self.full + (self.tail > 0) as usize
    }

    /// The segments of this dimension (full run, then optional tail).
    pub fn segs(&self) -> Vec<Seg> {
        let mut v = Vec::with_capacity(2);
        if self.full > 0 {
            v.push(Seg { count: self.full, size: self.tile, start: 0, stride: self.tile, aux: false });
        }
        if self.tail > 0 {
            v.push(Seg {
                count: 1,
                size: self.tail_size,
                start: self.full * self.tile,
                stride: self.tile,
                aux: self.tail_aux,
            });
        }
        v
    }

    /// A copy with the tail marked directly readable (used after
    /// traditional whole-matrix padding: the padded buffer holds real
    /// zeros, so no aux strip is needed).
    fn materialised(&self) -> DimTiles {
        DimTiles { len: self.padded_len(), tail: self.tail_size, tail_aux: false, ..*self }
    }
}

/// One run of equally-sized tiles along a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Loop trip count.
    pub count: usize,
    /// Kernel size of each tile in this segment.
    pub size: usize,
    /// Element offset of the segment start in the stored buffer.
    pub start: usize,
    /// Distance between consecutive tiles.
    pub stride: usize,
    /// Tiles of this segment read/write an auxiliary padded strip.
    pub aux: bool,
}

/// A tiled matrix source/destination with boundary strips. Coordinates are
/// those of the *stored* row-major buffer (for a packed `Xᵀ` operand the
/// stored rows are the logical columns; `mesh_swap` keeps the GEMM block
/// distribution right).
#[derive(Debug, Clone)]
pub struct SrcFamily {
    pub main: MemBufId,
    /// Row pitch of `main` in elements.
    pub main_cols: usize,
    /// Row-tail strip `(r.tail_size × c.padded_len)`, holding the bottom
    /// boundary (and the corner).
    pub bottom: Option<MemBufId>,
    /// Column-tail strip `(direct_rows × c.tail_size)` for interior rows.
    pub right: Option<MemBufId>,
    pub r: DimTiles,
    pub c: DimTiles,
    pub mesh_swap: bool,
}

/// Padding strategy for misaligned tails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadMode {
    /// Copy only the boundary strips (swATOP's scheme).
    Lightweight,
    /// Copy the whole matrix into a padded buffer.
    Traditional,
}

impl SrcFamily {
    /// Build an *input* family over `src` (stored `r.len × c.len`
    /// row-major), returning the family plus the setup transforms that
    /// materialise padded copies. `src` must already be the packed form if
    /// `mesh_swap` layouts are used.
    pub fn input(
        p: &mut Program,
        name: &str,
        src: MemBufId,
        r: DimTiles,
        c: DimTiles,
        mesh_swap: bool,
        mode: PadMode,
    ) -> (SrcFamily, Vec<Stmt>) {
        let mut setup = Vec::new();
        if (r.tail_aux || c.tail_aux) && mode == PadMode::Traditional {
            let padded =
                p.mem_buf(format!("{name}_padded"), r.padded_len() * c.padded_len(), MemRole::Temp);
            setup.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::PadSubmatrix {
                    src,
                    src_rows: r.len,
                    src_cols: c.len,
                    r0: 0,
                    c0: 0,
                    take_rows: r.len,
                    take_cols: c.len,
                    dst: padded,
                    dst_rows: r.padded_len(),
                    dst_cols: c.padded_len(),
                    zero_first: true,
                },
            }));
            let fam = SrcFamily {
                main: padded,
                main_cols: c.padded_len(),
                bottom: None,
                right: None,
                r: r.materialised(),
                c: c.materialised(),
                mesh_swap,
            };
            return (fam, setup);
        }
        let mut bottom = None;
        if r.tail_aux {
            let strip =
                p.mem_buf(format!("{name}_bottom"), r.tail_size * c.padded_len(), MemRole::Temp);
            setup.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::PadSubmatrix {
                    src,
                    src_rows: r.len,
                    src_cols: c.len,
                    r0: r.full * r.tile,
                    c0: 0,
                    take_rows: r.tail,
                    take_cols: c.len,
                    dst: strip,
                    dst_rows: r.tail_size,
                    dst_cols: c.padded_len(),
                    zero_first: true,
                },
            }));
            bottom = Some(strip);
        }
        let mut right = None;
        if c.tail_aux {
            let direct_rows = Self::direct_rows(&r);
            if direct_rows > 0 {
                let strip =
                    p.mem_buf(format!("{name}_right"), direct_rows * c.tail_size, MemRole::Temp);
                setup.push(Stmt::Transform(TransformOp { fused: false,
                    kind: TransformKind::PadSubmatrix {
                        src,
                        src_rows: r.len,
                        src_cols: c.len,
                        r0: 0,
                        c0: c.full * c.tile,
                        take_rows: direct_rows,
                        take_cols: c.tail,
                        dst: strip,
                        dst_rows: direct_rows,
                        dst_cols: c.tail_size,
                        zero_first: true,
                    },
                }));
                right = Some(strip);
            }
        }
        (SrcFamily { main: src, main_cols: c.len, bottom, right, r, c, mesh_swap }, setup)
    }

    /// Build an *output* family over `dst`: tiles are written through the
    /// family and the returned teardown transforms copy strip contents back
    /// into `dst` (un-padding).
    pub fn output(
        p: &mut Program,
        name: &str,
        dst: MemBufId,
        r: DimTiles,
        c: DimTiles,
        mode: PadMode,
    ) -> (SrcFamily, Vec<Stmt>, Vec<Stmt>) {
        let mut teardown = Vec::new();
        if (r.tail_aux || c.tail_aux) && mode == PadMode::Traditional {
            let padded =
                p.mem_buf(format!("{name}_padded"), r.padded_len() * c.padded_len(), MemRole::Temp);
            teardown.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::UnpadSubmatrix {
                    src: padded,
                    src_rows: r.padded_len(),
                    src_cols: c.padded_len(),
                    dst,
                    dst_rows: r.len,
                    dst_cols: c.len,
                    r0: 0,
                    c0: 0,
                    take_rows: r.len,
                    take_cols: c.len,
                },
            }));
            let fam = SrcFamily {
                main: padded,
                main_cols: c.padded_len(),
                bottom: None,
                right: None,
                r: r.materialised(),
                c: c.materialised(),
                mesh_swap: false,
            };
            return (fam, Vec::new(), teardown);
        }
        let mut bottom = None;
        if r.tail_aux {
            let strip =
                p.mem_buf(format!("{name}_bottom"), r.tail_size * c.padded_len(), MemRole::Temp);
            teardown.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::UnpadSubmatrix {
                    src: strip,
                    src_rows: r.tail_size,
                    src_cols: c.padded_len(),
                    dst,
                    dst_rows: r.len,
                    dst_cols: c.len,
                    r0: r.full * r.tile,
                    c0: 0,
                    take_rows: r.tail,
                    take_cols: c.len,
                },
            }));
            bottom = Some(strip);
        }
        let mut right = None;
        if c.tail_aux {
            let direct_rows = Self::direct_rows(&r);
            if direct_rows > 0 {
                let strip =
                    p.mem_buf(format!("{name}_right"), direct_rows * c.tail_size, MemRole::Temp);
                teardown.push(Stmt::Transform(TransformOp { fused: false,
                    kind: TransformKind::UnpadSubmatrix {
                        src: strip,
                        src_rows: direct_rows,
                        src_cols: c.tail_size,
                        dst,
                        dst_rows: r.len,
                        dst_cols: c.len,
                        r0: 0,
                        c0: c.full * c.tile,
                        take_rows: direct_rows,
                        take_cols: c.tail,
                    },
                }));
                right = Some(strip);
            }
        }
        let fam =
            SrcFamily { main: dst, main_cols: c.len, bottom, right, r, c, mesh_swap: false };
        (fam, Vec::new(), teardown)
    }

    /// Rows directly readable from the stored buffer (everything except an
    /// aux row tail).
    fn direct_rows(r: &DimTiles) -> usize {
        r.full * r.tile + if r.tail_aux { 0 } else { r.tail }
    }

    /// The `DMA_CG` node transferring tile (`seg_r[var_r]`, `seg_c[var_c]`).
    /// `var_*` are the segment loop variables (absent for count-1 tails).
    #[allow(clippy::too_many_arguments)]
    pub fn tile_dma(
        &self,
        seg_r: &Seg,
        seg_c: &Seg,
        var_r: Option<VarId>,
        var_c: Option<VarId>,
        direction: DmaDirection,
        spm: SpmSlot,
        reply: ReplyId,
    ) -> DmaCg {
        let (buf, width, row0, col0) = if seg_r.aux {
            // Bottom strip: rows re-based to 0, columns keep padded coords.
            (self.bottom.expect("bottom strip exists"), self.c.padded_len(), 0, seg_c.start)
        } else if seg_c.aux {
            // Right strip: columns re-based to 0, rows keep coords.
            (self.right.expect("right strip exists"), self.c.tail_size, seg_r.start, 0)
        } else {
            (self.main, self.main_cols, seg_r.start, seg_c.start)
        };
        let mut offset = AffineExpr::konst((row0 * width + col0) as i64);
        if let Some(v) = var_r {
            offset = offset.add_term(swatop_ir::AVar::Loop(v), (seg_r.stride * width) as i64);
        }
        if let Some(v) = var_c {
            offset = offset.add_term(swatop_ir::AVar::Loop(v), seg_c.stride as i64);
        }
        DmaCg {
            buf,
            offset,
            rows: seg_r.size,
            cols: seg_c.size,
            row_stride: width,
            mesh_swap: self.mesh_swap,
            direction,
            spm,
            reply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_tiles_cases() {
        // Exact fit.
        let d = DimTiles::new(256, 64, 32);
        assert_eq!((d.full, d.tail, d.tail_size, d.tail_aux), (4, 0, 0, false));
        assert_eq!(d.count(), 4);
        assert_eq!(d.segs().len(), 1);
        // Aligned tail → parameter switching.
        let d = DimTiles::new(96, 64, 32);
        assert_eq!((d.full, d.tail, d.tail_size, d.tail_aux), (1, 32, 32, false));
        assert_eq!(d.segs().len(), 2);
        assert!(!d.segs()[1].aux);
        // Misaligned tail → padding.
        let d = DimTiles::new(200, 64, 32);
        assert_eq!((d.full, d.tail, d.tail_size, d.tail_aux), (3, 8, 32, true));
        assert_eq!(d.padded_len(), 224);
        assert!(d.segs()[1].aux);
        // Tiny dimension: tail only.
        let d = DimTiles::new(20, 64, 32);
        assert_eq!((d.full, d.tail, d.tail_size), (0, 20, 32));
        assert_eq!(d.segs().len(), 1);
        assert!(d.segs()[0].aux);
    }

    #[test]
    fn lightweight_family_builds_strips() {
        let mut p = Program::new("t");
        let src = p.mem_buf("A", 200 * 100, MemRole::Input);
        let r = DimTiles::new(200, 64, 32);
        let c = DimTiles::new(100, 32, 8);
        // c tail = 4, misaligned vs 8 → right strip; r tail = 8 vs 32 → bottom.
        let (fam, setup) = SrcFamily::input(&mut p, "A", src, r, c, false, PadMode::Lightweight);
        assert!(fam.bottom.is_some());
        assert!(fam.right.is_some());
        assert_eq!(setup.len(), 2);
        // Strip sizes.
        let bottom_len = p.mem_bufs[fam.bottom.unwrap().0].len;
        assert_eq!(bottom_len, 32 * c.padded_len());
        let right_len = p.mem_bufs[fam.right.unwrap().0].len;
        assert_eq!(right_len, 192 * 8);
    }

    #[test]
    fn traditional_family_pads_whole_matrix() {
        let mut p = Program::new("t");
        let src = p.mem_buf("A", 200 * 100, MemRole::Input);
        let r = DimTiles::new(200, 64, 32);
        let c = DimTiles::new(100, 32, 8);
        let (fam, setup) = SrcFamily::input(&mut p, "A", src, r, c, false, PadMode::Traditional);
        assert!(fam.bottom.is_none() && fam.right.is_none());
        assert_eq!(setup.len(), 1);
        assert_ne!(fam.main, src);
        assert_eq!(p.mem_bufs[fam.main.0].len, 224 * 104);
        // After materialisation the tails read directly.
        assert!(!fam.r.tail_aux && !fam.c.tail_aux);
        assert_eq!(fam.r.tail, 32);
    }

    #[test]
    fn aligned_family_needs_nothing() {
        let mut p = Program::new("t");
        let src = p.mem_buf("A", 256 * 128, MemRole::Input);
        let r = DimTiles::new(256, 64, 32);
        let c = DimTiles::new(128, 32, 8);
        let (fam, setup) = SrcFamily::input(&mut p, "A", src, r, c, false, PadMode::Lightweight);
        assert!(setup.is_empty());
        assert_eq!(fam.main, src);
        assert!(fam.bottom.is_none() && fam.right.is_none());
    }

    #[test]
    fn tile_dma_offsets() {
        let mut p = Program::new("t");
        let src = p.mem_buf("A", 256 * 128, MemRole::Input);
        let r = DimTiles::new(256, 64, 32);
        let c = DimTiles::new(128, 32, 8);
        let (fam, _) = SrcFamily::input(&mut p, "A", src, r, c, false, PadMode::Lightweight);
        let reply = p.fresh_reply();
        let sr = &r.segs()[0];
        let sc = &c.segs()[0];
        let spm = SpmSlot::Single(p.spm_buf("s", 64 * 32 / 64));
        let d = fam.tile_dma(sr, sc, Some(0), Some(1), DmaDirection::MemToSpm, spm, reply);
        // offset = v0 * 64*128 + v1 * 32.
        assert_eq!(d.offset.coeff(swatop_ir::AVar::Loop(0)), 64 * 128);
        assert_eq!(d.offset.coeff(swatop_ir::AVar::Loop(1)), 32);
        assert_eq!((d.rows, d.cols, d.row_stride), (64, 32, 128));
    }
}
