//! Explicit-GEMM (im2col) convolution (paper Fig. 2, left).
//!
//! "First expands the image into a column matrix (the *im2col* process),
//! and performs a matrix-multiplication operation on the column matrix and
//! the filter matrix." The resulting GEMM
//!
//! ```text
//! prod (No × B·Ro·Co) = weight (No × Ni·Kr·Kc) · cols (Ni·Kr·Kc × B·Ro·Co)
//! ```
//!
//! is tuned with the full matmul schedule space — including the boundary
//! machinery, since `B·Ro·Co` and `Ni·Kr·Kc` are rarely aligned. This is
//! the fallback method for strided/odd layers the other two methods cannot
//! handle, at the cost of materialising the column matrix.

use swatop_dsl::{SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{MemRole, Program, Stmt, TransformKind, TransformOp};
use swtensor::ConvShape;

use crate::ops::matmul::{lower_matmul_body, MatmulKnobs};
use crate::ops::tiling::PadMode;
use crate::scheduler::Operator;

/// Explicit-GEMM convolution operator instance.
#[derive(Debug, Clone)]
pub struct ExplicitConvOp {
    pub shape: ConvShape,
    pub pad_mode: PadMode,
}

impl ExplicitConvOp {
    pub fn new(shape: ConvShape) -> Self {
        ExplicitConvOp { shape, pad_mode: PadMode::Lightweight }
    }

    /// GEMM dimensions `(M, N, K)` of the expanded problem.
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        let s = &self.shape;
        (s.no, s.b * s.ro * s.co, s.ni * s.kr * s.kc)
    }
}

impl Operator for ExplicitConvOp {
    fn name(&self) -> String {
        let s = &self.shape;
        format!("explicit_conv_b{}_ni{}_no{}_r{}x{}", s.b, s.ni, s.no, s.ro, s.co)
    }

    fn seed(&self) -> Seed {
        Seed::explicit_conv(self.name(), self.shape)
    }

    fn space(&self) -> ScheduleSpace {
        let (m, n, k) = self.gemm_dims();
        MatmulKnobs::space(m, n, k)
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        let knobs = MatmulKnobs::from_point(space, point);
        let s = &self.shape;
        let mut p = Program::new(self.name());
        let in_buf = p.mem_buf("in", s.input_shape().numel(), MemRole::Input);
        let w_buf = p.mem_buf("weight", s.weight_shape().numel(), MemRole::Input);
        let out_buf = p.mem_buf("out", s.output_shape().numel(), MemRole::Output);
        let body =
            lower_explicit_body(&mut p, s, in_buf, w_buf, out_buf, &knobs, self.pad_mode)?;
        p.body = Stmt::seq(body);
        Some(p)
    }

    fn input_data(&self, _program: &Program) -> Vec<Vec<f32>> {
        vec![
            swtensor::init::random_vec(self.shape.input_shape().numel(), 0x3E),
            swtensor::init::random_vec(self.shape.weight_shape().numel(), 0x4E),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let input = swtensor::Tensor::from_vec(
            self.shape.input_shape().dims().to_vec(),
            inputs[0].clone(),
        );
        let weight = swtensor::Tensor::from_vec(
            self.shape.weight_shape().dims().to_vec(),
            inputs[1].clone(),
        );
        swtensor::conv::conv2d_ref(&self.shape, &input, &weight).into_vec()
    }

    fn flops(&self) -> u64 {
        self.shape.flops()
    }
}


/// Lower the explicit-GEMM convolution body against caller-declared
/// buffers: im2col, the tuned GEMM, and the NCHW reorder. Shared with the
/// backward-data operator, which runs the same structure on the gradient
/// geometry after rotating the filter.
pub fn lower_explicit_body(
    p: &mut Program,
    s: &ConvShape,
    in_buf: swatop_ir::MemBufId,
    w_buf: swatop_ir::MemBufId,
    out_buf: swatop_ir::MemBufId,
    knobs: &MatmulKnobs,
    pad_mode: PadMode,
) -> Option<Vec<Stmt>> {
    let (m, n, k) = (s.no, s.b * s.ro * s.co, s.ni * s.kr * s.kc);
    let cols = p.mem_buf("cols", k * n, MemRole::Temp);
    let prod = p.mem_buf("prod", m * n, MemRole::Temp);
    let im2col = Stmt::Transform(TransformOp { fused: false,
        kind: TransformKind::Im2col { shape: *s, src: in_buf, dst: cols },
    });
    // The weight tensor [No][Ni][Kr][Kc] *is* the No × K filter matrix.
    let gemm_body = lower_matmul_body(p, knobs, w_buf, cols, prod, m, n, k, pad_mode)?;
    // prod is No × (B·Ro·Co) = [No][B][Ro][Co]; output is NCHW.
    let reorder = Stmt::Transform(TransformOp { fused: false,
        kind: TransformKind::PackTensor {
            src: prod,
            dst: out_buf,
            src_dims: vec![s.no, s.b, s.ro, s.co],
            perm: vec![1, 0, 2, 3],
        },
    });
    let mut body = vec![im2col];
    body.extend(gemm_body);
    body.push(reorder);
    Some(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::verify_candidate;
    use crate::scheduler::Scheduler;
    use sw26010::MachineConfig;

    fn verify_some(shape: ConvShape, max_points: usize) {
        let cfg = MachineConfig::default();
        let op = ExplicitConvOp::new(shape);
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            let Some(cand) = sched.lower_point(&op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, &op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(err < 2e-3, "{}: max err {err}", point.describe(&space));
            checked += 1;
            if checked >= max_points {
                break;
            }
        }
        assert!(checked > 0, "no valid candidates for {shape:?}");
    }

    #[test]
    fn small_conv_correct() {
        // K' = 16·9 = 144 (not 32-aligned), N' = 2·16 = 32.
        verify_some(ConvShape::square(2, 16, 16, 4), 5);
    }

    #[test]
    fn strided_conv_correct() {
        // Implicit cannot do stride 2; explicit must.
        let shape = ConvShape { b: 2, ni: 8, no: 16, ro: 4, co: 4, kr: 3, kc: 3, stride: 2, pad: 0 };
        verify_some(shape, 3);
    }

    #[test]
    fn tiny_channel_first_layer_correct() {
        // Ni = 3 (an RGB first layer): only the explicit method applies.
        let shape = ConvShape { b: 4, ni: 3, no: 16, ro: 6, co: 6, kr: 3, kc: 3, stride: 1, pad: 1 };
        verify_some(shape, 3);
    }

    #[test]
    fn gemm_dims_formula() {
        let op = ExplicitConvOp::new(ConvShape::square(32, 64, 128, 28));
        assert_eq!(op.gemm_dims(), (128, 32 * 28 * 28, 64 * 9));
    }
}
