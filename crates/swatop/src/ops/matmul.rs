//! Matrix multiplication operator: `C = A·B` with arbitrary (unaligned)
//! dimensions.
//!
//! Schedule space (the xMath comparison of Tab. 2 sweeps this):
//!
//! * `t_m`, `t_n`, `t_k` — tile sizes (FactorVar-style candidates);
//! * `layout` — SPM layouts of A and B (`r`ow/`c`olumn-major each);
//!   column-major operands are materialised by a one-time `PackTensor`
//!   transpose in main memory (the layout transformation of Sec. 4.3.2);
//! * `vec_m` — vectorise the M or the N loop (Sec. 4.3.3);
//! * `order` — `m`-outer or `n`-outer tile loop (a reorder candidate).
//!
//! Boundary processing follows Sec. 4.5.3 through [`tiling::SrcFamily`]:
//! aligned tails use parameter switching, misaligned tails use lightweight
//! (or, for the Fig. 11 baseline, traditional) zero padding. Each segment
//! combination lowers to its own loop nest, so the hot interior nest stays
//! guard-free and prefetchable.

use sw26010::DmaDirection::{MemToSpm, SpmToMem};
use swatop_dsl::{SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{
    AffineExpr, GemmOp, MatDesc, MemRole, Program, SpmSlot, Stmt, TransformKind, TransformOp,
};
use swkernels::VecDim;
use swtensor::MatLayout;

use crate::ops::tiling::{DimTiles, PadMode, SrcFamily};
use crate::ops::DmaKnobs;
use crate::scheduler::Operator;

/// SPM-resident operand reuse: keep one operand's whole-K panel resident
/// across inner tile steps, so it is fetched once per outer tile instead of
/// once per (m, n, k) step. `A` pairs with `mn` order (the A panel is
/// invariant over the inner n loop), `B` with `nm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resident {
    None,
    A,
    B,
}

/// Unroll bound for the k loop under resident reuse (each k step becomes
/// its own GEMM call reading its own resident SPM slot).
const MAX_RESIDENT_UNROLL: usize = 16;

/// Matrix-multiplication operator instance.
#[derive(Debug, Clone)]
pub struct MatmulOp {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub pad_mode: PadMode,
}

impl MatmulOp {
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        MatmulOp { m, n, k, pad_mode: PadMode::Lightweight }
    }

    pub fn with_pad_mode(mut self, mode: PadMode) -> Self {
        self.pad_mode = mode;
        self
    }
}

/// Tile-size candidates for a dimension: aligned sizes that keep the tile
/// count manageable (the "prior knowledge" pruning of the search space the
/// paper advocates — tiny tiles on huge matrices are never competitive and
/// only slow tuning down).
pub fn tile_menu(len: usize, align: usize, menu: &[usize], max_count: usize) -> Vec<usize> {
    let single = crate::optimizer::boundary::round_up(len.max(1), align).max(align);
    let mut out: Vec<usize> = menu
        .iter()
        .copied()
        .filter(|&t| t % align == 0)
        .filter(|&t| t <= single)
        .filter(|&t| len.div_ceil(t) <= max_count)
        .collect();
    // The whole-dimension tile is a first-class candidate for small dims —
    // on small matrices a single padded tile beats any tiling.
    if single <= 512 && !out.contains(&single) {
        out.push(single);
    }
    if out.is_empty() {
        out.push(single);
    }
    out
}

const M_MENU: &[usize] = &[32, 64, 128, 256];
const N_MENU: &[usize] = &[32, 64, 128, 256, 512];
const K_MENU: &[usize] = &[8, 16, 32, 64, 128, 256];
const MAX_TILES_PER_DIM: usize = 4096;

impl Operator for MatmulOp {
    fn name(&self) -> String {
        format!("matmul_{}x{}x{}", self.m, self.n, self.k)
    }

    fn seed(&self) -> Seed {
        Seed::matmul(self.name(), self.m, self.n, self.k)
    }

    fn space(&self) -> ScheduleSpace {
        let mut s = ScheduleSpace::new();
        s.factor("t_m", tile_menu(self.m, 32, M_MENU, MAX_TILES_PER_DIM));
        s.factor("t_n", tile_menu(self.n, 32, N_MENU, MAX_TILES_PER_DIM));
        s.factor("t_k", tile_menu(self.k, 8, K_MENU, MAX_TILES_PER_DIM));
        s.choice(
            "layout",
            vec!["rr".into(), "cr".into(), "rc".into(), "cc".into()],
        );
        s.toggle("vec_m");
        s.choice("order", vec!["mn".into(), "nm".into()]);
        DmaKnobs::add_toggles(&mut s);
        s.choice("resident", vec!["none".into(), "a".into(), "b".into()]);
        s
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        let knobs = MatmulKnobs::from_point(space, point);
        let mut p = Program::new(self.name());
        let a_buf = p.mem_buf("A", self.m * self.k, MemRole::Input);
        let b_buf = p.mem_buf("B", self.k * self.n, MemRole::Input);
        let c_buf = p.mem_buf("C", self.m * self.n, MemRole::Output);
        let body = lower_matmul_body(
            &mut p, &knobs, a_buf, b_buf, c_buf, self.m, self.n, self.k, self.pad_mode,
        )?;
        p.body = Stmt::seq(body);
        Some(p)
    }

    fn input_data(&self, _program: &Program) -> Vec<Vec<f32>> {
        vec![
            swtensor::init::random_vec(self.m * self.k, 0xA),
            swtensor::init::random_vec(self.k * self.n, 0xB),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut c = vec![0.0f32; self.m * self.n];
        swtensor::gemm::gemm_rowmajor(self.m, self.n, self.k, &inputs[0], &inputs[1], &mut c);
        c
    }

    fn flops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

/// The parsed matmul schedule knobs (shared with the explicit-GEMM
/// convolution, which tunes the same space over its im2col matrices).
#[derive(Debug, Clone, Copy)]
pub struct MatmulKnobs {
    pub t_m: usize,
    pub t_n: usize,
    pub t_k: usize,
    pub a_col: bool,
    pub b_col: bool,
    pub vec_m: bool,
    pub n_outer: bool,
    /// The DMA-wall dimensions (double buffering, coalescing, broadcast).
    pub dma: DmaKnobs,
    /// SPM-resident operand reuse.
    pub resident: Resident,
}

impl MatmulKnobs {
    pub fn from_point(space: &ScheduleSpace, point: &SchedulePoint) -> Self {
        let layout = point.choice(space, "layout");
        let resident = if space.has_knob("resident") {
            match point.choice(space, "resident") {
                "a" => Resident::A,
                "b" => Resident::B,
                _ => Resident::None,
            }
        } else {
            Resident::None
        };
        MatmulKnobs {
            t_m: point.factor(space, "t_m"),
            t_n: point.factor(space, "t_n"),
            t_k: point.factor(space, "t_k"),
            a_col: layout.as_bytes()[0] == b'c',
            b_col: layout.as_bytes()[1] == b'c',
            vec_m: point.toggle(space, "vec_m"),
            n_outer: point.choice(space, "order") == "nm",
            dma: DmaKnobs::from_point(space, point),
            resident,
        }
    }

    /// The standard matmul schedule space over the given dimensions (the
    /// compact `dma` ladder; used by the convolution operators that tune
    /// the same GEMM space over their materialised matrices).
    pub fn space(m: usize, n: usize, k: usize) -> ScheduleSpace {
        let mut s = ScheduleSpace::new();
        s.factor("t_m", tile_menu(m, 32, M_MENU, MAX_TILES_PER_DIM));
        s.factor("t_n", tile_menu(n, 32, N_MENU, MAX_TILES_PER_DIM));
        s.factor("t_k", tile_menu(k, 8, K_MENU, MAX_TILES_PER_DIM));
        s.choice("layout", vec!["rr".into(), "cr".into(), "rc".into(), "cc".into()]);
        s.toggle("vec_m");
        s.choice("order", vec!["mn".into(), "nm".into()]);
        DmaKnobs::add_compact(&mut s);
        s
    }
}

/// Lower the tiled GEMM `c_buf = a_buf · b_buf` (row-major `m×k`, `k×n`,
/// `m×n` main-memory matrices already declared in `p`) into a statement
/// list, including layout packs, boundary strips and teardown.
#[allow(clippy::too_many_arguments)]
pub fn lower_matmul_body(
    p: &mut Program,
    knobs: &MatmulKnobs,
    a_buf: swatop_ir::MemBufId,
    b_buf: swatop_ir::MemBufId,
    c_buf: swatop_ir::MemBufId,
    m: usize,
    n: usize,
    k: usize,
    pad_mode: PadMode,
) -> Option<Vec<Stmt>> {
    lower_matmul_body_with_spm(p, knobs, a_buf, b_buf, c_buf, m, n, k, pad_mode, None)
}

/// Like [`lower_matmul_body`] but reusing caller-provided SPM tile buffers
/// (`[a, b, c]`) — several GEMMs in one program (e.g. Winograd's batch of
/// library calls) share the scratch pad instead of multiplying it.
#[allow(clippy::too_many_arguments)]
pub fn lower_matmul_body_with_spm(
    p: &mut Program,
    knobs: &MatmulKnobs,
    a_buf: swatop_ir::MemBufId,
    b_buf: swatop_ir::MemBufId,
    c_buf: swatop_ir::MemBufId,
    m: usize,
    n: usize,
    k: usize,
    pad_mode: PadMode,
    spm_reuse: Option<[swatop_ir::SpmBufId; 3]>,
) -> Option<Vec<Stmt>> {
    let &MatmulKnobs { t_m, t_n, t_k, a_col, b_col, vec_m, n_outer, dma, resident } = knobs;
    p.hints = dma.hints();

    // Alignment of the vectorised dimension is 32 (mesh × vector width);
    // the other GEMM dims need mesh alignment only.
    let align_m = if vec_m { 32 } else { 8 };
    let align_n = if vec_m { 8 } else { 32 };
    let m_tiles = DimTiles::new(m, t_m, align_m);
    let n_tiles = DimTiles::new(n, t_n, align_n);
    let k_tiles = DimTiles::new(k, t_k, 8);

    // Resident reuse keeps one operand's whole-K run of tiles in SPM: the k
    // dimension must be a single unrollable segment, the resident operand
    // row-major (no mesh swap), and the loop order must make the panel
    // invariant over the inner tile loop.
    if resident != Resident::None {
        let eligible = k_tiles.segs().len() == 1
            && !k_tiles.segs()[0].aux
            && k_tiles.segs()[0].count <= MAX_RESIDENT_UNROLL
            && spm_reuse.is_none()
            && match resident {
                Resident::A => !a_col && !n_outer,
                Resident::B => !b_col && n_outer,
                Resident::None => unreachable!(),
            };
        if !eligible {
            return None;
        }
    }

    // Prune pathological candidates: too many tile iterations.
    let iters = m_tiles.count() * n_tiles.count() * k_tiles.count();
    if iters > 500_000 {
        return None;
    }

    {
        let mut setup: Vec<Stmt> = Vec::new();

        // Layout transformation: pack transposes once in main memory.
        let (a_src, a_r, a_c, a_swap) = if a_col {
            let at = p.mem_buf("A_t", m * k, MemRole::Temp);
            setup.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::PackTensor {
                    src: a_buf,
                    dst: at,
                    src_dims: vec![m, k],
                    perm: vec![1, 0],
                },
            }));
            (at, k_tiles, m_tiles, true)
        } else {
            (a_buf, m_tiles, k_tiles, false)
        };
        let (b_src, b_r, b_c, b_swap) = if b_col {
            let bt = p.mem_buf("B_t", k * n, MemRole::Temp);
            setup.push(Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::PackTensor {
                    src: b_buf,
                    dst: bt,
                    src_dims: vec![k, n],
                    perm: vec![1, 0],
                },
            }));
            (bt, n_tiles, k_tiles, true)
        } else {
            (b_buf, k_tiles, n_tiles, false)
        };

        let (a_fam, a_setup) =
            SrcFamily::input(p, "A", a_src, a_r, a_c, a_swap, pad_mode);
        let (b_fam, b_setup) =
            SrcFamily::input(p, "B", b_src, b_r, b_c, b_swap, pad_mode);
        let (c_fam, c_setup, c_teardown) =
            SrcFamily::output(p, "C", c_buf, m_tiles, n_tiles, pad_mode);
        setup.extend(a_setup);
        setup.extend(b_setup);
        setup.extend(c_setup);

        // SPM buffers sized for the largest tile (shared when provided).
        let [spm_a, spm_b, spm_c] = spm_reuse.unwrap_or_else(|| {
            [
                p.spm_buf("spm_a", (t_m / 8) * (t_k / 8)),
                p.spm_buf("spm_b", (t_k / 8) * (t_n / 8)),
                p.spm_buf("spm_c", (t_m / 8) * (t_n / 8)),
            ]
        });
        let r_in = p.fresh_reply();
        let r_cget = p.fresh_reply();
        let r_cput = p.fresh_reply();

        let vd = if vec_m { VecDim::M } else { VecDim::N };
        let mut nests: Vec<Stmt> = Vec::new();

        // One loop nest per segment combination — boundary processing by
        // parameter switching, not per-iteration guards.
        // Segment lists of the *logical* m/n/k dims come from the families'
        // materialised tilings (traditional padding changes them).
        let m_segs = c_fam.r.segs();
        let n_segs = c_fam.c.segs();
        let k_segs = if a_swap { a_fam.r.segs() } else { a_fam.c.segs() };

        // Resident reuse: one SPM slot per k step of the resident operand,
        // all filled once per outer tile. Every slot carries a *normal*
        // streamed tile (same mesh distribution the GEMM primitive expects),
        // so residency changes only when tiles are fetched, never how they
        // are laid out.
        let panel_slots: Vec<swatop_ir::SpmBufId> = if resident == Resident::None {
            Vec::new()
        } else {
            // Re-check unrollability against the *materialised* k tiling
            // (traditional padding can change the segment list).
            if k_segs.len() != 1 || k_segs[0].aux || k_segs[0].count > MAX_RESIDENT_UNROLL {
                return None;
            }
            let per = match resident {
                Resident::A => (t_m / 8) * (t_k / 8),
                Resident::B => (t_k / 8) * (t_n / 8),
                Resident::None => unreachable!(),
            };
            (0..k_segs[0].count).map(|ki| p.spm_buf(format!("spm_panel{ki}"), per)).collect()
        };

        for sm in &m_segs {
            for sn in &n_segs {
                for sk in &k_segs {
                    let vm = p.fresh_var("vm");
                    let vn = p.fresh_var("vn");
                    let vk = p.fresh_var("vk");

                    let (a_sr, a_sc, a_vr, a_vc) = if a_swap {
                        (sk, sm, vk, vm)
                    } else {
                        (sm, sk, vm, vk)
                    };
                    let (b_sr, b_sc, b_vr, b_vc) = if b_swap {
                        (sn, sk, vn, vk)
                    } else {
                        (sk, sn, vk, vn)
                    };

                    let a_get = Stmt::DmaCg(a_fam.tile_dma(
                        a_sr, a_sc, Some(a_vr), Some(a_vc),
                        MemToSpm, SpmSlot::Single(spm_a), r_in,
                    ));
                    let b_get = Stmt::DmaCg(b_fam.tile_dma(
                        b_sr, b_sc, Some(b_vr), Some(b_vc),
                        MemToSpm, SpmSlot::Single(spm_b), r_in,
                    ));
                    let (m_cur, n_cur, k_cur) = (sm.size, sn.size, sk.size);
                    let gemm = Stmt::Gemm(GemmOp {
                        m: m_cur,
                        n: n_cur,
                        k: k_cur,
                        alpha: 1.0,
                        beta: 1.0,
                        a: MatDesc::new(
                            SpmSlot::Single(spm_a),
                            if a_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                            if a_col { m_cur / 8 } else { k_cur / 8 },
                        ),
                        b: MatDesc::new(
                            SpmSlot::Single(spm_b),
                            if b_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                            if b_col { k_cur / 8 } else { n_cur / 8 },
                        ),
                        c: MatDesc::new(SpmSlot::Single(spm_c), MatLayout::RowMajor, n_cur / 8),
                        vd,
                    });

                    let c_get = Stmt::DmaCg(c_fam.tile_dma(
                        sm, sn, Some(vm), Some(vn),
                        MemToSpm, SpmSlot::Single(spm_c), r_cget,
                    ));
                    let c_put = Stmt::DmaCg(c_fam.tile_dma(
                        sm, sn, Some(vm), Some(vn),
                        SpmToMem, SpmSlot::Single(spm_c), r_cput,
                    ));

                    let nest = if resident == Resident::None {
                        let k_loop = Stmt::for_(
                            vk,
                            sk.count,
                            Stmt::seq(vec![
                                a_get,
                                b_get,
                                Stmt::DmaWait { reply: r_in, times: 2 },
                                gemm,
                            ]),
                        );
                        let tile_body = Stmt::seq(vec![
                            c_get,
                            Stmt::DmaWait { reply: r_cget, times: 1 },
                            k_loop,
                            c_put,
                            Stmt::DmaWait { reply: r_cput, times: 1 },
                        ]);
                        if n_outer {
                            Stmt::for_(vn, sn.count, Stmt::for_(vm, sm.count, tile_body))
                        } else {
                            Stmt::for_(vm, sm.count, Stmt::for_(vn, sn.count, tile_body))
                        }
                    } else {
                        // Resident reuse: fetch every k-step tile of the
                        // resident operand once per outer tile, each into its
                        // own SPM slot; the unrolled k steps stream only the
                        // other operand and point their GEMM at the step's
                        // resident slot.
                        let k_at = |ki: usize| AffineExpr::konst(ki as i64);
                        let mut outer_steps: Vec<Stmt> = Vec::new();
                        for (ki, &slot) in panel_slots.iter().enumerate().take(sk.count) {
                            let mut g = match resident {
                                Resident::A => a_fam.tile_dma(
                                    a_sr, a_sc, Some(a_vr), Some(a_vc),
                                    MemToSpm, SpmSlot::Single(slot), r_in,
                                ),
                                Resident::B => b_fam.tile_dma(
                                    b_sr, b_sc, Some(b_vr), Some(b_vc),
                                    MemToSpm, SpmSlot::Single(slot), r_in,
                                ),
                                Resident::None => unreachable!(),
                            };
                            g.offset = g.offset.subst(vk, &k_at(ki));
                            outer_steps.push(Stmt::DmaCg(g));
                        }
                        outer_steps.push(Stmt::DmaWait { reply: r_in, times: sk.count });
                        let mut steps: Vec<Stmt> =
                            vec![c_get, Stmt::DmaWait { reply: r_cget, times: 1 }];
                        for (ki, &slot) in panel_slots.iter().enumerate().take(sk.count) {
                            let (stream_get, a_desc, b_desc) = match resident {
                                Resident::A => {
                                    let mut bg = b_fam.tile_dma(
                                        b_sr, b_sc, Some(b_vr), Some(b_vc),
                                        MemToSpm, SpmSlot::Single(spm_b), r_in,
                                    );
                                    bg.offset = bg.offset.subst(vk, &k_at(ki));
                                    let a_desc = MatDesc::new(
                                        SpmSlot::Single(slot),
                                        MatLayout::RowMajor,
                                        k_cur / 8,
                                    );
                                    let b_desc = MatDesc::new(
                                        SpmSlot::Single(spm_b),
                                        if b_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                                        if b_col { k_cur / 8 } else { n_cur / 8 },
                                    );
                                    (bg, a_desc, b_desc)
                                }
                                Resident::B => {
                                    let mut ag = a_fam.tile_dma(
                                        a_sr, a_sc, Some(a_vr), Some(a_vc),
                                        MemToSpm, SpmSlot::Single(spm_a), r_in,
                                    );
                                    ag.offset = ag.offset.subst(vk, &k_at(ki));
                                    let a_desc = MatDesc::new(
                                        SpmSlot::Single(spm_a),
                                        if a_col { MatLayout::ColMajor } else { MatLayout::RowMajor },
                                        if a_col { m_cur / 8 } else { k_cur / 8 },
                                    );
                                    let b_desc = MatDesc::new(
                                        SpmSlot::Single(slot),
                                        MatLayout::RowMajor,
                                        n_cur / 8,
                                    );
                                    (ag, a_desc, b_desc)
                                }
                                Resident::None => unreachable!(),
                            };
                            steps.push(Stmt::DmaCg(stream_get));
                            steps.push(Stmt::DmaWait { reply: r_in, times: 1 });
                            steps.push(Stmt::Gemm(GemmOp {
                                m: m_cur,
                                n: n_cur,
                                k: k_cur,
                                alpha: 1.0,
                                beta: 1.0,
                                a: a_desc,
                                b: b_desc,
                                c: MatDesc::new(
                                    SpmSlot::Single(spm_c),
                                    MatLayout::RowMajor,
                                    n_cur / 8,
                                ),
                                vd,
                            }));
                        }
                        steps.push(c_put);
                        steps.push(Stmt::DmaWait { reply: r_cput, times: 1 });
                        match resident {
                            Resident::A => {
                                // Panel A(sm, all k tiles), invariant over vn.
                                outer_steps
                                    .push(Stmt::for_(vn, sn.count, Stmt::seq(steps)));
                                Stmt::for_(vm, sm.count, Stmt::seq(outer_steps))
                            }
                            Resident::B => {
                                // Panel B(all k tiles, sn), invariant over vm.
                                outer_steps
                                    .push(Stmt::for_(vm, sm.count, Stmt::seq(steps)));
                                Stmt::for_(vn, sn.count, Stmt::seq(outer_steps))
                            }
                            Resident::None => unreachable!(),
                        }
                    };
                    nests.push(nest);
                }
            }
        }

        let mut body = setup;
        body.extend(nests);
        body.extend(c_teardown);
        Some(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::verify_candidate;
    use crate::scheduler::Scheduler;
    use sw26010::MachineConfig;

    fn verify_point(op: &MatmulOp, pick: impl Fn(&ScheduleSpace, &SchedulePoint) -> bool) {
        let cfg = MachineConfig::default();
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            if !pick(&space, &point) {
                continue;
            }
            let Some(cand) = sched.lower_point(op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(
                err < 1e-3,
                "{}: max err {err}",
                point.describe(&space)
            );
            checked += 1;
            if checked >= 6 {
                break;
            }
        }
        assert!(checked > 0, "no candidate matched the filter");
    }

    #[test]
    fn aligned_matmul_all_layouts_correct() {
        let op = MatmulOp::new(64, 64, 64);
        for layout in ["rr", "cr", "rc", "cc"] {
            verify_point(&op, |s, p| {
                p.choice(s, "layout") == layout
                    && p.factor(s, "t_m") == 32
                    && p.factor(s, "t_n") == 32
                    && p.factor(s, "t_k") == 16
            });
        }
    }

    #[test]
    fn both_vector_dims_correct() {
        let op = MatmulOp::new(64, 96, 32);
        verify_point(&op, |s, p| p.toggle(s, "vec_m"));
        verify_point(&op, |s, p| !p.toggle(s, "vec_m"));
    }

    #[test]
    fn parameter_switching_tail_correct() {
        // 96 = 64 + 32: aligned tail → switching, no padding buffers.
        let op = MatmulOp::new(96, 96, 24);
        verify_point(&op, |s, p| {
            p.factor(s, "t_m") == 64
                && p.factor(s, "t_n") == 64
                && p.factor(s, "t_k") == 16
                && p.choice(s, "layout") == "rr"
        });
    }

    #[test]
    fn lightweight_padding_tail_correct() {
        // 100 % 64 = 36 (aligned to 4 but not 32): aux strips needed for M
        // under vec_m; 50 % 16 = 2 for K.
        let op = MatmulOp::new(100, 64, 50);
        verify_point(&op, |s, p| {
            p.factor(s, "t_m") == 64 && p.factor(s, "t_k") == 16 && p.toggle(s, "vec_m")
        });
    }

    #[test]
    fn traditional_padding_tail_correct() {
        let op = MatmulOp::new(100, 72, 50).with_pad_mode(PadMode::Traditional);
        verify_point(&op, |s, p| {
            p.factor(s, "t_m") == 64 && p.factor(s, "t_n") == 32 && p.factor(s, "t_k") == 16
        });
    }

    #[test]
    fn packed_layout_with_boundary_correct() {
        let op = MatmulOp::new(72, 40, 24);
        verify_point(&op, |s, p| {
            p.choice(s, "layout") == "cc" && p.factor(s, "t_m") == 32
        });
    }

    #[test]
    fn n_outer_order_correct() {
        let op = MatmulOp::new(64, 128, 32);
        verify_point(&op, |s, p| p.choice(s, "order") == "nm");
    }

    #[test]
    fn tile_menu_prunes_and_falls_back() {
        // Huge dim: small tiles pruned by the count bound.
        let menu = tile_menu(8000, 32, M_MENU, 40);
        assert!(menu.iter().all(|&t| 8000usize.div_ceil(t) <= 40));
        assert!(!menu.is_empty());
        // Tiny dim: falls back to one padded tile.
        let menu = tile_menu(20, 32, M_MENU, 40);
        assert_eq!(menu, vec![32]);
    }

    #[test]
    fn space_has_all_knobs() {
        let op = MatmulOp::new(256, 256, 256);
        let space = op.space();
        assert!(space.size() >= 4 * 2 * 2, "space size {}", space.size());
        let p = space.point(0);
        let _ = p.factor(&space, "t_m");
        let _ = p.choice(&space, "layout");
        let _ = p.toggle(&space, "vec_m");
    }
}
