//! Training-side convolution operators: backward-data and backward-filter.
//!
//! swDNN (the library swATOP replaces for the implicit method) exposes the
//! full training triple — forward, ∂input, ∂filter — and both gradients
//! are arithmetic-intensive tensorizable contractions, so they belong in
//! the operator library:
//!
//! * **backward-data** `dX = conv(pad(dY, K−1−p), rot180-swap(W))` runs the
//!   explicit-GEMM structure on the *gradient geometry* after a one-pass
//!   filter rotation (a layout transform);
//! * **backward-filter** `dW = dY_mat · colsᵀ` is one big GEMM between the
//!   reshaped output gradient (`No × B·Ro·Co`) and the transposed im2col
//!   matrix (`B·Ro·Co × Ni·Kr·Kc`), whose product *is* the flattened
//!   weight-gradient tensor.
//!
//! Both reuse the matmul schedule space, boundary machinery and prefetch
//! pass unchanged — the point of the paper's hardware-agnostic layer.

use swatop_dsl::{SchedulePoint, ScheduleSpace, Seed};
use swatop_ir::{MemRole, Program, Stmt, TransformKind, TransformOp};
use swtensor::ConvShape;

use crate::ops::explicit_conv::lower_explicit_body;
use crate::ops::matmul::{lower_matmul_body, MatmulKnobs};
use crate::ops::tiling::PadMode;
use crate::scheduler::Operator;

/// Backward-data convolution: input gradient from output gradient.
#[derive(Debug, Clone)]
pub struct ConvBackwardDataOp {
    pub shape: ConvShape,
}

impl ConvBackwardDataOp {
    pub fn new(shape: ConvShape) -> Self {
        ConvBackwardDataOp { shape }
    }

    /// Stride-1 only (strided backward-data is a dilated scatter, outside
    /// the GEMM-decomposition family).
    pub fn applicable(shape: &ConvShape) -> bool {
        shape.stride == 1 && shape.kr > shape.pad && shape.kc > shape.pad
    }

    /// The geometry of the auxiliary full-correlation convolution.
    fn grad_shape(&self) -> ConvShape {
        let s = &self.shape;
        ConvShape {
            b: s.b,
            ni: s.no,
            no: s.ni,
            ro: s.ri(),
            co: s.ci(),
            kr: s.kr,
            kc: s.kc,
            stride: 1,
            pad: s.kr - 1 - s.pad,
        }
    }
}

impl Operator for ConvBackwardDataOp {
    fn name(&self) -> String {
        let s = &self.shape;
        format!("conv_bwd_data_b{}_ni{}_no{}_r{}x{}", s.b, s.ni, s.no, s.ro, s.co)
    }

    fn seed(&self) -> Seed {
        Seed::explicit_conv(self.name(), self.grad_shape())
    }

    fn space(&self) -> ScheduleSpace {
        let g = self.grad_shape();
        MatmulKnobs::space(g.no, g.b * g.ro * g.co, g.ni * g.kr * g.kc)
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        if !Self::applicable(&self.shape) {
            return None;
        }
        let knobs = MatmulKnobs::from_point(space, point);
        let s = &self.shape;
        let g = self.grad_shape();
        let mut p = Program::new(self.name());
        let dy = p.mem_buf("d_out", s.output_shape().numel(), MemRole::Input);
        let w = p.mem_buf("weight", s.weight_shape().numel(), MemRole::Input);
        let dx = p.mem_buf("d_in", s.input_shape().numel(), MemRole::Output);
        let w_rot = p.mem_buf("w_rot", s.weight_shape().numel(), MemRole::Temp);
        let rotate = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::RotateFilter { shape: *s, src: w, dst: w_rot },
        });
        let body = lower_explicit_body(&mut p, &g, dy, w_rot, dx, &knobs, PadMode::Lightweight)?;
        let mut stmts = vec![rotate];
        stmts.extend(body);
        p.body = Stmt::seq(stmts);
        Some(p)
    }

    fn input_data(&self, _program: &Program) -> Vec<Vec<f32>> {
        vec![
            swtensor::init::random_vec(self.shape.output_shape().numel(), 0x8D),
            swtensor::init::random_vec(self.shape.weight_shape().numel(), 0x9D),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let dy = swtensor::Tensor::from_vec(
            self.shape.output_shape().dims().to_vec(),
            inputs[0].clone(),
        );
        let w = swtensor::Tensor::from_vec(
            self.shape.weight_shape().dims().to_vec(),
            inputs[1].clone(),
        );
        swtensor::conv_grad::conv2d_backward_data_ref(&self.shape, &dy, &w).into_vec()
    }

    fn flops(&self) -> u64 {
        // Same contraction volume as the forward pass.
        self.shape.flops()
    }
}

/// Backward-filter convolution: weight gradient from input and output
/// gradient.
#[derive(Debug, Clone)]
pub struct ConvBackwardFilterOp {
    pub shape: ConvShape,
}

impl ConvBackwardFilterOp {
    pub fn new(shape: ConvShape) -> Self {
        ConvBackwardFilterOp { shape }
    }

    /// GEMM dimensions: `M = No`, `N = Ni·Kr·Kc`, `K = B·Ro·Co`.
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        let s = &self.shape;
        (s.no, s.ni * s.kr * s.kc, s.b * s.ro * s.co)
    }
}

impl Operator for ConvBackwardFilterOp {
    fn name(&self) -> String {
        let s = &self.shape;
        format!("conv_bwd_filter_b{}_ni{}_no{}_r{}x{}", s.b, s.ni, s.no, s.ro, s.co)
    }

    fn seed(&self) -> Seed {
        let (m, n, k) = self.gemm_dims();
        Seed::matmul(self.name(), m, n, k)
    }

    fn space(&self) -> ScheduleSpace {
        let (m, n, k) = self.gemm_dims();
        MatmulKnobs::space(m, n, k)
    }

    fn lower(&self, space: &ScheduleSpace, point: &SchedulePoint) -> Option<Program> {
        let knobs = MatmulKnobs::from_point(space, point);
        let s = &self.shape;
        let (m, n, k) = self.gemm_dims();
        let mut p = Program::new(self.name());
        let x = p.mem_buf("in", s.input_shape().numel(), MemRole::Input);
        let dy = p.mem_buf("d_out", s.output_shape().numel(), MemRole::Input);
        let dw = p.mem_buf("d_weight", s.weight_shape().numel(), MemRole::Output);
        let cols = p.mem_buf("cols", n * k, MemRole::Temp);
        let cols_t = p.mem_buf("cols_t", n * k, MemRole::Temp);
        let dy_mat = p.mem_buf("dy_mat", m * k, MemRole::Temp);

        let im2col = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::Im2col { shape: *s, src: x, dst: cols },
        });
        // cols is (Ni·Kr·Kc) × (B·Ro·Co) = N × K; the GEMM needs K × N.
        let transpose = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::PackTensor {
                src: cols,
                dst: cols_t,
                src_dims: vec![n, k],
                perm: vec![1, 0],
            },
        });
        // dY is [B][No][Ro][Co]; the GEMM A operand is No × (B·Ro·Co).
        let pack_dy = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::PackTensor {
                src: dy,
                dst: dy_mat,
                src_dims: vec![s.b, s.no, s.ro, s.co],
                perm: vec![1, 0, 2, 3],
            },
        });
        // The product No × (Ni·Kr·Kc) is dW flattened — no output reorder.
        let gemm =
            lower_matmul_body(&mut p, &knobs, dy_mat, cols_t, dw, m, n, k, PadMode::Lightweight)?;
        let mut stmts = vec![im2col, transpose, pack_dy];
        stmts.extend(gemm);
        p.body = Stmt::seq(stmts);
        Some(p)
    }

    fn input_data(&self, _program: &Program) -> Vec<Vec<f32>> {
        vec![
            swtensor::init::random_vec(self.shape.input_shape().numel(), 0xAD),
            swtensor::init::random_vec(self.shape.output_shape().numel(), 0xBD),
        ]
    }

    fn reference_output(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let x = swtensor::Tensor::from_vec(
            self.shape.input_shape().dims().to_vec(),
            inputs[0].clone(),
        );
        let dy = swtensor::Tensor::from_vec(
            self.shape.output_shape().dims().to_vec(),
            inputs[1].clone(),
        );
        swtensor::conv_grad::conv2d_backward_filter_ref(&self.shape, &x, &dy).into_vec()
    }

    fn flops(&self) -> u64 {
        self.shape.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::verify_candidate;
    use crate::scheduler::Scheduler;
    use sw26010::MachineConfig;

    fn verify_some(op: &dyn Operator, max_points: usize, tol: f32) {
        let cfg = MachineConfig::default();
        let sched = Scheduler::new(cfg.clone());
        let space = op.space();
        let mut checked = 0;
        for point in space.points() {
            let Some(cand) = sched.lower_point(op, &space, &point) else {
                continue;
            };
            let err = verify_candidate(&cfg, op, &cand)
                .unwrap_or_else(|e| panic!("{}: {e}", point.describe(&space)));
            assert!(err < tol, "{}: err {err}", point.describe(&space));
            checked += 1;
            if checked >= max_points {
                break;
            }
        }
        assert!(checked > 0, "no valid candidate for {}", op.name());
    }

    #[test]
    fn backward_data_correct() {
        let shape = ConvShape::square(2, 8, 16, 6);
        verify_some(&ConvBackwardDataOp::new(shape), 3, 2e-3);
    }

    #[test]
    fn backward_data_padded_correct() {
        let shape = ConvShape { b: 2, ni: 8, no: 8, ro: 6, co: 6, kr: 3, kc: 3, stride: 1, pad: 1 };
        verify_some(&ConvBackwardDataOp::new(shape), 3, 2e-3);
    }

    #[test]
    fn backward_filter_correct() {
        let shape = ConvShape::square(2, 8, 16, 6);
        verify_some(&ConvBackwardFilterOp::new(shape), 3, 5e-3);
    }

    #[test]
    fn backward_filter_strided_correct() {
        // Backward-filter supports strides (it's a plain contraction).
        let shape = ConvShape { b: 2, ni: 8, no: 8, ro: 4, co: 4, kr: 3, kc: 3, stride: 2, pad: 1 };
        verify_some(&ConvBackwardFilterOp::new(shape), 3, 5e-3);
    }

    #[test]
    fn strided_backward_data_inapplicable() {
        let mut shape = ConvShape::square(2, 8, 8, 6);
        shape.stride = 2;
        assert!(!ConvBackwardDataOp::applicable(&shape));
        let op = ConvBackwardDataOp::new(shape);
        let space = op.space();
        assert!(op.lower(&space, &space.point(0)).is_none());
    }
}
