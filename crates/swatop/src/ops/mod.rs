//! The operator library: tensorized DL operators expressed as DSL seeds,
//! schedule spaces and IR lowerings.
//!
//! * [`matmul`] — matrix multiplication (the xMath comparison, Tab. 2);
//! * [`implicit_conv`] — implicit-GEMM convolution (Alg. 2, Fig. 5);
//! * [`explicit_conv`] — explicit-GEMM (im2col) convolution (Fig. 7);
//! * [`winograd_conv`] — Winograd F(2×2,3×3) convolution (Fig. 6);
//! * [`tiling`] — the shared boundary-processing machinery: dimension
//!   tiling with parameter switching and lightweight / traditional zero
//!   padding (Sec. 4.5.3).

pub mod batched_matmul;
pub mod conv_grad;
pub mod explicit_conv;
pub mod implicit_conv;
pub mod matmul;
pub mod tiling;
pub mod winograd_conv;

pub use batched_matmul::BatchedMatmulOp;
pub use conv_grad::{ConvBackwardDataOp, ConvBackwardFilterOp};
pub use explicit_conv::ExplicitConvOp;
pub use implicit_conv::ImplicitConvOp;
pub use matmul::MatmulOp;
pub use winograd_conv::WinogradConvOp;

use sw26010::fault::MiscompilePlan;
use sw26010::{CoreGroup, ExecMode, MachineConfig, MachineResult};
use swatop_dsl::{SchedulePoint, ScheduleSpace};
use swatop_ir::{MemRole, ScheduleHints};

use crate::interp::{execute, instantiate};
use crate::scheduler::{Candidate, Operator};

/// The DMA-wall schedule dimensions every operator can expose: double
/// buffering, transaction coalescing, and register-broadcast tiling.
///
/// Matmul exposes the three as independent toggles; the convolution spaces
/// use one compact 4-value `dma` choice (a nested ladder — each level adds
/// one pass) to bound the black-box search blowup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaKnobs {
    pub dbuf: bool,
    pub coalesce: bool,
    pub bcast: bool,
}

impl DmaKnobs {
    /// Append the compact `dma` ladder knob to a space.
    pub fn add_compact(space: &mut ScheduleSpace) {
        space.choice(
            "dma",
            vec!["none".into(), "dbuf".into(), "dbuf+coal".into(), "all".into()],
        );
    }

    /// Append the three independent toggles to a space.
    pub fn add_toggles(space: &mut ScheduleSpace) {
        space.toggle("dbuf");
        space.toggle("coal");
        space.toggle("bcast");
    }

    /// Parse from a point, tolerating spaces that expose neither form
    /// (everything off — the pre-DMA-wall behaviour).
    pub fn from_point(space: &ScheduleSpace, point: &SchedulePoint) -> DmaKnobs {
        if space.has_knob("dma") {
            match point.choice(space, "dma") {
                "none" => DmaKnobs::default(),
                "dbuf" => DmaKnobs { dbuf: true, ..Default::default() },
                "dbuf+coal" => DmaKnobs { dbuf: true, coalesce: true, bcast: false },
                _ => DmaKnobs { dbuf: true, coalesce: true, bcast: true },
            }
        } else if space.has_knob("dbuf") {
            DmaKnobs {
                dbuf: point.toggle(space, "dbuf"),
                coalesce: point.toggle(space, "coal"),
                bcast: point.toggle(space, "bcast"),
            }
        } else {
            DmaKnobs::default()
        }
    }

    /// The optimizer directives these knobs select.
    pub fn hints(self) -> ScheduleHints {
        ScheduleHints { dbuf: self.dbuf, coalesce: self.coalesce, bcast: self.bcast }
    }
}

/// Functionally execute a candidate and compare its output against the
/// operator's golden reference. Returns the maximum absolute error.
pub fn verify_candidate(
    cfg: &MachineConfig,
    op: &dyn Operator,
    cand: &Candidate,
) -> MachineResult<f32> {
    run_differential(cfg, op, cand, None).0
}

/// Differential execution core: run the candidate functionally (optionally
/// under an armed miscompile injection) and return the max-abs-diff against
/// the golden reference, plus the number of injection events that fired.
fn run_differential(
    cfg: &MachineConfig,
    op: &dyn Operator,
    cand: &Candidate,
    mis: Option<MiscompilePlan>,
) -> (MachineResult<f32>, u64) {
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::Functional);
    cg.arm_miscompile(mis);
    let binding = instantiate(&mut cg, &cand.exe);
    let inputs = op.input_data(&cand.exe.program);
    let input_ids = cand.exe.program.bufs_with_role(MemRole::Input);
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    for (id, data) in input_ids.iter().zip(&inputs) {
        if let Err(e) = cg.mem.write(binding.bufs[id.0], 0, data) {
            return (Err(e), cg.miscompile_events());
        }
    }
    if let Err(e) = execute(&mut cg, &cand.exe, &binding) {
        return (Err(e), cg.miscompile_events());
    }
    let out_ids = cand.exe.program.bufs_with_role(MemRole::Output);
    assert_eq!(out_ids.len(), 1, "operators declare exactly one output");
    let got = cg.mem.buffer(binding.bufs[out_ids[0].0]);
    let expect = op.reference_output(&inputs);
    (Ok(swtensor::compare::max_abs_diff(got, &expect)), cg.miscompile_events())
}

/// Fully validate a candidate before it may be reported as a tuning winner:
/// the static legality checker first (cheap, catches structural hazards),
/// then differential functional execution against the operator's golden
/// reference under [`verify_tolerance`].
///
/// Validation always runs on a *fault-free* copy of `cfg`: injected
/// transient faults belong to the measurement path, and a validator that
/// could fail on a dropped batch would quarantine correct schedules
/// non-deterministically. A returned `Err` is therefore a deterministic
/// property of the candidate — never worth retrying.
pub fn validate_candidate(
    cfg: &MachineConfig,
    op: &dyn Operator,
    cand: &Candidate,
) -> Result<(), String> {
    let mut clean = cfg.clone();
    clean.fault = None;
    crate::optimizer::verify::verify_message(&cand.exe, &clean)
        .map_err(|msg| format!("static: {msg}"))?;
    let tol = verify_tolerance(op.flops());
    match run_differential(&clean, op, cand, None).0 {
        Err(e) => Err(format!("differential: functional execution failed: {e}")),
        Ok(diff) if !diff.is_finite() || diff > tol => {
            Err(format!("differential: max |err| {diff:.3e} exceeds tolerance {tol:.3e}"))
        }
        Ok(_) => Ok(()),
    }
}

/// Self-test variant of [`validate_candidate`]: run only the differential
/// stage with a seeded miscompile injection armed, returning the validation
/// verdict and how many corruption events actually fired. Tests asserting
/// "the validator catches class X" must require `events > 0`, otherwise a
/// schedule that never exercised the corrupted path passes vacuously.
pub fn validate_candidate_injected(
    cfg: &MachineConfig,
    op: &dyn Operator,
    cand: &Candidate,
    mis: MiscompilePlan,
) -> (Result<(), String>, u64) {
    let mut clean = cfg.clone();
    clean.fault = None;
    let tol = verify_tolerance(op.flops());
    let (res, events) = run_differential(&clean, op, cand, Some(mis));
    let verdict = match res {
        Err(e) => Err(format!("differential: functional execution failed: {e}")),
        Ok(diff) if !diff.is_finite() || diff > tol => {
            Err(format!("differential: max |err| {diff:.3e} exceeds tolerance {tol:.3e}"))
        }
        Ok(_) => Ok(()),
    };
    (verdict, events)
}

/// Relative-error bound used when asserting functional correctness of
/// generated schedules (f32 accumulation over long K chains).
pub fn verify_tolerance(flops: u64) -> f32 {
    // Scale loosely with reduction depth; inputs are in [-1, 1).
    1e-4 * ((flops as f32).sqrt().log2().max(1.0))
}
