//! The operator library: tensorized DL operators expressed as DSL seeds,
//! schedule spaces and IR lowerings.
//!
//! * [`matmul`] — matrix multiplication (the xMath comparison, Tab. 2);
//! * [`implicit_conv`] — implicit-GEMM convolution (Alg. 2, Fig. 5);
//! * [`explicit_conv`] — explicit-GEMM (im2col) convolution (Fig. 7);
//! * [`winograd_conv`] — Winograd F(2×2,3×3) convolution (Fig. 6);
//! * [`tiling`] — the shared boundary-processing machinery: dimension
//!   tiling with parameter switching and lightweight / traditional zero
//!   padding (Sec. 4.5.3).

pub mod batched_matmul;
pub mod conv_grad;
pub mod explicit_conv;
pub mod implicit_conv;
pub mod matmul;
pub mod tiling;
pub mod winograd_conv;

pub use batched_matmul::BatchedMatmulOp;
pub use conv_grad::{ConvBackwardDataOp, ConvBackwardFilterOp};
pub use explicit_conv::ExplicitConvOp;
pub use implicit_conv::ImplicitConvOp;
pub use matmul::MatmulOp;
pub use winograd_conv::WinogradConvOp;

use sw26010::{CoreGroup, ExecMode, MachineConfig, MachineResult};
use swatop_dsl::{SchedulePoint, ScheduleSpace};
use swatop_ir::{MemRole, ScheduleHints};

use crate::interp::{execute, instantiate};
use crate::scheduler::{Candidate, Operator};

/// The DMA-wall schedule dimensions every operator can expose: double
/// buffering, transaction coalescing, and register-broadcast tiling.
///
/// Matmul exposes the three as independent toggles; the convolution spaces
/// use one compact 4-value `dma` choice (a nested ladder — each level adds
/// one pass) to bound the black-box search blowup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaKnobs {
    pub dbuf: bool,
    pub coalesce: bool,
    pub bcast: bool,
}

impl DmaKnobs {
    /// Append the compact `dma` ladder knob to a space.
    pub fn add_compact(space: &mut ScheduleSpace) {
        space.choice(
            "dma",
            vec!["none".into(), "dbuf".into(), "dbuf+coal".into(), "all".into()],
        );
    }

    /// Append the three independent toggles to a space.
    pub fn add_toggles(space: &mut ScheduleSpace) {
        space.toggle("dbuf");
        space.toggle("coal");
        space.toggle("bcast");
    }

    /// Parse from a point, tolerating spaces that expose neither form
    /// (everything off — the pre-DMA-wall behaviour).
    pub fn from_point(space: &ScheduleSpace, point: &SchedulePoint) -> DmaKnobs {
        if space.has_knob("dma") {
            match point.choice(space, "dma") {
                "none" => DmaKnobs::default(),
                "dbuf" => DmaKnobs { dbuf: true, ..Default::default() },
                "dbuf+coal" => DmaKnobs { dbuf: true, coalesce: true, bcast: false },
                _ => DmaKnobs { dbuf: true, coalesce: true, bcast: true },
            }
        } else if space.has_knob("dbuf") {
            DmaKnobs {
                dbuf: point.toggle(space, "dbuf"),
                coalesce: point.toggle(space, "coal"),
                bcast: point.toggle(space, "bcast"),
            }
        } else {
            DmaKnobs::default()
        }
    }

    /// The optimizer directives these knobs select.
    pub fn hints(self) -> ScheduleHints {
        ScheduleHints { dbuf: self.dbuf, coalesce: self.coalesce, bcast: self.bcast }
    }
}

/// Functionally execute a candidate and compare its output against the
/// operator's golden reference. Returns the maximum absolute error.
pub fn verify_candidate(
    cfg: &MachineConfig,
    op: &dyn Operator,
    cand: &Candidate,
) -> MachineResult<f32> {
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::Functional);
    let binding = instantiate(&mut cg, &cand.exe);
    let inputs = op.input_data(&cand.exe.program);
    let input_ids = cand.exe.program.bufs_with_role(MemRole::Input);
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    for (id, data) in input_ids.iter().zip(&inputs) {
        cg.mem.write(binding.bufs[id.0], 0, data)?;
    }
    execute(&mut cg, &cand.exe, &binding)?;
    let out_ids = cand.exe.program.bufs_with_role(MemRole::Output);
    assert_eq!(out_ids.len(), 1, "operators declare exactly one output");
    let got = cg.mem.buffer(binding.bufs[out_ids[0].0]);
    let expect = op.reference_output(&inputs);
    Ok(swtensor::compare::max_abs_diff(got, &expect))
}

/// Relative-error bound used when asserting functional correctness of
/// generated schedules (f32 accumulation over long K chains).
pub fn verify_tolerance(flops: u64) -> f32 {
    // Scale loosely with reduction depth; inputs are in [-1, 1).
    1e-4 * ((flops as f32).sqrt().log2().max(1.0))
}
