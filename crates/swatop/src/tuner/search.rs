//! Alternative black-box search strategies (ablations).
//!
//! The paper's related work surveys autotuners built on sampling searches —
//! ATLAS (exhaustive + pruning), SPIRAL (evolutionary), TVM (learned cost
//! models over measured samples). This module provides two sampling tuners
//! so the trade-off triangle can be measured on the same candidates:
//!
//! * [`random_search`] — measure a random subset, keep the best;
//! * [`greedy_search`] — an evolutionary-style loop: measure a seed sample,
//!   then repeatedly mutate the best-known point one knob at a time.
//!
//! Both lie between the brute-force black-box tuner (best quality, highest
//! cost) and the static-model tuner (lowest cost); the paper's claim is
//! that on a latency-oriented machine with discrete tensorized primitives,
//! the *model* end of the triangle is the right one.
//!
//! Both searches measure through the same fault-aware path as the main
//! tuners ([`super::RetryPolicy`] retries, median-of-N under jitter), count
//! failed candidates against the budget — a real machine burns tuning time
//! on a candidate whether or not it faults — and report them in the
//! outcome instead of silently dropping them.

use std::time::{Duration, Instant};

use sw26010::{Counters, Cycles, MachineConfig};
use swtensor::init::XorShift;

use super::checkpoint::CandCell;
use super::{
    measure_instrumented, CandReport, RetryPolicy, TuneError, TuneOptions, TuneOutcome,
};
use crate::scheduler::Candidate;
use crate::telemetry::Telemetry;

/// Serial sampling loop shared by both searches: measures not-yet-tried
/// indices through the fault-aware path and accumulates per-candidate
/// reports.
struct Sampler<'a> {
    cfg: &'a MachineConfig,
    candidates: &'a [Candidate],
    retry: RetryPolicy,
    tel: Option<Telemetry>,
    counters: Counters,
    cells: Vec<CandCell>,
    best: Option<(usize, Cycles)>,
    executed: usize,
    cpu: Duration,
    /// `(evaluations, best-so-far cycles)` at every improvement, in the
    /// sampler's (serial, seeded, deterministic) visit order.
    convergence: Vec<(u64, u64)>,
}

impl<'a> Sampler<'a> {
    fn new(cfg: &'a MachineConfig, candidates: &'a [Candidate], opts: &TuneOptions) -> Self {
        Sampler {
            cfg,
            candidates,
            retry: opts.retry.clone(),
            tel: opts.telemetry.clone(),
            counters: Counters::default(),
            cells: vec![CandCell::Pending; candidates.len()],
            best: None,
            executed: 0,
            cpu: Duration::ZERO,
            convergence: Vec::new(),
        }
    }

    /// Measure candidate `i` unless it was already tried. Failures still
    /// count as executed: the budget models machine time, and a faulting
    /// candidate consumes it.
    fn measure(&mut self, i: usize) {
        if !self.cells[i].is_pending() {
            return;
        }
        self.executed += 1;
        // Sampling searches have no model score for the candidate, so no
        // (predicted, measured) pair is recorded — spans and counters only.
        let (cell, d, counters) = measure_instrumented(
            self.cfg,
            &self.candidates[i],
            i,
            &self.retry,
            self.tel.as_ref(),
            0,
            None,
        );
        self.cpu += d;
        if self.tel.is_some() && !matches!(cell, CandCell::Pending) {
            self.counters.merge(&counters);
        }
        if let Some(c) = cell.cycles() {
            if self.best.is_none_or(|(_, b)| c < b) {
                self.best = Some((i, c));
                self.convergence.push((self.executed as u64, c.get()));
            }
        }
        self.cells[i] = cell;
    }

    fn finish(self, start: Instant) -> Result<TuneOutcome, TuneError> {
        let failed = self.cells.iter().filter(|c| matches!(c, CandCell::Failed { .. })).count();
        let Some((best, cycles)) = self.best else {
            if self.executed == 0 {
                return Err(TuneError::NoCandidates);
            }
            let last_error = self
                .cells
                .iter()
                .rev()
                .find_map(|c| match c {
                    CandCell::Failed { error, .. } => Some(error.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| "no error recorded".to_string());
            return Err(TuneError::AllFailed { sampled: self.executed, last_error });
        };
        Ok(TuneOutcome {
            best,
            cycles,
            wall: start.elapsed(),
            executed: self.executed,
            all_cycles: self.cells.iter().map(CandCell::cycles).collect(),
            jobs: 1,
            cpu: self.cpu,
            failed,
            retried: self.cells.iter().map(|c| u64::from(c.retries())).sum(),
            quarantined: 0,
            reports: self.cells.iter().map(CandReport::from_cell).collect(),
            telemetry: self
                .tel
                .as_ref()
                .map(|t| t.tune_summary(t.scope(), self.counters)),
            convergence: self.convergence,
            screened: 0,
            validated: 0,
        })
    }
}

/// Measure `budget` uniformly random candidates, keep the fastest.
///
/// Errors with [`TuneError::AllFailed`] when every sampled candidate failed
/// terminally (the per-candidate errors are lost in that case only to the
/// extent that one representative is kept).
pub fn random_search(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    budget: usize,
    seed: u64,
) -> Result<TuneOutcome, TuneError> {
    random_search_opts(cfg, candidates, budget, seed, &TuneOptions::default())
}

/// [`random_search`] with explicit [`TuneOptions`]. The sampling loop is
/// inherently serial (each draw depends on what was already measured), so
/// `opts.jobs` and `opts.checkpoint` are ignored; `opts.retry` and
/// `opts.telemetry` apply.
pub fn random_search_opts(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    budget: usize,
    seed: u64,
    opts: &TuneOptions,
) -> Result<TuneOutcome, TuneError> {
    let start = Instant::now();
    if candidates.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    let mut rng = XorShift::new(seed);
    let mut s = Sampler::new(cfg, candidates, opts);
    for _ in 0..budget.min(candidates.len() * 4) {
        let i = (rng.next_u64() % candidates.len() as u64) as usize;
        s.measure(i);
    }
    s.finish(start)
}

/// Evolutionary-style greedy search: random seeds, then local mutations of
/// the incumbent (neighbouring candidate indices stand in for single-knob
/// mutations, since the space enumerates knobs in mixed-radix order).
pub fn greedy_search(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    budget: usize,
    seed: u64,
) -> Result<TuneOutcome, TuneError> {
    greedy_search_opts(cfg, candidates, budget, seed, &TuneOptions::default())
}

/// [`greedy_search`] with explicit [`TuneOptions`]; like
/// [`random_search_opts`], `opts.jobs` and `opts.checkpoint` are ignored
/// because the mutation loop is sequential by nature.
pub fn greedy_search_opts(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    budget: usize,
    seed: u64,
    opts: &TuneOptions,
) -> Result<TuneOutcome, TuneError> {
    let start = Instant::now();
    let n = candidates.len();
    if n == 0 {
        return Err(TuneError::NoCandidates);
    }
    let mut rng = XorShift::new(seed);
    let mut s = Sampler::new(cfg, candidates, opts);
    // Seed phase: a third of the budget at random.
    for _ in 0..(budget / 3).max(1) {
        let i = (rng.next_u64() % n as u64) as usize;
        s.measure(i);
    }
    // Mutation phase: explore around the incumbent with varying radius.
    // Attempts are bounded: once the incumbent's neighbourhood is fully
    // measured, mutations stop producing new points and the search ends.
    let mut attempts = 0usize;
    while s.executed < budget && attempts < 16 * budget {
        attempts += 1;
        let Some((inc, _)) = s.best else { break };
        // Widen the radius as attempts accumulate so a saturated local
        // neighbourhood spills outward instead of re-sampling itself.
        let max_radius = 8 + attempts / 4;
        let radius = 1 + (rng.next_u64() as usize) % max_radius;
        let dir = if rng.next_u64().is_multiple_of(2) { 1i64 } else { -1 };
        let j = (inc as i64 + dir * radius as i64).rem_euclid(n as i64) as usize;
        s.measure(j);
    }
    s.finish(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MatmulOp;
    use crate::scheduler::Scheduler;
    use crate::tuner::{blackbox_tune, model_tune};

    fn candidates() -> (MachineConfig, Vec<Candidate>) {
        let cfg = MachineConfig::default();
        let op = MatmulOp::new(96, 96, 48);
        let cands = Scheduler::new(cfg.clone()).enumerate(&op);
        (cfg, cands)
    }

    #[test]
    fn random_search_finds_something_reasonable() {
        let (cfg, cands) = candidates();
        let bb = blackbox_tune(&cfg, &cands).unwrap();
        let rs = random_search(&cfg, &cands, cands.len() / 4, 7).unwrap();
        assert!(rs.cycles >= bb.cycles, "cannot beat brute force");
        assert!(
            rs.cycles.get() < 3 * bb.cycles.get(),
            "random sample should land within 3x of optimum"
        );
        assert!(rs.executed <= cands.len());
        assert_eq!(rs.failed, 0, "perfect machine: nothing should fail");
        assert_eq!(rs.reports.len(), cands.len());
    }

    #[test]
    fn greedy_improves_on_equal_budget_random_usually() {
        let (cfg, cands) = candidates();
        let budget = (cands.len() / 5).max(8);
        let rs = random_search(&cfg, &cands, budget, 3).unwrap();
        let gs = greedy_search(&cfg, &cands, budget, 3).unwrap();
        // Not a strict guarantee, but both must be valid outcomes.
        assert!(gs.cycles.get() > 0 && rs.cycles.get() > 0);
    }

    #[test]
    fn model_tuner_dominates_sampling_at_a_fraction_of_the_cost() {
        // The paper's argument in one assertion: the static model finds a
        // schedule at least as good as a 25%-budget random search while
        // executing only its top-3.
        let (cfg, cands) = candidates();
        let model = model_tune(&cfg, &cands).unwrap();
        let rs = random_search(&cfg, &cands, cands.len() / 4, 11).unwrap();
        assert!(model.cycles <= rs.cycles, "model {} vs random {}", model.cycles, rs.cycles);
        assert!(model.executed < rs.executed);
    }

    #[test]
    fn deterministic_given_seed() {
        let (cfg, cands) = candidates();
        let a = random_search(&cfg, &cands, 10, 42).unwrap();
        let b = random_search(&cfg, &cands, 10, 42).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn empty_space_is_a_clear_error() {
        let cfg = MachineConfig::default();
        assert!(matches!(random_search(&cfg, &[], 10, 1), Err(TuneError::NoCandidates)));
        assert!(matches!(greedy_search(&cfg, &[], 10, 1), Err(TuneError::NoCandidates)));
    }
}
