//! Alternative black-box search strategies (ablations).
//!
//! The paper's related work surveys autotuners built on sampling searches —
//! ATLAS (exhaustive + pruning), SPIRAL (evolutionary), TVM (learned cost
//! models over measured samples). This module provides two sampling tuners
//! so the trade-off triangle can be measured on the same candidates:
//!
//! * [`random_search`] — measure a random subset, keep the best;
//! * [`greedy_search`] — an evolutionary-style loop: measure a seed sample,
//!   then repeatedly mutate the best-known point one knob at a time.
//!
//! Both lie between the brute-force black-box tuner (best quality, highest
//! cost) and the static-model tuner (lowest cost); the paper's claim is
//! that on a latency-oriented machine with discrete tensorized primitives,
//! the *model* end of the triangle is the right one.

use std::time::Instant;

use sw26010::MachineConfig;
use swtensor::init::XorShift;

use super::{run_candidate, TuneOutcome};
use crate::scheduler::Candidate;

/// Measure `budget` uniformly random candidates, keep the fastest.
pub fn random_search(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    budget: usize,
    seed: u64,
) -> Option<TuneOutcome> {
    let start = Instant::now();
    let mut rng = XorShift::new(seed);
    let mut all = vec![None; candidates.len()];
    let mut best: Option<(usize, sw26010::Cycles)> = None;
    let mut executed = 0;
    for _ in 0..budget.min(candidates.len() * 4) {
        let i = (rng.next_u64() % candidates.len() as u64) as usize;
        if all[i].is_some() {
            continue;
        }
        executed += 1;
        if let Ok(c) = run_candidate(cfg, &candidates[i]) {
            all[i] = Some(c);
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((i, c));
            }
        }
    }
    let (best, cycles) = best?;
    let wall = start.elapsed();
    Some(TuneOutcome { best, cycles, wall, executed, all_cycles: all, jobs: 1, cpu: wall })
}

/// Evolutionary-style greedy search: random seeds, then local mutations of
/// the incumbent (neighbouring candidate indices stand in for single-knob
/// mutations, since the space enumerates knobs in mixed-radix order).
pub fn greedy_search(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    budget: usize,
    seed: u64,
) -> Option<TuneOutcome> {
    let start = Instant::now();
    let n = candidates.len();
    if n == 0 {
        return None;
    }
    let mut rng = XorShift::new(seed);
    let mut all = vec![None; n];
    let mut best: Option<(usize, sw26010::Cycles)> = None;
    let mut executed = 0;
    let measure = |i: usize,
                       all: &mut Vec<Option<sw26010::Cycles>>,
                       best: &mut Option<(usize, sw26010::Cycles)>,
                       executed: &mut usize| {
        if all[i].is_none() {
            *executed += 1;
            if let Ok(c) = run_candidate(cfg, &candidates[i]) {
                all[i] = Some(c);
                if best.is_none_or(|(_, b)| c < b) {
                    *best = Some((i, c));
                }
            }
        }
    };
    // Seed phase: a third of the budget at random.
    for _ in 0..(budget / 3).max(1) {
        let i = (rng.next_u64() % n as u64) as usize;
        measure(i, &mut all, &mut best, &mut executed);
    }
    // Mutation phase: explore around the incumbent with varying radius.
    // Attempts are bounded: once the incumbent's neighbourhood is fully
    // measured, mutations stop producing new points and the search ends.
    let mut attempts = 0usize;
    while executed < budget && attempts < 16 * budget {
        attempts += 1;
        let Some((inc, _)) = best else { break };
        // Widen the radius as attempts accumulate so a saturated local
        // neighbourhood spills outward instead of re-sampling itself.
        let max_radius = 8 + attempts / 4;
        let radius = 1 + (rng.next_u64() as usize) % max_radius;
        let dir = if rng.next_u64().is_multiple_of(2) { 1i64 } else { -1 };
        let j = (inc as i64 + dir * radius as i64).rem_euclid(n as i64) as usize;
        measure(j, &mut all, &mut best, &mut executed);
    }
    let (best, cycles) = best?;
    let wall = start.elapsed();
    Some(TuneOutcome { best, cycles, wall, executed, all_cycles: all, jobs: 1, cpu: wall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MatmulOp;
    use crate::scheduler::Scheduler;
    use crate::tuner::{blackbox_tune, model_tune};

    fn candidates() -> (MachineConfig, Vec<Candidate>) {
        let cfg = MachineConfig::default();
        let op = MatmulOp::new(96, 96, 48);
        let cands = Scheduler::new(cfg.clone()).enumerate(&op);
        (cfg, cands)
    }

    #[test]
    fn random_search_finds_something_reasonable() {
        let (cfg, cands) = candidates();
        let bb = blackbox_tune(&cfg, &cands).unwrap();
        let rs = random_search(&cfg, &cands, cands.len() / 4, 7).unwrap();
        assert!(rs.cycles >= bb.cycles, "cannot beat brute force");
        assert!(
            rs.cycles.get() < 3 * bb.cycles.get(),
            "random sample should land within 3x of optimum"
        );
        assert!(rs.executed <= cands.len());
    }

    #[test]
    fn greedy_improves_on_equal_budget_random_usually() {
        let (cfg, cands) = candidates();
        let budget = (cands.len() / 5).max(8);
        let rs = random_search(&cfg, &cands, budget, 3).unwrap();
        let gs = greedy_search(&cfg, &cands, budget, 3).unwrap();
        // Not a strict guarantee, but both must be valid outcomes.
        assert!(gs.cycles.get() > 0 && rs.cycles.get() > 0);
    }

    #[test]
    fn model_tuner_dominates_sampling_at_a_fraction_of_the_cost() {
        // The paper's argument in one assertion: the static model finds a
        // schedule at least as good as a 25%-budget random search while
        // executing only its top-3.
        let (cfg, cands) = candidates();
        let model = model_tune(&cfg, &cands).unwrap();
        let rs = random_search(&cfg, &cands, cands.len() / 4, 11).unwrap();
        assert!(model.cycles <= rs.cycles, "model {} vs random {}", model.cycles, rs.cycles);
        assert!(model.executed < rs.executed);
    }

    #[test]
    fn deterministic_given_seed() {
        let (cfg, cands) = candidates();
        let a = random_search(&cfg, &cands, 10, 42).unwrap();
        let b = random_search(&cfg, &cands, 10, 42).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.cycles, b.cycles);
    }
}
