//! The parallel evaluation engine: deterministic fan-out of independent
//! work items over `crossbeam` scoped worker threads.
//!
//! Candidate evaluation — both simulator execution and model scoring — is
//! embarrassingly parallel: `run_candidate` constructs a private
//! [`sw26010::CoreGroup`] per call (cheap since cost-only machines are
//! lazily allocated), and the static model is pure. What is *not* free is
//! determinism: tuning results feed every paper table, so the parallel path
//! must be bit-identical to the serial one. The engine guarantees that by
//! construction:
//!
//! * work items are claimed from a shared atomic counter, but each item's
//!   result is stored back at its *input index* — output order never
//!   depends on scheduling;
//! * reductions over the results (argmin, ranking) happen after the join,
//!   in input order, with ties broken by index — see
//!   [`crate::tuner::blackbox_tune_jobs`];
//! * `jobs == 1` bypasses thread spawning entirely and is the exact serial
//!   loop of the original tuners.
//!
//! Workers are scoped (`crossbeam::thread::scope`), so borrowed candidate
//! slices need no `'static` bound and a panicking worker propagates after
//! the scope joins.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the host makes available (the default for
/// `--jobs`).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve an optional `--jobs` request: `None` or `Some(0)` mean "use all
/// available parallelism".
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        None | Some(0) => available_jobs(),
        Some(n) => n,
    }
}

/// Map `f` over `items` with up to `jobs` worker threads, returning results
/// in input order. `f(i, &items[i])` must be pure up to its index — the
/// engine guarantees each index is evaluated exactly once and that the
/// output vector is index-aligned with the input, so the result is
/// identical for every `jobs` value.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_ctx(jobs, items, |_, i, x| f(i, x))
}

/// [`par_map`] that also tells `f` *which worker* runs it:
/// `f(worker, i, &items[i])`. Telemetry uses the worker index to render one
/// timeline track per worker. Determinism caveat: the worker assignment of
/// an item depends on scheduling, so `f`'s *result* must not depend on
/// `worker` — only side observability (span track tags) may.
pub fn par_map_ctx<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(0, i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    // Dynamic (work-stealing) claim order balances uneven
                    // candidate costs; results carry their index home.
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(w, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("tuner worker panicked") {
                slots[i] = Some(r);
            }
        }
    })
    .expect("tuner worker panicked");
    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Render a panic payload as a message (the common `&str` / `String` cases;
/// anything else becomes a generic marker).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with per-item panic isolation: a panicking `f` yields
/// `Err(message)` for that item instead of tearing down the worker pool
/// (and the tuning run) — one poisoned candidate must not kill a sweep.
/// Panics are caught on the worker via `catch_unwind`, so the claim loop
/// keeps draining items afterwards; determinism is untouched because the
/// error, like any result, is stored at the item's input index.
pub fn par_map_catch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(jobs, items, |i, x| {
        catch_unwind(AssertUnwindSafe(|| f(i, x))).map_err(panic_message)
    })
}

/// [`par_map_ctx`] with per-item panic isolation (the worker-aware form of
/// [`par_map_catch`]).
pub fn par_map_catch_ctx<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    par_map_ctx(jobs, items, |w, i, x| {
        catch_unwind(AssertUnwindSafe(|| f(w, i, x))).map_err(panic_message)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered_for_any_job_count() {
        let items: Vec<usize> = (0..257).collect();
        let serial = par_map(1, &items, |i, &x| i * 1000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let par = par_map(jobs, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[5u32], |i, &x| (i, x)), vec![(0, 5)]);
    }

    #[test]
    fn jobs_zero_is_clamped_to_serial() {
        let items = [1, 2, 3];
        assert_eq!(par_map(0, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn par_map_catch_isolates_poisoned_items() {
        let items: Vec<usize> = (0..64).collect();
        // Silence the default panic hook while panics are expected: the
        // catch still reports them, the terminal just stays readable.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = |jobs| {
            par_map_catch(jobs, &items, |_, &x| {
                if x % 7 == 3 {
                    panic!("poisoned item {x}");
                }
                x * 2
            })
        };
        let serial = run(1);
        let par = run(8);
        std::panic::set_hook(hook);
        assert_eq!(serial, par, "panic isolation must stay deterministic");
        for (i, r) in serial.iter().enumerate() {
            if i % 7 == 3 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned item"), "payload lost: {msg}");
            } else {
                assert_eq!(*r, Ok(i * 2));
            }
        }
    }

    #[test]
    fn ctx_variant_reports_sane_worker_ids() {
        let items: Vec<usize> = (0..64).collect();
        // Serial: every item runs on worker 0.
        let serial = par_map_ctx(1, &items, |w, i, &x| (w, i * 2 + x));
        assert!(serial.iter().all(|&(w, _)| w == 0));
        // Parallel: worker ids are within [0, jobs) and results (which must
        // not depend on the worker) match the serial run exactly.
        let par = par_map_ctx(4, &items, |w, i, &x| (w, i * 2 + x));
        assert!(par.iter().all(|&(w, _)| w < 4));
        let results: Vec<usize> = par.iter().map(|&(_, r)| r).collect();
        let expect: Vec<usize> = serial.iter().map(|&(_, r)| r).collect();
        assert_eq!(results, expect);
    }

    #[test]
    fn resolve_jobs_defaults_to_available() {
        assert_eq!(resolve_jobs(None), available_jobs());
        assert_eq!(resolve_jobs(Some(0)), available_jobs());
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(available_jobs() >= 1);
    }
}
