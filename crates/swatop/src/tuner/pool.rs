//! The parallel evaluation engine: deterministic fan-out of independent
//! work items over `crossbeam` scoped worker threads.
//!
//! Candidate evaluation — both simulator execution and model scoring — is
//! embarrassingly parallel: `run_candidate` constructs a private
//! [`sw26010::CoreGroup`] per call (cheap since cost-only machines are
//! lazily allocated), and the static model is pure. What is *not* free is
//! determinism: tuning results feed every paper table, so the parallel path
//! must be bit-identical to the serial one. The engine guarantees that by
//! construction:
//!
//! * work items are claimed from a shared atomic counter, but each item's
//!   result is stored back at its *input index* — output order never
//!   depends on scheduling;
//! * reductions over the results (argmin, ranking) happen after the join,
//!   in input order, with ties broken by index — see
//!   [`crate::tuner::blackbox_tune_jobs`];
//! * `jobs == 1` bypasses thread spawning entirely and is the exact serial
//!   loop of the original tuners.
//!
//! Workers are scoped (`crossbeam::thread::scope`), so borrowed candidate
//! slices need no `'static` bound and a panicking worker propagates after
//! the scope joins.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::telemetry::bus::{Event, EventBus};

/// Number of worker threads the host makes available (the default for
/// `--jobs`).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve an optional `--jobs` request: `None` or `Some(0)` mean "use all
/// available parallelism".
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        None | Some(0) => available_jobs(),
        Some(n) => n,
    }
}

/// Map `f` over `items` with up to `jobs` worker threads, returning results
/// in input order. `f(i, &items[i])` must be pure up to its index — the
/// engine guarantees each index is evaluated exactly once and that the
/// output vector is index-aligned with the input, so the result is
/// identical for every `jobs` value.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_ctx(jobs, items, |_, i, x| f(i, x))
}

/// [`par_map`] that also tells `f` *which worker* runs it:
/// `f(worker, i, &items[i])`. Telemetry uses the worker index to render one
/// timeline track per worker. Determinism caveat: the worker assignment of
/// an item depends on scheduling, so `f`'s *result* must not depend on
/// `worker` — only side observability (span track tags) may.
pub fn par_map_ctx<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(0, i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    // Dynamic (work-stealing) claim order balances uneven
                    // candidate costs; results carry their index home.
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(w, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("tuner worker panicked") {
                slots[i] = Some(r);
            }
        }
    })
    .expect("tuner worker panicked");
    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Render a panic payload as a message (the common `&str` / `String` cases;
/// anything else becomes a generic marker).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with per-item panic isolation: a panicking `f` yields
/// `Err(message)` for that item instead of tearing down the worker pool
/// (and the tuning run) — one poisoned candidate must not kill a sweep.
/// Panics are caught on the worker via `catch_unwind`, so the claim loop
/// keeps draining items afterwards; determinism is untouched because the
/// error, like any result, is stored at the item's input index.
pub fn par_map_catch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(jobs, items, |i, x| {
        catch_unwind(AssertUnwindSafe(|| f(i, x))).map_err(panic_message)
    })
}

/// [`par_map_ctx`] with per-item panic isolation (the worker-aware form of
/// [`par_map_catch`]).
pub fn par_map_catch_ctx<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    par_map_ctx(jobs, items, |w, i, x| {
        catch_unwind(AssertUnwindSafe(|| f(w, i, x))).map_err(panic_message)
    })
}

/// Watchdog configuration for [`PoolMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// An in-flight item older than this is flagged as stalled (once).
    pub stall_after: Duration,
    /// Watchdog sampling period (also the heartbeat cadence).
    pub poll: Duration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { stall_after: Duration::from_secs(30), poll: Duration::from_millis(50) }
    }
}

/// One stall the watchdog flagged. Report-only: the measurement it points
/// at keeps running and its result is folded in normally when it lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Worker slot that is wedged.
    pub worker: usize,
    /// Input index of the stuck item (candidate index for tuner waves).
    pub index: usize,
    /// Span path of the stuck work: `operator context / candidate knobs`.
    pub path: String,
    /// How long the item had been in flight when flagged.
    pub stalled_ms: u64,
}

/// Per-worker utilization totals, exposed for `/metrics` and the flight
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Items this worker slot has finished.
    pub items: u64,
    /// Total host time the slot spent inside item bodies.
    pub busy_ms: u64,
}

#[derive(Debug, Clone, Default)]
struct WorkerSlot {
    /// `(input index, knob description, started, already flagged)` of the
    /// item currently in flight, if any.
    current: Option<(usize, String, Instant, bool)>,
    /// When the slot last *finished* an item (its last progress).
    last_progress: Option<Instant>,
    items: u64,
    busy: Duration,
}

/// Host-side heartbeat / utilization / stall accounting for the worker
/// pool. Purely observational: it is written around item bodies (never
/// inside the simulated execution), so attaching one cannot change
/// measured cycles or tuning decisions. Workers mark progress with
/// [`PoolMonitor::begin`] / [`PoolMonitor::finish`]; a watchdog thread
/// (see [`watched`]) samples the slots and flags any item in flight longer
/// than [`MonitorConfig::stall_after`] — once per item, with the span path
/// (operator context + candidate knobs) an operator needs to find the
/// wedge.
pub struct PoolMonitor {
    cfg: MonitorConfig,
    epoch: Instant,
    /// Current operator context, prefixed onto stall paths.
    context: Mutex<String>,
    slots: Mutex<Vec<WorkerSlot>>,
    stalls: Mutex<Vec<StallReport>>,
    bus: Option<EventBus>,
}

impl std::fmt::Debug for PoolMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolMonitor")
            .field("cfg", &self.cfg)
            .field("stalls", &self.stalls.lock().len())
            .finish()
    }
}

impl PoolMonitor {
    pub fn new(cfg: MonitorConfig, bus: Option<EventBus>) -> PoolMonitor {
        PoolMonitor {
            cfg,
            epoch: Instant::now(),
            context: Mutex::new(String::new()),
            slots: Mutex::new(Vec::new()),
            stalls: Mutex::new(Vec::new()),
            bus,
        }
    }

    /// Set the operator context prefixed onto stall span paths (e.g. the
    /// operator label currently being tuned).
    pub fn set_context(&self, context: &str) {
        *self.context.lock() = context.to_string();
    }

    /// Mark `worker` as having claimed item `index` described by `knobs`.
    pub fn begin(&self, worker: usize, index: usize, knobs: &str) {
        let mut slots = self.slots.lock();
        if slots.len() <= worker {
            slots.resize(worker + 1, WorkerSlot::default());
        }
        slots[worker].current = Some((index, knobs.to_string(), Instant::now(), false));
    }

    /// Mark `worker` as having finished its in-flight item.
    pub fn finish(&self, worker: usize) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(worker) {
            if let Some((_, _, since, _)) = slot.current.take() {
                slot.busy += since.elapsed();
                slot.items += 1;
                slot.last_progress = Some(Instant::now());
            }
        }
    }

    /// Stalls flagged so far, oldest first.
    pub fn stalls(&self) -> Vec<StallReport> {
        self.stalls.lock().clone()
    }

    /// Per-worker utilization totals. In-flight time counts as busy so a
    /// wedged worker reads as saturated, not idle.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.slots
            .lock()
            .iter()
            .map(|s| {
                let mut busy = s.busy;
                if let Some((_, _, since, _)) = &s.current {
                    busy += since.elapsed();
                }
                WorkerStats { items: s.items, busy_ms: busy.as_millis() as u64 }
            })
            .collect()
    }

    /// Host milliseconds since the monitor was created (the utilization
    /// denominator).
    pub fn elapsed_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// One watchdog sample: flag fresh stalls and emit heartbeats. Called
    /// periodically by the [`watched`] thread; public so tests can drive
    /// it directly.
    pub fn poll_once(&self) {
        let context = self.context.lock().clone();
        let mut fresh: Vec<StallReport> = Vec::new();
        {
            let mut slots = self.slots.lock();
            for (worker, slot) in slots.iter_mut().enumerate() {
                if let Some((index, knobs, since, flagged)) = &mut slot.current {
                    let age = since.elapsed();
                    if !*flagged && age >= self.cfg.stall_after {
                        *flagged = true;
                        let path = if context.is_empty() {
                            knobs.clone()
                        } else {
                            format!("{context} / {knobs}")
                        };
                        fresh.push(StallReport {
                            worker,
                            index: *index,
                            path,
                            stalled_ms: age.as_millis() as u64,
                        });
                    }
                }
            }
        }
        if let Some(bus) = &self.bus {
            for s in &fresh {
                let s = s.clone();
                bus.emit_with(move || Event::StallFlagged {
                    worker: s.worker,
                    index: s.index,
                    path: s.path,
                    stalled_ms: s.stalled_ms,
                });
            }
            for (worker, stats) in self.worker_stats().iter().enumerate() {
                let idle_ms = {
                    let slots = self.slots.lock();
                    slots[worker]
                        .last_progress
                        .map(|t| t.elapsed().as_millis() as u64)
                        .unwrap_or(0)
                };
                let items = stats.items;
                bus.emit_with(move || Event::Heartbeat { worker, items, idle_ms });
            }
        }
        if !fresh.is_empty() {
            self.stalls.lock().extend(fresh);
        }
    }
}

/// Run `f` with a watchdog thread sampling `monitor` until it returns.
/// `monitor: None` is the zero-cost path — `f` runs directly, no thread is
/// spawned. The watchdog is report-only: it reads monitor slots and
/// publishes [`Event::StallFlagged`] / [`Event::Heartbeat`]; it never
/// touches the work itself, so results are bit-identical with or without
/// it.
pub fn watched<R>(monitor: Option<&PoolMonitor>, f: impl FnOnce() -> R) -> R {
    let Some(m) = monitor else { return f() };
    let done = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        let watchdog = scope.spawn(|_| {
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(m.cfg.poll);
                m.poll_once();
            }
        });
        let out = f();
        done.store(true, Ordering::Release);
        watchdog.join().expect("watchdog thread panicked");
        out
    })
    .expect("watchdog scope panicked")
}

/// [`par_map_catch_ctx`] wrapped in heartbeat accounting and the stall
/// watchdog. With `monitor: None` it is exactly [`par_map_catch_ctx`].
/// `label(i, &items[i])` gives an item's stall-report identity and its
/// knob description — the identity names the item in the caller's own
/// terms (the candidate *input* index for tuner waves, which need not be
/// the item's position in this slice); it is only called when a monitor is
/// attached.
pub fn par_map_catch_ctx_watched<T, R, F, K>(
    jobs: usize,
    items: &[T],
    monitor: Option<&PoolMonitor>,
    label: K,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
    K: Fn(usize, &T) -> (usize, String) + Sync,
{
    let Some(m) = monitor else { return par_map_catch_ctx(jobs, items, f) };
    watched(Some(m), || {
        par_map_ctx(jobs, items, |w, i, x| {
            let (id, knobs) = label(i, x);
            m.begin(w, id, &knobs);
            let r = catch_unwind(AssertUnwindSafe(|| f(w, i, x))).map_err(panic_message);
            m.finish(w);
            r
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered_for_any_job_count() {
        let items: Vec<usize> = (0..257).collect();
        let serial = par_map(1, &items, |i, &x| i * 1000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let par = par_map(jobs, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[5u32], |i, &x| (i, x)), vec![(0, 5)]);
    }

    #[test]
    fn jobs_zero_is_clamped_to_serial() {
        let items = [1, 2, 3];
        assert_eq!(par_map(0, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn par_map_catch_isolates_poisoned_items() {
        let items: Vec<usize> = (0..64).collect();
        // Silence the default panic hook while panics are expected: the
        // catch still reports them, the terminal just stays readable.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = |jobs| {
            par_map_catch(jobs, &items, |_, &x| {
                if x % 7 == 3 {
                    panic!("poisoned item {x}");
                }
                x * 2
            })
        };
        let serial = run(1);
        let par = run(8);
        std::panic::set_hook(hook);
        assert_eq!(serial, par, "panic isolation must stay deterministic");
        for (i, r) in serial.iter().enumerate() {
            if i % 7 == 3 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned item"), "payload lost: {msg}");
            } else {
                assert_eq!(*r, Ok(i * 2));
            }
        }
    }

    #[test]
    fn ctx_variant_reports_sane_worker_ids() {
        let items: Vec<usize> = (0..64).collect();
        // Serial: every item runs on worker 0.
        let serial = par_map_ctx(1, &items, |w, i, &x| (w, i * 2 + x));
        assert!(serial.iter().all(|&(w, _)| w == 0));
        // Parallel: worker ids are within [0, jobs) and results (which must
        // not depend on the worker) match the serial run exactly.
        let par = par_map_ctx(4, &items, |w, i, &x| (w, i * 2 + x));
        assert!(par.iter().all(|&(w, _)| w < 4));
        let results: Vec<usize> = par.iter().map(|&(_, r)| r).collect();
        let expect: Vec<usize> = serial.iter().map(|&(_, r)| r).collect();
        assert_eq!(results, expect);
    }

    #[test]
    fn resolve_jobs_defaults_to_available() {
        assert_eq!(resolve_jobs(None), available_jobs());
        assert_eq!(resolve_jobs(Some(0)), available_jobs());
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn monitor_accounts_utilization_and_watched_preserves_results() {
        let cfg = MonitorConfig { stall_after: Duration::from_secs(60), ..Default::default() };
        let m = PoolMonitor::new(cfg, None);
        m.set_context("unit");
        let items: Vec<usize> = (0..40).collect();
        let baseline = par_map_catch_ctx(4, &items, |_, i, &x| i + x);
        let watched_run =
            par_map_catch_ctx_watched(
                4,
                &items,
                Some(&m),
                |i, _| (i, format!("item {i}")),
                |_, i, &x| i + x,
            );
        assert_eq!(baseline, watched_run);
        let stats = m.worker_stats();
        assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), items.len() as u64);
        assert!(m.stalls().is_empty(), "clean run must not flag stalls");
    }

    #[test]
    fn watchdog_flags_a_wedged_item_once_with_its_path() {
        let cfg = MonitorConfig {
            stall_after: Duration::from_millis(20),
            poll: Duration::from_millis(5),
        };
        let m = PoolMonitor::new(cfg, None);
        m.set_context("gemm 64x64x64");
        m.begin(1, 7, "dbuf=true, coal=false");
        std::thread::sleep(Duration::from_millis(30));
        m.poll_once();
        m.poll_once(); // second sample must not double-flag the same item
        let stalls = m.stalls();
        assert_eq!(stalls.len(), 1, "{stalls:?}");
        assert_eq!(stalls[0].worker, 1);
        assert_eq!(stalls[0].index, 7);
        assert!(stalls[0].path.contains("gemm 64x64x64"), "{}", stalls[0].path);
        assert!(stalls[0].path.contains("dbuf=true"), "{}", stalls[0].path);
        assert!(stalls[0].stalled_ms >= 20);
        m.finish(1);
        m.poll_once();
        assert_eq!(m.stalls().len(), 1, "finished item must not re-flag");
    }

    #[test]
    fn monitor_panicking_item_still_clears_the_slot() {
        let cfg = MonitorConfig { stall_after: Duration::from_millis(1), ..Default::default() };
        let m = PoolMonitor::new(cfg, None);
        let items = [1u32, 2, 3];
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = par_map_catch_ctx_watched(
            1,
            &items,
            Some(&m),
            |i, _| (i, format!("item {i}")),
            |_, _, &x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            },
        );
        std::panic::set_hook(hook);
        assert!(out[1].is_err());
        // finish() ran even for the panicking item: no slot left in flight.
        std::thread::sleep(Duration::from_millis(5));
        m.poll_once();
        assert!(m.stalls().is_empty(), "cleared slot flagged as stalled");
    }
}
