//! Checkpoint/resume for long tuning sweeps.
//!
//! A full operator sweep on real hardware takes long enough that losing a
//! run to a node reclaim is expensive, so the tuning engine periodically
//! serializes its partial per-candidate state ([`CandCell`]s) to a small
//! JSON file and can resume from it. The format is hand-rolled — the
//! machine-model stack is dependency-free — and versioned behind a
//! fingerprint of the tuning context, so a checkpoint from a different
//! candidate space, machine config or fault plan is detected and ignored
//! rather than silently corrupting the search.
//!
//! On-disk shape (one line):
//!
//! ```json
//! {"v":1,"fp":1234,"cells":[null,{"c":99,"r":0,"m":3},{"e":"msg","r":2}]}
//! ```
//!
//! `null` = not yet measured, `{"c","r","m"}` = measured (cycles, retries,
//! samples), `{"e","r"}` = failed (error, retries). Writes are atomic
//! (tempfile + rename), so a sweep killed mid-write leaves the previous
//! checkpoint intact.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use sw26010::{Cycles, MachineConfig};

/// Bumped when the on-disk shape changes; mixed into the fingerprint.
pub const FORMAT_VERSION: u64 = 1;

/// Per-candidate measurement state, the unit the engine checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandCell {
    /// Not measured yet.
    Pending,
    /// Measured: the (median) observed cycles, transient-failure retries
    /// consumed, and successful samples taken.
    Done { cycles: u64, retries: u32, samples: u32 },
    /// Terminally failed with an error message, after `retries` retries.
    Failed { error: String, retries: u32 },
}

impl CandCell {
    pub fn is_pending(&self) -> bool {
        matches!(self, CandCell::Pending)
    }

    /// Observed cycles, when measured.
    pub fn cycles(&self) -> Option<Cycles> {
        match self {
            CandCell::Done { cycles, .. } => Some(Cycles(*cycles)),
            _ => None,
        }
    }

    /// Retries consumed measuring this candidate.
    pub fn retries(&self) -> u32 {
        match self {
            CandCell::Pending => 0,
            CandCell::Done { retries, .. } | CandCell::Failed { retries, .. } => *retries,
        }
    }
}

/// A parsed checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub fingerprint: u64,
    pub cells: Vec<CandCell>,
}

/// FNV-1a fingerprint of the tuning context a checkpoint belongs to: the
/// candidate count plus every machine parameter that shapes measured cycles
/// or injected faults. Stable across processes (no hasher randomization),
/// which `std::hash` does not guarantee.
pub fn fingerprint(cfg: &MachineConfig, n_candidates: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(FORMAT_VERSION);
    eat(n_candidates as u64);
    eat(cfg.spm_bytes as u64);
    eat(cfg.dram_transaction_bytes as u64);
    eat(cfg.mem_bytes_per_cycle.to_bits());
    eat(cfg.dma_startup.get());
    eat(cfg.dma_block_overhead.get());
    eat(cfg.dma_issue_cost.get());
    eat(cfg.dma_wait_poll.get());
    eat(cfg.vmad_latency);
    eat(cfg.vldd_latency);
    eat(cfg.bcast_latency);
    eat(cfg.vstd_latency);
    eat(cfg.regcomm_switch.get());
    eat(cfg.kernel_call_overhead.get());
    eat(cfg.kernel_launch.get());
    eat(cfg.kernel_signal.get());
    match cfg.fault {
        None => eat(0),
        Some(p) => {
            eat(1);
            eat(p.seed);
            eat(u64::from(p.dma_fail_ppm));
            eat(u64::from(p.spm_pressure_ppm));
            eat(u64::from(p.spm_steal_max_permille));
            eat(u64::from(p.jitter_permille));
        }
    }
    h
}

/// Render a checkpoint as its JSON line.
pub fn render(fingerprint: u64, cells: &[CandCell]) -> String {
    let mut s = String::with_capacity(32 + cells.len() * 16);
    let _ = write!(s, "{{\"v\":{FORMAT_VERSION},\"fp\":{fingerprint},\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match c {
            CandCell::Pending => s.push_str("null"),
            CandCell::Done { cycles, retries, samples } => {
                let _ = write!(s, "{{\"c\":{cycles},\"r\":{retries},\"m\":{samples}}}");
            }
            CandCell::Failed { error, retries } => {
                s.push_str("{\"e\":");
                escape_into(&mut s, error);
                let _ = write!(s, ",\"r\":{retries}}}");
            }
        }
    }
    s.push_str("]}\n");
    s
}

/// Atomically write a checkpoint: render to `<path>.tmp`, then rename over
/// `path`, so an interrupted write never clobbers the previous state.
pub fn save(path: &Path, fingerprint: u64, cells: &[CandCell]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, render(fingerprint, cells))?;
    fs::rename(&tmp, path)
}

/// Load and parse a checkpoint file.
pub fn load(path: &Path) -> Result<Checkpoint, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse(&text)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a checkpoint from its JSON text. The parser accepts the subset of
/// JSON the renderer emits (objects, arrays, strings, unsigned integers,
/// `null`), with keys in any order, and fails with a message on anything
/// else — a truncated or hand-edited file is reported, not trusted.
pub fn parse(text: &str) -> Result<Checkpoint, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    let top = v.as_obj("checkpoint")?;
    let version = get(top, "v")?.as_u64("v")?;
    if version != FORMAT_VERSION {
        return Err(format!("unsupported checkpoint version {version}"));
    }
    let fingerprint = get(top, "fp")?.as_u64("fp")?;
    let cells = get(top, "cells")?
        .as_arr("cells")?
        .iter()
        .map(cell_of)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Checkpoint { fingerprint, cells })
}

fn cell_of(v: &Json) -> Result<CandCell, String> {
    match v {
        Json::Null => Ok(CandCell::Pending),
        Json::Obj(fields) => {
            let retries = get(fields, "r")?.as_u64("r")? as u32;
            if let Some(e) = fields.iter().find(|(k, _)| k == "e") {
                Ok(CandCell::Failed { error: e.1.as_str("e")?.to_string(), retries })
            } else {
                let cycles = get(fields, "c")?.as_u64("c")?;
                let samples = get(fields, "m")?.as_u64("m")? as u32;
                Ok(CandCell::Done { cycles, retries, samples })
            }
        }
        _ => Err("cell must be null or an object".to_string()),
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key \"{key}\""))
}

/// The minimal JSON value model the checkpoint format needs.
enum Json {
    Null,
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected an unsigned integer")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected an object")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!("expected '{}' at byte {}", b as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.bytes.get(self.pos).ok_or_else(|| "truncated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => return Err(format!("unknown escape '\\{}'", *c as char)),
                    }
                }
                Some(_) => unreachable!("scan stops only at quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(hex)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        // Surrogate pair: the renderer never emits them, but accept them so
        // a hand-written checkpoint with standard JSON escapes still loads.
        let code = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("lone high surrogate".to_string());
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".to_string());
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid code point {code:#x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<CandCell> {
        vec![
            CandCell::Pending,
            CandCell::Done { cycles: 123_456, retries: 2, samples: 3 },
            CandCell::Failed { error: "bad kernel arguments: \"q\"\n\\x".into(), retries: 7 },
            CandCell::Done { cycles: u64::MAX, retries: 0, samples: 1 },
        ]
    }

    #[test]
    fn round_trip_preserves_cells() {
        let text = render(0xDEAD_BEEF, &cells());
        let ck = parse(&text).unwrap();
        assert_eq!(ck.fingerprint, 0xDEAD_BEEF);
        assert_eq!(ck.cells, cells());
    }

    #[test]
    fn round_trip_preserves_unicode_and_control_chars() {
        let cells = vec![CandCell::Failed {
            error: "injecté \u{1F600} \u{1} tab\there".into(),
            retries: 1,
        }];
        assert_eq!(parse(&render(1, &cells)).unwrap().cells, cells);
    }

    #[test]
    fn save_and_load_are_atomic_and_consistent() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("swatop_ck_test_{}.json", std::process::id()));
        save(&path, 42, &cells()).unwrap();
        let ck = load(&path).unwrap();
        assert_eq!(ck, Checkpoint { fingerprint: 42, cells: cells() });
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_or_garbage_input_is_rejected() {
        let text = render(7, &cells());
        assert!(parse(&text[..text.len() / 2]).is_err(), "truncated file must not parse");
        assert!(parse("not json").is_err());
        assert!(parse("{\"v\":99,\"fp\":0,\"cells\":[]}").is_err(), "future version rejected");
        assert!(parse("").is_err());
    }

    #[test]
    fn fingerprint_tracks_space_config_and_faults() {
        let cfg = MachineConfig::default();
        let base = fingerprint(&cfg, 100);
        assert_eq!(base, fingerprint(&cfg, 100), "fingerprint must be stable");
        assert_ne!(base, fingerprint(&cfg, 101), "candidate count must matter");
        let mut faulty = cfg.clone();
        faulty.fault = Some(sw26010::FaultPlan::with_seed(1));
        assert_ne!(base, fingerprint(&faulty, 100), "fault plan must matter");
        let mut other = faulty.clone();
        other.fault = Some(sw26010::FaultPlan::with_seed(2));
        assert_ne!(fingerprint(&faulty, 100), fingerprint(&other, 100));
    }
}
