//! The autotuner (paper Sec. 4.6): performance-model-based and black-box.
//!
//! * [`blackbox_tune`] "runs every single schedule strategy of the schedule
//!   space to identify the optimal code" — here, executes every candidate on
//!   the simulated machine in cost-only mode and picks the fastest.
//! * [`model_tune`] "only runs the best strategy identified by the
//!   performance model": it evaluates the static model (Eq. 1 + Eq. 2 with
//!   `T_overall = max`) on every candidate analytically and executes only
//!   the winner to report its real (simulated) time.
//!
//! Both report wall-clock tuning time, which is what Tab. 3 compares; the
//! quality gap between the model's pick and the black-box optimum is what
//! Fig. 9 reports.
//!
//! Every tuner has a `_jobs` variant that fans candidate evaluation over a
//! [`pool`] of worker threads, and an `_opts` variant taking [`TuneOptions`]
//! that additionally controls fault resilience (retry/backoff, median-of-N
//! repeated measurement — see [`RetryPolicy`]) and checkpoint/resume
//! ([`CheckpointPolicy`]). Results are deterministic and identical to the
//! serial tuners for any job count: each candidate runs on a private
//! cost-only machine whose fault stream (if any) is derived from the
//! candidate's input index, results come back in input order, and the
//! winner is the minimum under the total order `(cycles, input index)`.

pub mod checkpoint;
pub mod pool;
pub mod search;

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sw26010::{
    CoreGroup, Counters, Cycles, ExecMode, MachineConfig, MachineError, MachineResult,
};
use swatop_ir::{MatDesc, SpmSlot, Stmt};
use swkernels::spm_gemm::SpmMatrix;

use self::checkpoint::CandCell;
use self::pool::PoolMonitor;
use crate::codegen::Executable;
use crate::interp::{execute, instantiate};
use crate::model::memo::MemoCache;
use crate::model::{estimate_program_memo, GemmModel};
use crate::observatory::{self, BottleneckMix, Peaks};
use crate::scheduler::Candidate;
use crate::telemetry::bus::{Event, EventBus};
use crate::telemetry::{SpanKind, Telemetry, TuneTelemetry};

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Position of the chosen candidate in the input slice.
    pub best: usize,
    /// Simulated cycles of the chosen candidate.
    pub cycles: Cycles,
    /// Host wall-clock time spent tuning (screening, measuring, picking).
    /// Calibrating the analytic [`GemmModel`] is *excluded*: it is a
    /// per-machine cost cached for the whole process, and charging it to
    /// whichever operator happens to tune first would make walls — and the
    /// candidates-per-second throughput derived from them — depend on op
    /// order rather than on the tuner.
    pub wall: Duration,
    /// Number of candidates whose code was actually *executed*.
    pub executed: usize,
    /// Simulated cycles of every executed candidate (same order as input;
    /// `None` when not executed or invalid at runtime).
    pub all_cycles: Vec<Option<Cycles>>,
    /// Worker threads used for candidate evaluation (1 = serial).
    pub jobs: usize,
    /// Aggregate per-candidate evaluation time, i.e. the serial-equivalent
    /// cost: what `wall` would roughly be at `jobs = 1`. The ratio
    /// `cpu / wall` is the realised parallel speedup.
    pub cpu: Duration,
    /// Candidates that terminally failed (pre-validation, runtime error, or
    /// retry-budget exhaustion).
    pub failed: usize,
    /// Total transient-failure retries consumed across all candidates.
    pub retried: u64,
    /// Prospective winners rejected by the [`WinnerValidator`] and
    /// quarantined; each one forced a fallback to the next-best legal
    /// candidate. Always 0 when tuning without a validator. The reasons are
    /// in [`CandReport::quarantined`].
    pub quarantined: usize,
    /// Per-candidate measurement report, index-aligned with the input.
    pub reports: Vec<CandReport>,
    /// Search-trajectory convergence curve: `(candidates evaluated,
    /// best-so-far cycles)` sampled at every improvement, in evaluation
    /// order. The evaluation order is the tuner's deterministic schedule
    /// (input order for the blackbox tuner, model-ranked wave order for the
    /// model tuner), so the curve is identical for every `jobs` value.
    pub convergence: Vec<(u64, u64)>,
    /// Candidates ranked by the tier-0 analytic screen (the whole space for
    /// the tiered and model tuners, 0 for the pure black-box tuner).
    pub screened: usize,
    /// Tier-2 winner validations performed (quarantined rejections plus the
    /// final accept). 0 when tuning without a validator.
    pub validated: usize,
    /// Condensed telemetry (counter totals, model accuracy, roofline
    /// bottleneck mix); present iff the run was instrumented via
    /// [`TuneOptions::telemetry`].
    pub telemetry: Option<TuneTelemetry>,
}

impl TuneOutcome {
    /// Distinct candidates whose cost was evaluated by *any* tier: the
    /// analytic screen covers the whole space when it ran, otherwise
    /// whatever the scoreboard executed.
    pub fn candidates_evaluated(&self) -> usize {
        self.screened.max(self.executed)
    }

    /// Evaluation throughput in candidates per second of tuning wall-clock
    /// (0 when the wall-clock is too small to resolve).
    pub fn cands_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.candidates_evaluated() as f64 / secs
        } else {
            0.0
        }
    }
}

/// What happened while measuring one candidate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandReport {
    /// Transient-failure retries consumed.
    pub retries: u32,
    /// Successful measurement samples taken (0 = never executed).
    pub samples: u32,
    /// Terminal error message, if the candidate failed.
    pub error: Option<String>,
    /// Validator verdict, if this candidate was a prospective winner that
    /// failed validation and was quarantined. Quarantine is distinct from
    /// `error`: the candidate *measured* fine but computes the wrong answer
    /// (or carries a statically illegal schedule).
    pub quarantined: Option<String>,
}

impl CandReport {
    fn from_cell(cell: &CandCell) -> CandReport {
        match cell {
            CandCell::Pending => CandReport::default(),
            CandCell::Done { retries, samples, .. } => {
                CandReport { retries: *retries, samples: *samples, ..CandReport::default() }
            }
            CandCell::Failed { error, retries } => CandReport {
                retries: *retries,
                error: Some(error.clone()),
                ..CandReport::default()
            },
        }
    }
}

/// Validates a prospective tuning winner `(input index, candidate)` before
/// it may be reported. `Err` carries the human-readable reason; the tuner
/// quarantines the candidate and falls back to the next-best one. The
/// verdict must be a *pure function of the candidate* — deterministic and
/// independent of measurement order — or quarantine decisions (and thus the
/// reported winner) would vary across runs and job counts. The standard
/// implementation is [`crate::ops::validate_candidate`] (static legality
/// check + differential functional execution on a fault-free machine).
pub type WinnerValidator<'v> = dyn Fn(usize, &Candidate) -> Result<(), String> + 'v;

/// How the engine reacts to transient failures and measurement noise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total execution attempts allowed per candidate, shared between
    /// retries and repeats. Exhausting it with zero successful samples
    /// marks the candidate failed.
    pub max_attempts: u32,
    /// Successful samples to take per candidate when measurement jitter is
    /// enabled; the reported figure is their median. Ignored (one sample)
    /// on a jitter-free machine. Odd values give a true median.
    pub repeats: u32,
    /// Base host-side backoff slept after a transient failure, doubled per
    /// consecutive retry and capped at 16×. Zero disables sleeping.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 8, repeats: 3, backoff: Duration::from_micros(50) }
    }
}

impl RetryPolicy {
    /// Classify a failed execution attempt: retry only errors that can
    /// plausibly go away on a fresh attempt. Deterministic failures —
    /// malformed requests, kernel-contract violations ([`MachineError::BadKernelArgs`]),
    /// out-of-bounds accesses, reply underflows — recur on every attempt
    /// and must fail fast instead of burning the retry budget. Injected
    /// [`MachineError::DmaFault`]s are always transient; an SPM overflow is
    /// transient *only* when a fault plan is active (injected capacity
    /// pressure may have caused it — the next attempt may get the scratch
    /// pad back). Validation failures never reach this path at all: the
    /// winner validator is a pure function of the candidate, so its
    /// verdict is quarantined, not retried.
    pub fn should_retry(&self, e: &MachineError, fault_active: bool) -> bool {
        match e {
            MachineError::DmaFault { .. } => true,
            MachineError::SpmOverflow { .. } => fault_active,
            _ => {
                debug_assert!(e.is_deterministic());
                false
            }
        }
    }
}

/// Periodic serialization of partial tuning state; see [`checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// File the engine writes to (atomically) and resumes from.
    pub path: PathBuf,
    /// Candidate evaluations between checkpoint writes.
    pub every: usize,
    /// Load `path` before tuning and skip already-measured candidates. A
    /// missing or mismatched file starts fresh (with a warning on stderr).
    pub resume: bool,
}

impl CheckpointPolicy {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { path: path.into(), every: 32, resume: false }
    }

    pub fn resuming(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { resume: true, ..Self::new(path) }
    }
}

/// Evaluation-ladder selection for [`tiered_tune_validated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierMode {
    /// Three-tier ladder: analytic screen → scoreboard top-k → functional
    /// winner validation.
    #[default]
    Tiered,
    /// Reference mode: every candidate pays the full scoreboard
    /// interpreter (the PR 6 behaviour). Winners must be byte-identical to
    /// `Tiered` on a well-calibrated model — the CI throughput leg enforces
    /// exactly that.
    FullScoreboard,
}

impl TierMode {
    /// Parse a `--tiers` flag value.
    pub fn parse(s: &str) -> Option<TierMode> {
        match s {
            "tiered" => Some(TierMode::Tiered),
            "full" | "full-scoreboard" => Some(TierMode::FullScoreboard),
            _ => None,
        }
    }
}

/// Tier-ladder configuration: how much of the space the scoreboard tier
/// measures and whether the analytic tier memoizes sub-costs.
#[derive(Debug, Clone, PartialEq)]
pub struct TierPolicy {
    pub mode: TierMode,
    /// Scoreboard wave floor: tier-1 always measures at least this many of
    /// the analytic top ranks (the classic model-tuner `k`).
    pub base_k: usize,
    /// Lower bound on the model's assumed relative error band. The adaptive
    /// widening rule never trusts the analytic ranking tighter than this,
    /// even when the observed error on the measured wave is smaller. The
    /// default 0.5 mirrors the ~46% MAPE of the seed calibration.
    pub band_floor: f64,
    /// Hard cap on the scoreboard wave, bounding tier-1 cost when the
    /// analytic ranking is flat (many near-equal predictions).
    pub max_k: usize,
    /// Memoize analytic sub-costs in the shared [`MemoCache`]. Estimates
    /// are bit-identical either way; this only trades memory for speed.
    pub memo: bool,
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy {
            mode: TierMode::Tiered,
            base_k: 3,
            band_floor: 0.5,
            max_k: 64,
            memo: true,
        }
    }
}

/// Full configuration of a tuning run. `TuneOptions::default()` reproduces
/// the plain `_jobs` tuners at `jobs = 1`.
#[derive(Debug, Clone, Default)]
pub struct TuneOptions {
    /// Worker threads (0 and 1 both mean serial).
    pub jobs: usize,
    pub retry: RetryPolicy,
    pub checkpoint: Option<CheckpointPolicy>,
    /// Span/counter/accuracy recorder. `None` (the default) disables
    /// instrumentation entirely: no allocation, no locking, and tuning
    /// results bit-identical to the uninstrumented tuners. Attach a handle
    /// scoped with [`Telemetry::child_of`] to group this run's candidate
    /// spans under an operator span.
    pub telemetry: Option<Telemetry>,
    /// Tier-ladder configuration consumed by [`tiered_tune_validated`];
    /// the fixed-k `model_tune_*` and exhaustive `blackbox_tune_*` entry
    /// points only read [`TierPolicy::memo`].
    pub tiers: TierPolicy,
    /// Live lifecycle-event bus (see [`crate::telemetry::bus`]). `None`
    /// (the default) emits nothing; with a bus attached but no subscriber
    /// the cost is one relaxed load per event site. Events are report-only
    /// and never feed tuning decisions, so results are bit-identical with
    /// or without one.
    pub bus: Option<EventBus>,
    /// Heartbeat / utilization / stall-watchdog monitor for the worker
    /// pool (see [`PoolMonitor`]). `None` (the default) spawns no watchdog
    /// thread and records nothing. Report-only, like the bus.
    pub monitor: Option<Arc<PoolMonitor>>,
}

impl TuneOptions {
    pub fn with_jobs(jobs: usize) -> Self {
        TuneOptions { jobs, ..TuneOptions::default() }
    }
}

/// Why a tuning run produced no outcome at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The candidate slice was empty (or the budget sampled nothing).
    NoCandidates,
    /// Every sampled candidate failed terminally.
    AllFailed {
        /// Candidates whose measurement was attempted.
        sampled: usize,
        /// The last terminal error observed, as a representative.
        last_error: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoCandidates => write!(f, "tuning found no candidates to measure"),
            TuneError::AllFailed { sampled, last_error } => write!(
                f,
                "all {sampled} sampled candidates failed; last error: {last_error}"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

/// Execute one candidate in cost-only mode, returning its simulated cycles
/// (including the warm-start signal to the resident athread group — the
/// tuner keeps the CPE cluster spawned across candidates, so a candidate
/// pays `kernel_signal`, not the cold `kernel_launch`).
pub fn run_candidate(cfg: &MachineConfig, cand: &Candidate) -> MachineResult<Cycles> {
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
    let binding = instantiate(&mut cg, &cand.exe);
    Ok(execute(&mut cg, &cand.exe, &binding)? + cfg.kernel_signal)
}

/// Static pre-validation, run *before* any simulated execution: reject
/// candidates whose SPM footprint cannot fit the nominal scratch pad or
/// whose GEMM nodes violate the primitive's divisibility contract. Both
/// would also fail at runtime, but surfacing them as
/// [`MachineError::BadKernelArgs`] up front costs nothing and never burns
/// a retry on an error that can't go away.
pub fn prevalidate(cfg: &MachineConfig, cand: &Candidate) -> MachineResult<()> {
    if cand.exe.spm_used > cfg.spm_elems() {
        return Err(MachineError::BadKernelArgs(format!(
            "SPM footprint {} elems exceeds capacity {}",
            cand.exe.spm_used,
            cfg.spm_elems()
        )));
    }
    let mut err: Option<MachineError> = None;
    cand.exe.program.body.visit(&mut |s| {
        if err.is_none() {
            if let Stmt::Gemm(g) = s {
                let mat = |m: &MatDesc| {
                    SpmMatrix::new(slot_offset(&cand.exe, &m.slot) + m.offset, m.layout, m.ld)
                };
                if let Err(e) = swkernels::spm_gemm::validate(
                    g.m,
                    g.n,
                    g.k,
                    &mat(&g.a),
                    &mat(&g.b),
                    &mat(&g.c),
                    g.vd,
                ) {
                    err = Some(e);
                }
            }
        }
    });
    err.map_or(Ok(()), Err)
}

/// Static SPM offset of a slot (even parity for double buffers — parities
/// share a size, and [`swkernels::spm_gemm::validate`] only needs layout
/// and leading dimension anyway).
fn slot_offset(exe: &Executable, slot: &SpmSlot) -> usize {
    let id = match slot {
        SpmSlot::Single(b) => *b,
        SpmSlot::Double { even, .. } => *even,
    };
    exe.try_spm_offset(id).unwrap_or(0)
}

/// Sleep the exponential backoff for the `nth` consecutive retry.
fn backoff_sleep(retry: &RetryPolicy, nth: u32) {
    if retry.backoff.is_zero() {
        return;
    }
    std::thread::sleep(retry.backoff.saturating_mul(1 << nth.min(4)));
}

/// Measure one candidate under the retry policy, returning its cell, the
/// host time spent and the machine counters of its last successful
/// execution. The fault stream of attempt `a` is derived from `(index, a)`,
/// so the returned cell is a pure function of the candidate — never of
/// worker count or evaluation order. `tel`, when present, must be a
/// *candidate-scoped* handle: each execution attempt records an Attempt
/// span under it. The `None` path touches no telemetry state at all.
fn measure_candidate(
    cfg: &MachineConfig,
    cand: &Candidate,
    index: usize,
    retry: &RetryPolicy,
    tel: Option<&Telemetry>,
) -> (CandCell, Duration, Counters) {
    let t = Instant::now();
    let mut counters = Counters::default();
    if let Err(e) = prevalidate(cfg, cand) {
        return (CandCell::Failed { error: e.to_string(), retries: 0 }, t.elapsed(), counters);
    }
    if let Some(plan) = &cfg.fault {
        // Injected stall for watchdog tests: burns host wall-clock only,
        // before any simulated execution, so measured cycles — and hence
        // every tuning decision — are bit-identical with or without it.
        if plan.wedges(index as u64) {
            std::thread::sleep(Duration::from_millis(u64::from(plan.wedge_ms)));
        }
    }
    let fault_active = cfg.fault.is_some();
    let repeats = if cfg.fault.as_ref().is_some_and(|p| p.jitter_permille > 0) {
        retry.repeats.max(1)
    } else {
        1
    };
    let budget = retry.max_attempts.max(repeats);
    let mut samples: Vec<Cycles> = Vec::with_capacity(repeats as usize);
    let mut retries = 0u32;
    let mut attempt = 0u32;
    let mut last_transient: Option<MachineError> = None;
    while (samples.len() as u32) < repeats && attempt < budget {
        let span = tel.map(|t| t.open(SpanKind::Attempt, format!("attempt {attempt}")));
        let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
        cg.arm_faults(index as u64, attempt);
        attempt += 1;
        let binding = instantiate(&mut cg, &cand.exe);
        match execute(&mut cg, &cand.exe, &binding) {
            Ok(c) => {
                let observed = cg.observed(c + cfg.kernel_signal);
                samples.push(observed);
                counters = cg.counters;
                if let (Some(t), Some(id)) = (tel, span) {
                    t.update(id, |s| {
                        s.cycles = Some(observed.get());
                        s.counters = counters;
                    });
                    t.close(id);
                }
            }
            // SPM overflow is permanent on a perfect machine (prevalidation
            // bounds the footprint) but transient under injected capacity
            // pressure: the next attempt may get the scratch pad back.
            Err(e) if retry.should_retry(&e, fault_active) => {
                retries += 1;
                if let (Some(t), Some(id)) = (tel, span) {
                    let msg = e.to_string();
                    t.update(id, |s| s.error = Some(msg));
                    t.close(id);
                }
                last_transient = Some(e);
                backoff_sleep(retry, retries);
            }
            Err(e) => {
                if let (Some(t), Some(id)) = (tel, span) {
                    let msg = e.to_string();
                    t.update(id, |s| s.error = Some(msg));
                    t.close(id);
                }
                return (
                    CandCell::Failed { error: e.to_string(), retries },
                    t.elapsed(),
                    counters,
                );
            }
        }
    }
    if samples.is_empty() {
        let why = last_transient.map_or_else(|| "no samples taken".to_string(), |e| e.to_string());
        let error = format!("retry budget ({budget} attempts) exhausted: {why}");
        return (CandCell::Failed { error, retries }, t.elapsed(), counters);
    }
    // Median of the achieved samples (upper median for even counts): robust
    // against jitter outliers, deterministic because samples are a pure
    // function of (index, attempt).
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let cell =
        CandCell::Done { cycles: median.get(), retries, samples: samples.len() as u32 };
    (cell, t.elapsed(), counters)
}

/// [`measure_candidate`] wrapped in a Candidate span on the worker's
/// telemetry track, recording the (predicted, measured) accuracy pair.
/// With `tel = None` this *is* `measure_candidate` — no span, no lock, no
/// allocation.
fn measure_instrumented(
    cfg: &MachineConfig,
    cand: &Candidate,
    index: usize,
    retry: &RetryPolicy,
    tel: Option<&Telemetry>,
    worker: usize,
    predicted: Option<f64>,
) -> (CandCell, Duration, Counters) {
    let Some(t) = tel else {
        return measure_candidate(cfg, cand, index, retry, None);
    };
    // Pin the span to the worker's timeline track unless the caller already
    // chose one (sweep harnesses pre-assign tracks per shape).
    let t = if t.track().is_some() { t.clone() } else { t.on_track(worker) };
    let span = t.open(SpanKind::Candidate, cand.describe.clone());
    let scoped = t.child_of(span);
    let (cell, wall, counters) = measure_candidate(cfg, cand, index, retry, Some(&scoped));
    t.update(span, |s| {
        s.index = Some(index);
        s.predicted = predicted;
        s.counters = counters;
        match &cell {
            CandCell::Done { cycles, retries, samples } => {
                s.cycles = Some(*cycles);
                s.retries = *retries;
                s.samples = *samples;
            }
            CandCell::Failed { error, retries } => {
                s.error = Some(error.clone());
                s.retries = *retries;
            }
            CandCell::Pending => {}
        }
    });
    t.close(span);
    if let (Some(p), CandCell::Done { cycles, .. }) = (predicted, &cell) {
        t.record_pair(index, p, *cycles);
    }
    (cell, wall, counters)
}

/// Argmin over executed candidates under the total order `(cycles, index)`.
/// Breaking ties by input index is what makes the parallel tuners
/// deterministic: the serial black-box loop keeps the *first* strictly
/// fastest candidate, which is exactly this minimum.
fn best_of(all: &[Option<Cycles>]) -> Option<(usize, Cycles)> {
    all.iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|c| (i, c)))
        .min_by_key(|&(i, c)| (c, i))
}

/// The fault-aware measurement engine shared by the tuners: a cell per
/// candidate, chunked evaluation over the worker pool with panic isolation,
/// and (optionally) a checkpoint written after every chunk.
struct Engine<'a> {
    cfg: &'a MachineConfig,
    candidates: &'a [Candidate],
    jobs: usize,
    retry: RetryPolicy,
    checkpoint: Option<CheckpointPolicy>,
    fingerprint: u64,
    cells: Vec<CandCell>,
    cpu: Duration,
    telemetry: Option<Telemetry>,
    /// Model-predicted cycles per candidate (NaN = unscored). Populated via
    /// [`Engine::set_predictions`] only when telemetry is attached — the
    /// uninstrumented hot path never allocates it.
    predictions: Vec<f64>,
    /// Machine counters per measured candidate (only kept when telemetry is
    /// attached; empty otherwise).
    counters: Vec<Counters>,
    /// Prospective winners rejected by the validator: `(index, reason)` in
    /// quarantine order.
    quarantined: Vec<(usize, String)>,
    /// Candidate indices in the order the tuner asked for them (the
    /// deterministic schedule passed to [`Engine::run`], not worker
    /// completion order) — the substrate for the convergence curve.
    eval_order: Vec<usize>,
    /// Candidates covered by the tier-0 analytic screen.
    screened: usize,
    /// Winner validations performed (accepts and quarantines).
    validated: usize,
    /// Live event bus (report-only; `None` = silent).
    bus: Option<EventBus>,
    /// Pool heartbeat/stall monitor (report-only; `None` = no watchdog).
    monitor: Option<Arc<PoolMonitor>>,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a MachineConfig, candidates: &'a [Candidate], opts: &TuneOptions) -> Self {
        let fingerprint = checkpoint::fingerprint(cfg, candidates.len());
        let mut cells = vec![CandCell::Pending; candidates.len()];
        if let Some(cp) = &opts.checkpoint {
            if cp.resume {
                match checkpoint::load(&cp.path) {
                    Ok(ck) if ck.fingerprint == fingerprint && ck.cells.len() == cells.len() => {
                        cells = ck.cells;
                    }
                    Ok(_) => eprintln!(
                        "swatop: checkpoint {} belongs to a different sweep; starting fresh",
                        cp.path.display()
                    ),
                    Err(e) => eprintln!(
                        "swatop: cannot resume from {}: {e}; starting fresh",
                        cp.path.display()
                    ),
                }
            }
        }
        let counters = if opts.telemetry.is_some() {
            vec![Counters::default(); candidates.len()]
        } else {
            Vec::new()
        };
        Engine {
            cfg,
            candidates,
            jobs: opts.jobs.max(1),
            retry: opts.retry.clone(),
            checkpoint: opts.checkpoint.clone(),
            fingerprint,
            cells,
            cpu: Duration::ZERO,
            telemetry: opts.telemetry.clone(),
            predictions: Vec::new(),
            counters,
            quarantined: Vec::new(),
            eval_order: Vec::new(),
            screened: 0,
            validated: 0,
            bus: opts.bus.clone(),
            monitor: opts.monitor.clone(),
        }
    }

    /// Publish a lifecycle event when a bus is attached (the `None` path
    /// never builds the event).
    fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(bus) = &self.bus {
            bus.emit_with(f);
        }
    }

    /// Run the winner validator on candidate `i`, recording a Validate span
    /// (with the rejection reason as its error) when instrumented.
    fn validate(&mut self, validator: &WinnerValidator, i: usize) -> Result<(), String> {
        self.validated += 1;
        let span = self
            .telemetry
            .as_ref()
            .map(|t| (t, t.open(SpanKind::Validate, self.candidates[i].describe.clone())));
        let res = validator(i, &self.candidates[i]);
        if let Some((t, id)) = span {
            t.update(id, |s| {
                s.index = Some(i);
                if let Err(reason) = &res {
                    s.error = Some(reason.clone());
                }
            });
            t.close(id);
        }
        res
    }

    /// Quarantine a rejected winner. The caller must also clear it from its
    /// own selection set so the fallback loop moves on.
    fn quarantine(&mut self, index: usize, reason: String) {
        self.emit(|| Event::Quarantined { index, reason: reason.clone() });
        self.quarantined.push((index, reason));
    }

    /// Remember model predictions for accuracy tracking (telemetry only;
    /// a no-op shortcut keeps the uninstrumented path allocation-free).
    fn set_predictions(&mut self, ranked: &[(usize, f64)]) {
        if self.telemetry.is_none() {
            return;
        }
        self.predictions = vec![f64::NAN; self.candidates.len()];
        for &(i, score) in ranked {
            self.predictions[i] = score;
        }
    }

    fn prediction(&self, i: usize) -> Option<f64> {
        self.predictions.get(i).copied().filter(|p| p.is_finite())
    }

    /// Measure every still-pending index of `order`, a chunk at a time; a
    /// worker panic marks only its own candidate failed.
    fn run(&mut self, order: &[usize]) {
        let todo: Vec<usize> =
            order.iter().copied().filter(|&i| self.cells[i].is_pending()).collect();
        if todo.is_empty() {
            return;
        }
        self.eval_order.extend(todo.iter().copied());
        self.emit(|| Event::WaveStart { size: todo.len() });
        let chunk = self.checkpoint.as_ref().map_or(usize::MAX, |c| c.every.max(1));
        for part in todo.chunks(chunk.min(todo.len())) {
            let results = pool::par_map_catch_ctx_watched(
                self.jobs,
                part,
                self.monitor.as_deref(),
                |_, &i| (i, self.candidates[i].describe.clone()),
                |worker, _, &i| {
                    let out = measure_instrumented(
                        self.cfg,
                        &self.candidates[i],
                        i,
                        &self.retry,
                        self.telemetry.as_ref(),
                        worker,
                        self.prediction(i),
                    );
                    self.emit(|| Event::CandidateMeasured {
                        index: i,
                        cycles: out.0.cycles().map(|c| c.get()),
                        retries: out.0.retries(),
                        worker,
                    });
                    out
                },
            );
            for (&i, r) in part.iter().zip(results) {
                self.cells[i] = match r {
                    Ok((cell, d, counters)) => {
                        self.cpu += d;
                        if let Some(slot) = self.counters.get_mut(i) {
                            *slot = counters;
                        }
                        cell
                    }
                    Err(msg) => CandCell::Failed { error: format!("panicked: {msg}"), retries: 0 },
                };
            }
            self.save();
        }
        self.emit(|| {
            let measured =
                todo.iter().filter(|&&i| matches!(self.cells[i], CandCell::Done { .. })).count();
            Event::WaveEnd { measured, failed: todo.len() - measured }
        });
        self.emit(|| {
            let (kernel_hits, kernel_misses, _) = swkernels::cost::cache_stats();
            let (memo_hits, memo_misses, _) = crate::model::memo::stats();
            Event::MemoTick { kernel_hits, kernel_misses, memo_hits, memo_misses }
        });
    }

    fn save(&self) {
        let Some(cp) = &self.checkpoint else { return };
        if let Err(e) = checkpoint::save(&cp.path, self.fingerprint, &self.cells) {
            eprintln!("swatop: failed to write checkpoint {}: {e}", cp.path.display());
        }
        self.emit(|| Event::CheckpointSaved {
            done: self.cells.iter().filter(|c| !c.is_pending()).count(),
            total: self.cells.len(),
        });
    }

    fn all_cycles(&self) -> Vec<Option<Cycles>> {
        self.cells.iter().map(CandCell::cycles).collect()
    }

    /// Best-so-far cycles vs. candidates evaluated, sampled at every
    /// improvement along [`Engine::eval_order`]. Failed evaluations count
    /// toward the x axis (they consumed search budget) but never improve
    /// the curve.
    fn convergence(&self) -> Vec<(u64, u64)> {
        let mut curve = Vec::new();
        let mut best: Option<u64> = None;
        for (n, &i) in self.eval_order.iter().enumerate() {
            if let Some(c) = self.cells[i].cycles() {
                if best.is_none_or(|b| c.get() < b) {
                    best = Some(c.get());
                    curve.push((n as u64 + 1, c.get()));
                }
            }
        }
        curve
    }

    fn outcome(&self, start: Instant, best: usize, cycles: Cycles, executed: usize) -> TuneOutcome {
        let telemetry = self.telemetry.as_ref().map(|t| {
            let peaks = Peaks::of(self.cfg);
            let mut total = Counters::default();
            let mut mix = BottleneckMix::default();
            for (cell, c) in self.cells.iter().zip(&self.counters) {
                if !cell.is_pending() {
                    total.merge(c);
                }
                // Attribute each measured candidate against the roofline;
                // pure function of (cycles, counters), so the mix is
                // identical for every worker count.
                if let Some(cycles) = cell.cycles() {
                    mix.note(observatory::classify(&peaks, cycles.get(), c));
                }
            }
            let mut summary = t.tune_summary(t.scope(), total);
            summary.mix = mix;
            summary.quarantined = self.quarantined.len();
            summary
        });
        let mut reports: Vec<CandReport> =
            self.cells.iter().map(CandReport::from_cell).collect();
        for (i, reason) in &self.quarantined {
            if let Some(r) = reports.get_mut(*i) {
                r.quarantined = Some(reason.clone());
            }
        }
        TuneOutcome {
            best,
            cycles,
            wall: start.elapsed(),
            executed,
            all_cycles: self.all_cycles(),
            jobs: self.jobs,
            cpu: self.cpu,
            failed: self.cells.iter().filter(|c| matches!(c, CandCell::Failed { .. })).count(),
            retried: self.cells.iter().map(|c| u64::from(c.retries())).sum(),
            quarantined: self.quarantined.len(),
            reports,
            telemetry,
            convergence: self.convergence(),
            screened: self.screened,
            validated: self.validated,
        }
    }
}

/// Brute-force black-box autotuner: execute everything, keep the fastest.
/// Serial (`jobs = 1`) form of [`blackbox_tune_jobs`].
pub fn blackbox_tune(cfg: &MachineConfig, candidates: &[Candidate]) -> Option<TuneOutcome> {
    blackbox_tune_jobs(cfg, candidates, 1)
}

/// Brute-force black-box autotuner over `jobs` worker threads. The result
/// is bit-identical for every `jobs` value: all candidates are executed,
/// `all_cycles` is in input order, and the winner is the `(cycles, index)`
/// minimum.
pub fn blackbox_tune_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    jobs: usize,
) -> Option<TuneOutcome> {
    blackbox_tune_opts(cfg, candidates, &TuneOptions::with_jobs(jobs))
}

/// [`blackbox_tune_jobs`] with full [`TuneOptions`] control (retry policy,
/// checkpoint/resume). Returns `None` when no candidate could be measured;
/// per-candidate errors are in [`TuneOutcome::reports`] otherwise.
pub fn blackbox_tune_opts(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    opts: &TuneOptions,
) -> Option<TuneOutcome> {
    blackbox_tune_validated(cfg, candidates, opts, None)
}

/// [`blackbox_tune_opts`] with winner validation and quarantine-and-fallback:
/// before any candidate is reported as the winner it must pass `validator`.
/// A rejected winner is quarantined (recorded in
/// [`TuneOutcome::quarantined`] / [`CandReport::quarantined`], plus a
/// telemetry Validate span) and the pick falls back to the next-best
/// measured candidate; returns `None` only when *every* measurable candidate
/// is quarantined. A validation failure is a deterministic property of the
/// candidate — it is never retried (see [`RetryPolicy::should_retry`]).
pub fn blackbox_tune_validated(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    opts: &TuneOptions,
    validator: Option<&WinnerValidator>,
) -> Option<TuneOutcome> {
    // Calibrate outside the tuning wall (see [`TuneOutcome::wall`]).
    let model = opts.telemetry.as_ref().map(|_| GemmModel::cached(cfg));
    let start = Instant::now();
    let mut eng = Engine::new(cfg, candidates, opts);
    if let Some(model) = &model {
        // Score the space so every measurement contributes a (predicted,
        // measured) accuracy pair. Pure observability: the scoring cost is
        // *not* charged to `cpu` (the black-box tuner never pays it) and
        // the pick below still depends only on measured cycles.
        let (ranked, _) = score_all(cfg, model, candidates, eng.jobs, memo_of(&opts.tiers));
        eng.set_predictions(&ranked);
    }
    let order: Vec<usize> = (0..candidates.len()).collect();
    eng.run(&order);
    let mut chosen = eng.all_cycles();
    let (best, cycles) = loop {
        let (b, c) = best_of(&chosen)?;
        let Some(v) = validator else { break (b, c) };
        match eng.validate(v, b) {
            Ok(()) => break (b, c),
            Err(reason) => {
                eng.quarantine(b, reason);
                chosen[b] = None;
            }
        }
    };
    Some(eng.outcome(start, best, cycles, candidates.len()))
}

/// Score every candidate with the calibrated static model, returning
/// `(index, predicted cycles)` sorted fastest-first. The sort is stable, so
/// equal predictions keep input order regardless of `jobs`. With `memo`
/// attached, loop-subtree sub-costs are reused through the shared cache —
/// the scores are bit-identical either way
/// ([`crate::model::estimate_program_memo`] groups its summation the same
/// whether it hits, misses or skips the cache).
fn score_all(
    cfg: &MachineConfig,
    model: &GemmModel,
    candidates: &[Candidate],
    jobs: usize,
    memo: Option<&MemoCache>,
) -> (Vec<(usize, f64)>, Duration) {
    let scores = pool::par_map(jobs, candidates, |_, c| {
        let t = Instant::now();
        let est = estimate_program_memo(cfg, model, &c.raw, memo);
        (est.overall(c.prefetched), t.elapsed())
    });
    let cpu = scores.iter().map(|(_, d)| *d).sum();
    let mut ranked: Vec<(usize, f64)> =
        scores.iter().enumerate().map(|(i, &(s, _))| (i, s)).collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    (ranked, cpu)
}

/// Performance-model-based autotuner: estimate everything analytically,
/// execute only the top-k predictions and keep the fastest — the paper's
/// "predict and pick best (or top k) implementations". Serial form of
/// [`model_tune_topk_jobs`].
pub fn model_tune_topk(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
) -> Option<TuneOutcome> {
    model_tune_topk_jobs(cfg, candidates, k, 1)
}

/// Model-based top-k autotuner over `jobs` worker threads.
pub fn model_tune_topk_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
    jobs: usize,
) -> Option<TuneOutcome> {
    model_tune_topk_opts(cfg, candidates, k, &TuneOptions::with_jobs(jobs))
}

/// Model-based top-k autotuner with full [`TuneOptions`] control. Model
/// scoring and the top-k validation wave both run on the pool; if every
/// candidate in the wave fails, validation continues down the ranking one
/// at a time (as the serial tuner does) until something executes.
pub fn model_tune_topk_opts(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
    opts: &TuneOptions,
) -> Option<TuneOutcome> {
    model_tune_topk_validated(cfg, candidates, k, opts, None)
}

/// [`model_tune_topk_opts`] with winner validation and
/// quarantine-and-fallback. A quarantined winner first falls back within
/// the measured top-k wave; once the wave is exhausted (every member failed
/// or was quarantined) the tuner continues *down the model ranking* one
/// candidate at a time — measure, then validate — until a legal winner
/// emerges or the ranking runs out (`None`). This unifies the all-failed
/// fallback of the serial tuner with quarantine fallback: both are "the
/// wave produced nothing reportable".
pub fn model_tune_topk_validated(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
    opts: &TuneOptions,
    validator: Option<&WinnerValidator>,
) -> Option<TuneOutcome> {
    // Calibrate outside the tuning wall (see [`TuneOutcome::wall`]).
    let model = GemmModel::cached(cfg);
    let start = Instant::now();
    let mut eng = Engine::new(cfg, candidates, opts);
    let (ranked, score_cpu) = score_all(cfg, &model, candidates, eng.jobs, memo_of(&opts.tiers));
    eng.cpu += score_cpu;
    eng.screened = candidates.len();
    // Predictions for the *full* ranked set, not only the winners: every
    // executed candidate — including ones rejected in the top-k wave and
    // fallback probes — then feeds the accuracy tracker, so rank
    // correlation reflects the whole validated ranking.
    eng.set_predictions(&ranked);
    let wave: Vec<usize> = ranked.iter().take(k).map(|&(i, _)| i).collect();
    eng.run(&wave);
    let mut executed = wave.len();
    // Consider only indices this run actually targeted: a resumed
    // checkpoint may hold measurements for candidates outside the wave
    // (e.g. from a black-box sweep), and those must not leak into the pick.
    let mut chosen: Vec<Option<Cycles>> = vec![None; candidates.len()];
    for &i in &wave {
        chosen[i] = eng.cells[i].cycles();
    }
    let mut rest = ranked.iter().skip(wave.len());
    let (best, cycles) = loop {
        match best_of(&chosen) {
            Some((b, c)) => {
                let Some(v) = validator else { break (b, c) };
                match eng.validate(v, b) {
                    Ok(()) => break (b, c),
                    Err(reason) => {
                        eng.quarantine(b, reason);
                        chosen[b] = None;
                    }
                }
            }
            None => {
                let &(i, _) = rest.next()?;
                eng.run(&[i]);
                executed += 1;
                chosen[i] = eng.cells[i].cycles();
            }
        }
    };
    Some(eng.outcome(start, best, cycles, executed))
}

/// [`tiered_tune_validated`] without winner validation.
pub fn tiered_tune(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    opts: &TuneOptions,
) -> Option<TuneOutcome> {
    tiered_tune_validated(cfg, candidates, opts, None)
}

/// Three-tier evaluation ladder (ROADMAP item 3).
///
/// * **Tier 0** — the closed-form analytic model (Eq. 1 DMA terms + Eq. 2
///   compute with `T_overall = max`; no scoreboard, no [`CoreGroup`])
///   cost-ranks the *entire* candidate space in one memoized batch.
/// * **Tier 1** — the scoreboard interpreter measures only an adaptive
///   analytic top-k wave. Starting from [`TierPolicy::base_k`], the wave
///   widens to every rank whose analytic cost lies within the model's
///   *observed* error band of the best measured cycles: once the analytic
///   margin of rank k exceeds that band — `predicted(k) > (1 + band) ×
///   best_measured`, with `band` the maximum relative error over the
///   measured (predicted, measured) pairs floored at
///   [`TierPolicy::band_floor`] — no deeper rank can plausibly beat the
///   winner, and the wave stops ([`TierPolicy::max_k`] bounds it when the
///   ranking is flat). Widening repeats to a fixpoint: new wave members
///   refine both the band and the best.
/// * **Tier 2** — functional execution + the differential `validator` run
///   on the final winner only, with the standard quarantine-and-fallback
///   (within the measured wave first, then down the analytic ranking).
///
/// Deterministic: analytic scores, measured cycles and hence the
/// adaptive-k trajectory are pure functions of the candidate set and the
/// machine config, so the outcome is bit-identical for every `--jobs`
/// value and across checkpoint/resume. [`TierMode::FullScoreboard`]
/// dispatches to [`blackbox_tune_validated`] instead: every candidate pays
/// the scoreboard, and on the committed op set the winners are
/// byte-identical — which is what the CI throughput leg asserts.
pub fn tiered_tune_validated(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    opts: &TuneOptions,
    validator: Option<&WinnerValidator>,
) -> Option<TuneOutcome> {
    if opts.tiers.mode == TierMode::FullScoreboard {
        return blackbox_tune_validated(cfg, candidates, opts, validator);
    }
    if candidates.is_empty() {
        return None;
    }
    let policy = &opts.tiers;
    // Calibrate outside the tuning wall (see [`TuneOutcome::wall`]).
    let model = GemmModel::cached(cfg);
    let start = Instant::now();
    let mut eng = Engine::new(cfg, candidates, opts);
    // Tier 0: batch analytic screen of the whole space.
    let screen = eng.telemetry.clone().map(|t| {
        let id = t.open(
            SpanKind::Screen,
            format!("tier0 screen: {} candidates", candidates.len()),
        );
        (t, id)
    });
    let (ranked, score_cpu) = score_all(cfg, &model, candidates, eng.jobs, memo_of(policy));
    eng.cpu += score_cpu;
    eng.screened = candidates.len();
    if let Some((t, id)) = screen {
        t.update(id, |s| s.samples = candidates.len() as u32);
        t.close(id);
    }
    eng.set_predictions(&ranked);
    // Tier 1: adaptive scoreboard wave over the analytic ranking.
    let cap = policy.max_k.max(policy.base_k).min(candidates.len()).max(1);
    let mut k = policy.base_k.clamp(1, cap);
    let mut measured = 0usize;
    while measured < k {
        let wave: Vec<usize> = ranked[measured..k].iter().map(|&(i, _)| i).collect();
        eng.run(&wave);
        measured = k;
        let mut band = policy.band_floor;
        let mut best: Option<u64> = None;
        for &(i, pred) in &ranked[..measured] {
            if let Some(c) = eng.cells[i].cycles() {
                let m = c.get();
                best = Some(best.map_or(m, |b| b.min(m)));
                if m > 0 {
                    band = band.max((pred - m as f64).abs() / m as f64);
                }
            }
        }
        match best {
            Some(b) => {
                // Ranks predicted beyond (1 + band)× the best measured
                // cycles cannot plausibly beat the winner; everything
                // closer gets measured too.
                let threshold = (1.0 + band) * b as f64;
                while k < cap && ranked[k].1 <= threshold {
                    k += 1;
                }
            }
            // The whole wave failed terminally: probe deeper.
            None => k = (k + policy.base_k.max(1)).min(cap),
        }
    }
    let mut executed = measured;
    // Consider only indices this run targeted (resumed checkpoints may
    // hold measurements outside the wave — see model_tune_topk_validated).
    let mut chosen: Vec<Option<Cycles>> = vec![None; candidates.len()];
    for &(i, _) in &ranked[..measured] {
        chosen[i] = eng.cells[i].cycles();
    }
    let mut rest = ranked.iter().skip(measured);
    let (best, cycles) = loop {
        match best_of(&chosen) {
            Some((b, c)) => {
                let Some(v) = validator else { break (b, c) };
                match eng.validate(v, b) {
                    Ok(()) => break (b, c),
                    Err(reason) => {
                        eng.quarantine(b, reason);
                        chosen[b] = None;
                    }
                }
            }
            None => {
                let &(i, _) = rest.next()?;
                eng.run(&[i]);
                executed += 1;
                chosen[i] = eng.cells[i].cycles();
            }
        }
    };
    Some(eng.outcome(start, best, cycles, executed))
}

/// Model-based autotuner with the default top-k (3) validation depth.
pub fn model_tune(cfg: &MachineConfig, candidates: &[Candidate]) -> Option<TuneOutcome> {
    model_tune_topk(cfg, candidates, 3)
}

/// [`model_tune`] over `jobs` worker threads.
pub fn model_tune_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    jobs: usize,
) -> Option<TuneOutcome> {
    model_tune_topk_jobs(cfg, candidates, 3, jobs)
}

/// [`model_tune`] with full [`TuneOptions`] control.
pub fn model_tune_opts(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    opts: &TuneOptions,
) -> Option<TuneOutcome> {
    model_tune_topk_opts(cfg, candidates, 3, opts)
}

/// Rank every candidate by the model without executing any of them
/// (used by space-exploration statistics and the Fig. 9 harness).
pub fn model_rank(cfg: &MachineConfig, candidates: &[Candidate]) -> Vec<(usize, f64)> {
    model_rank_jobs(cfg, candidates, 1)
}

/// [`model_rank`] over `jobs` worker threads; the ranking is identical for
/// every job count (scores are pure, the sort is stable).
pub fn model_rank_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    jobs: usize,
) -> Vec<(usize, f64)> {
    let model = GemmModel::cached(cfg);
    score_all(cfg, &model, candidates, jobs.max(1), Some(MemoCache::global())).0
}

/// The shared memo cache when the policy enables sub-cost memoization.
fn memo_of(tiers: &TierPolicy) -> Option<&'static MemoCache> {
    tiers.memo.then(MemoCache::global)
}

/// Optimize, plan and execute a raw program in cost-only mode (used by
/// hand-constructed baseline schedules that bypass the scheduler).
pub fn run_program(cfg: &MachineConfig, program: swatop_ir::Program) -> MachineResult<Cycles> {
    run_program_with_launches(cfg, program, 1)
}

/// Like [`run_program`] but charging `launches` CPE kernel launches —
/// baseline code that makes N library calls spawns the CPE cluster N
/// times, where fused generated code spawns once.
pub fn run_program_with_launches(
    cfg: &MachineConfig,
    program: swatop_ir::Program,
    launches: u64,
) -> MachineResult<Cycles> {
    let opt = crate::optimizer::optimize(program, true);
    let exe = crate::codegen::plan(opt, cfg)?;
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
    let binding = instantiate(&mut cg, &exe);
    Ok(execute(&mut cg, &exe, &binding)? + Cycles(cfg.kernel_launch.get() * launches))
}
