//! The autotuner (paper Sec. 4.6): performance-model-based and black-box.
//!
//! * [`blackbox_tune`] "runs every single schedule strategy of the schedule
//!   space to identify the optimal code" — here, executes every candidate on
//!   the simulated machine in cost-only mode and picks the fastest.
//! * [`model_tune`] "only runs the best strategy identified by the
//!   performance model": it evaluates the static model (Eq. 1 + Eq. 2 with
//!   `T_overall = max`) on every candidate analytically and executes only
//!   the winner to report its real (simulated) time.
//!
//! Both report wall-clock tuning time, which is what Tab. 3 compares; the
//! quality gap between the model's pick and the black-box optimum is what
//! Fig. 9 reports.

pub mod search;

use std::time::{Duration, Instant};

use sw26010::{CoreGroup, Cycles, ExecMode, MachineConfig, MachineResult};

use crate::interp::{execute, instantiate};
use crate::model::{estimate_program, GemmModel};
use crate::scheduler::Candidate;

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Position of the chosen candidate in the input slice.
    pub best: usize,
    /// Simulated cycles of the chosen candidate.
    pub cycles: Cycles,
    /// Host wall-clock time spent tuning.
    pub wall: Duration,
    /// Number of candidates whose code was actually *executed*.
    pub executed: usize,
    /// Simulated cycles of every executed candidate (same order as input;
    /// `None` when not executed or invalid at runtime).
    pub all_cycles: Vec<Option<Cycles>>,
}

/// Execute one candidate in cost-only mode, returning its simulated cycles
/// (including the one-time CPE kernel launch).
pub fn run_candidate(cfg: &MachineConfig, cand: &Candidate) -> MachineResult<Cycles> {
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
    let binding = instantiate(&mut cg, &cand.exe);
    Ok(execute(&mut cg, &cand.exe, &binding)? + cfg.kernel_launch)
}

/// Brute-force black-box autotuner: execute everything, keep the fastest.
pub fn blackbox_tune(cfg: &MachineConfig, candidates: &[Candidate]) -> Option<TuneOutcome> {
    let start = Instant::now();
    let mut all = vec![None; candidates.len()];
    let mut best: Option<(usize, Cycles)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let Ok(cycles) = run_candidate(cfg, c) else {
            continue;
        };
        all[i] = Some(cycles);
        if best.map_or(true, |(_, b)| cycles < b) {
            best = Some((i, cycles));
        }
    }
    let (best, cycles) = best?;
    Some(TuneOutcome {
        best,
        cycles,
        wall: start.elapsed(),
        executed: candidates.len(),
        all_cycles: all,
    })
}

/// Performance-model-based autotuner: estimate everything analytically,
/// execute only the top-k predictions and keep the fastest — the paper's
/// "predict and pick best (or top k) implementations".
pub fn model_tune_topk(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
) -> Option<TuneOutcome> {
    let start = Instant::now();
    let model = GemmModel::calibrate(cfg);
    let mut ranked: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let est = estimate_program(cfg, &model, &c.raw);
            (i, est.overall(c.prefetched))
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut all = vec![None; candidates.len()];
    let mut executed = 0;
    let mut best: Option<(usize, Cycles)> = None;
    for &(i, _) in &ranked {
        if executed >= k && best.is_some() {
            break;
        }
        executed += 1;
        if let Ok(cycles) = run_candidate(cfg, &candidates[i]) {
            all[i] = Some(cycles);
            if best.map_or(true, |(_, b)| cycles < b) {
                best = Some((i, cycles));
            }
        }
    }
    let (best, cycles) = best?;
    Some(TuneOutcome { best, cycles, wall: start.elapsed(), executed, all_cycles: all })
}

/// Model-based autotuner with the default top-k (3) validation depth.
pub fn model_tune(cfg: &MachineConfig, candidates: &[Candidate]) -> Option<TuneOutcome> {
    model_tune_topk(cfg, candidates, 3)
}

/// Rank every candidate by the model without executing any of them
/// (used by space-exploration statistics and the Fig. 9 harness).
pub fn model_rank(cfg: &MachineConfig, candidates: &[Candidate]) -> Vec<(usize, f64)> {
    let model = GemmModel::calibrate(cfg);
    let mut ranked: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let est = estimate_program(cfg, &model, &c.raw);
            (i, est.overall(c.prefetched))
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    ranked
}

/// Optimize, plan and execute a raw program in cost-only mode (used by
/// hand-constructed baseline schedules that bypass the scheduler).
pub fn run_program(cfg: &MachineConfig, program: swatop_ir::Program) -> MachineResult<Cycles> {
    run_program_with_launches(cfg, program, 1)
}

/// Like [`run_program`] but charging `launches` CPE kernel launches —
/// baseline code that makes N library calls spawns the CPE cluster N
/// times, where fused generated code spawns once.
pub fn run_program_with_launches(
    cfg: &MachineConfig,
    program: swatop_ir::Program,
    launches: u64,
) -> MachineResult<Cycles> {
    let opt = crate::optimizer::optimize(program, true);
    let exe = crate::codegen::plan(opt, cfg)?;
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
    let binding = instantiate(&mut cg, &exe);
    Ok(execute(&mut cg, &exe, &binding)? + Cycles(cfg.kernel_launch.get() * launches))
}
