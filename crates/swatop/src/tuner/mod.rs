//! The autotuner (paper Sec. 4.6): performance-model-based and black-box.
//!
//! * [`blackbox_tune`] "runs every single schedule strategy of the schedule
//!   space to identify the optimal code" — here, executes every candidate on
//!   the simulated machine in cost-only mode and picks the fastest.
//! * [`model_tune`] "only runs the best strategy identified by the
//!   performance model": it evaluates the static model (Eq. 1 + Eq. 2 with
//!   `T_overall = max`) on every candidate analytically and executes only
//!   the winner to report its real (simulated) time.
//!
//! Both report wall-clock tuning time, which is what Tab. 3 compares; the
//! quality gap between the model's pick and the black-box optimum is what
//! Fig. 9 reports.
//!
//! Every tuner has a `_jobs` variant that fans candidate evaluation over a
//! [`pool`] of worker threads. Results are deterministic and identical to
//! the serial tuners for any job count: each candidate runs on a private
//! cost-only machine, results come back in input order, and the winner is
//! the minimum under the total order `(cycles, input index)`.

pub mod pool;
pub mod search;

use std::time::{Duration, Instant};

use sw26010::{CoreGroup, Cycles, ExecMode, MachineConfig, MachineResult};

use crate::interp::{execute, instantiate};
use crate::model::{estimate_program, GemmModel};
use crate::scheduler::Candidate;

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Position of the chosen candidate in the input slice.
    pub best: usize,
    /// Simulated cycles of the chosen candidate.
    pub cycles: Cycles,
    /// Host wall-clock time spent tuning.
    pub wall: Duration,
    /// Number of candidates whose code was actually *executed*.
    pub executed: usize,
    /// Simulated cycles of every executed candidate (same order as input;
    /// `None` when not executed or invalid at runtime).
    pub all_cycles: Vec<Option<Cycles>>,
    /// Worker threads used for candidate evaluation (1 = serial).
    pub jobs: usize,
    /// Aggregate per-candidate evaluation time, i.e. the serial-equivalent
    /// cost: what `wall` would roughly be at `jobs = 1`. The ratio
    /// `cpu / wall` is the realised parallel speedup.
    pub cpu: Duration,
}

/// Execute one candidate in cost-only mode, returning its simulated cycles
/// (including the one-time CPE kernel launch).
pub fn run_candidate(cfg: &MachineConfig, cand: &Candidate) -> MachineResult<Cycles> {
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
    let binding = instantiate(&mut cg, &cand.exe);
    Ok(execute(&mut cg, &cand.exe, &binding)? + cfg.kernel_launch)
}

fn timed_run(cfg: &MachineConfig, cand: &Candidate) -> (Option<Cycles>, Duration) {
    let t = Instant::now();
    let cycles = run_candidate(cfg, cand).ok();
    (cycles, t.elapsed())
}

/// Argmin over executed candidates under the total order `(cycles, index)`.
/// Breaking ties by input index is what makes the parallel tuners
/// deterministic: the serial black-box loop keeps the *first* strictly
/// fastest candidate, which is exactly this minimum.
fn best_of(all: &[Option<Cycles>]) -> Option<(usize, Cycles)> {
    all.iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|c| (i, c)))
        .min_by_key(|&(i, c)| (c, i))
}

/// Brute-force black-box autotuner: execute everything, keep the fastest.
/// Serial (`jobs = 1`) form of [`blackbox_tune_jobs`].
pub fn blackbox_tune(cfg: &MachineConfig, candidates: &[Candidate]) -> Option<TuneOutcome> {
    blackbox_tune_jobs(cfg, candidates, 1)
}

/// Brute-force black-box autotuner over `jobs` worker threads. The result
/// is bit-identical for every `jobs` value: all candidates are executed,
/// `all_cycles` is in input order, and the winner is the `(cycles, index)`
/// minimum.
pub fn blackbox_tune_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    jobs: usize,
) -> Option<TuneOutcome> {
    let start = Instant::now();
    let jobs = jobs.max(1);
    let evals = pool::par_map(jobs, candidates, |_, c| timed_run(cfg, c));
    let cpu = evals.iter().map(|(_, d)| *d).sum();
    let all: Vec<Option<Cycles>> = evals.into_iter().map(|(c, _)| c).collect();
    let (best, cycles) = best_of(&all)?;
    Some(TuneOutcome {
        best,
        cycles,
        wall: start.elapsed(),
        executed: candidates.len(),
        all_cycles: all,
        jobs,
        cpu,
    })
}

/// Score every candidate with the calibrated static model, returning
/// `(index, predicted cycles)` sorted fastest-first. The sort is stable, so
/// equal predictions keep input order regardless of `jobs`.
fn score_all(
    cfg: &MachineConfig,
    model: &GemmModel,
    candidates: &[Candidate],
    jobs: usize,
) -> (Vec<(usize, f64)>, Duration) {
    let scores = pool::par_map(jobs, candidates, |_, c| {
        let t = Instant::now();
        let est = estimate_program(cfg, model, &c.raw);
        (est.overall(c.prefetched), t.elapsed())
    });
    let cpu = scores.iter().map(|(_, d)| *d).sum();
    let mut ranked: Vec<(usize, f64)> =
        scores.iter().enumerate().map(|(i, &(s, _))| (i, s)).collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    (ranked, cpu)
}

/// Performance-model-based autotuner: estimate everything analytically,
/// execute only the top-k predictions and keep the fastest — the paper's
/// "predict and pick best (or top k) implementations". Serial form of
/// [`model_tune_topk_jobs`].
pub fn model_tune_topk(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
) -> Option<TuneOutcome> {
    model_tune_topk_jobs(cfg, candidates, k, 1)
}

/// Model-based top-k autotuner over `jobs` worker threads. Model scoring
/// and the top-k validation wave both run on the pool; if every candidate
/// in the wave fails at runtime, validation continues down the ranking one
/// at a time (as the serial tuner does) until something executes.
pub fn model_tune_topk_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    k: usize,
    jobs: usize,
) -> Option<TuneOutcome> {
    let start = Instant::now();
    let jobs = jobs.max(1);
    let model = GemmModel::cached(cfg);
    let (ranked, mut cpu) = score_all(cfg, &model, candidates, jobs);
    let mut all = vec![None; candidates.len()];
    let wave: Vec<usize> = ranked.iter().take(k).map(|&(i, _)| i).collect();
    let wave_results = pool::par_map(jobs, &wave, |_, &i| timed_run(cfg, &candidates[i]));
    let mut executed = wave.len();
    for (&i, (res, d)) in wave.iter().zip(wave_results) {
        cpu += d;
        all[i] = res;
    }
    let mut best = best_of(&all);
    let mut rest = ranked.iter().skip(wave.len());
    while best.is_none() {
        let Some(&(i, _)) = rest.next() else { break };
        executed += 1;
        let (res, d) = timed_run(cfg, &candidates[i]);
        cpu += d;
        if let Some(cycles) = res {
            all[i] = Some(cycles);
            best = Some((i, cycles));
        }
    }
    let (best, cycles) = best?;
    Some(TuneOutcome {
        best,
        cycles,
        wall: start.elapsed(),
        executed,
        all_cycles: all,
        jobs,
        cpu,
    })
}

/// Model-based autotuner with the default top-k (3) validation depth.
pub fn model_tune(cfg: &MachineConfig, candidates: &[Candidate]) -> Option<TuneOutcome> {
    model_tune_topk(cfg, candidates, 3)
}

/// [`model_tune`] over `jobs` worker threads.
pub fn model_tune_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    jobs: usize,
) -> Option<TuneOutcome> {
    model_tune_topk_jobs(cfg, candidates, 3, jobs)
}

/// Rank every candidate by the model without executing any of them
/// (used by space-exploration statistics and the Fig. 9 harness).
pub fn model_rank(cfg: &MachineConfig, candidates: &[Candidate]) -> Vec<(usize, f64)> {
    model_rank_jobs(cfg, candidates, 1)
}

/// [`model_rank`] over `jobs` worker threads; the ranking is identical for
/// every job count (scores are pure, the sort is stable).
pub fn model_rank_jobs(
    cfg: &MachineConfig,
    candidates: &[Candidate],
    jobs: usize,
) -> Vec<(usize, f64)> {
    let model = GemmModel::cached(cfg);
    score_all(cfg, &model, candidates, jobs.max(1)).0
}

/// Optimize, plan and execute a raw program in cost-only mode (used by
/// hand-constructed baseline schedules that bypass the scheduler).
pub fn run_program(cfg: &MachineConfig, program: swatop_ir::Program) -> MachineResult<Cycles> {
    run_program_with_launches(cfg, program, 1)
}

/// Like [`run_program`] but charging `launches` CPE kernel launches —
/// baseline code that makes N library calls spawns the CPE cluster N
/// times, where fused generated code spawns once.
pub fn run_program_with_launches(
    cfg: &MachineConfig,
    program: swatop_ir::Program,
    launches: u64,
) -> MachineResult<Cycles> {
    let opt = crate::optimizer::optimize(program, true);
    let exe = crate::codegen::plan(opt, cfg)?;
    let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
    let binding = instantiate(&mut cg, &exe);
    Ok(execute(&mut cg, &exe, &binding)? + Cycles(cfg.kernel_launch.get() * launches))
}
