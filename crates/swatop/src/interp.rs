//! The IR interpreter: runs an [`Executable`] on a [`CoreGroup`].
//!
//! This is the machine-facing back half of the code generator. Walking the
//! statement tree with a loop-variable environment, it
//!
//! * expands each `DMA_CPE` node into the 64 per-CPE engine requests (the
//!   `rid`/`cid` terms of the node's affine offset give every CPE its own
//!   address),
//! * resolves double-buffer slots through their parity selectors,
//! * invokes the `spm_gemm` tensorized primitive, and
//! * applies bulk host-side transforms with a bandwidth-based cost.
//!
//! In [`ExecMode::Functional`](sw26010::ExecMode) all data movement and
//! arithmetic really happen, so an incorrect schedule (wrong DMA offset,
//! wrong `ld`, wrong boundary guard) produces wrong output — the test suite
//! compares every generated schedule against the host references.

use sw26010::cluster::ReplyId as CgReply;
use sw26010::{
    cid, rid, CoreGroup, Cycles, DmaDirection, DmaRequest, ExecMode, MachineError, MachineResult,
    N_CPE,
};
use swkernels::spm_gemm::SpmMatrix;
use swtensor::Tensor;

use swatop_ir::{Env, MatDesc, Program, SpmSlot, Stmt, TransformKind};

use crate::codegen::Executable;

/// Binding of a program's main-memory buffer table to concrete machine
/// buffers.
#[derive(Debug, Clone)]
pub struct Binding {
    pub bufs: Vec<sw26010::BufferId>,
}

/// Allocate machine buffers for every declaration of the program. In
/// cost-only mode the allocations are virtual (address ranges without a
/// backing store): the interpreter only needs bases and bounds, and skipping
/// the zero-fill keeps per-candidate instantiation cheap in the autotuner —
/// large conv workspaces would otherwise dominate candidate evaluation.
pub fn instantiate(cg: &mut CoreGroup, exe: &Executable) -> Binding {
    let cost_only = cg.mode() == ExecMode::CostOnly;
    let bufs = exe
        .program
        .mem_bufs
        .iter()
        .map(|d| {
            if cost_only {
                cg.mem.alloc_lazy(&d.name, d.len)
            } else {
                cg.mem.alloc(&d.name, d.len)
            }
        })
        .collect();
    Binding { bufs }
}

struct Interp<'a> {
    exe: &'a Executable,
    binding: &'a Binding,
    replies: Vec<CgReply>,
}

/// Execute the program, returning the simulated cycles it took (the compute
/// clock advance from entry to exit).
pub fn execute(cg: &mut CoreGroup, exe: &Executable, binding: &Binding) -> MachineResult<Cycles> {
    if binding.bufs.len() != exe.program.mem_bufs.len() {
        return Err(MachineError::Invalid(format!(
            "binding has {} buffers but the program declares {}",
            binding.bufs.len(),
            exe.program.mem_bufs.len()
        )));
    }
    let replies = (0..exe.program.n_replies).map(|_| cg.alloc_reply()).collect();
    let interp = Interp { exe, binding, replies };
    let start = cg.now();
    let mut env = Env::new(exe.program.n_vars());
    interp.stmt(cg, &exe.program.body, &mut env)?;
    Ok(cg.now() - start)
}

impl Interp<'_> {
    fn program(&self) -> &Program {
        &self.exe.program
    }

    /// Checked lookup of a program buffer's machine binding: generated code
    /// referencing a buffer it never declared is rejected, not a panic.
    fn buf(&self, id: swatop_ir::MemBufId) -> MachineResult<sw26010::BufferId> {
        self.binding.bufs.get(id.0).copied().ok_or_else(|| {
            MachineError::Invalid(format!(
                "program references undeclared memory buffer {} ({} bound)",
                id.0,
                self.binding.bufs.len()
            ))
        })
    }

    /// Checked lookup of a program reply word's machine handle.
    fn reply(&self, id: swatop_ir::ReplyId) -> MachineResult<CgReply> {
        self.replies.get(id.0).copied().ok_or_else(|| {
            MachineError::Invalid(format!(
                "program references undeclared reply word {} ({} allocated)",
                id.0,
                self.replies.len()
            ))
        })
    }

    fn stmt(&self, cg: &mut CoreGroup, s: &Stmt, env: &mut Env) -> MachineResult<()> {
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Seq(ss) => {
                for x in ss {
                    self.stmt(cg, x, env)?;
                }
                Ok(())
            }
            Stmt::For { var, extent, body } => {
                for i in 0..*extent {
                    env.set(*var, i as i64);
                    self.stmt(cg, body, env)?;
                }
                Ok(())
            }
            Stmt::If { cond, then_, else_ } => {
                if cond.eval(env, 0, 0) {
                    self.stmt(cg, then_, env)
                } else if let Some(e) = else_ {
                    self.stmt(cg, e, env)
                } else {
                    Ok(())
                }
            }
            Stmt::DmaCg(_) => Err(MachineError::Invalid(
                "DMA_CG node reached the interpreter: run DMA inference first".into(),
            )),
            Stmt::DmaCpe(d) => {
                // Batch fusion: this node was issued back-to-back with its
                // predecessor, so its descriptors chain onto the engine's
                // open batch and skip the start-up latency.
                if d.fused {
                    cg.dma_chain_next();
                }
                if d.bcast.is_some() {
                    return self.dma_cpe_bcast(cg, d, env);
                }
                let spm_off = self.resolve_slot(cg, &d.spm, env)?;
                let machine_buf = self.buf(d.buf)?;
                let base = cg.mem.base(machine_buf);
                let len = cg.mem.len_of(machine_buf);
                let span = (d.n_blocks - 1) * d.stride + d.block;
                if cg.mode() == ExecMode::CostOnly {
                    // Fast path: aggregate engine totals without building
                    // request structures (identical clock semantics). The
                    // capacity bound is the run's *effective* one, which an
                    // active fault session may have shrunk.
                    let spm_needed = spm_off + d.block * d.n_blocks;
                    if spm_needed > cg.spm_capacity_elems() {
                        return Err(MachineError::SpmOverflow {
                            cpe: 0,
                            offset: spm_off,
                            len: d.block * d.n_blocks,
                            capacity: cg.spm_capacity_elems(),
                        });
                    }
                    // Mirror the functional path's SPM high-water tracking
                    // (request-level `note_spm_use` never runs here).
                    if d.direction == DmaDirection::MemToSpm {
                        cg.counters.note_spm_use(spm_needed as u64);
                    }
                    let txn = cg.cfg.dram_transaction_bytes;
                    let mut bus = 0usize;
                    for cpe in 0..N_CPE {
                        let off = d.offset.eval(env, rid(cpe) as i64, cid(cpe) as i64);
                        if off < 0 {
                            return Err(MachineError::Invalid(format!(
                                "negative DMA offset {off} on CPE {cpe}"
                            )));
                        }
                        let off = off as usize;
                        if off + span > len {
                            return Err(MachineError::MainMemoryOutOfBounds {
                                offset: base + off,
                                len: span,
                                size: base + len,
                            });
                        }
                        bus += sw26010::dma::bus_bytes(
                            base + off, d.block, d.stride, d.n_blocks, txn,
                        );
                    }
                    let payload = d.block * d.n_blocks * 4 * N_CPE;
                    return cg.dma_totals_directed(
                        d.direction,
                        bus,
                        d.n_blocks * N_CPE,
                        payload,
                        self.reply(d.reply)?,
                    );
                }
                let mut reqs = Vec::with_capacity(N_CPE);
                for cpe in 0..N_CPE {
                    let off = d.offset.eval(env, rid(cpe) as i64, cid(cpe) as i64);
                    if off < 0 {
                        return Err(MachineError::Invalid(format!(
                            "negative DMA offset {off} on CPE {cpe}"
                        )));
                    }
                    let off = off as usize;
                    // The last touched element must stay inside the buffer.
                    if off + span > len {
                        return Err(MachineError::MainMemoryOutOfBounds {
                            offset: base + off,
                            len: span,
                            size: base + len,
                        });
                    }
                    reqs.push(DmaRequest {
                        cpe,
                        direction: d.direction,
                        mem_offset: base + off,
                        spm_offset: spm_off,
                        block_elems: d.block,
                        stride_elems: d.stride,
                        n_blocks: d.n_blocks,
                    });
                }
                cg.dma(d.direction, &reqs, self.reply(d.reply)?)
            }
            Stmt::DmaWait { reply, times } => {
                let r = self.reply(*reply)?;
                cg.dma_wait(r, *times)
            }
            Stmt::Gemm(g) => {
                let a = self.mat(cg, &g.a, env)?;
                let b = self.mat(cg, &g.b, env)?;
                let c = self.mat(cg, &g.c, env)?;
                swkernels::spm_gemm(cg, g.m, g.n, g.k, g.alpha, a, b, g.beta, c, g.vd)
            }
            Stmt::Transform(t) => self.transform(cg, t),
        }
    }

    /// Execute a broadcast-tagged `DMA_CPE`: the leader CPE of each mesh
    /// row (`BcastBus::Row`, leaders `(r, 0)`) or column (`Column`, leaders
    /// `(0, c)`) fetches its whole line's 8 contiguous blocks from DRAM and
    /// scatters them over the register-communication bus. DRAM traffic and
    /// engine time come from the 8 leader requests (8× fewer descriptors,
    /// 8×-wider blocks); the bytes each CPE's SPM receives are identical to
    /// the untagged node, which the functional path realises by copying the
    /// original 64 per-CPE blocks.
    fn dma_cpe_bcast(
        &self,
        cg: &mut CoreGroup,
        d: &swatop_ir::DmaCpe,
        env: &Env,
    ) -> MachineResult<()> {
        let bus_kind = d.bcast.expect("caller checked");
        if d.direction != DmaDirection::MemToSpm {
            return Err(MachineError::Invalid(
                "broadcast DMA is only defined for mem→SPM gets".into(),
            ));
        }
        let spm_off = self.resolve_slot(cg, &d.spm, env)?;
        let machine_buf = self.buf(d.buf)?;
        let base = cg.mem.base(machine_buf);
        let len = cg.mem.len_of(machine_buf);
        let lblock = d.block * 8;
        if d.n_blocks > 1 && d.stride < lblock {
            return Err(MachineError::Invalid(format!(
                "broadcast DMA leader blocks of {lblock} overlap stride {}",
                d.stride
            )));
        }
        let lspan = (d.n_blocks - 1) * d.stride + lblock;
        let leaders: [(i64, i64); 8] = match bus_kind {
            sw26010::regcomm::BcastBus::Row => std::array::from_fn(|r| (r as i64, 0)),
            sw26010::regcomm::BcastBus::Column => std::array::from_fn(|c| (0, c as i64)),
        };
        let scatter = sw26010::regcomm::dma_scatter_cycles(&cg.cfg, d.spm_elems());
        let spm_needed = spm_off + d.spm_elems();
        if spm_needed > cg.spm_capacity_elems() {
            return Err(MachineError::SpmOverflow {
                cpe: 0,
                offset: spm_off,
                len: d.spm_elems(),
                capacity: cg.spm_capacity_elems(),
            });
        }
        cg.counters.note_spm_use(spm_needed as u64);
        let txn = cg.cfg.dram_transaction_bytes;
        let mut bus = 0usize;
        let mut leader_offs = [0usize; 8];
        for (i, &(r, c)) in leaders.iter().enumerate() {
            let off = d.offset.eval(env, r, c);
            if off < 0 {
                return Err(MachineError::Invalid(format!(
                    "negative DMA offset {off} on broadcast leader {i}"
                )));
            }
            let off = off as usize;
            if off + lspan > len {
                return Err(MachineError::MainMemoryOutOfBounds {
                    offset: base + off,
                    len: lspan,
                    size: base + len,
                });
            }
            leader_offs[i] = off;
            bus += sw26010::dma::bus_bytes(base + off, lblock, d.stride, d.n_blocks, txn);
        }
        let payload = lblock * d.n_blocks * 4 * 8;
        if cg.mode() == ExecMode::CostOnly {
            return cg.dma_totals_bcast(
                bus,
                d.n_blocks * 8,
                payload,
                scatter,
                self.reply(d.reply)?,
            );
        }
        let leader_reqs: Vec<DmaRequest> = leaders
            .iter()
            .zip(&leader_offs)
            .map(|(&(r, c), &off)| DmaRequest {
                cpe: (r * 8 + c) as usize,
                direction: d.direction,
                mem_offset: base + off,
                spm_offset: spm_off,
                block_elems: lblock,
                stride_elems: d.stride.max(lblock),
                n_blocks: d.n_blocks,
            })
            .collect();
        let mut reqs = Vec::with_capacity(N_CPE);
        for cpe in 0..N_CPE {
            let off = d.offset.eval(env, rid(cpe) as i64, cid(cpe) as i64);
            if off < 0 {
                return Err(MachineError::Invalid(format!(
                    "negative DMA offset {off} on CPE {cpe}"
                )));
            }
            reqs.push(DmaRequest {
                cpe,
                direction: d.direction,
                mem_offset: base + off as usize,
                spm_offset: spm_off,
                block_elems: d.block,
                stride_elems: d.stride,
                n_blocks: d.n_blocks,
            });
        }
        cg.dma_bcast(d.direction, &leader_reqs, &reqs, scatter, self.reply(d.reply)?)
    }

    fn resolve_slot(
        &self,
        cg: &mut CoreGroup,
        slot: &SpmSlot,
        env: &Env,
    ) -> MachineResult<usize> {
        let id = match slot {
            SpmSlot::Single(b) => *b,
            SpmSlot::Double { even, odd, sel } => {
                let v = sel.eval(env, 0, 0);
                // An armed swap-parity miscompile injection flips a sparse
                // subset of resolutions (functional mode only) — the hazard
                // the differential validator exists to catch.
                let even_wins = (v.rem_euclid(2) == 0) ^ cg.miscompile_flip_parity();
                if even_wins {
                    *even
                } else {
                    *odd
                }
            }
        };
        self.exe.try_spm_offset(id).ok_or_else(|| {
            MachineError::Invalid(format!(
                "program references unplanned SPM buffer {} ({} planned)",
                id.0,
                self.exe.spm_offsets.len()
            ))
        })
    }

    fn mat(&self, cg: &mut CoreGroup, m: &MatDesc, env: &Env) -> MachineResult<SpmMatrix> {
        Ok(SpmMatrix::new(self.resolve_slot(cg, &m.slot, env)? + m.offset, m.layout, m.ld))
    }

    fn transform(&self, cg: &mut CoreGroup, t: &swatop_ir::TransformOp) -> MachineResult<()> {
        let kind = &t.kind;
        // Cost: transforms are tiled CPE loops streaming through the DMA
        // engine — bandwidth-bound unless heavy per-element arithmetic.
        // A fused transform chains onto the still-streaming engine pipeline
        // of its predecessor and skips the start-up latency.
        let (reads, writes, flops_per_write) = kind.traffic();
        let bytes = 4 * (reads + writes);
        let transfer = (bytes as f64 / cg.cfg.mem_bytes_per_cycle).ceil() as u64;
        // 64 CPEs × 4-wide ops; 1 + flops_per_write operations per element.
        let compute = writes * (1 + flops_per_write) / (N_CPE as u64 * 4);
        let startup = if t.fused { Cycles::ZERO } else { cg.cfg.dma_startup };
        let cycles = startup + Cycles(transfer.max(compute));
        cg.compute(cycles, transform_label(kind));

        if cg.mode() != ExecMode::Functional {
            return Ok(());
        }
        self.apply_transform(cg, kind)
    }

    fn buf_data(&self, cg: &CoreGroup, id: swatop_ir::MemBufId) -> MachineResult<Vec<f32>> {
        Ok(cg.mem.buffer(self.buf(id)?).to_vec())
    }

    /// Read a buffer that a transform expects to hold exactly `want`
    /// elements; a mismatch means the schedule sized it wrong.
    fn buf_data_sized(
        &self,
        cg: &CoreGroup,
        id: swatop_ir::MemBufId,
        want: usize,
        what: &str,
    ) -> MachineResult<Vec<f32>> {
        let data = self.buf_data(cg, id)?;
        if data.len() != want {
            return Err(MachineError::Invalid(format!(
                "{what}: buffer holds {} elems but the transform expects {want}",
                data.len()
            )));
        }
        Ok(data)
    }

    fn write_buf(
        &self,
        cg: &mut CoreGroup,
        id: swatop_ir::MemBufId,
        data: &[f32],
    ) -> MachineResult<()> {
        let machine_buf = self.buf(id)?;
        let len = cg.mem.len_of(machine_buf);
        if data.len() != len {
            return Err(MachineError::Invalid(format!(
                "transform output size {} != buffer '{}' size {len}",
                data.len(),
                self.program().mem_bufs[id.0].name
            )));
        }
        cg.mem.write(machine_buf, 0, data)
    }

    fn apply_transform(&self, cg: &mut CoreGroup, kind: &TransformKind) -> MachineResult<()> {
        match kind {
            TransformKind::Im2col { shape, src, dst } => {
                let dims = shape.input_shape().dims().to_vec();
                let data = self.buf_data_sized(cg, *src, dims.iter().product(), "im2col")?;
                let input = Tensor::from_vec(dims, data);
                let cols = swtensor::im2col::im2col(shape, &input);
                self.write_buf(cg, *dst, cols.data())
            }
            TransformKind::PadImageNchw { shape, src, dst } => {
                let p = shape.pad;
                let (ri, ci) = (shape.ri(), shape.ci());
                let (rp, cp) = (ri + 2 * p, ci + 2 * p);
                let x =
                    self.buf_data_sized(cg, *src, shape.b * shape.ni * ri * ci, "pad_image")?;
                let mut out = vec![0.0f32; shape.b * shape.ni * rp * cp];
                for bi in 0..shape.b {
                    for n in 0..shape.ni {
                        for r in 0..ri {
                            let so = ((bi * shape.ni + n) * ri + r) * ci;
                            let d_o = ((bi * shape.ni + n) * rp + r + p) * cp + p;
                            out[d_o..d_o + ci].copy_from_slice(&x[so..so + ci]);
                        }
                    }
                }
                self.write_buf(cg, *dst, &out)
            }
            TransformKind::WinogradFilter { shape, src, dst, transposed } => {
                let dims = shape.weight_shape().dims().to_vec();
                let data =
                    self.buf_data_sized(cg, *src, dims.iter().product(), "winograd_filter")?;
                let w = Tensor::from_vec(dims, data);
                let u = swtensor::winograd::batched_filter_transform(shape, &w);
                let u = if *transposed { u.permuted(&[0, 2, 1]) } else { u };
                self.write_buf(cg, *dst, u.data())
            }
            TransformKind::WinogradInput { shape, src, dst, nt_pad } => {
                let dims = shape.input_shape().dims().to_vec();
                let data =
                    self.buf_data_sized(cg, *src, dims.iter().product(), "winograd_input")?;
                let x = Tensor::from_vec(dims, data);
                let v = swtensor::winograd::batched_input_transform(shape, &x);
                let nt = swtensor::winograd::n_tiles(shape);
                if nt > *nt_pad {
                    return Err(MachineError::Invalid(format!(
                        "winograd_input: {nt} tiles exceed padded stride {nt_pad}"
                    )));
                }
                let mut out = vec![0.0f32; 16 * shape.ni * nt_pad];
                for pos in 0..16 {
                    for n in 0..shape.ni {
                        let so = (pos * shape.ni + n) * nt;
                        let d_o = (pos * shape.ni + n) * nt_pad;
                        out[d_o..d_o + nt].copy_from_slice(&v.data()[so..so + nt]);
                    }
                }
                self.write_buf(cg, *dst, &out)
            }
            TransformKind::WinogradOutput { shape, src, dst, nt_pad } => {
                let nt = swtensor::winograd::n_tiles(shape);
                if nt > *nt_pad {
                    return Err(MachineError::Invalid(format!(
                        "winograd_output: {nt} tiles exceed padded stride {nt_pad}"
                    )));
                }
                let padded =
                    self.buf_data_sized(cg, *src, 16 * shape.no * nt_pad, "winograd_output")?;
                let mut m = vec![0.0f32; 16 * shape.no * nt];
                for pos in 0..16 {
                    for n in 0..shape.no {
                        let so = (pos * shape.no + n) * nt_pad;
                        let d_o = (pos * shape.no + n) * nt;
                        m[d_o..d_o + nt].copy_from_slice(&padded[so..so + nt]);
                    }
                }
                let m = Tensor::from_vec(vec![16, shape.no, nt], m);
                let y = swtensor::winograd::batched_output_transform(shape, &m);
                self.write_buf(cg, *dst, y.data())
            }
            TransformKind::PackTensor { src, dst, src_dims, perm } => {
                let data =
                    self.buf_data_sized(cg, *src, src_dims.iter().product(), "pack")?;
                let t = Tensor::from_vec(src_dims.clone(), data);
                let p = t.permuted(perm);
                self.write_buf(cg, *dst, p.data())
            }
            TransformKind::RotateFilter { shape, src, dst } => {
                let dims = shape.weight_shape().dims().to_vec();
                let data =
                    self.buf_data_sized(cg, *src, dims.iter().product(), "rotate_filter")?;
                let w = Tensor::from_vec(dims, data);
                let mut out =
                    Tensor::zeros(vec![shape.ni, shape.no, shape.kr, shape.kc]);
                for no in 0..shape.no {
                    for ni in 0..shape.ni {
                        for kr in 0..shape.kr {
                            for kc in 0..shape.kc {
                                *out.at_mut(&[
                                    ni,
                                    no,
                                    shape.kr - 1 - kr,
                                    shape.kc - 1 - kc,
                                ]) = w.at(&[no, ni, kr, kc]);
                            }
                        }
                    }
                }
                self.write_buf(cg, *dst, out.data())
            }
            TransformKind::PadSubmatrix {
                src,
                src_rows,
                src_cols,
                r0,
                c0,
                take_rows,
                take_cols,
                dst,
                dst_rows,
                dst_cols,
                zero_first,
            } => {
                let s = self.buf_data(cg, *src)?;
                if s.len() != src_rows * src_cols {
                    return Err(MachineError::Invalid("pad: src size mismatch".into()));
                }
                let mut d = if *zero_first {
                    vec![0.0f32; dst_rows * dst_cols]
                } else {
                    self.buf_data(cg, *dst)?
                };
                if d.len() != dst_rows * dst_cols {
                    return Err(MachineError::Invalid("pad: dst size mismatch".into()));
                }
                let rows = (*take_rows).min(src_rows.saturating_sub(*r0)).min(*dst_rows);
                let cols = (*take_cols).min(src_cols.saturating_sub(*c0)).min(*dst_cols);
                for r in 0..rows {
                    let so = (r0 + r) * src_cols + c0;
                    let d_o = r * dst_cols;
                    d[d_o..d_o + cols].copy_from_slice(&s[so..so + cols]);
                }
                self.write_buf(cg, *dst, &d)
            }
            TransformKind::UnpadSubmatrix {
                src,
                src_rows,
                src_cols,
                dst,
                dst_rows,
                dst_cols,
                r0,
                c0,
                take_rows,
                take_cols,
            } => {
                let s = self.buf_data(cg, *src)?;
                if s.len() != src_rows * src_cols {
                    return Err(MachineError::Invalid("unpad: src size mismatch".into()));
                }
                let mut d = self.buf_data(cg, *dst)?;
                if d.len() != dst_rows * dst_cols {
                    return Err(MachineError::Invalid("unpad: dst size mismatch".into()));
                }
                let rows = (*take_rows).min(*src_rows).min(dst_rows.saturating_sub(*r0));
                let cols = (*take_cols).min(*src_cols).min(dst_cols.saturating_sub(*c0));
                for r in 0..rows {
                    let so = r * src_cols;
                    let d_o = (r0 + r) * dst_cols + c0;
                    d[d_o..d_o + cols].copy_from_slice(&s[so..so + cols]);
                }
                self.write_buf(cg, *dst, &d)
            }
            TransformKind::ZeroBuf { buf } => {
                let machine_buf = self.buf(*buf)?;
                cg.mem.buffer_mut(machine_buf).fill(0.0);
                Ok(())
            }
            TransformKind::PackTiles { src, dst, rows, cols, row_stride, mesh_swap, base, iters } => {
                // Mirrors DMA inference's per-CPE block addressing exactly:
                // the packed buffer must hand every CPE the same bytes the
                // strided fetch would have delivered.
                let s = self.buf_data(cg, *src)?;
                let n_iters: usize = iters.iter().map(|&(e, _)| e).product();
                let (block_rows, block_cols) = (rows / 8, cols / 8);
                let e_per_cpe = block_rows * block_cols;
                let mut out = vec![0.0f32; n_iters * rows * cols];
                let mut idx = vec![0usize; iters.len()];
                for lin in 0..n_iters {
                    let mut rem = lin;
                    for (i, &(ext, _)) in iters.iter().enumerate().rev() {
                        idx[i] = rem % ext;
                        rem /= ext;
                    }
                    let src_off = *base
                        + iters
                            .iter()
                            .zip(&idx)
                            .map(|(&(_, coef), &i)| coef * i as i64)
                            .sum::<i64>();
                    if src_off < 0 {
                        return Err(MachineError::Invalid(format!(
                            "pack_tiles: negative source offset {src_off}"
                        )));
                    }
                    let src_off = src_off as usize;
                    for cpe in 0..N_CPE {
                        let (r, c) = (rid(cpe), cid(cpe));
                        let (br_sel, bc_sel) = if *mesh_swap { (c, r) } else { (r, c) };
                        let cpe_base =
                            src_off + br_sel * block_rows * row_stride + bc_sel * block_cols;
                        let dst_base = (lin * N_CPE + cpe) * e_per_cpe;
                        for br in 0..block_rows {
                            let so = cpe_base + br * row_stride;
                            if so + block_cols > s.len() {
                                return Err(MachineError::Invalid(format!(
                                    "pack_tiles: source read [{so}, {}) exceeds buffer of {}",
                                    so + block_cols,
                                    s.len()
                                )));
                            }
                            let d_o = dst_base + br * block_cols;
                            out[d_o..d_o + block_cols].copy_from_slice(&s[so..so + block_cols]);
                        }
                    }
                }
                self.write_buf(cg, *dst, &out)
            }
        }
    }
}

fn transform_label(kind: &TransformKind) -> &'static str {
    match kind {
        TransformKind::Im2col { .. } => "im2col",
        TransformKind::PadImageNchw { .. } => "pad_image",
        TransformKind::WinogradFilter { .. } => "winograd_filter",
        TransformKind::WinogradInput { .. } => "winograd_input",
        TransformKind::WinogradOutput { .. } => "winograd_output",
        TransformKind::PackTensor { .. } => "pack",
        TransformKind::RotateFilter { .. } => "rotate_filter",
        TransformKind::PadSubmatrix { .. } => "pad",
        TransformKind::UnpadSubmatrix { .. } => "unpad",
        TransformKind::ZeroBuf { .. } => "zero",
        TransformKind::PackTiles { .. } => "pack_tiles",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::plan;
    use sw26010::DmaDirection::*;
    use sw26010::MachineConfig;
    use swatop_ir::{AVar, AffineExpr, DmaCpe, MemRole, Program, TransformOp};
    use swkernels::VecDim;
    use swtensor::init::random_vec;
    use swtensor::MatLayout;

    fn functional_cg() -> CoreGroup {
        CoreGroup::with_mode(ExecMode::Functional)
    }

    /// 64×64 matmul through IR: distribute A and B by DMA, gemm, collect C.
    /// Exercises DMA offset math end-to-end: wrong rid/cid coefficients
    /// would scramble the result.
    #[test]
    fn ir_matmul_roundtrip() {
        let (m, n, k) = (64, 64, 64);
        let (mb, nb, kb) = (m / 8, n / 8, k / 8);
        let mut p = Program::new("mm");
        let a = p.mem_buf("A", m * k, MemRole::Input);
        let b = p.mem_buf("B", k * n, MemRole::Input);
        let c = p.mem_buf("C", m * n, MemRole::Output);
        let sa = p.spm_buf("a", mb * kb);
        let sb = p.spm_buf("b", kb * nb);
        let sc = p.spm_buf("c", mb * nb);
        let r = p.fresh_reply();

        // Row-major matrices: CPE (rid, cid) takes block (rid, cid).
        let dma_in = |buf, rows: usize, cols: usize, spm| {
            Stmt::DmaCpe(DmaCpe {
                buf,
                offset: AffineExpr::zero()
                    .add_term(AVar::Rid, (rows / 8 * cols) as i64)
                    .add_term(AVar::Cid, (cols / 8) as i64),
                block: cols / 8,
                stride: cols,
                n_blocks: rows / 8,
                direction: MemToSpm,
                spm: SpmSlot::Single(spm),
                reply: r,
                bcast: None,
                fused: false,
            })
        };
        let dma_out = Stmt::DmaCpe(DmaCpe {
            buf: c,
            offset: AffineExpr::zero()
                .add_term(AVar::Rid, (mb * n) as i64)
                .add_term(AVar::Cid, nb as i64),
            block: nb,
            stride: n,
            n_blocks: mb,
            direction: SpmToMem,
            spm: SpmSlot::Single(sc),
            reply: r,
            bcast: None,
            fused: false,
        });
        let gemm = Stmt::Gemm(swatop_ir::GemmOp {
            m,
            n,
            k,
            alpha: 1.0,
            beta: 1.0,
            a: MatDesc::new(SpmSlot::Single(sa), MatLayout::RowMajor, kb),
            b: MatDesc::new(SpmSlot::Single(sb), MatLayout::RowMajor, nb),
            c: MatDesc::new(SpmSlot::Single(sc), MatLayout::RowMajor, nb),
            vd: VecDim::M,
        });
        p.body = Stmt::seq(vec![
            dma_in(a, m, k, sa),
            dma_in(b, k, n, sb),
            Stmt::DmaWait { reply: r, times: 2 },
            gemm,
            dma_out,
            Stmt::DmaWait { reply: r, times: 1 },
        ]);

        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        let av = random_vec(m * k, 1);
        let bv = random_vec(k * n, 2);
        cg.mem.write(binding.bufs[0], 0, &av).unwrap();
        cg.mem.write(binding.bufs[1], 0, &bv).unwrap();

        let cycles = execute(&mut cg, &exe, &binding).unwrap();
        assert!(cycles.get() > 0);

        let mut expect = vec![0.0f32; m * n];
        swtensor::gemm::gemm_rowmajor(m, n, k, &av, &bv, &mut expect);
        let got = cg.mem.buffer(binding.bufs[2]).to_vec();
        swtensor::compare::assert_close(&got, &expect, 1e-4, 1e-5, "ir matmul");
    }

    #[test]
    fn unlowered_dma_cg_is_an_error() {
        let mut p = Program::new("bad");
        let buf = p.mem_buf("x", 64, MemRole::Input);
        let s = p.spm_buf("s", 8);
        let r = p.fresh_reply();
        p.body = Stmt::DmaCg(swatop_ir::DmaCg {
            buf,
            offset: AffineExpr::zero(),
            rows: 8,
            cols: 8,
            row_stride: 8,
            mesh_swap: false,
            direction: MemToSpm,
            spm: SpmSlot::Single(s),
            reply: r,
        });
        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        assert!(execute(&mut cg, &exe, &binding).is_err());
    }

    #[test]
    fn double_buffer_slot_alternates() {
        // A loop DMAs into alternating buffers; final contents of the even
        // buffer must come from the last even iteration.
        let mut p = Program::new("dbl");
        let v = p.fresh_var("i");
        let src = p.mem_buf("src", 4 * 64, MemRole::Input);
        let even = p.spm_buf("even", 1);
        let odd = p.spm_buf("odd", 1);
        let r = p.fresh_reply();
        let dma = Stmt::DmaCpe(DmaCpe {
            buf: src,
            // Element (i*64 + cpe_linear) — use rid*8+cid to spread CPEs.
            offset: AffineExpr::loop_var(v)
                .scale(64)
                .add_term(AVar::Rid, 8)
                .add_term(AVar::Cid, 1),
            block: 1,
            stride: 1,
            n_blocks: 1,
            direction: MemToSpm,
            spm: SpmSlot::Double { even, odd, sel: AffineExpr::loop_var(v) },
            reply: r,
            bcast: None,
            fused: false,
        });
        p.body = Stmt::for_(
            v,
            4,
            Stmt::seq(vec![dma, Stmt::DmaWait { reply: r, times: 1 }]),
        );
        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        let data: Vec<f32> = (0..4 * 64).map(|x| x as f32).collect();
        cg.mem.write(binding.bufs[0], 0, &data).unwrap();
        execute(&mut cg, &exe, &binding).unwrap();
        let even_off = exe.spm_offset(even);
        let odd_off = exe.spm_offset(odd);
        // Last even iteration is i=2 → value 128 + cpe; last odd is i=3.
        assert_eq!(cg.spm(0).load(even_off).unwrap(), 128.0);
        assert_eq!(cg.spm(0).load(odd_off).unwrap(), 192.0);
        assert_eq!(cg.spm(63).load(odd_off).unwrap(), 192.0 + 63.0);
    }

    #[test]
    fn guard_conditions_gate_execution() {
        let mut p = Program::new("guard");
        let v = p.fresh_var("i");
        let src = p.mem_buf("src", 1024, MemRole::Input);
        let s = p.spm_buf("s", 1);
        let r = p.fresh_reply();
        let dma = |off: i64| {
            Stmt::DmaCpe(DmaCpe {
                buf: src,
                offset: AffineExpr::konst(off),
                block: 1,
                stride: 1,
                n_blocks: 1,
                direction: MemToSpm,
                spm: SpmSlot::Single(s),
                reply: r,
                bcast: None,
                fused: false,
            })
        };
        // for i in 0..5 { if i < 4 { dma@0 } else { dma@100 } ; wait }
        p.body = Stmt::for_(
            v,
            5,
            Stmt::seq(vec![
                Stmt::if_else(
                    swatop_ir::Cond::lt_const(AffineExpr::loop_var(v), 4),
                    dma(0),
                    dma(100),
                ),
                Stmt::DmaWait { reply: r, times: 1 },
            ]),
        );
        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        let mut data = vec![0.0f32; 1024];
        data[100] = 42.0;
        cg.mem.write(binding.bufs[0], 0, &data).unwrap();
        execute(&mut cg, &exe, &binding).unwrap();
        // Final iteration hit the else branch.
        assert_eq!(cg.spm(0).load(exe.spm_offset(s)).unwrap(), 42.0);
    }

    #[test]
    fn dma_bounds_are_enforced() {
        let mut p = Program::new("oob");
        let src = p.mem_buf("src", 16, MemRole::Input);
        let s = p.spm_buf("s", 64);
        let r = p.fresh_reply();
        p.body = Stmt::DmaCpe(DmaCpe {
            buf: src,
            offset: AffineExpr::zero(),
            block: 32, // longer than the buffer
            stride: 32,
            n_blocks: 1,
            direction: MemToSpm,
            spm: SpmSlot::Single(s),
            reply: r,
            bcast: None,
            fused: false,
        });
        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        assert!(matches!(
            execute(&mut cg, &exe, &binding),
            Err(MachineError::MainMemoryOutOfBounds { .. })
        ));
    }

    #[test]
    fn pack_transform_permutes_and_costs() {
        let mut p = Program::new("pack");
        let src = p.mem_buf("src", 6, MemRole::Input);
        let dst = p.mem_buf("dst", 6, MemRole::Temp);
        p.body = Stmt::Transform(TransformOp { fused: false,
            kind: TransformKind::PackTensor {
                src,
                dst,
                src_dims: vec![2, 3],
                perm: vec![1, 0],
            },
        });
        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        cg.mem.write(binding.bufs[0], 0, &[0., 1., 2., 10., 11., 12.]).unwrap();
        let cycles = execute(&mut cg, &exe, &binding).unwrap();
        assert!(cycles.get() > 0);
        assert_eq!(cg.mem.buffer(binding.bufs[1]), &[0., 10., 1., 11., 2., 12.]);
    }

    #[test]
    fn pad_and_unpad_transforms() {
        let mut p = Program::new("pad");
        let src = p.mem_buf("src", 3 * 5, MemRole::Input);
        let padded = p.mem_buf("padded", 4 * 8, MemRole::Temp);
        let out = p.mem_buf("out", 3 * 5, MemRole::Output);
        p.body = Stmt::seq(vec![
            Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::PadSubmatrix {
                    src,
                    src_rows: 3,
                    src_cols: 5,
                    r0: 0,
                    c0: 0,
                    take_rows: 3,
                    take_cols: 5,
                    dst: padded,
                    dst_rows: 4,
                    dst_cols: 8,
                    zero_first: true,
                },
            }),
            Stmt::Transform(TransformOp { fused: false,
                kind: TransformKind::UnpadSubmatrix {
                    src: padded,
                    src_rows: 4,
                    src_cols: 8,
                    dst: out,
                    dst_rows: 3,
                    dst_cols: 5,
                    r0: 0,
                    c0: 0,
                    take_rows: 3,
                    take_cols: 5,
                },
            }),
        ]);
        let exe = plan(p, &MachineConfig::default()).unwrap();
        let mut cg = functional_cg();
        let binding = instantiate(&mut cg, &exe);
        let data = random_vec(15, 9);
        cg.mem.write(binding.bufs[0], 0, &data).unwrap();
        execute(&mut cg, &exe, &binding).unwrap();
        assert_eq!(cg.mem.buffer(binding.bufs[2]), data.as_slice());
        // Padded region beyond the copied block is zero.
        let padded_data = cg.mem.buffer(binding.bufs[1]);
        assert_eq!(padded_data[5], 0.0);
        assert_eq!(padded_data[3 * 8 + 4], 0.0);
    }

    #[test]
    fn cost_only_mode_reports_same_cycles_as_functional() {
        // Clock advance must be identical between modes (determinism of the
        // cost model), so black-box tuning in CostOnly is faithful.
        let build = || {
            let mut p = Program::new("mm");
            let a = p.mem_buf("A", 64 * 64, MemRole::Input);
            let s = p.spm_buf("a", 64);
            let r = p.fresh_reply();
            let _ = a;
            p.body = Stmt::seq(vec![
                Stmt::DmaCpe(DmaCpe {
                    buf: swatop_ir::MemBufId(0),
                    offset: AffineExpr::zero().add_term(AVar::Rid, 64).add_term(AVar::Cid, 8),
                    block: 8,
                    stride: 64,
                    n_blocks: 8,
                    direction: MemToSpm,
                    spm: SpmSlot::Single(s),
                    reply: r,
                    bcast: None,
                    fused: false,
                }),
                Stmt::DmaWait { reply: r, times: 1 },
            ]);
            plan(p, &MachineConfig::default()).unwrap()
        };
        let exe = build();
        let mut f = functional_cg();
        let bf = instantiate(&mut f, &exe);
        let cf = execute(&mut f, &exe, &bf).unwrap();
        let mut c = CoreGroup::with_mode(ExecMode::CostOnly);
        let bc = instantiate(&mut c, &exe);
        let cc = execute(&mut c, &exe, &bc).unwrap();
        assert_eq!(cf, cc);
    }
}
