//! The static performance model (paper Sec. 4.6).
//!
//! * **Eq. (1)** — DMA time: start-up latency plus transaction-quantised
//!   transfer volume over the peak bandwidth share. The model assumes the
//!   first block of every transfer is 128-byte aligned and infers per-block
//!   waste from the stride; the simulated engine computes *exact* waste per
//!   block and charges a per-descriptor overhead the model does not know —
//!   that gap is the model error Fig. 9 quantifies.
//! * **Eq. (2)** — GEMM time: a linear function `αK + βKM + γKMN + δ` fitted
//!   per kernel variant against the pipeline-scoreboard ground truth
//!   ([`GemmModel::calibrate`]).
//! * **T_overall = max(T_DMA, T_compute)** under software prefetching
//!   (the autotuner estimates the *pre-prefetch* IR and applies the overlap
//!   formula, exactly like the paper assumes the optimizer will hide the
//!   latency).

pub mod fit;
pub mod memo;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sw26010::{Cycles, MachineConfig, MESH, N_CPE};
use swatop_ir::{Env, Program, Stmt, TransformKind};
use swkernels::{gemm_cycles, GemmVariant, VecDim, ALL_VARIANTS};

/// Eq. (1): model cycles for one DMA batch (64 symmetric per-CPE requests
/// of `n_blocks` blocks of `block_elems` elements, `stride_elems` apart).
pub fn dma_eq1_cycles(
    cfg: &MachineConfig,
    block_elems: usize,
    n_blocks: usize,
    stride_elems: usize,
) -> f64 {
    dma_eq1_cycles_n(cfg, block_elems, n_blocks, stride_elems, N_CPE)
}

/// Eq. (1) generalised to `n_requests` symmetric per-CPE requests —
/// broadcast-tiled transfers issue only the 8 leader requests (one per mesh
/// row or column) instead of 64.
pub fn dma_eq1_cycles_n(
    cfg: &MachineConfig,
    block_elems: usize,
    n_blocks: usize,
    stride_elems: usize,
    n_requests: usize,
) -> f64 {
    let txn = cfg.dram_transaction_bytes;
    let block_bytes = block_elems * 4;
    // "We assume the first block is 128 B aligned, and waste_size of each
    // block can be inferred by the stride size."
    let stride_aligned = (stride_elems * 4).is_multiple_of(txn) || n_blocks == 1;
    let bus_block = if stride_aligned {
        block_bytes.div_ceil(txn) * txn
    } else {
        // Unaligned strides straddle transaction boundaries: expect one
        // extra transaction of waste per block.
        block_bytes.div_ceil(txn) * txn + txn
    };
    let total_bytes = (bus_block * n_blocks * n_requests) as f64;
    // The start-up and per-block descriptor constants are calibrated from
    // DMA micro-benchmarks (as the paper does, following Xu et al. [24]):
    // strided transfers with many small blocks pay a per-descriptor cost on
    // top of the bandwidth term.
    let descriptor = (cfg.dma_block_overhead.get() * (n_blocks * n_requests) as u64) as f64;
    cfg.dma_startup.get() as f64 + descriptor + total_bytes / cfg.mem_bytes_per_cycle
}

/// Cost model for the bulk host-side transforms, shared verbatim with the
/// interpreter (so transform costs contribute zero model error).
pub fn transform_cost(cfg: &MachineConfig, kind: &TransformKind) -> Cycles {
    let (reads, writes, flops_per_write) = kind.traffic();
    let bytes = 4 * (reads + writes);
    let transfer = (bytes as f64 / cfg.mem_bytes_per_cycle).ceil() as u64;
    let compute = writes * (1 + flops_per_write) / (N_CPE as u64 * 4);
    cfg.dma_startup + Cycles(transfer.max(compute))
}

/// The calibrated Eq. (2) model: one coefficient vector per kernel variant.
#[derive(Debug, Clone)]
pub struct GemmModel {
    pub coef: [[f64; fit::N_FEATURES]; 8],
}

static MODEL_CACHE: Mutex<Option<HashMap<u64, Arc<GemmModel>>>> = Mutex::new(None);

impl GemmModel {
    /// Fit all eight variants against the scoreboard ground truth. Cached
    /// per machine configuration (calibration is a one-time cost, like the
    /// paper's offline kernel benchmarking). Prefer [`GemmModel::cached`] in
    /// hot paths — it shares the fitted model instead of cloning it.
    pub fn calibrate(cfg: &MachineConfig) -> GemmModel {
        (*Self::cached(cfg)).clone()
    }

    /// Shared handle to the calibrated model for `cfg`. The cache lock is
    /// held across the fit so concurrent tuner threads asking for the same
    /// configuration calibrate exactly once and everyone else blocks on the
    /// single fit instead of duplicating it.
    pub fn cached(cfg: &MachineConfig) -> Arc<GemmModel> {
        let key = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            cfg.vmad_latency.hash(&mut h);
            cfg.bcast_latency.hash(&mut h);
            cfg.vldd_latency.hash(&mut h);
            cfg.kernel_call_overhead.get().hash(&mut h);
            h.finish()
        };
        let mut cache = MODEL_CACHE.lock();
        if let Some(m) = cache.as_ref().and_then(|c| c.get(&key)) {
            return Arc::clone(m);
        }
        let mut coef = [[0.0; fit::N_FEATURES]; 8];
        for v in ALL_VARIANTS {
            let mut samples = Vec::new();
            for &m in &[32usize, 64, 96, 128, 160, 192, 256, 320] {
                for &n in &[32usize, 48, 64, 96, 128, 192, 256] {
                    for &k in &[8usize, 16, 24, 32, 64, 96, 128, 192, 256] {
                        if !valid_shape(v, m, n, k) {
                            continue;
                        }
                        let y = gemm_cycles(cfg, v, m, n, k).get() as f64;
                        samples.push((fit::features(m, n, k), y, 1.0 / (y * y)));
                    }
                }
            }
            coef[v.index()] = fit::wls(&samples);
        }
        let model = Arc::new(GemmModel { coef });
        cache.get_or_insert_with(HashMap::new).insert(key, Arc::clone(&model));
        model
    }

    /// Predicted cycles for one `spm_gemm(M, N, K)` call.
    pub fn predict(&self, variant: GemmVariant, m: usize, n: usize, k: usize) -> f64 {
        fit::predict(&self.coef[variant.index()], m, n, k)
    }
}

/// Is (M, N, K) a legal shape for this variant? (mesh divisibility and
/// per-CPE vector alignment — same rules as `spm_gemm::validate`.)
pub fn valid_shape(v: GemmVariant, m: usize, n: usize, k: usize) -> bool {
    if !m.is_multiple_of(8) || !n.is_multiple_of(8) || !k.is_multiple_of(8) {
        return false;
    }
    match v.vec {
        VecDim::M => (m / 8).is_multiple_of(4),
        VecDim::N => (n / 8).is_multiple_of(4),
    }
}

/// Static cost estimate of a program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Modelled DMA engine time (Eq. 1 summed over all transfers).
    pub t_dma: f64,
    /// Modelled instruction-stream time (Eq. 2 + transform costs).
    pub t_compute: f64,
}

impl Estimate {
    /// `T_overall`: with prefetching DMA and compute overlap (`max`);
    /// without, they serialise (`sum`).
    pub fn overall(&self, prefetched: bool) -> f64 {
        if prefetched {
            self.t_dma.max(self.t_compute)
        } else {
            self.t_dma + self.t_compute
        }
    }
}

/// Estimate a lowered (pre-prefetch) program.
///
/// Loops whose bodies are control-flow-free are costed symbolically (body
/// cost × extent); loops containing guards that depend on their variable
/// (boundary switching) are walked concretely. Either way no machine state
/// is touched — this is what makes the model-based autotuner orders of
/// magnitude faster than black-box execution (Tab. 3).
pub fn estimate_program(cfg: &MachineConfig, model: &GemmModel, p: &Program) -> Estimate {
    let mut env = Env::new(p.n_vars().max(1));
    let mut est = Estimate::default();
    estimate_stmt(cfg, model, &p.body, &mut env, 1.0, &mut est);
    est
}

fn cond_depends_on(cond: &swatop_ir::Cond, var: usize) -> bool {
    use swatop_ir::Cond::*;
    match cond {
        Lt(a, b) | Ge(a, b) | Eq(a, b) => a.depends_on(var) || b.depends_on(var),
        And(a, b) => cond_depends_on(a, var) || cond_depends_on(b, var),
    }
}

fn subtree_has_dependent_if(s: &Stmt, var: usize) -> bool {
    let mut found = false;
    s.visit(&mut |x| {
        if let Stmt::If { cond, .. } = x {
            if cond_depends_on(cond, var) {
                found = true;
            }
        }
    });
    found
}

/// Guard-variable masks per `For` node (keyed by address): bit `v` is set
/// when some `If` condition inside the loop body reads loop variable `v`.
/// One bottom-up pass replaces the repeated `subtree_has_dependent_if`
/// subtree scans of the walk — inside a concrete boundary walk those scans
/// re-run per iteration and dominate the screen. Bit 127 is a saturation
/// sentinel for variables ≥ 127 (conservative: such loops always walk
/// concretely, which is slower but bit-identical in outcome only when no
/// guard actually depends on the variable — indices that high never occur
/// in lowered programs).
type IfMasks = HashMap<*const Stmt, u128>;

fn var_bit(v: usize) -> u128 {
    1u128 << v.min(127)
}

fn cond_var_mask(cond: &swatop_ir::Cond) -> u128 {
    use swatop_ir::Cond::*;
    match cond {
        Lt(a, b) | Ge(a, b) | Eq(a, b) => {
            let mut m = 0;
            for e in [a, b] {
                // `loop_vars` may report zero-coefficient terms; the walk
                // switches on `depends_on` (coefficient ≠ 0), and the mask
                // must make exactly the same concrete-vs-symbolic calls.
                for v in e.loop_vars() {
                    if e.depends_on(v) {
                        m |= var_bit(v);
                    }
                }
            }
            m
        }
        And(a, b) => cond_var_mask(a) | cond_var_mask(b),
    }
}

fn collect_if_masks(s: &Stmt, out: &mut IfMasks) -> u128 {
    match s {
        Stmt::Seq(ss) => ss.iter().fold(0, |m, x| m | collect_if_masks(x, out)),
        Stmt::For { body, .. } => {
            let m = collect_if_masks(body, out);
            out.insert(std::ptr::from_ref(s), m);
            m
        }
        Stmt::If { cond, then_, else_ } => {
            let mut m = cond_var_mask(cond) | collect_if_masks(then_, out);
            if let Some(e) = else_ {
                m |= collect_if_masks(e, out);
            }
            m
        }
        _ => 0,
    }
}

/// Does the subtree contain any `If` at all? Guard-free programs (most GEMM
/// candidates) skip mask collection *and* memo keying entirely: every loop
/// is symbolic and the walk touches each node exactly once, so any per-node
/// bookkeeping would be pure overhead on the screen's hottest path.
fn any_if(s: &Stmt) -> bool {
    match s {
        Stmt::If { .. } => true,
        Stmt::Seq(ss) => ss.iter().any(any_if),
        Stmt::For { body, .. } => any_if(body),
        _ => false,
    }
}

fn estimate_stmt(
    cfg: &MachineConfig,
    model: &GemmModel,
    s: &Stmt,
    env: &mut Env,
    mult: f64,
    est: &mut Estimate,
) {
    match s {
        Stmt::Nop => {}
        Stmt::Seq(ss) => ss.iter().for_each(|x| estimate_stmt(cfg, model, x, env, mult, est)),
        Stmt::For { var, extent, body } => {
            if subtree_has_dependent_if(body, *var) {
                // Boundary guards: walk concretely so each branch is
                // counted exactly.
                for i in 0..*extent {
                    env.set(*var, i as i64);
                    estimate_stmt(cfg, model, body, env, mult, est);
                }
            } else {
                env.set(*var, 0);
                estimate_stmt(cfg, model, body, env, mult * (*extent as f64), est);
            }
        }
        Stmt::If { cond, then_, else_ } => {
            if cond.eval(env, 0, 0) {
                estimate_stmt(cfg, model, then_, env, mult, est);
            } else if let Some(e) = else_ {
                estimate_stmt(cfg, model, e, env, mult, est);
            }
        }
        Stmt::DmaCg(d) => {
            // Estimate as if lowered (cols/8 blocks etc.).
            let node = crate::optimizer::dma_inference::lower_node(d);
            est.t_dma += mult * dma_eq1_cycles(cfg, node.block, node.n_blocks, node.stride);
        }
        Stmt::DmaCpe(d) => {
            let mut t = match d.bcast {
                None => dma_eq1_cycles(cfg, d.block, d.n_blocks, d.stride),
                // Broadcast tiling: 8 leader requests of 8·block
                // elements, plus the register-bus scatter that extends
                // the transfer's completion.
                Some(_) => {
                    dma_eq1_cycles_n(cfg, 8 * d.block, d.n_blocks, d.stride, MESH)
                        + sw26010::regcomm::dma_scatter_cycles(cfg, d.spm_elems()).get() as f64
                }
            };
            // Fused nodes chain onto the preceding batch: Eq. (1)'s
            // start-up term is paid once per batch group, not per node.
            if d.fused {
                t -= cfg.dma_startup.get() as f64;
            }
            est.t_dma += mult * t;
        }
        Stmt::DmaWait { .. } => {
            est.t_compute += mult * cfg.dma_wait_poll.get() as f64;
        }
        Stmt::Gemm(g) => {
            let variant =
                GemmVariant { a_layout: g.a.layout, b_layout: g.b.layout, vec: g.vd };
            est.t_compute += mult * model.predict(variant, g.m, g.n, g.k);
        }
        Stmt::Transform(t) => {
            // Transforms stream through memory: they occupy both the DMA
            // engine and the CPEs; charge the same cost to both clocks
            // (they cannot be overlapped with the main loop). Fused
            // transforms chain onto their predecessor's pipeline and skip
            // the start-up latency, mirroring the interpreter.
            let mut c = transform_cost(cfg, &t.kind).get() as f64;
            if t.fused {
                c -= cfg.dma_startup.get() as f64;
            }
            est.t_compute += mult * c;
            est.t_dma += mult * c;
        }
    }
}

/// Estimate a lowered program with sub-cost memoization (the Tier-0
/// analytic screen).
///
/// Unlike [`estimate_program`], every loop subtree is costed into its own
/// accumulator and then scaled/added — the grouping that makes a subtree's
/// cost a pure function of its structure and the entry values of its free
/// guard variables, i.e. exactly the memo key ([`memo::subtree_key`]).
/// Because the grouping is the same whether or not a cache is attached,
/// results are bit-identical for `memo = None`, a cold cache and a warm
/// cache; the cache only skips recomputation.
///
/// Only *concretely walked* loops (boundary guards depending on the loop
/// variable) are memoized: their walk is O(extent × body) against an
/// O(body) key, so a hit is a real saving. A symbolic loop costs O(body)
/// to walk and O(body) to hash — the cache can never beat recomputation
/// there, it only adds hashing and lock traffic.
pub fn estimate_program_memo(
    cfg: &MachineConfig,
    model: &GemmModel,
    p: &Program,
    memo: Option<&memo::MemoCache>,
) -> Estimate {
    let mut env = Env::new(p.n_vars().max(1));
    let cfg_key = if memo.is_some() { memo::cfg_key(cfg) } else { 0 };
    let masks = any_if(&p.body).then(|| {
        let mut m = IfMasks::default();
        collect_if_masks(&p.body, &mut m);
        m
    });
    let mut est = Estimate::default();
    estimate_grouped(cfg, model, &p.body, &mut env, memo, cfg_key, masks.as_ref(), &mut est);
    est
}

#[allow(clippy::too_many_arguments)]
fn estimate_grouped(
    cfg: &MachineConfig,
    model: &GemmModel,
    s: &Stmt,
    env: &mut Env,
    cache: Option<&memo::MemoCache>,
    cfg_key: u64,
    masks: Option<&IfMasks>,
    est: &mut Estimate,
) {
    match s {
        Stmt::For { var, extent, body } => {
            // `masks` is `None` exactly when the whole program is guard-free
            // — then every loop is symbolic by construction.
            let concrete = masks.is_some_and(|m| {
                let guard = m.get(&std::ptr::from_ref(s)).copied().unwrap_or(u128::MAX);
                guard & (var_bit(*var) | var_bit(127)) != 0
            });
            let key = if concrete {
                cache.map(|_| memo::subtree_key(cfg_key, s, env))
            } else {
                None
            };
            let sub = if let Some(hit) = key.and_then(|k| cache.and_then(|c| c.get(k))) {
                hit
            } else {
                // Loop variables scope: the walk restores the entry value,
                // so a memo hit (which skips the walk entirely) leaves the
                // environment in the same state as a miss.
                let saved = env.get(*var);
                let mut sub = Estimate::default();
                if concrete {
                    // Boundary guards: walk concretely so each branch is
                    // counted exactly.
                    for i in 0..*extent {
                        env.set(*var, i as i64);
                        let mut iter = Estimate::default();
                        estimate_grouped(cfg, model, body, env, cache, cfg_key, masks, &mut iter);
                        sub.t_dma += iter.t_dma;
                        sub.t_compute += iter.t_compute;
                    }
                } else {
                    env.set(*var, 0);
                    let mut one = Estimate::default();
                    estimate_grouped(cfg, model, body, env, cache, cfg_key, masks, &mut one);
                    sub.t_dma = one.t_dma * *extent as f64;
                    sub.t_compute = one.t_compute * *extent as f64;
                }
                env.set(*var, saved);
                if let (Some(c), Some(key)) = (cache, key) {
                    c.insert(key, sub);
                }
                sub
            };
            est.t_dma += sub.t_dma;
            est.t_compute += sub.t_compute;
        }
        Stmt::If { cond, then_, else_ } => {
            if cond.eval(env, 0, 0) {
                estimate_grouped(cfg, model, then_, env, cache, cfg_key, masks, est);
            } else if let Some(e) = else_ {
                estimate_grouped(cfg, model, e, env, cache, cfg_key, masks, est);
            }
        }
        Stmt::Seq(ss) => {
            ss.iter()
                .for_each(|x| estimate_grouped(cfg, model, x, env, cache, cfg_key, masks, est));
        }
        // Leaves: identical costing to the un-grouped estimator at mult = 1.
        other => estimate_stmt(cfg, model, other, env, 1.0, est),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_scales_with_volume_and_penalises_misalignment() {
        let cfg = MachineConfig::default();
        let small = dma_eq1_cycles(&cfg, 32, 8, 32);
        let big = dma_eq1_cycles(&cfg, 32, 64, 32);
        assert!(big > 4.0 * small / 2.0);
        // Aligned stride (32 elems = 128 B) vs unaligned (33 elems).
        let aligned = dma_eq1_cycles(&cfg, 16, 64, 32);
        let unaligned = dma_eq1_cycles(&cfg, 16, 64, 33);
        assert!(unaligned > aligned, "{unaligned} !> {aligned}");
    }

    #[test]
    fn gemm_model_tracks_ground_truth_within_tolerance() {
        let cfg = MachineConfig::default();
        let model = GemmModel::calibrate(&cfg);
        let mut worst: f64 = 0.0;
        for v in ALL_VARIANTS {
            for &(m, n, k) in &[(64usize, 64usize, 64usize), (128, 64, 32), (256, 128, 128)] {
                if !valid_shape(v, m, n, k) {
                    continue;
                }
                let truth = gemm_cycles(&cfg, v, m, n, k).get() as f64;
                let pred = model.predict(v, m, n, k);
                let err = (pred - truth).abs() / truth;
                worst = worst.max(err);
            }
        }
        assert!(worst < 0.25, "worst relative error {worst}");
    }

    #[test]
    fn model_ranks_fast_variant_above_slow() {
        let cfg = MachineConfig::default();
        let model = GemmModel::calibrate(&cfg);
        let fast = ALL_VARIANTS.iter().find(|v| v.vector_load_ok()).unwrap();
        let slow = ALL_VARIANTS.iter().find(|v| !v.vector_load_ok()).unwrap();
        assert!(
            model.predict(*fast, 128, 128, 128) < model.predict(*slow, 128, 128, 128),
            "model must preserve the variant ordering"
        );
    }

    #[test]
    fn overall_combines_overlap() {
        let e = Estimate { t_dma: 100.0, t_compute: 60.0 };
        assert_eq!(e.overall(true), 100.0);
        assert_eq!(e.overall(false), 160.0);
    }

    #[test]
    fn valid_shape_rules() {
        use swtensor::MatLayout::*;
        let vm = GemmVariant { a_layout: ColMajor, b_layout: RowMajor, vec: VecDim::M };
        assert!(valid_shape(vm, 32, 8, 8));
        assert!(!valid_shape(vm, 16, 8, 8)); // mb=2 not vector-aligned
        assert!(!valid_shape(vm, 33, 8, 8)); // not mesh-divisible
        let vn = GemmVariant { a_layout: ColMajor, b_layout: RowMajor, vec: VecDim::N };
        assert!(valid_shape(vn, 8, 32, 8));
        assert!(!valid_shape(vn, 8, 16, 8));
    }
}
