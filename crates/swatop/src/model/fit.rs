//! Weighted least-squares fitting of the Eq. (2) GEMM cost model.
//!
//! "We fit a linear function to estimate the computation time by collecting
//! the execution time of GEMM operations using different dimension
//! parameters" (Sec. 4.6). The features follow Eq. (2):
//! `T = α·K + β·K·M + γ·K·M·N + δ` (the paper's /4 and vecM factors are
//! absorbed into per-variant coefficients, since we fit one model per
//! kernel variant). Weights `1/y²` minimise *relative* error, which is what
//! ranking schedules needs.

/// Number of model features.
pub const N_FEATURES: usize = 4;

/// Feature vector of one (M, N, K) sample.
pub fn features(m: usize, n: usize, k: usize) -> [f64; N_FEATURES] {
    let (m, n, k) = (m as f64, n as f64, k as f64);
    [k, k * m, k * m * n, 1.0]
}

/// Solve the weighted least-squares problem for samples `(x_i, y_i)` with
/// weights `w_i`, returning the coefficient vector.
pub fn wls(samples: &[([f64; N_FEATURES], f64, f64)]) -> [f64; N_FEATURES] {
    // Normal equations: (XᵀWX) β = XᵀWy.
    let mut a = [[0.0f64; N_FEATURES]; N_FEATURES];
    let mut b = [0.0f64; N_FEATURES];
    for (x, y, w) in samples {
        for i in 0..N_FEATURES {
            for j in 0..N_FEATURES {
                a[i][j] += w * x[i] * x[j];
            }
            b[i] += w * x[i] * y;
        }
    }
    solve4(a, b)
}

/// Gaussian elimination with partial pivoting for the 4×4 system.
fn solve4(mut a: [[f64; N_FEATURES]; N_FEATURES], mut b: [f64; N_FEATURES]) -> [f64; N_FEATURES] {
    for col in 0..N_FEATURES {
        // Pivot.
        let mut piv = col;
        for r in col + 1..N_FEATURES {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        if d.abs() < 1e-12 {
            continue; // singular direction: leave coefficient at 0
        }
        for r in 0..N_FEATURES {
            if r == col {
                continue;
            }
            let f = a[r][col] / d;
            let pivot_row = a[col];
            for (x, p) in a[r][col..].iter_mut().zip(&pivot_row[col..]) {
                *x -= f * p;
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = [0.0f64; N_FEATURES];
    for i in 0..N_FEATURES {
        x[i] = if a[i][i].abs() < 1e-12 { 0.0 } else { b[i] / a[i][i] };
    }
    x
}

/// Predict with a coefficient vector.
pub fn predict(coef: &[f64; N_FEATURES], m: usize, n: usize, k: usize) -> f64 {
    let x = features(m, n, k);
    coef.iter().zip(&x).map(|(c, f)| c * f).sum::<f64>().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data_recovers_coefficients() {
        let truth = [3.0, 0.25, 0.031, 140.0];
        let mut samples = Vec::new();
        for &m in &[32usize, 64, 128] {
            for &n in &[32usize, 64, 96] {
                for &k in &[8usize, 16, 64] {
                    let x = features(m, n, k);
                    let y: f64 = truth.iter().zip(&x).map(|(c, f)| c * f).sum();
                    samples.push((x, y, 1.0 / (y * y)));
                }
            }
        }
        let fit = wls(&samples);
        for (a, b) in fit.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "fit {fit:?} vs {truth:?}");
        }
    }

    #[test]
    fn noisy_data_fits_within_tolerance() {
        let truth = [2.0, 0.1, 0.02, 50.0];
        let mut samples = Vec::new();
        let mut noise = 0.97f64;
        for &m in &[32usize, 64, 96, 128] {
            for &n in &[32usize, 64, 128] {
                for &k in &[16usize, 32, 64, 128] {
                    let x = features(m, n, k);
                    let y: f64 = truth.iter().zip(&x).map(|(c, f)| c * f).sum::<f64>() * noise;
                    noise = if noise > 1.0 { 0.97 } else { 1.03 };
                    samples.push((x, y, 1.0 / (y * y)));
                }
            }
        }
        let fit = wls(&samples);
        // Predictions within ~5% on the samples.
        for &m in &[32usize, 128] {
            for &k in &[16usize, 128] {
                let y: f64 =
                    truth.iter().zip(&features(m, 64, k)).map(|(c, f)| c * f).sum();
                let p = predict(&fit, m, 64, k);
                assert!((p - y).abs() / y < 0.05, "pred {p} vs {y}");
            }
        }
    }

    #[test]
    fn predict_is_positive() {
        let coef = [-100.0, 0.0, 0.0, 0.0];
        assert!(predict(&coef, 8, 8, 8) >= 1.0);
    }
}
