//! Structural-hash memoization of sub-program cost estimates.
//!
//! The Tier-0 analytic screen walks the lowered IR of every enumerated
//! candidate, and most of that work recurs: the same inner reduction loop
//! appears under dozens of outer tilings, the same DMA tile-transfer plan
//! is lowered by every candidate that shares a tile shape, and concrete
//! boundary walks re-estimate structurally identical iterations over and
//! over. This module caches those sub-costs by a *cost-relevant structural
//! hash*: two subtrees hash equal exactly when the estimator would charge
//! them the same cycles — buffer ids, addresses and scaling factors that do
//! not change the cost are deliberately excluded, so hits happen across
//! candidates, operators and shapes.
//!
//! Only concretely walked loops — boundary-guarded subtrees whose walk is
//! O(extent × body) — are worth caching; symbolic loops cost as much to
//! hash as to recompute, so the estimator skips the cache for them (see
//! [`crate::model::estimate_program_memo`]).
//!
//! The cache is sharded (one read/write lock per shard) and process-global:
//! a sweep over many shapes keeps re-using the entries its first operator
//! filled. Hit/miss counters are plain relaxed atomics — they are
//! observability, not control flow. Concurrent misses on the same key race
//! to recompute the same deterministic value, so whichever insert lands is
//! identical; cached results are bit-equal to uncached ones by
//! construction (the estimator computes sub-costs in the same grouping
//! whether or not a cache is attached — see
//! [`crate::model::estimate_program_memo`]).

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;
use sw26010::MachineConfig;
use swatop_ir::{Env, Stmt};

use super::Estimate;

/// Shard count: enough to keep 16 tuner workers from serialising on one
/// lock, small enough that iterating all shards (for `len`) stays trivial.
const N_SHARDS: usize = 16;

/// Sharded concurrent memo table: structural key → `(t_dma, t_compute)`.
#[derive(Debug, Default)]
pub struct MemoCache {
    shards: [RwLock<HashMap<u64, (f64, f64)>>; N_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    pub fn new() -> MemoCache {
        MemoCache::default()
    }

    /// The process-global cache shared by every tuning run in a sweep.
    pub fn global() -> &'static MemoCache {
        static GLOBAL: OnceLock<MemoCache> = OnceLock::new();
        GLOBAL.get_or_init(MemoCache::new)
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, (f64, f64)>> {
        &self.shards[(key % N_SHARDS as u64) as usize]
    }

    /// Cached sub-cost for `key`, or `None`.
    pub fn get(&self, key: u64) -> Option<Estimate> {
        let got = self.shard(key).read().get(&key).copied();
        match got {
            Some((t_dma, t_compute)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Estimate { t_dma, t_compute })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record the computed sub-cost for `key`.
    pub fn insert(&self, key: u64, est: Estimate) {
        self.shard(key).write().insert(key, (est.t_dma, est.t_compute));
    }

    /// Lookups that found an entry (relaxed; approximate under concurrency).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (relaxed; approximate under concurrency).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct sub-programs memoised so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `(hits, misses, entries)` of the global memo cache — the observability
/// triple the telemetry snapshot and Prometheus export surface.
pub fn stats() -> (u64, u64, u64) {
    let g = MemoCache::global();
    (g.hits(), g.misses(), g.len() as u64)
}

/// FNV-1a accumulator exposed through [`std::hash::Hasher`], so IR types
/// that derive `Hash` (affine expressions, conditions) feed it directly.
pub struct StructHasher(u64);

impl StructHasher {
    pub fn new() -> StructHasher {
        StructHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for StructHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StructHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Fingerprint of every machine parameter the estimator reads, plus the
/// Eq. 2 calibration identity: entries from different machine models must
/// never collide.
pub fn cfg_key(cfg: &MachineConfig) -> u64 {
    let mut h = StructHasher::new();
    cfg.dram_transaction_bytes.hash(&mut h);
    cfg.mem_bytes_per_cycle.to_bits().hash(&mut h);
    cfg.dma_startup.get().hash(&mut h);
    cfg.dma_block_overhead.get().hash(&mut h);
    cfg.dma_issue_cost.get().hash(&mut h);
    cfg.dma_wait_poll.get().hash(&mut h);
    cfg.vmad_latency.hash(&mut h);
    cfg.vldd_latency.hash(&mut h);
    cfg.bcast_latency.hash(&mut h);
    cfg.vstd_latency.hash(&mut h);
    cfg.regcomm_switch.get().hash(&mut h);
    cfg.kernel_call_overhead.get().hash(&mut h);
    h.finish()
}

/// Hash the *cost-relevant projection* of a statement subtree: exactly the
/// fields [`crate::model::estimate_program_memo`] reads. Buffer ids, SPM
/// slots, affine offsets of CG-level tiles, GEMM scalars and leading
/// dimensions are excluded — they never change the estimate, and excluding
/// them lets structurally different candidates share entries.
pub fn hash_stmt(s: &Stmt, h: &mut StructHasher) {
    match s {
        Stmt::Nop => 0u8.hash(h),
        Stmt::Seq(ss) => {
            1u8.hash(h);
            ss.len().hash(h);
            ss.iter().for_each(|x| hash_stmt(x, h));
        }
        Stmt::For { var, extent, body } => {
            2u8.hash(h);
            var.hash(h);
            extent.hash(h);
            hash_stmt(body, h);
        }
        Stmt::If { cond, then_, else_ } => {
            3u8.hash(h);
            cond.hash(h);
            hash_stmt(then_, h);
            match else_ {
                Some(e) => {
                    1u8.hash(h);
                    hash_stmt(e, h);
                }
                None => 0u8.hash(h),
            }
        }
        // Eq. 1 inputs after DMA inference depend only on the tile
        // geometry (lower_node derives block/stride/n_blocks from it).
        Stmt::DmaCg(d) => {
            4u8.hash(h);
            d.rows.hash(h);
            d.cols.hash(h);
            d.row_stride.hash(h);
        }
        Stmt::DmaCpe(d) => {
            5u8.hash(h);
            d.block.hash(h);
            d.stride.hash(h);
            d.n_blocks.hash(h);
            match d.bcast {
                None => 0u8.hash(h),
                Some(sw26010::regcomm::BcastBus::Row) => 1u8.hash(h),
                Some(sw26010::regcomm::BcastBus::Column) => 2u8.hash(h),
            }
            d.fused.hash(h);
        }
        // The estimator charges one poll per wait statement, regardless of
        // the completion count.
        Stmt::DmaWait { .. } => 6u8.hash(h),
        Stmt::Gemm(g) => {
            7u8.hash(h);
            (g.a.layout as u8).hash(h);
            (g.b.layout as u8).hash(h);
            (g.vd as u8).hash(h);
            g.m.hash(h);
            g.n.hash(h);
            g.k.hash(h);
        }
        Stmt::Transform(t) => {
            8u8.hash(h);
            let (reads, writes, flops) = t.kind.traffic();
            reads.hash(h);
            writes.hash(h);
            flops.hash(h);
            t.fused.hash(h);
        }
    }
}

fn cond_vars(cond: &swatop_ir::Cond, bound: &[usize], out: &mut BTreeSet<usize>) {
    use swatop_ir::Cond::*;
    match cond {
        Lt(a, b) | Ge(a, b) | Eq(a, b) => {
            for e in [a, b] {
                for v in e.loop_vars() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
        }
        And(a, b) => {
            cond_vars(a, bound, out);
            cond_vars(b, bound, out);
        }
    }
}

/// Loop variables that guard conditions *read* inside `s` without being
/// bound by an enclosing `For` within `s` — the only part of the walk
/// environment a subtree's cost can depend on. Their entry values complete
/// the memo key.
pub fn free_cond_vars(s: &Stmt, bound: &mut Vec<usize>, out: &mut BTreeSet<usize>) {
    match s {
        Stmt::Seq(ss) => ss.iter().for_each(|x| free_cond_vars(x, bound, out)),
        Stmt::For { var, body, .. } => {
            bound.push(*var);
            free_cond_vars(body, bound, out);
            bound.pop();
        }
        Stmt::If { cond, then_, else_ } => {
            cond_vars(cond, bound, out);
            free_cond_vars(then_, bound, out);
            if let Some(e) = else_ {
                free_cond_vars(e, bound, out);
            }
        }
        _ => {}
    }
}

/// Full memo key of a subtree at its current walk position: machine
/// fingerprint ⊕ structural hash ⊕ the entry values of its free condition
/// variables.
pub fn subtree_key(cfg_key: u64, s: &Stmt, env: &Env) -> u64 {
    let mut h = StructHasher::new();
    cfg_key.hash(&mut h);
    hash_stmt(s, &mut h);
    let mut free = BTreeSet::new();
    free_cond_vars(s, &mut Vec::new(), &mut free);
    for v in free {
        v.hash(&mut h);
        env.get(v).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swatop_ir::{AffineExpr, Cond, ReplyId};

    fn wait() -> Stmt {
        Stmt::DmaWait { reply: ReplyId(0), times: 1 }
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let c = MemoCache::new();
        assert_eq!(c.get(7), None);
        c.insert(7, Estimate { t_dma: 1.5, t_compute: 2.5 });
        assert_eq!(c.get(7), Some(Estimate { t_dma: 1.5, t_compute: 2.5 }));
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
        assert!(!c.is_empty());
    }

    #[test]
    fn wait_count_is_cost_irrelevant() {
        // The estimator charges one poll per wait node; `times` must not
        // fragment the cache.
        let a = Stmt::DmaWait { reply: ReplyId(0), times: 1 };
        let b = Stmt::DmaWait { reply: ReplyId(3), times: 16 };
        let env = Env::new(1);
        assert_eq!(subtree_key(1, &a, &env), subtree_key(1, &b, &env));
    }

    #[test]
    fn structure_and_extent_differentiate() {
        let env = Env::new(1);
        let a = Stmt::for_(0, 4, wait());
        let b = Stmt::for_(0, 8, wait());
        assert_ne!(subtree_key(1, &a, &env), subtree_key(1, &b, &env));
        assert_ne!(subtree_key(1, &a, &env), subtree_key(2, &a, &env));
    }

    #[test]
    fn free_cond_vars_respect_scoping() {
        // if (v1 < 2) { wait }  inside  for v0 — v1 is free, v0 is not read.
        let guarded = Stmt::if_(Cond::lt_const(AffineExpr::loop_var(1), 2), wait());
        let tree = Stmt::for_(0, 4, guarded.clone());
        let mut free = BTreeSet::new();
        free_cond_vars(&tree, &mut Vec::new(), &mut free);
        assert_eq!(free.into_iter().collect::<Vec<_>>(), vec![1]);

        // The same guard on the *bound* variable is not free.
        let own = Stmt::for_(1, 4, Stmt::if_(Cond::lt_const(AffineExpr::loop_var(1), 2), wait()));
        let mut free = BTreeSet::new();
        free_cond_vars(&own, &mut Vec::new(), &mut free);
        assert!(free.is_empty());
    }

    #[test]
    fn env_values_of_free_vars_enter_the_key() {
        let guarded =
            Stmt::for_(0, 2, Stmt::if_(Cond::lt_const(AffineExpr::loop_var(1), 2), wait()));
        let mut lo = Env::new(2);
        lo.set(1, 0);
        let mut hi = Env::new(2);
        hi.set(1, 5);
        assert_ne!(subtree_key(1, &guarded, &lo), subtree_key(1, &guarded, &hi));
    }
}
