//! Whole-chip (4 core-group) data-parallel execution.
//!
//! The SW26010 packages four core groups; swDNN/swCaffe run convolutions
//! data-parallel across them by splitting the batch. The paper's TFLOPS
//! numbers are chip-level (3.06 TFLOPS peak = 4 × 742.4 GFLOPS single
//! precision). This module models that deployment: the batch is split into
//! four shards, each shard's operator is tuned once (shards are
//! identical), and chip time is the slowest shard — each CG has its own
//! DMA engine and memory controller, so shards do not contend.

use std::collections::HashMap;

use sw26010::{Cycles, MachineConfig};
use swtensor::ConvShape;

use crate::scheduler::{Operator, Scheduler};
use crate::telemetry::SpanKind;
use crate::tuner::{model_tune_opts, TuneOptions};

/// Number of core groups on the chip.
pub const N_CG: usize = 4;

/// Result of a chip-level data-parallel run.
#[derive(Debug, Clone, Copy)]
pub struct ChipRun {
    /// Batch shard sizes per CG (sums to the full batch).
    pub shards: [usize; N_CG],
    /// Chip time = the slowest shard's simulated cycles.
    pub cycles: Cycles,
    /// Aggregate FLOPs across all shards.
    pub flops: u64,
}

impl ChipRun {
    /// Aggregate chip throughput in GFLOPS.
    pub fn gflops(&self, cfg: &MachineConfig) -> f64 {
        sw26010::clock::gflops(self.flops, self.cycles, cfg.clock_ghz)
    }

    /// Fraction of the 4-CG peak.
    pub fn efficiency(&self, cfg: &MachineConfig) -> f64 {
        self.gflops(cfg) / (N_CG as f64 * cfg.peak_flops() / 1e9)
    }
}

/// Split `batch` as evenly as possible across the four CGs.
pub fn split_batch(batch: usize) -> [usize; N_CG] {
    let base = batch / N_CG;
    let extra = batch % N_CG;
    let mut out = [base; N_CG];
    for s in out.iter_mut().take(extra) {
        *s += 1;
    }
    out
}

/// Tune and run a convolution data-parallel across the chip. The operator
/// for each distinct shard size is tuned independently (at most two
/// distinct sizes exist); chip time is the slowest shard.
pub fn run_conv_data_parallel(
    cfg: &MachineConfig,
    shape: &ConvShape,
    build: impl Fn(ConvShape) -> Box<dyn Operator>,
) -> Option<ChipRun> {
    run_conv_data_parallel_jobs(cfg, shape, build, 1)
}

/// [`run_conv_data_parallel`] with each shard's candidate evaluation fanned
/// over `jobs` tuner worker threads.
pub fn run_conv_data_parallel_jobs(
    cfg: &MachineConfig,
    shape: &ConvShape,
    build: impl Fn(ConvShape) -> Box<dyn Operator>,
    jobs: usize,
) -> Option<ChipRun> {
    run_conv_data_parallel_opts(cfg, shape, build, &TuneOptions::with_jobs(jobs))
}

/// [`run_conv_data_parallel`] with full [`TuneOptions`]. When a telemetry
/// recorder is attached, each distinct shard size tunes under its own
/// operator span (`conv shard b=<n>`), so a chip run shows up as one span
/// group per shard in the timeline.
pub fn run_conv_data_parallel_opts(
    cfg: &MachineConfig,
    shape: &ConvShape,
    build: impl Fn(ConvShape) -> Box<dyn Operator>,
    opts: &TuneOptions,
) -> Option<ChipRun> {
    let shards = split_batch(shape.b);
    let mut worst = Cycles::ZERO;
    let mut flops = 0u64;
    let mut cache: HashMap<usize, (Cycles, u64)> = HashMap::new();
    for &b in shards.iter().filter(|&&b| b > 0) {
        let (cycles, f) = match cache.get(&b) {
            Some(&hit) => hit,
            None => {
                let shard_shape = ConvShape { b, ..*shape };
                let op = build(shard_shape);
                let sched = Scheduler::new(cfg.clone());
                let cands = sched.enumerate(op.as_ref());
                let mut shard_opts = opts.clone();
                let span = opts.telemetry.as_ref().map(|t| {
                    let id = t.open(SpanKind::Operator, format!("conv shard b={b}"));
                    shard_opts.telemetry = Some(t.child_of(id));
                    (t.clone(), id)
                });
                let outcome = model_tune_opts(cfg, &cands, &shard_opts);
                if let Some((t, id)) = span {
                    t.close(id);
                }
                let outcome = outcome?;
                cache.insert(b, (outcome.cycles, op.flops()));
                (outcome.cycles, op.flops())
            }
        };
        worst = worst.max(cycles);
        flops += f;
    }
    Some(ChipRun { shards, cycles: worst, flops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ImplicitConvOp;
    use crate::tuner::model_tune;

    #[test]
    fn split_is_even_and_complete() {
        assert_eq!(split_batch(128), [32; 4]);
        assert_eq!(split_batch(6), [2, 2, 1, 1]);
        assert_eq!(split_batch(1), [1, 0, 0, 0]);
        for b in 1..40 {
            assert_eq!(split_batch(b).iter().sum::<usize>(), b);
        }
    }

    #[test]
    fn chip_run_aggregates_four_ways() {
        let cfg = MachineConfig::default();
        let shape = ConvShape::square(32, 16, 16, 8);
        let chip = run_conv_data_parallel(&cfg, &shape, |s| {
            Box::new(ImplicitConvOp::new(s))
        })
        .expect("tunable");
        assert_eq!(chip.shards, [8; 4]);
        assert_eq!(chip.flops, shape.flops());
        // One CG running the same shard must achieve ≈ chip/4 throughput.
        let op = ImplicitConvOp::new(ConvShape { b: 8, ..shape });
        let sched = Scheduler::new(cfg.clone());
        let cands = sched.enumerate(&op);
        let single = model_tune(&cfg, &cands).unwrap();
        assert_eq!(chip.cycles, single.cycles);
        let chip_g = chip.gflops(&cfg);
        let single_g =
            sw26010::clock::gflops(op.flops(), single.cycles, cfg.clock_ghz);
        assert!((chip_g / single_g - 4.0).abs() < 1e-9);
        assert!(chip.efficiency(&cfg) > 0.0 && chip.efficiency(&cfg) <= 1.0);
    }

    #[test]
    fn uneven_batch_takes_slowest_shard() {
        let cfg = MachineConfig::default();
        let shape = ConvShape::square(5, 16, 16, 8); // shards 2,1,1,1
        let chip = run_conv_data_parallel(&cfg, &shape, |s| {
            Box::new(crate::ops::ExplicitConvOp::new(s))
        })
        .expect("tunable");
        assert_eq!(chip.shards, [2, 1, 1, 1]);
        // The 2-batch shard bounds the chip time.
        let op = crate::ops::ExplicitConvOp::new(ConvShape { b: 2, ..shape });
        let sched = Scheduler::new(cfg.clone());
        let big = model_tune(&cfg, &sched.enumerate(&op)).unwrap();
        assert_eq!(chip.cycles, big.cycles);
    }
}
