//! DMA-wall passes: strided-transaction coalescing and register-broadcast
//! tiling.
//!
//! **Coalescing** (`coalesce_gets`): a strided tile get costs the DMA engine
//! one DRAM transaction per short row — a `rows × cols` tile with a large
//! `row_stride` streams at a fraction of peak. When the source buffer is
//! read-only within its top-level statement, the whole sequence of tiles the
//! enclosing loop nest will fetch can be gathered *once* into a packed
//! staging buffer laid out `[iteration][cpe][block]`, so the steady-state
//! get becomes a single fully-contiguous (transaction-aligned) block per CPE
//! per step. The gather itself is a bandwidth-costed [`TransformKind::PackTiles`]
//! executed before the nest; the cost model weighs it against the saved
//! per-step transaction overhead.
//!
//! **Broadcast tiling** (`tag_broadcast`): when the 8 per-CPE gets of a mesh
//! row (or column) are contiguous in memory — the `Cid` (resp. `Rid`)
//! coefficient of the offset equals the block length — one leader CPE per
//! row/column can fetch the whole line and scatter it over the
//! register-communication bus, so only 8 of 64 CPEs touch DRAM. The pass
//! tags eligible `DMA_CPE` nodes with a [`BcastBus`] direction; the machine
//! prices the leader transfer plus the regcomm scatter.

use std::collections::HashSet;

use sw26010::regcomm::BcastBus;
use sw26010::DmaDirection;
use swatop_ir::{
    AVar, AffineExpr, DmaCg, DmaCpe, MemRole, Program, Stmt, TransformKind, TransformOp,
};

/// Upper bound on a packed staging buffer, in elements (16 MiB of f32):
/// nests larger than this keep their strided gets.
const MAX_PACKED_ELEMS: usize = 1 << 22;

/// Rewrite eligible strided `DmaCg` gets into packed contiguous `DmaCpe`
/// gets fed by a `PackTiles` staging transform.
pub fn coalesce_gets(mut program: Program) -> Program {
    let body = std::mem::replace(&mut program.body, Stmt::Nop);
    let tops: Vec<Stmt> = match body {
        Stmt::Seq(ss) => ss,
        Stmt::Nop => Vec::new(),
        other => vec![other],
    };
    let mut out = Vec::new();
    for top in tops {
        let written = written_bufs(&top);
        let mut packs: Vec<Stmt> = Vec::new();
        let mut loops: Vec<(usize, usize)> = Vec::new();
        let new_top =
            rewrite(&top, &mut loops, false, &written, &mut program, &mut packs);
        // Staging gathers run before the nest that consumes them; the
        // source is read-only within this top-level statement, so the
        // ordering with respect to earlier producers is preserved.
        out.extend(packs);
        out.push(new_top);
    }
    program.body = Stmt::seq(out);
    program
}

fn rewrite(
    s: &Stmt,
    loops: &mut Vec<(usize, usize)>,
    in_if: bool,
    written: &HashSet<usize>,
    program: &mut Program,
    packs: &mut Vec<Stmt>,
) -> Stmt {
    match s {
        Stmt::Seq(ss) => Stmt::Seq(
            ss.iter().map(|x| rewrite(x, loops, in_if, written, program, packs)).collect(),
        ),
        Stmt::For { var, extent, body } => {
            loops.push((*var, *extent));
            let body = rewrite(body, loops, in_if, written, program, packs);
            loops.pop();
            Stmt::For { var: *var, extent: *extent, body: Box::new(body) }
        }
        // Guarded gets are skipped: a boundary guard may suppress fetches
        // whose source addresses the gather would still enumerate.
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(rewrite(then_, loops, true, written, program, packs)),
            else_: else_
                .as_ref()
                .map(|e| Box::new(rewrite(e, loops, true, written, program, packs))),
        },
        Stmt::DmaCg(d) => match try_coalesce(d, loops, in_if, written, program) {
            Some((pack, cpe)) => {
                packs.push(pack);
                Stmt::DmaCpe(cpe)
            }
            None => s.clone(),
        },
        other => other.clone(),
    }
}

fn try_coalesce(
    d: &DmaCg,
    loops: &[(usize, usize)],
    in_if: bool,
    written: &HashSet<usize>,
    program: &mut Program,
) -> Option<(Stmt, DmaCpe)> {
    if in_if
        || d.direction != DmaDirection::MemToSpm
        || written.contains(&d.buf.0)
        || !d.rows.is_multiple_of(8)
        || !d.cols.is_multiple_of(8)
        // Already contiguous per CPE: nothing to coalesce.
        || d.row_stride == d.cols / 8
        || d.offset.uses_mesh()
        || d.offset.constant() < 0
    {
        return None;
    }
    // Every loop term of the tile origin must be a (non-negative-stride)
    // enclosing loop, so the gather can enumerate exactly the tiles the
    // nest will fetch.
    let mut iters: Vec<(usize, usize, i64)> = Vec::new(); // (var, extent, coeff)
    for &(av, coeff) in d.offset.terms() {
        let AVar::Loop(v) = av else { return None };
        if coeff < 0 {
            return None;
        }
        let &(_, extent) = loops.iter().find(|&&(lv, _)| lv == v)?;
        iters.push((v, extent, coeff));
    }
    // Order outermost-first to match the enclosing nest.
    iters.sort_by_key(|&(v, _, _)| loops.iter().position(|&(lv, _)| lv == v));
    let base = d.offset.constant();
    let span: i64 = iters.iter().map(|&(_, ext, c)| c * (ext as i64 - 1)).sum();
    let last = base + span + ((d.rows - 1) * d.row_stride + d.cols) as i64;
    if last > program.mem_bufs[d.buf.0].len as i64 {
        return None;
    }
    let n_iters: usize = iters.iter().map(|&(_, ext, _)| ext).product();
    let packed_len = n_iters.checked_mul(d.rows * d.cols)?;
    if packed_len > MAX_PACKED_ELEMS {
        return None;
    }

    let src_name = program.mem_bufs[d.buf.0].name.clone();
    let dst = program.mem_buf(
        format!("{}_packed{}", src_name, program.mem_bufs.len()),
        packed_len,
        MemRole::Temp,
    );
    let pack = Stmt::Transform(TransformOp { fused: false,
        kind: TransformKind::PackTiles {
            src: d.buf,
            dst,
            rows: d.rows,
            cols: d.cols,
            row_stride: d.row_stride,
            mesh_swap: d.mesh_swap,
            base,
            iters: iters.iter().map(|&(_, ext, c)| (ext, c)).collect(),
        },
    });

    // Packed layout [lin_iter][rid*8+cid][E]: the replacement get is one
    // contiguous block of E elements per CPE per step.
    let e = d.rows * d.cols / 64;
    let mut offset = AffineExpr::zero()
        .add_term(AVar::Rid, (8 * e) as i64)
        .add_term(AVar::Cid, e as i64);
    let mut suffix = 1i64;
    for &(v, ext, _) in iters.iter().rev() {
        offset = offset.add_term(AVar::Loop(v), suffix * (64 * e) as i64);
        suffix *= ext as i64;
    }
    let cpe = DmaCpe {
        buf: dst,
        offset,
        block: e,
        stride: e,
        n_blocks: 1,
        direction: d.direction,
        spm: d.spm.clone(),
        reply: d.reply,
        bcast: None,
        fused: false,
    };
    Some((pack, cpe))
}

/// Main-memory buffers written anywhere within `stmt` (DMA puts and
/// transform destinations).
fn written_bufs(stmt: &Stmt) -> HashSet<usize> {
    let mut out = HashSet::new();
    stmt.visit(&mut |s| match s {
        Stmt::DmaCg(d) if d.direction == DmaDirection::SpmToMem => {
            out.insert(d.buf.0);
        }
        Stmt::DmaCpe(d) if d.direction == DmaDirection::SpmToMem => {
            out.insert(d.buf.0);
        }
        Stmt::Transform(t) => {
            out.insert(transform_dst(&t.kind));
        }
        _ => {}
    });
    out
}

fn transform_dst(k: &TransformKind) -> usize {
    match k {
        TransformKind::Im2col { dst, .. }
        | TransformKind::PadImageNchw { dst, .. }
        | TransformKind::WinogradFilter { dst, .. }
        | TransformKind::WinogradInput { dst, .. }
        | TransformKind::WinogradOutput { dst, .. }
        | TransformKind::PackTensor { dst, .. }
        | TransformKind::RotateFilter { dst, .. }
        | TransformKind::PadSubmatrix { dst, .. }
        | TransformKind::UnpadSubmatrix { dst, .. }
        | TransformKind::PackTiles { dst, .. } => dst.0,
        TransformKind::ZeroBuf { buf } => buf.0,
    }
}

/// Tag broadcast-eligible gets with their register-communication bus.
///
/// A get is row-broadcastable when the 8 fetches of a mesh row are
/// contiguous (`offset`'s `Cid` coefficient equals `block`) and the leader's
/// merged `8·block` read does not overrun into the next stride period
/// (`n_blocks == 1` or `stride ≥ 8·block`); column-broadcast is the `Rid`
/// mirror. Guarded gets are left untouched — the scatter is a collective
/// over the full mesh and must not diverge.
pub fn tag_broadcast(stmt: &Stmt) -> Stmt {
    tag(stmt, false)
}

fn tag(s: &Stmt, in_if: bool) -> Stmt {
    match s {
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(|x| tag(x, in_if)).collect()),
        Stmt::For { var, extent, body } => {
            Stmt::For { var: *var, extent: *extent, body: Box::new(tag(body, in_if)) }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(tag(then_, true)),
            else_: else_.as_ref().map(|e| Box::new(tag(e, true))),
        },
        Stmt::DmaCpe(d)
            if !in_if && d.direction == DmaDirection::MemToSpm && d.bcast.is_none() =>
        {
            let layout_ok =
                d.block > 0 && (d.n_blocks == 1 || d.stride >= 8 * d.block);
            let bus = if layout_ok && d.offset.coeff(AVar::Cid) == d.block as i64 {
                Some(BcastBus::Row)
            } else if layout_ok && d.offset.coeff(AVar::Rid) == d.block as i64 {
                Some(BcastBus::Column)
            } else {
                None
            };
            match bus {
                Some(_) => Stmt::DmaCpe(DmaCpe { bcast: bus, ..d.clone() }),
                None => s.clone(),
            }
        }
        other => other.clone(),
    }
}

/// Batch fusion: mark every `DMA_CPE` get that directly follows another get
/// on the *same reply word* (no wait, compute or control flow in between)
/// as `fused` — its descriptors chain onto the engine batch its predecessor
/// opened, so the per-batch start-up latency is paid once per run of gets
/// instead of once per node. The first get of each run keeps `fused =
/// false` and opens the batch group.
///
/// Runs of back-to-back small gets are exactly what tile schedules emit
/// (the A/B operand pair of a GEMM step, or the unrolled per-tap fetches of
/// an SPM-resident convolution reduction); without fusion each pays the
/// full DRAM round-trip latency, which is what makes small-tile schedules
/// DMA-latency bound rather than bandwidth bound.
pub fn fuse_adjacent_gets(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Seq(ss) => {
            let mut out = Vec::with_capacity(ss.len());
            // Reply word of the immediately preceding get in this Seq, if
            // the run is still open.
            let mut open_run: Option<swatop_ir::ReplyId> = None;
            for s in ss {
                match s {
                    Stmt::DmaCpe(d) if d.direction == DmaDirection::MemToSpm => {
                        let fused = open_run == Some(d.reply);
                        open_run = Some(d.reply);
                        out.push(Stmt::DmaCpe(DmaCpe { fused, ..d.clone() }));
                    }
                    other => {
                        open_run = None;
                        out.push(fuse_adjacent_gets(other));
                    }
                }
            }
            Stmt::Seq(out)
        }
        Stmt::For { var, extent, body } => Stmt::For {
            var: *var,
            extent: *extent,
            body: Box::new(fuse_adjacent_gets(body)),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(fuse_adjacent_gets(then_)),
            else_: else_.as_ref().map(|e| Box::new(fuse_adjacent_gets(e))),
        },
        other => other.clone(),
    }
}

/// Mark runs of back-to-back bulk transforms for chain fusion: every
/// transform whose immediately preceding statement (in the same `Seq`) is
/// also a transform keeps the engine's block pipeline streaming and skips
/// the per-transform start-up latency. The first transform of a run stays
/// unfused and pays the ramp for the whole chain.
///
/// This is the transform-side twin of [`fuse_adjacent_gets`]: coalescing
/// emits its `PackTiles` staging gathers as one consecutive run before the
/// consuming nest (and operator lowerings emit their layout-packing setup
/// the same way), so without fusion a schedule with many small staging
/// packs pays one full DRAM round-trip per pack.
pub fn fuse_adjacent_transforms(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Seq(ss) => {
            let mut out = Vec::with_capacity(ss.len());
            let mut in_run = false;
            for s in ss {
                match s {
                    Stmt::Transform(t) => {
                        out.push(Stmt::Transform(TransformOp {
                            fused: in_run,
                            kind: t.kind.clone(),
                        }));
                        in_run = true;
                    }
                    other => {
                        in_run = false;
                        out.push(fuse_adjacent_transforms(other));
                    }
                }
            }
            Stmt::Seq(out)
        }
        Stmt::For { var, extent, body } => Stmt::For {
            var: *var,
            extent: *extent,
            body: Box::new(fuse_adjacent_transforms(body)),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(fuse_adjacent_transforms(then_)),
            else_: else_.as_ref().map(|e| Box::new(fuse_adjacent_transforms(e))),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swatop_ir::{MemBufId, ReplyId, SpmBufId, SpmSlot};

    fn strided_get(offset: AffineExpr) -> DmaCg {
        DmaCg {
            buf: MemBufId(0),
            offset,
            rows: 16,
            cols: 16,
            row_stride: 96,
            mesh_swap: false,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: ReplyId(0),
        }
    }

    fn host(body: Stmt) -> Program {
        let mut p = Program::new("t");
        p.mem_buf("A", 96 * 96, MemRole::Input);
        p.spm_buf("a", 4);
        p.body = body;
        p
    }

    #[test]
    fn strided_nest_get_is_coalesced() {
        let get = Stmt::DmaCg(strided_get(AffineExpr::loop_var(0).scale(16)));
        let body = Stmt::for_(
            0,
            4,
            Stmt::seq(vec![get, Stmt::DmaWait { reply: ReplyId(0), times: 1 }]),
        );
        let p = coalesce_gets(host(body));
        assert_eq!(p.body.count(|s| matches!(s, Stmt::DmaCg(_))), 0);
        assert_eq!(p.body.count(|s| matches!(s, Stmt::Transform(_))), 1);
        assert_eq!(p.mem_bufs.len(), 2);
        assert_eq!(p.mem_bufs[1].role, MemRole::Temp);
        // 4 iterations × 16×16 tile.
        assert_eq!(p.mem_bufs[1].len, 4 * 16 * 16);
        let mut seen = None;
        p.body.visit(&mut |s| {
            if let Stmt::DmaCpe(d) = s {
                seen = Some(d.clone());
            }
        });
        let d = seen.expect("rewritten get");
        let e = 16 * 16 / 64;
        assert_eq!((d.block, d.stride, d.n_blocks), (e, e, 1));
        assert_eq!(d.offset.coeff(AVar::Rid), (8 * e) as i64);
        assert_eq!(d.offset.coeff(AVar::Cid), e as i64);
        assert_eq!(d.offset.coeff(AVar::Loop(0)), (64 * e) as i64);
    }

    #[test]
    fn accumulator_and_guarded_gets_are_left_alone() {
        // The buffer is also written (C-style accumulator): no coalesce.
        let get = Stmt::DmaCg(strided_get(AffineExpr::loop_var(0).scale(16)));
        let mut put = strided_get(AffineExpr::loop_var(0).scale(16));
        put.direction = DmaDirection::SpmToMem;
        let body = Stmt::for_(0, 4, Stmt::seq(vec![get.clone(), Stmt::DmaCg(put)]));
        let p = coalesce_gets(host(body));
        assert_eq!(p.body.count(|s| matches!(s, Stmt::DmaCg(_))), 2);

        // Guarded get: no coalesce.
        let guarded = Stmt::for_(
            0,
            4,
            Stmt::if_(swatop_ir::Cond::lt_const(AffineExpr::loop_var(0), 3), get),
        );
        let p = coalesce_gets(host(guarded));
        assert_eq!(p.body.count(|s| matches!(s, Stmt::DmaCg(_))), 1);
    }

    #[test]
    fn contiguous_get_is_not_coalesced() {
        let mut d = strided_get(AffineExpr::zero());
        d.row_stride = d.cols / 8; // already per-CPE contiguous
        let p = coalesce_gets(host(Stmt::DmaCg(d)));
        assert_eq!(p.body.count(|s| matches!(s, Stmt::DmaCg(_))), 1);
        assert_eq!(p.mem_bufs.len(), 1);
    }

    #[test]
    fn broadcast_tags_row_and_column_contiguous_gets() {
        let mk = |rid_c: i64, cid_c: i64| {
            Stmt::DmaCpe(DmaCpe {
                buf: MemBufId(0),
                offset: AffineExpr::zero()
                    .add_term(AVar::Rid, rid_c)
                    .add_term(AVar::Cid, cid_c),
                block: 4,
                stride: 4,
                n_blocks: 1,
                direction: DmaDirection::MemToSpm,
                spm: SpmSlot::Single(SpmBufId(0)),
                reply: ReplyId(0),
                bcast: None,
                fused: false,
            })
        };
        // Cid coefficient == block → row bus.
        let t = tag_broadcast(&mk(32, 4));
        if let Stmt::DmaCpe(d) = &t {
            assert_eq!(d.bcast, Some(BcastBus::Row));
        } else {
            panic!("{t:?}");
        }
        // Rid coefficient == block → column bus.
        let t = tag_broadcast(&mk(4, 32));
        if let Stmt::DmaCpe(d) = &t {
            assert_eq!(d.bcast, Some(BcastBus::Column));
        } else {
            panic!("{t:?}");
        }
        // Neither axis contiguous → untouched.
        let t = tag_broadcast(&mk(32, 8));
        if let Stmt::DmaCpe(d) = &t {
            assert_eq!(d.bcast, None);
        } else {
            panic!("{t:?}");
        }
        // Guarded → untouched even when eligible.
        let g = Stmt::if_(
            swatop_ir::Cond::lt_const(AffineExpr::loop_var(0), 3),
            mk(32, 4),
        );
        let t = tag_broadcast(&g);
        assert_eq!(t.count(|s| matches!(s, Stmt::DmaCpe(d) if d.bcast.is_some())), 0);
    }

    #[test]
    fn adjacent_gets_fuse_into_batch_runs() {
        let get = |reply: usize| {
            Stmt::DmaCpe(DmaCpe {
                buf: MemBufId(0),
                offset: AffineExpr::zero(),
                block: 4,
                stride: 4,
                n_blocks: 1,
                direction: DmaDirection::MemToSpm,
                spm: SpmSlot::Single(SpmBufId(0)),
                reply: ReplyId(reply),
                bcast: None,
                fused: false,
            })
        };
        let body = Stmt::seq(vec![
            get(0),
            get(0),
            get(0),
            Stmt::DmaWait { reply: ReplyId(0), times: 3 },
            get(0), // run broken by the wait: first of a new run
            get(1), // different reply word: new run
            get(1),
        ]);
        let fused = fuse_adjacent_gets(&body);
        let mut flags = Vec::new();
        fused.visit(&mut |s| {
            if let Stmt::DmaCpe(d) = s {
                flags.push(d.fused);
            }
        });
        assert_eq!(flags, vec![false, true, true, false, false, true]);

        // Runs never span Seq boundaries: a loop body's leading get is
        // re-issued each iteration after the iteration's trailing wait.
        let looped = Stmt::for_(0, 4, Stmt::seq(vec![get(0), get(0)]));
        let fused = fuse_adjacent_gets(&looped);
        let mut flags = Vec::new();
        fused.visit(&mut |s| {
            if let Stmt::DmaCpe(d) = s {
                flags.push(d.fused);
            }
        });
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn puts_break_get_fusion_runs() {
        let mk = |direction| {
            Stmt::DmaCpe(DmaCpe {
                buf: MemBufId(0),
                offset: AffineExpr::zero(),
                block: 4,
                stride: 4,
                n_blocks: 1,
                direction,
                spm: SpmSlot::Single(SpmBufId(0)),
                reply: ReplyId(0),
                bcast: None,
                fused: false,
            })
        };
        let body = Stmt::seq(vec![
            mk(DmaDirection::MemToSpm),
            mk(DmaDirection::SpmToMem),
            mk(DmaDirection::MemToSpm),
        ]);
        let fused = fuse_adjacent_gets(&body);
        let mut flags = Vec::new();
        fused.visit(&mut |s| {
            if let Stmt::DmaCpe(d) = s {
                flags.push((d.direction, d.fused));
            }
        });
        // The put is never marked and severs the run around it.
        assert_eq!(
            flags,
            vec![
                (DmaDirection::MemToSpm, false),
                (DmaDirection::SpmToMem, false),
                (DmaDirection::MemToSpm, false),
            ]
        );
    }

    #[test]
    fn adjacent_transforms_fuse_into_chains() {
        let tf = || {
            Stmt::Transform(swatop_ir::TransformOp {
                fused: false,
                kind: swatop_ir::TransformKind::ZeroBuf { buf: MemBufId(0) },
            })
        };
        let body = Stmt::seq(vec![
            tf(),
            tf(),
            tf(),
            Stmt::DmaWait { reply: ReplyId(0), times: 1 },
            tf(), // run broken by the intervening statement
        ]);
        let fused = fuse_adjacent_transforms(&body);
        let mut flags = Vec::new();
        fused.visit(&mut |s| {
            if let Stmt::Transform(t) = s {
                flags.push(t.fused);
            }
        });
        assert_eq!(flags, vec![false, true, true, false]);
    }

    #[test]
    fn multiblock_broadcast_requires_stride_room() {
        let mk = |stride: usize| {
            Stmt::DmaCpe(DmaCpe {
                buf: MemBufId(0),
                offset: AffineExpr::zero().add_term(AVar::Cid, 4).add_term(AVar::Rid, 256),
                block: 4,
                stride,
                n_blocks: 2,
                direction: DmaDirection::MemToSpm,
                spm: SpmSlot::Single(SpmBufId(0)),
                reply: ReplyId(0),
                bcast: None,
                fused: false,
            })
        };
        let t = tag_broadcast(&mk(64)); // 64 ≥ 8·4
        assert_eq!(t.count(|s| matches!(s, Stmt::DmaCpe(d) if d.bcast.is_some())), 1);
        let t = tag_broadcast(&mk(16)); // 16 < 32: leader blocks would overlap
        assert_eq!(t.count(|s| matches!(s, Stmt::DmaCpe(d) if d.bcast.is_some())), 0);
    }
}
