//! Hiding memory access latency: automatic software prefetching
//! (paper Sec. 4.5.2).
//!
//! The pass finds the steady-state loop nest — a perfect `for` nest whose
//! body starts with a group of `DMA_CPE` *get* nodes and their wait — and
//! rewrites it to double buffering:
//!
//! * every fetched SPM buffer gains a twin; operands select between the two
//!   by the parity of the **linearised iteration index** (an affine
//!   expression over the nest variables);
//! * the gets for iteration `I+1` are issued *before* the wait for
//!   iteration `I`, guarded by the **next-iteration inference** chain: the
//!   nested if-then-else over the enclosing loop variables that the paper
//!   describes — branch `j` fires when loop `j` can advance and all deeper
//!   loops are exhausted, and re-issues the gets with `v_j := v_j + 1`,
//!   `v_l := 0 (l > j)`;
//! * a prologue issues the gets for iteration 0 ahead of the nest.
//!
//! Because the DMA engine completes FIFO and the reply word consumes
//! completions in issue order, the original reply word still pairs each
//! wait with the right transfer.

use sw26010::DmaDirection;
use swatop_ir::transform::{build_nest, perfect_nest};
use swatop_ir::{
    AffineExpr, Cond, DmaCpe, MatDesc, Program, SpmBufId, SpmSlot, Stmt, VarId,
};

/// Apply double buffering to every matching steady-state nest in the
/// program. Returns the program unchanged where the pattern does not apply.
pub fn apply_double_buffering(mut program: Program) -> Program {
    let body = std::mem::replace(&mut program.body, Stmt::Nop);
    // Twin buffers are shared across all transformed nests (they run
    // sequentially), keeping the coalesced SPM region small.
    let mut twins: Vec<(SpmBufId, SpmBufId)> = Vec::new();
    program.body = rewrite(body, &mut program, &mut twins);
    program
}

fn rewrite(stmt: Stmt, program: &mut Program, twins: &mut Vec<(SpmBufId, SpmBufId)>) -> Stmt {
    // Try to transform the perfect nest rooted here.
    if matches!(stmt, Stmt::For { .. }) {
        if let Some(transformed) = try_transform_nest(&stmt, program, twins) {
            return transformed;
        }
    }
    match stmt {
        Stmt::Seq(ss) => {
            Stmt::Seq(ss.into_iter().map(|s| rewrite(s, program, twins)).collect())
        }
        Stmt::For { var, extent, body } => {
            Stmt::For { var, extent, body: Box::new(rewrite(*body, program, twins)) }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond,
            then_: Box::new(rewrite(*then_, program, twins)),
            else_: else_.map(|e| Box::new(rewrite(*e, program, twins))),
        },
        other => other,
    }
}

/// The linearised iteration index of a nest: `Σ vᵢ · Π_{j>i} Eⱼ`.
pub fn linear_index(loops: &[(VarId, usize)]) -> AffineExpr {
    let mut expr = AffineExpr::zero();
    let mut scale: i64 = 1;
    for &(var, extent) in loops.iter().rev() {
        expr = expr.add_term(swatop_ir::AVar::Loop(var), scale);
        scale *= extent as i64;
    }
    expr
}

/// The next-iteration inference chain: for each loop depth `j` (innermost
/// first), the branch condition "loop j advances" and the substitution
/// applied to the prefetched address expressions.
pub fn next_index_branches(
    loops: &[(VarId, usize)],
) -> Vec<(Cond, Vec<(VarId, AffineExpr)>)> {
    let k = loops.len();
    let mut branches = Vec::with_capacity(k);
    for j in (0..k).rev() {
        let (vj, ej) = loops[j];
        let mut cond = Cond::lt_const(AffineExpr::loop_var(vj).add_const(1), ej as i64);
        for &(vl, el) in &loops[j + 1..] {
            cond = cond.and(Cond::Eq(AffineExpr::loop_var(vl), AffineExpr::konst(el as i64 - 1)));
        }
        let mut subst: Vec<(VarId, AffineExpr)> =
            vec![(vj, AffineExpr::loop_var(vj).add_const(1))];
        for &(vl, _) in &loops[j + 1..] {
            subst.push((vl, AffineExpr::zero()));
        }
        branches.push((cond, subst));
    }
    branches
}

fn try_transform_nest(
    stmt: &Stmt,
    program: &mut Program,
    twins: &mut Vec<(SpmBufId, SpmBufId)>,
) -> Option<Stmt> {
    let (loops, body) = perfect_nest(stmt);
    if loops.is_empty() {
        return None;
    }
    // A single-iteration nest has nothing to pipeline: the prologue would
    // be the whole loop.
    if loops.iter().map(|(_, e)| e).product::<usize>() <= 1 {
        return None;
    }
    let items: Vec<Stmt> = match body {
        Stmt::Seq(ss) => ss,
        other => vec![other],
    };
    // Leading run of Single-slot gets.
    let mut gets: Vec<DmaCpe> = Vec::new();
    let mut i = 0;
    while i < items.len() {
        match &items[i] {
            Stmt::DmaCpe(d)
                if d.direction == DmaDirection::MemToSpm
                    && matches!(d.spm, SpmSlot::Single(_)) =>
            {
                gets.push(d.clone());
                i += 1;
            }
            _ => break,
        }
    }
    if gets.is_empty() {
        return None;
    }
    // The wait must match the gets' shared reply word.
    let Stmt::DmaWait { reply, times } = items.get(i)? else {
        return None;
    };
    let reply = *reply;
    if *times != gets.len() || gets.iter().any(|g| g.reply != reply) {
        return None;
    }
    // At least one get must vary with the nest (else hoisting applies).
    let nest_vars: Vec<VarId> = loops.iter().map(|(v, _)| *v).collect();
    if !gets.iter().any(|g| nest_vars.iter().any(|v| g.offset.depends_on(*v))) {
        return None;
    }
    let rest: Vec<Stmt> = items[i + 1..].to_vec();
    // The rest must not issue on the same reply word (FIFO pairing).
    let rest_seq = Stmt::seq(rest.clone());
    let mut reuses_reply = false;
    rest_seq.visit(&mut |s| {
        if let Stmt::DmaCpe(d) = s {
            if d.reply == reply {
                reuses_reply = true;
            }
        }
    });
    if reuses_reply {
        return None;
    }
    // Inner steady-state nests (e.g. the reduction loops of a convolution
    // tile) are double-buffered on their own, with their own linearised
    // selectors — prefetching is applied at *every* level it matches.
    let rest: Vec<Stmt> = rest.into_iter().map(|s| rewrite(s, program, twins)).collect();

    // Twin buffers (shared program-wide per original buffer).
    let lin = linear_index(&loops);
    let mut local: Vec<(SpmBufId, SpmBufId)> = Vec::new();
    for g in &gets {
        let SpmSlot::Single(b) = g.spm else { unreachable!() };
        if local.iter().any(|(orig, _)| *orig == b) {
            continue;
        }
        let tb = match twins.iter().find(|(o, _)| *o == b) {
            Some((_, t)) => *t,
            None => {
                let len = program.spm_bufs[b.0].len;
                let name = format!("{}_dbl", program.spm_bufs[b.0].name);
                let tb = program.spm_buf(name, len);
                twins.push((b, tb));
                tb
            }
        };
        local.push((b, tb));
    }
    let twin = local;
    let twin_of = |b: SpmBufId| twin.iter().find(|(o, _)| *o == b).map(|(_, t)| *t);

    let dbl_slot = |b: SpmBufId, sel: AffineExpr| SpmSlot::Double {
        even: b,
        odd: twin_of(b).expect("twin exists"),
        sel,
    };

    // Prologue: gets for iteration 0 (all nest vars = 0) → even buffers.
    let mut prologue = Vec::new();
    for g in &gets {
        let mut offset = g.offset.clone();
        for &v in &nest_vars {
            offset = offset.subst(v, &AffineExpr::zero());
        }
        let SpmSlot::Single(b) = g.spm else { unreachable!() };
        prologue.push(Stmt::DmaCpe(DmaCpe {
            offset,
            spm: dbl_slot(b, AffineExpr::zero()),
            ..g.clone()
        }));
    }

    // Next-iteration prefetch chain.
    let sel_next = lin.add_const(1);
    let mut chain: Option<Stmt> = None;
    for (cond, subst) in next_index_branches(&loops).into_iter().rev() {
        let mut issue = Vec::new();
        for g in &gets {
            let mut offset = g.offset.clone();
            for (v, e) in &subst {
                offset = offset.subst(*v, e);
            }
            // Note: the parity selector stays `lin + 1` in terms of the
            // *current* iteration variables — substituting the odometer
            // step into it would double-advance the parity.
            let SpmSlot::Single(b) = g.spm else { unreachable!() };
            issue.push(Stmt::DmaCpe(DmaCpe {
                offset,
                spm: dbl_slot(b, sel_next.clone()),
                ..g.clone()
            }));
        }
        let branch = Stmt::seq(issue);
        chain = Some(match chain {
            None => Stmt::if_(cond, branch),
            Some(tail) => Stmt::if_else(cond, branch, tail),
        });
    }

    // Retarget the steady-state body through the parity selector.
    let new_rest: Vec<Stmt> =
        rest.iter().map(|s| retarget(s, &twin, &lin)).collect();

    let mut new_body = Vec::new();
    if let Some(c) = chain {
        new_body.push(c);
    }
    new_body.push(Stmt::DmaWait { reply, times: gets.len() });
    new_body.extend(new_rest);

    let nest = build_nest(&loops, Stmt::seq(new_body));
    let mut out = prologue;
    out.push(nest);
    Some(Stmt::seq(out))
}

/// Replace `Single(b)` slots by `Double{b, twin, sel}` for mapped buffers.
fn retarget(stmt: &Stmt, twin: &[(SpmBufId, SpmBufId)], sel: &AffineExpr) -> Stmt {
    let map_slot = |s: &SpmSlot| -> SpmSlot {
        match s {
            SpmSlot::Single(b) => {
                if let Some((_, t)) = twin.iter().find(|(o, _)| o == b) {
                    SpmSlot::Double { even: *b, odd: *t, sel: sel.clone() }
                } else {
                    s.clone()
                }
            }
            other => other.clone(),
        }
    };
    let map_mat = |m: &MatDesc| MatDesc { slot: map_slot(&m.slot), ..m.clone() };
    match stmt {
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(|s| retarget(s, twin, sel)).collect()),
        Stmt::For { var, extent, body } => Stmt::For {
            var: *var,
            extent: *extent,
            body: Box::new(retarget(body, twin, sel)),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(retarget(then_, twin, sel)),
            else_: else_.as_ref().map(|e| Box::new(retarget(e, twin, sel))),
        },
        Stmt::DmaCpe(d) => Stmt::DmaCpe(DmaCpe { spm: map_slot(&d.spm), ..d.clone() }),
        Stmt::Gemm(g) => Stmt::Gemm(swatop_ir::GemmOp {
            a: map_mat(&g.a),
            b: map_mat(&g.b),
            c: map_mat(&g.c),
            ..g.clone()
        }),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swatop_ir::{AVar, MemRole};

    fn make_program(extents: &[usize]) -> Program {
        // for v0 in E0 { for v1 in E1 { get A[v…]; wait; gemm-ish put } }
        let mut p = Program::new("pf");
        let vars: Vec<usize> =
            extents.iter().enumerate().map(|(i, _)| p.fresh_var(format!("v{i}"))).collect();
        let src = p.mem_buf("src", 1 << 20, MemRole::Input);
        let dst = p.mem_buf("dst", 1 << 20, MemRole::Output);
        let sa = p.spm_buf("a", 64);
        let sc = p.spm_buf("c", 64);
        let r_get = p.fresh_reply();
        let r_put = p.fresh_reply();
        let mut offset = AffineExpr::zero().add_term(AVar::Rid, 8).add_term(AVar::Cid, 1);
        let mut scale = 64i64;
        for &v in vars.iter().rev() {
            offset = offset.add_term(AVar::Loop(v), scale);
            scale *= 64;
        }
        let get = Stmt::DmaCpe(DmaCpe {
            buf: src,
            offset: offset.clone(),
            block: 64,
            stride: 64,
            n_blocks: 1,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Single(sa),
            reply: r_get,
            bcast: None,
            fused: false,
        });
        let put = Stmt::DmaCpe(DmaCpe {
            buf: dst,
            offset,
            block: 64,
            stride: 64,
            n_blocks: 1,
            direction: DmaDirection::SpmToMem,
            spm: SpmSlot::Single(sc),
            reply: r_put,
            bcast: None,
            fused: false,
        });
        let body = Stmt::seq(vec![
            get,
            Stmt::DmaWait { reply: r_get, times: 1 },
            put,
            Stmt::DmaWait { reply: r_put, times: 1 },
        ]);
        let loops: Vec<(usize, usize)> =
            vars.into_iter().zip(extents.iter().copied()).collect();
        p.body = build_nest(&loops, body);
        p
    }

    #[test]
    fn linear_index_is_row_major() {
        let lin = linear_index(&[(0, 4), (1, 5)]);
        let mut env = swatop_ir::Env::new(2);
        env.set(0, 2);
        env.set(1, 3);
        assert_eq!(lin.eval(&env, 0, 0), 13);
    }

    #[test]
    fn branch_conditions_are_an_odometer() {
        let loops = [(0usize, 3usize), (1, 4)];
        let branches = next_index_branches(&loops);
        assert_eq!(branches.len(), 2);
        let mut env = swatop_ir::Env::new(2);
        // Middle of inner loop: inner branch fires.
        env.set(0, 1);
        env.set(1, 2);
        assert!(branches[0].0.eval(&env, 0, 0));
        // End of inner loop: outer branch fires instead.
        env.set(1, 3);
        assert!(!branches[0].0.eval(&env, 0, 0));
        assert!(branches[1].0.eval(&env, 0, 0));
        // Very last iteration: no branch fires.
        env.set(0, 2);
        env.set(1, 3);
        assert!(!branches[0].0.eval(&env, 0, 0));
        assert!(!branches[1].0.eval(&env, 0, 0));
    }

    #[test]
    fn transform_produces_double_slots_and_prologue() {
        let p = make_program(&[4]);
        let spm_before = p.spm_bufs.len();
        let out = apply_double_buffering(p);
        assert_eq!(out.spm_bufs.len(), spm_before + 1, "one twin buffer");
        // A prologue DMA before the loop.
        if let Stmt::Seq(ss) = &out.body {
            assert!(matches!(ss[0], Stmt::DmaCpe(_)), "prologue get");
            assert!(matches!(ss[1], Stmt::For { .. }));
        } else {
            panic!("expected Seq(prologue, loop), got {:?}", out.body);
        }
        // Gets inside the loop are guarded and double-buffered.
        let mut guarded_dma = 0;
        out.body.visit(&mut |s| {
            if let Stmt::If { then_, .. } = s {
                then_.visit(&mut |t| {
                    if let Stmt::DmaCpe(d) = t {
                        if matches!(d.spm, SpmSlot::Double { .. })
                            && d.direction == DmaDirection::MemToSpm
                        {
                            guarded_dma += 1;
                        }
                    }
                });
            }
        });
        assert!(guarded_dma >= 1, "prefetch get must be guarded");
    }

    #[test]
    fn two_level_nest_gets_if_else_chain() {
        let p = make_program(&[3, 4]);
        let out = apply_double_buffering(p);
        // The odometer must contain an If with an else branch.
        let mut has_else = false;
        out.body.visit(&mut |s| {
            if let Stmt::If { else_: Some(_), .. } = s {
                has_else = true;
            }
        });
        assert!(has_else, "expected nested if-then-else next-index chain");
    }

    #[test]
    fn nest_without_gets_is_untouched() {
        let mut p = Program::new("none");
        let v = p.fresh_var("i");
        let r = p.fresh_reply();
        p.body = Stmt::for_(v, 4, Stmt::DmaWait { reply: r, times: 0 });
        let before = p.body.clone();
        let out = apply_double_buffering(p);
        assert_eq!(out.body, before);
    }

    #[test]
    fn invariant_only_gets_are_skipped() {
        // A get that ignores the loop variable should be hoisted, not
        // double-buffered.
        let mut p = Program::new("inv");
        let v = p.fresh_var("i");
        let src = p.mem_buf("src", 1024, MemRole::Input);
        let s = p.spm_buf("s", 16);
        let r = p.fresh_reply();
        let get = Stmt::DmaCpe(DmaCpe {
            buf: src,
            offset: AffineExpr::konst(0),
            block: 16,
            stride: 16,
            n_blocks: 1,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Single(s),
            reply: r,
            bcast: None,
            fused: false,
        });
        p.body = Stmt::for_(v, 4, Stmt::seq(vec![get, Stmt::DmaWait { reply: r, times: 1 }]));
        let before = p.body.clone();
        let out = apply_double_buffering(p);
        assert_eq!(out.body, before);
    }
}
