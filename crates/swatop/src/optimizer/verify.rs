//! Static legality checking of lowered schedules (the schedule verifier).
//!
//! The DMA-wall passes (double buffering, get-batch fusion, residency,
//! broadcast tiling) are exactly the transformations that miscompile
//! *silently*: a ping/pong slot hazard or a mis-fused chain produces wrong
//! tensors while the cost model happily reports a speedup. This module
//! walks a planned [`Executable`] — a concrete dry run that mirrors the
//! interpreter's dynamic order (loops unrolled over their known extents,
//! conditions evaluated at mesh origin, no data, no machine) — and rejects
//! hazard classes before any execution:
//!
//! * **reply discipline** — a `DmaWait` consuming more completions than are
//!   outstanding (reply underflow), and transfers still un-waited when the
//!   program ends (data may not have landed / a put may not have drained);
//! * **fused-chain invariants** — a `fused` get must ride the engine batch
//!   opened by the *immediately preceding* DMA on the same reply word (that
//!   is what makes "startup waived exactly once per run" sound); a `fused`
//!   transform must directly follow a transform;
//! * **ping/pong hazards** — reading an SPM buffer whose fill is still in
//!   flight (use-before-reply: the classic swapped-parity bug), overwriting
//!   a buffer an un-waited put is still sourcing from (residency lifetime
//!   violation), and double-filling a buffer already being filled;
//! * **slot soundness** — `SpmSlot::Double` halves must be distinct buffers
//!   (aliasing), every transfer must fit its destination buffer *and* the
//!   scratch pad under both parities, and all buffer / reply references must
//!   be declared.
//!
//! The walk costs about as much as one cost-only interpretation, so it runs
//! on the winner-validation path (see `swatop::ops::validate_candidate`),
//! not per enumerated candidate.

use std::collections::VecDeque;
use std::fmt;

use sw26010::{DmaDirection, MachineConfig};
use swatop_ir::{Env, MatDesc, SpmBufId, SpmSlot, Stmt};

use crate::codegen::Executable;

/// Cap on collected violations: a broken steady-state loop would otherwise
/// report the same hazard once per iteration.
const MAX_VIOLATIONS: usize = 16;

/// One legality violation found by the static checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (kebab-case; used by tests and telemetry).
    pub rule: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Statically verify a planned executable against `cfg`. Returns all
/// violations found (capped at [`MAX_VIOLATIONS`]), or `Ok(())` for a
/// schedule with none.
pub fn verify_executable(exe: &Executable, cfg: &MachineConfig) -> Result<(), Vec<Violation>> {
    let mut w = Walker {
        exe,
        capacity: cfg.spm_elems(),
        outstanding: vec![VecDeque::new(); exe.program.n_replies],
        filling: vec![0; exe.program.spm_bufs.len()],
        draining: vec![0; exe.program.spm_bufs.len()],
        last: Last::Other,
        violations: Vec::new(),
    };
    let mut env = Env::new(exe.program.n_vars());
    w.walk(&exe.program.body, &mut env);
    for (r, q) in w.outstanding.iter().enumerate() {
        if !q.is_empty() {
            let n = q.len();
            w.violations.push(Violation {
                rule: "unwaited-dma",
                detail: format!(
                    "program ends with {n} un-waited transfer(s) on reply {r}"
                ),
            });
        }
    }
    if w.violations.is_empty() {
        Ok(())
    } else {
        w.violations.truncate(MAX_VIOLATIONS);
        Err(w.violations)
    }
}

/// Convenience wrapper flattening the violation list into one message —
/// the form quarantine reasons are reported in.
pub fn verify_message(exe: &Executable, cfg: &MachineConfig) -> Result<(), String> {
    verify_executable(exe, cfg).map_err(|vs| {
        let msgs: Vec<String> = vs.iter().map(Violation::to_string).collect();
        msgs.join("; ")
    })
}

/// What the previous dynamically executed node was, for fusion legality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Last {
    Dma { reply: usize },
    Transform,
    Other,
}

/// One un-waited transfer: which SPM buffer it is filling (get) or
/// draining (put).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    buf: SpmBufId,
    fills: bool,
}

struct Walker<'a> {
    exe: &'a Executable,
    capacity: usize,
    /// Per-reply FIFO of un-waited transfers, in issue order.
    outstanding: Vec<VecDeque<InFlight>>,
    /// Per SPM buffer: pending gets writing into it.
    filling: Vec<u32>,
    /// Per SPM buffer: pending puts reading out of it.
    draining: Vec<u32>,
    last: Last,
    violations: Vec<Violation>,
}

impl Walker<'_> {
    fn viol(&mut self, rule: &'static str, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation { rule, detail });
        }
    }

    fn done(&self) -> bool {
        self.violations.len() >= MAX_VIOLATIONS
    }

    /// Resolve a slot to a concrete buffer under `env` (parity of the
    /// selector for `Double`), checking slot soundness once per encounter.
    fn resolve(&mut self, slot: &SpmSlot, env: &Env, what: &str) -> Option<SpmBufId> {
        if let SpmSlot::Double { even, odd, .. } = slot {
            if even == odd {
                self.viol(
                    "slot-aliasing",
                    format!("{what}: double-buffer halves alias (both are spm buf {})", even.0),
                );
            }
        }
        let id = match slot {
            SpmSlot::Single(b) => *b,
            SpmSlot::Double { even, odd, sel } => {
                if sel.eval(env, 0, 0).rem_euclid(2) == 0 {
                    *even
                } else {
                    *odd
                }
            }
        };
        if id.0 >= self.exe.program.spm_bufs.len() {
            self.viol(
                "dangling-spm-buf",
                format!(
                    "{what}: references undeclared SPM buffer {} ({} declared)",
                    id.0,
                    self.exe.program.spm_bufs.len()
                ),
            );
            return None;
        }
        Some(id)
    }

    /// Hazard check for a GEMM operand: reads must not target a buffer
    /// whose fill is still in flight; writes additionally must not target a
    /// buffer an un-waited put is still draining.
    fn operand(&mut self, m: &MatDesc, env: &Env, name: &str, writes: bool) {
        let Some(id) = self.resolve(&m.slot, env, &format!("gemm operand {name}")) else {
            return;
        };
        if self.filling[id.0] > 0 {
            self.viol(
                "use-before-reply",
                format!(
                    "gemm operand {name} reads spm buf {} ('{}') while its fill is in flight",
                    id.0, self.exe.program.spm_bufs[id.0].name
                ),
            );
        }
        if writes && self.draining[id.0] > 0 {
            self.viol(
                "residency-violation",
                format!(
                    "gemm operand {name} overwrites spm buf {} ('{}') while an un-waited put \
                     is draining it",
                    id.0, self.exe.program.spm_bufs[id.0].name
                ),
            );
        }
    }

    fn walk(&mut self, s: &Stmt, env: &mut Env) {
        if self.done() {
            return;
        }
        match s {
            Stmt::Nop => {}
            Stmt::Seq(ss) => ss.iter().for_each(|x| self.walk(x, env)),
            Stmt::For { var, extent, body } => {
                for i in 0..*extent {
                    if self.done() {
                        return;
                    }
                    env.set(*var, i as i64);
                    self.walk(body, env);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                if cond.eval(env, 0, 0) {
                    self.walk(then_, env);
                } else if let Some(e) = else_ {
                    self.walk(e, env);
                }
            }
            Stmt::DmaCg(_) => {
                self.viol(
                    "unlowered-dma",
                    "DMA_CG node survived lowering: run DMA inference first".into(),
                );
                self.last = Last::Other;
            }
            Stmt::DmaCpe(d) => {
                if d.fused && self.last != (Last::Dma { reply: d.reply.0 }) {
                    self.viol(
                        "broken-fused-chain",
                        format!(
                            "fused DMA on reply {} does not directly follow a DMA on the same \
                             reply (startup would be waived without an open batch)",
                            d.reply.0
                        ),
                    );
                }
                if d.reply.0 >= self.exe.program.n_replies {
                    self.viol(
                        "dangling-reply",
                        format!(
                            "DMA references undeclared reply {} ({} declared)",
                            d.reply.0, self.exe.program.n_replies
                        ),
                    );
                    self.last = Last::Other;
                    return;
                }
                // Footprint soundness under *both* parities: the transfer
                // must fit each half it can resolve to, and the half must
                // fit the scratch pad.
                for b in d.spm.bufs() {
                    if b.0 >= self.exe.program.spm_bufs.len() {
                        continue; // reported by resolve below
                    }
                    let decl = &self.exe.program.spm_bufs[b.0];
                    if d.spm_elems() > decl.len {
                        self.viol(
                            "slot-overflow",
                            format!(
                                "transfer of {} elems overflows spm buf {} ('{}', {} elems) — \
                                 would corrupt the adjacent allocation",
                                d.spm_elems(),
                                b.0,
                                decl.name,
                                decl.len
                            ),
                        );
                    }
                    let off = self.exe.try_spm_offset(b).unwrap_or(0);
                    if off + d.spm_elems() > self.capacity {
                        self.viol(
                            "spm-capacity",
                            format!(
                                "transfer into spm buf {} ('{}') reaches {} elems, over the \
                                 {}-elem scratch pad",
                                b.0,
                                decl.name,
                                off + d.spm_elems(),
                                self.capacity
                            ),
                        );
                    }
                }
                let Some(id) = self.resolve(&d.spm, env, "dma") else {
                    self.last = Last::Other;
                    return;
                };
                match d.direction {
                    DmaDirection::MemToSpm => {
                        if self.filling[id.0] > 0 {
                            self.viol(
                                "double-fill",
                                format!(
                                    "get fills spm buf {} ('{}') while a previous fill is \
                                     still in flight",
                                    id.0, self.exe.program.spm_bufs[id.0].name
                                ),
                            );
                        }
                        if self.draining[id.0] > 0 {
                            self.viol(
                                "residency-violation",
                                format!(
                                    "get overwrites spm buf {} ('{}') while an un-waited put \
                                     is draining it",
                                    id.0, self.exe.program.spm_bufs[id.0].name
                                ),
                            );
                        }
                        self.filling[id.0] += 1;
                    }
                    DmaDirection::SpmToMem => {
                        if self.filling[id.0] > 0 {
                            self.viol(
                                "use-before-reply",
                                format!(
                                    "put reads spm buf {} ('{}') while its fill is in flight",
                                    id.0, self.exe.program.spm_bufs[id.0].name
                                ),
                            );
                        }
                        self.draining[id.0] += 1;
                    }
                }
                self.outstanding[d.reply.0]
                    .push_back(InFlight { buf: id, fills: d.direction == DmaDirection::MemToSpm });
                self.last = Last::Dma { reply: d.reply.0 };
            }
            Stmt::DmaWait { reply, times } => {
                if reply.0 >= self.exe.program.n_replies {
                    self.viol(
                        "dangling-reply",
                        format!(
                            "wait references undeclared reply {} ({} declared)",
                            reply.0, self.exe.program.n_replies
                        ),
                    );
                } else {
                    let q = &mut self.outstanding[reply.0];
                    if q.len() < *times {
                        let issued = q.len();
                        self.viol(
                            "reply-underflow",
                            format!(
                                "wait for {times} completions on reply {} but only {issued} \
                                 transfer(s) are outstanding",
                                reply.0
                            ),
                        );
                    }
                    for _ in 0..*times {
                        let Some(t) = self.outstanding[reply.0].pop_front() else { break };
                        let side =
                            if t.fills { &mut self.filling } else { &mut self.draining };
                        side[t.buf.0] = side[t.buf.0].saturating_sub(1);
                    }
                }
                self.last = Last::Other;
            }
            Stmt::Gemm(g) => {
                self.operand(&g.a, env, "A", false);
                self.operand(&g.b, env, "B", false);
                self.operand(&g.c, env, "C", true);
                self.last = Last::Other;
            }
            Stmt::Transform(t) => {
                if t.fused && self.last != Last::Transform {
                    self.viol(
                        "broken-fused-chain",
                        "fused transform does not directly follow a transform (startup would \
                         be waived without an open pipeline)"
                            .into(),
                    );
                }
                self.last = Last::Transform;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::DmaDirection::*;
    use swatop_ir::{AffineExpr, Cond, DmaCpe, GemmOp, MatDesc, MemRole, Program, ReplyId};
    use swtensor::MatLayout;

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    /// A minimal program: one mem buffer, `n` SPM buffers of 64 elems.
    fn base_program(n_spm: usize) -> Program {
        let mut p = Program::new("t");
        p.mem_buf("m", 1 << 16, MemRole::Input);
        for i in 0..n_spm {
            p.spm_buf(format!("s{i}"), 64);
        }
        p
    }

    fn get(buf: usize, spm: SpmSlot, reply: usize, fused: bool) -> Stmt {
        Stmt::DmaCpe(DmaCpe {
            buf: swatop_ir::MemBufId(buf),
            offset: AffineExpr::zero(),
            block: 64,
            stride: 64,
            n_blocks: 1,
            direction: MemToSpm,
            spm,
            reply: ReplyId(reply),
            bcast: None,
            fused,
        })
    }

    fn put(buf: usize, spm: SpmSlot, reply: usize) -> Stmt {
        Stmt::DmaCpe(DmaCpe {
            buf: swatop_ir::MemBufId(buf),
            offset: AffineExpr::zero(),
            block: 64,
            stride: 64,
            n_blocks: 1,
            direction: SpmToMem,
            spm,
            reply: ReplyId(reply),
            bcast: None,
            fused: false,
        })
    }

    fn wait(reply: usize, times: usize) -> Stmt {
        Stmt::DmaWait { reply: ReplyId(reply), times }
    }

    fn gemm(a: usize, b: usize, c: usize) -> Stmt {
        let d = |i: usize| MatDesc::new(SpmSlot::single(SpmBufId(i)), MatLayout::RowMajor, 8);
        Stmt::Gemm(GemmOp {
            m: 8,
            n: 8,
            k: 8,
            alpha: 1.0,
            beta: 1.0,
            a: d(a),
            b: d(b),
            c: d(c),
            vd: swkernels::VecDim::M,
        })
    }

    fn check(p: Program) -> Result<(), Vec<Violation>> {
        let exe = crate::codegen::plan(p, &cfg()).unwrap();
        verify_executable(&exe, &cfg())
    }

    fn rules(r: Result<(), Vec<Violation>>) -> Vec<&'static str> {
        r.unwrap_err().iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_get_compute_put_passes() {
        let mut p = base_program(3);
        p.fresh_reply();
        p.body = Stmt::seq(vec![
            get(0, SpmSlot::single(SpmBufId(0)), 0, false),
            get(0, SpmSlot::single(SpmBufId(1)), 0, true),
            wait(0, 2),
            gemm(0, 1, 2),
            put(0, SpmSlot::single(SpmBufId(2)), 0),
            wait(0, 1),
        ]);
        assert_eq!(check(p), Ok(()));
    }

    #[test]
    fn unwaited_dma_and_underflow_are_flagged() {
        let mut p = base_program(1);
        p.fresh_reply();
        p.body = get(0, SpmSlot::single(SpmBufId(0)), 0, false);
        assert!(rules(check(p)).contains(&"unwaited-dma"));

        let mut p = base_program(1);
        p.fresh_reply();
        p.body = Stmt::seq(vec![get(0, SpmSlot::single(SpmBufId(0)), 0, false), wait(0, 2)]);
        assert!(rules(check(p)).contains(&"reply-underflow"));
    }

    #[test]
    fn fused_chain_must_follow_same_reply_dma() {
        // Fused get after a wait: the engine batch is closed.
        let mut p = base_program(2);
        p.fresh_reply();
        p.fresh_reply();
        p.body = Stmt::seq(vec![
            get(0, SpmSlot::single(SpmBufId(0)), 0, false),
            wait(0, 1),
            get(0, SpmSlot::single(SpmBufId(1)), 0, true),
            wait(0, 1),
        ]);
        assert!(rules(check(p)).contains(&"broken-fused-chain"));

        // Fused get chained across *different* reply words.
        let mut p = base_program(2);
        p.fresh_reply();
        p.fresh_reply();
        p.body = Stmt::seq(vec![
            get(0, SpmSlot::single(SpmBufId(0)), 0, false),
            get(0, SpmSlot::single(SpmBufId(1)), 1, true),
            wait(0, 1),
            wait(1, 1),
        ]);
        assert!(rules(check(p)).contains(&"broken-fused-chain"));
    }

    #[test]
    fn use_before_reply_is_flagged() {
        // Compute on a tile whose fill has not been waited.
        let mut p = base_program(3);
        p.fresh_reply();
        p.body = Stmt::seq(vec![
            get(0, SpmSlot::single(SpmBufId(0)), 0, false),
            gemm(0, 1, 2),
            wait(0, 1),
        ]);
        assert!(rules(check(p)).contains(&"use-before-reply"));
    }

    #[test]
    fn residency_violation_is_flagged() {
        // Refill a buffer an un-waited put is still draining.
        let mut p = base_program(1);
        p.fresh_reply();
        p.body = Stmt::seq(vec![
            put(0, SpmSlot::single(SpmBufId(0)), 0),
            get(0, SpmSlot::single(SpmBufId(0)), 0, false),
            wait(0, 2),
        ]);
        assert!(rules(check(p)).contains(&"residency-violation"));
    }

    #[test]
    fn aliased_double_slot_is_flagged() {
        let mut p = base_program(1);
        p.fresh_reply();
        let slot = SpmSlot::Double {
            even: SpmBufId(0),
            odd: SpmBufId(0),
            sel: AffineExpr::zero(),
        };
        p.body = Stmt::seq(vec![get(0, slot, 0, false), wait(0, 1)]);
        assert!(rules(check(p)).contains(&"slot-aliasing"));
    }

    #[test]
    fn slot_overflow_is_flagged() {
        // 128-elem transfer into a 64-elem buffer tramples its neighbour.
        let mut p = base_program(2);
        p.fresh_reply();
        let mut g = get(0, SpmSlot::single(SpmBufId(0)), 0, false);
        if let Stmt::DmaCpe(d) = &mut g {
            d.block = 128;
            d.stride = 128;
        }
        p.body = Stmt::seq(vec![g, wait(0, 1)]);
        assert!(rules(check(p)).contains(&"slot-overflow"));
    }

    #[test]
    fn swapped_parity_in_double_buffer_is_caught() {
        // The prefetch idiom with the compute parity inverted: iteration i
        // computes on the tile being prefetched instead of the landed one.
        let mut p = base_program(4);
        let v = p.fresh_var("i");
        p.fresh_reply();
        let fill = |sel: AffineExpr| SpmSlot::Double {
            even: SpmBufId(0),
            odd: SpmBufId(1),
            sel,
        };
        let steady = AffineExpr::loop_var(v);
        let next = AffineExpr::loop_var(v).add_const(1);
        let n = 4usize;
        let prologue = get(0, fill(AffineExpr::zero()), 0, false);
        // Correct body: wait for the landed tile, prefetch next, compute on
        // the landed parity.
        let body_ok = Stmt::seq(vec![
            wait(0, 1),
            Stmt::if_(
                Cond::lt_const(next.clone(), n as i64),
                get(0, fill(next.clone()), 0, false),
            ),
            Stmt::Gemm(GemmOp {
                m: 8,
                n: 8,
                k: 8,
                alpha: 1.0,
                beta: 1.0,
                a: MatDesc::new(fill(steady.clone()), MatLayout::RowMajor, 8),
                b: MatDesc::new(SpmSlot::single(SpmBufId(2)), MatLayout::RowMajor, 8),
                c: MatDesc::new(SpmSlot::single(SpmBufId(3)), MatLayout::RowMajor, 8),
                vd: swkernels::VecDim::M,
            }),
        ]);
        let mut ok = p.clone();
        ok.body = Stmt::seq(vec![prologue.clone(), Stmt::for_(v, n, body_ok)]);
        assert_eq!(check(ok), Ok(()));

        // Swapped parity: compute reads sel+1 — the half still in flight.
        let body_bad = Stmt::seq(vec![
            wait(0, 1),
            Stmt::if_(
                Cond::lt_const(next.clone(), n as i64),
                get(0, fill(next.clone()), 0, false),
            ),
            Stmt::Gemm(GemmOp {
                m: 8,
                n: 8,
                k: 8,
                alpha: 1.0,
                beta: 1.0,
                a: MatDesc::new(fill(next), MatLayout::RowMajor, 8),
                b: MatDesc::new(SpmSlot::single(SpmBufId(2)), MatLayout::RowMajor, 8),
                c: MatDesc::new(SpmSlot::single(SpmBufId(3)), MatLayout::RowMajor, 8),
                vd: swkernels::VecDim::M,
            }),
        ]);
        let mut bad = p;
        bad.body = Stmt::seq(vec![prologue, Stmt::for_(v, 4, body_bad)]);
        assert!(rules(check(bad)).contains(&"use-before-reply"));
    }

    #[test]
    fn violations_are_capped() {
        // A loop spamming the same hazard must not produce one violation
        // per iteration.
        let mut p = base_program(1);
        let v = p.fresh_var("i");
        p.fresh_reply();
        p.body = Stmt::for_(v, 1000, wait(0, 1));
        let vs = check(p).unwrap_err();
        assert!(vs.len() <= MAX_VIOLATIONS);
    }
}
