//! Boundary processing (paper Sec. 4.5.3).
//!
//! "Boundary issue occurs when the length of the loop cannot be divided by
//! the split factor, and the boundary data cannot be processed using the
//! original tensorized primitive."
//!
//! Two strategies, both exposed here for the operator lowerings:
//!
//! 1. **Parameter switching** — when the tail is still a legal kernel shape
//!    (mesh-divisible, vector-aligned), the generated code calls the
//!    primitive with the smaller parameters at the boundary
//!    ([`TileSplit::tail`]).
//! 2. **Zero padding** — otherwise the tail is padded up to a legal shape.
//!    Traditional padding copies the *whole* matrix into a freshly padded
//!    buffer; swATOP's *lightweight* scheme copies only the boundary strips
//!    into small auxiliary buffers and switches the DMA source at the
//!    boundary ([`PadPlan`] quantifies both).

/// Alignment a GEMM dimension must satisfy: the 8×8 mesh times, for the
/// vectorised dimension, the vector width 4.
pub fn alignment(vectorised: bool) -> usize {
    if vectorised {
        32
    } else {
        8
    }
}

/// Round `n` up to a multiple of `align`.
pub fn round_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

/// Decomposition of a dimension of length `len` into `full` tiles of
/// `tile` plus a `tail` (possibly zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSplit {
    pub len: usize,
    pub tile: usize,
    pub full: usize,
    pub tail: usize,
}

impl TileSplit {
    pub fn new(len: usize, tile: usize) -> Self {
        assert!(tile > 0);
        TileSplit { len, tile, full: len / tile, tail: len % tile }
    }

    /// Total number of tiles including the tail tile.
    pub fn count(&self) -> usize {
        self.full + (self.tail > 0) as usize
    }

    /// Whether the tail can be handled by parameter switching: it must
    /// itself satisfy `align`.
    pub fn tail_switchable(&self, align: usize) -> bool {
        self.tail == 0 || self.tail.is_multiple_of(align)
    }

    /// Padded tail length (up to `align`) when switching is not possible.
    pub fn padded_tail(&self, align: usize) -> usize {
        round_up(self.tail, align)
    }
}

/// Cost plan for zero-padding one `rows × cols` matrix whose dimensions are
/// tiled by `(tile_r, tile_c)` with mesh/vector alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PadPlan {
    /// Elements copied by traditional whole-matrix padding.
    pub traditional_copied: usize,
    /// Elements of the traditional padded destination (allocated + zeroed).
    pub traditional_buffer: usize,
    /// Elements copied by lightweight boundary-strip padding.
    pub lightweight_copied: usize,
    /// Elements of the lightweight auxiliary buffers.
    pub lightweight_buffer: usize,
}

impl PadPlan {
    pub fn new(rows: usize, cols: usize, tile_r: usize, tile_c: usize) -> Self {
        let pr = round_up(rows, tile_r);
        let pc = round_up(cols, tile_c);
        let r_tail = rows % tile_r;
        let c_tail = cols % tile_c;
        // Lightweight: a bottom strip (r_tail × padded cols) and a right
        // strip (full rows × c_tail), padded to tile size.
        let bottom = if r_tail > 0 { r_tail * cols } else { 0 };
        let right = if c_tail > 0 { (rows - r_tail) * c_tail } else { 0 };
        let bottom_buf = if r_tail > 0 { tile_r * pc } else { 0 };
        let right_buf = if c_tail > 0 { pr * tile_c } else { 0 };
        PadPlan {
            traditional_copied: rows * cols,
            traditional_buffer: pr * pc,
            lightweight_copied: bottom + right,
            lightweight_buffer: bottom_buf + right_buf,
        }
    }

    /// Copy-traffic ratio lightweight/traditional (≤ 1).
    pub fn copy_ratio(&self) -> f64 {
        if self.traditional_copied == 0 {
            return 0.0;
        }
        self.lightweight_copied as f64 / self.traditional_copied as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_split_arithmetic() {
        let s = TileSplit::new(200, 64);
        assert_eq!((s.full, s.tail), (3, 8));
        assert_eq!(s.count(), 4);
        let exact = TileSplit::new(256, 64);
        assert_eq!((exact.full, exact.tail), (4, 0));
        assert_eq!(exact.count(), 4);
    }

    #[test]
    fn tail_switching_rules() {
        // Tail of 8 is mesh-aligned but not vector-aligned.
        let s = TileSplit::new(200, 64);
        assert!(s.tail_switchable(8));
        assert!(!s.tail_switchable(32));
        assert_eq!(s.padded_tail(32), 32);
    }

    #[test]
    fn lightweight_padding_copies_far_less() {
        // 2000×2000 tiled 256×256: boundary strips are thin.
        let p = PadPlan::new(2000, 2000, 256, 256);
        assert!(p.copy_ratio() < 0.2, "ratio {}", p.copy_ratio());
        assert!(p.lightweight_buffer < p.traditional_buffer);
        assert_eq!(p.traditional_copied, 4_000_000);
    }

    #[test]
    fn aligned_matrix_needs_no_copies() {
        let p = PadPlan::new(2048, 1024, 256, 256);
        assert_eq!(p.lightweight_copied, 0);
        assert_eq!(p.lightweight_buffer, 0);
        assert_eq!(p.copy_ratio(), 0.0);
    }

    #[test]
    fn alignment_constants() {
        assert_eq!(alignment(true), 32);
        assert_eq!(alignment(false), 8);
        assert_eq!(round_up(33, 32), 64);
        assert_eq!(round_up(64, 32), 64);
    }
}
