//! The IR optimizer: the three optimisations of paper Sec. 4.5.
//!
//! * [`dma_inference`] — lower `DMA_CG` nodes to per-CPE strided `DMA_CPE`
//!   nodes and hoist loop-invariant transfers away from `gemm_op`;
//! * [`prefetch`] — hide memory latency by double buffering, with
//!   next-iteration index inference over the enclosing loop nest;
//! * [`boundary`] — boundary-processing helpers: tile-size arithmetic and
//!   the lightweight zero-padding plan used by the operator lowerings.

pub mod boundary;
pub mod dma_inference;
pub mod prefetch;

use swatop_ir::Program;

/// Run the standard optimization pipeline on a lowered program:
/// DMA inference (lower + hoist), then — if `enable_prefetch` — double
/// buffering of the innermost steady-state loop nest.
pub fn optimize(mut program: Program, enable_prefetch: bool) -> Program {
    program.body = dma_inference::lower_dma(&program.body);
    program.body = dma_inference::hoist_invariant_dma(&program.body);
    if enable_prefetch {
        program = prefetch::apply_double_buffering(program);
    }
    program
}
