//! The IR optimizer: the three optimisations of paper Sec. 4.5.
//!
//! * [`dma_inference`] — lower `DMA_CG` nodes to per-CPE strided `DMA_CPE`
//!   nodes and hoist loop-invariant transfers away from `gemm_op`;
//! * [`coalesce`] — the DMA-wall passes: strided-transaction coalescing
//!   into packed staging buffers and register-broadcast tiling;
//! * [`prefetch`] — hide memory latency by double buffering, with
//!   next-iteration index inference over the enclosing loop nest;
//! * [`boundary`] — boundary-processing helpers: tile-size arithmetic and
//!   the lightweight zero-padding plan used by the operator lowerings;
//! * [`verify`] — the static legality checker: walks a planned executable
//!   and rejects DMA/compute hazards (use-before-reply, broken fused
//!   chains, slot aliasing/overflow…) before any execution.

pub mod boundary;
pub mod coalesce;
pub mod dma_inference;
pub mod prefetch;
pub mod verify;

use swatop_ir::Program;

/// Run the standard optimization pipeline on a lowered program. The
/// program's [`swatop_ir::ScheduleHints`] select the DMA-wall passes —
/// each is an independent schedule dimension the tuner searches:
/// transaction coalescing (before DMA inference, on the CG-level form),
/// then DMA inference (lower + hoist), then broadcast tagging, then
/// get-batch fusion (also on the coalescing dimension), then — if
/// `enable_prefetch` *and* the point asks for it — double buffering of the
/// innermost steady-state loop nest.
pub fn optimize(mut program: Program, enable_prefetch: bool) -> Program {
    if program.hints.coalesce {
        program = coalesce::coalesce_gets(program);
    }
    program.body = dma_inference::lower_dma(&program.body);
    program.body = dma_inference::hoist_invariant_dma(&program.body);
    if program.hints.bcast {
        program.body = coalesce::tag_broadcast(&program.body);
    }
    if program.hints.coalesce {
        // Batch fusion rides the coalescing dimension: runs of back-to-back
        // gets chain into one engine batch and runs of back-to-back bulk
        // transforms chain into one engine pipeline (start-up paid once per
        // run). Must run before prefetching so the double-buffered prologue
        // and next-iteration chains inherit the fusion marks.
        program.body = coalesce::fuse_adjacent_gets(&program.body);
        program.body = coalesce::fuse_adjacent_transforms(&program.body);
    }
    if enable_prefetch && program.hints.dbuf {
        program = prefetch::apply_double_buffering(program);
    }
    program
}
