//! DMA inference (paper Sec. 4.5.1).
//!
//! Users never write per-CPE DMA in the DSL; lowering produces core-group
//! level nodes (`DMA_CG(addr, totalsize, direction)`) and this pass derives
//! the per-CPE node
//!
//! ```text
//! DMA_CPE(source, destination, direction, offset, block, stride, size)
//! ```
//!
//! For a `rows × cols` tile distributed 8×8 across the mesh, CPE
//! `(rid, cid)` receives the `(rid, cid)` block: `rows/8` blocks of
//! `cols/8` elements, `row_stride` apart, at
//! `offset + rid·(rows/8)·row_stride + cid·(cols/8)` — the exact derivation
//! of the paper's Fig. 4 (right), generalised from its column-major example
//! to any leading stride.
//!
//! The pass also hoists transfers "as far as possible from gemm_op": a
//! DMA + wait pair whose address does not depend on the surrounding loop
//! variable moves out of that loop.

use sw26010::{DmaDirection, MESH};
use swatop_ir::{AVar, DmaCg, DmaCpe, Stmt};

/// Lower every `DMA_CG` node in the tree to a `DMA_CPE` node.
pub fn lower_dma(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(lower_dma).collect()),
        Stmt::For { var, extent, body } => {
            Stmt::For { var: *var, extent: *extent, body: Box::new(lower_dma(body)) }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(lower_dma(then_)),
            else_: else_.as_ref().map(|e| Box::new(lower_dma(e))),
        },
        Stmt::DmaCg(d) => Stmt::DmaCpe(lower_node(d)),
        other => other.clone(),
    }
}

/// Derive the per-CPE node from a CG-level tile access.
pub fn lower_node(d: &DmaCg) -> DmaCpe {
    assert_eq!(d.rows % MESH, 0, "DMA_CG rows {} not divisible by mesh", d.rows);
    assert_eq!(d.cols % MESH, 0, "DMA_CG cols {} not divisible by mesh", d.cols);
    let block_rows = d.rows / MESH;
    let block_cols = d.cols / MESH;
    let (row_mesh, col_mesh) = if d.mesh_swap {
        (AVar::Cid, AVar::Rid)
    } else {
        (AVar::Rid, AVar::Cid)
    };
    let offset = d
        .offset
        .add_term(row_mesh, (block_rows * d.row_stride) as i64)
        .add_term(col_mesh, block_cols as i64);
    let (block, stride, n_blocks) = if d.row_stride == block_cols {
        // Per-CPE blocks are contiguous in memory: merge into one transfer
        // (the continuous DMA mode).
        (block_cols * block_rows, block_cols * block_rows, 1)
    } else {
        (block_cols, d.row_stride, block_rows)
    };
    DmaCpe {
        buf: d.buf,
        offset,
        block,
        stride,
        n_blocks,
        direction: d.direction,
        spm: d.spm.clone(),
        reply: d.reply,
        bcast: None,
        fused: false,
    }
}

/// Hoist loop-invariant `get` transfers out of loops.
///
/// Pattern: `for v { [DmaCpe(get) g; DmaWait w;] rest… }` where `g`'s
/// offset (and slot selector) do not depend on `v` — the pair moves in
/// front of the loop. Applied bottom-up until fixpoint within each node.
pub fn hoist_invariant_dma(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Seq(ss) => Stmt::seq(ss.iter().map(hoist_invariant_dma).collect()),
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(hoist_invariant_dma(then_)),
            else_: else_.as_ref().map(|e| Box::new(hoist_invariant_dma(e))),
        },
        Stmt::For { var, extent, body } => {
            let body = hoist_invariant_dma(body);
            // Collect a leading run of invariant (get, wait) pairs.
            let items: Vec<Stmt> = match body {
                Stmt::Seq(ss) => ss,
                other => vec![other],
            };
            let mut hoisted: Vec<Stmt> = Vec::new();
            let mut rest: Vec<Stmt> = Vec::new();
            let mut i = 0;
            while i + 1 < items.len() {
                let (a, b) = (&items[i], &items[i + 1]);
                let invariant_pair = match (a, b) {
                    (Stmt::DmaCpe(d), Stmt::DmaWait { reply, .. }) => {
                        d.direction == DmaDirection::MemToSpm
                            && !d.offset.depends_on(*var)
                            && slot_invariant(&d.spm, *var)
                            && d.reply == *reply
                    }
                    _ => false,
                };
                if invariant_pair {
                    hoisted.push(a.clone());
                    hoisted.push(b.clone());
                    i += 2;
                } else {
                    break;
                }
            }
            rest.extend(items[i..].iter().cloned());
            let new_loop = Stmt::for_(*var, *extent, Stmt::seq(rest));
            if hoisted.is_empty() {
                new_loop
            } else {
                hoisted.push(new_loop);
                Stmt::seq(hoisted)
            }
        }
        other => other.clone(),
    }
}

fn slot_invariant(slot: &swatop_ir::SpmSlot, var: usize) -> bool {
    match slot {
        swatop_ir::SpmSlot::Single(_) => true,
        swatop_ir::SpmSlot::Double { sel, .. } => !sel.depends_on(var),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swatop_ir::{AffineExpr, MemBufId, ReplyId, SpmBufId, SpmSlot};

    fn cg_node(offset: AffineExpr, rows: usize, cols: usize, row_stride: usize) -> DmaCg {
        DmaCg {
            buf: MemBufId(0),
            offset,
            rows,
            cols,
            row_stride,
            mesh_swap: false,
            direction: DmaDirection::MemToSpm,
            spm: SpmSlot::Single(SpmBufId(0)),
            reply: ReplyId(0),
        }
    }

    #[test]
    fn strided_tile_derivation_matches_paper_example() {
        // The paper's example: column-major A(M, N) = an N×M row-major view
        // with row_stride M. Take M = 64, N = 32: tile rows=32 (N), cols=64
        // (M)… Use direct form: rows=32, cols=64, row_stride=64.
        let d = cg_node(AffineExpr::zero(), 32, 64, 64);
        let l = lower_node(&d);
        // block = 64/8 = 8 elems, stride = 64, n_blocks = 32/8 = 4.
        assert_eq!((l.block, l.stride, l.n_blocks), (8, 64, 4));
        // offset = rid*(4*64) + cid*8.
        assert_eq!(l.offset.coeff(AVar::Rid), 256);
        assert_eq!(l.offset.coeff(AVar::Cid), 8);
    }

    #[test]
    fn contiguous_tile_merges_blocks() {
        // row_stride == cols/8 means each CPE's rows are back-to-back.
        let d = cg_node(AffineExpr::konst(100), 64, 8, 1);
        let l = lower_node(&d);
        assert_eq!(l.n_blocks, 1);
        assert_eq!(l.block, 8);
        assert_eq!(l.offset.constant(), 100);
    }

    #[test]
    fn total_size_is_preserved() {
        let d = cg_node(AffineExpr::zero(), 40, 16, 128);
        let l = lower_node(&d);
        // Per-CPE elements = totalsize / 64.
        assert_eq!(l.spm_elems(), 40 * 16 / 64);
    }

    #[test]
    fn lower_dma_rewrites_whole_tree() {
        let inner = Stmt::DmaCg(cg_node(AffineExpr::loop_var(0), 8, 8, 8));
        let tree = Stmt::for_(0, 3, Stmt::seq(vec![inner.clone(), inner]));
        let lowered = lower_dma(&tree);
        assert_eq!(lowered.count(|s| matches!(s, Stmt::DmaCg(_))), 0);
        assert_eq!(lowered.count(|s| matches!(s, Stmt::DmaCpe(_))), 2);
    }

    #[test]
    fn invariant_get_is_hoisted() {
        // for v0 { dma@const; wait; dma@v0; wait } → dma@const hoists out.
        let invariant = Stmt::DmaCpe(lower_node(&cg_node(AffineExpr::konst(0), 8, 8, 16)));
        let variant = Stmt::DmaCpe(lower_node(&cg_node(AffineExpr::loop_var(0), 8, 8, 16)));
        let wait = Stmt::DmaWait { reply: ReplyId(0), times: 1 };
        let tree = Stmt::for_(
            0,
            4,
            Stmt::seq(vec![invariant.clone(), wait.clone(), variant.clone(), wait.clone()]),
        );
        let hoisted = hoist_invariant_dma(&tree);
        // Expect: Seq[dma, wait, For { dma@v0, wait }]
        if let Stmt::Seq(ss) = &hoisted {
            assert_eq!(ss.len(), 3);
            assert!(matches!(ss[0], Stmt::DmaCpe(_)));
            assert!(matches!(ss[1], Stmt::DmaWait { .. }));
            assert!(matches!(ss[2], Stmt::For { .. }));
            if let Stmt::For { body, .. } = &ss[2] {
                assert_eq!(body.count(|s| matches!(s, Stmt::DmaCpe(_))), 1);
            }
        } else {
            panic!("expected hoisted Seq, got {hoisted:?}");
        }
    }

    #[test]
    fn variant_get_is_not_hoisted() {
        let variant = Stmt::DmaCpe(lower_node(&cg_node(AffineExpr::loop_var(0), 8, 8, 16)));
        let wait = Stmt::DmaWait { reply: ReplyId(0), times: 1 };
        let tree = Stmt::for_(0, 4, Stmt::seq(vec![variant, wait]));
        let hoisted = hoist_invariant_dma(&tree);
        assert!(matches!(hoisted, Stmt::For { .. }), "nothing must hoist");
    }

    #[test]
    fn hoist_is_recursive_through_nests() {
        // Invariant DMA two loops deep hoists past both.
        let invariant = Stmt::DmaCpe(lower_node(&cg_node(AffineExpr::konst(4), 8, 8, 16)));
        let wait = Stmt::DmaWait { reply: ReplyId(0), times: 1 };
        let tree = Stmt::for_(
            0,
            2,
            Stmt::for_(1, 3, Stmt::seq(vec![invariant, wait])),
        );
        let hoisted = hoist_invariant_dma(&tree);
        if let Stmt::Seq(ss) = &hoisted {
            assert!(matches!(ss[0], Stmt::DmaCpe(_)), "{hoisted:?}");
        } else {
            panic!("expected hoist through both loops, got {hoisted:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn lowering_rejects_unpartitionable_tiles() {
        lower_node(&cg_node(AffineExpr::zero(), 20, 8, 8));
    }
}
