//! # swatop — the automated operator-optimization framework
//!
//! This crate is the paper's primary contribution: an end-to-end automated
//! framework that takes a tensorized operator description (DSL seed +
//! schedule space) and produces near-optimal executable code for the
//! (simulated) SW26010 core group.
//!
//! Pipeline (paper Fig. 3):
//!
//! ```text
//! DSL ──► Scheduler ──► IR ──► IR optimizer ──► Autotuner ──► Code generator
//!          (enumerate    │     (DMA inference,   (performance   (SPM coalescing,
//!           schedule     │      auto-prefetch,    model or       C emission,
//!           strategies)  │      boundary)         black-box)     machine program)
//! ```
//!
//! * [`scheduler`] enumerates every [`swatop_dsl::SchedulePoint`] of an
//!   operator's space, lowers valid points to IR and rejects candidates that
//!   violate machine constraints (SPM capacity, mesh divisibility, vector
//!   width).
//! * [`optimizer`] holds the three IR optimizations highlighted in Sec. 4.5:
//!   DMA inference, memory-latency hiding (double buffering with
//!   next-iteration inference) and boundary processing.
//! * [`model`] implements the static performance model: Eq. (1) for the DMA
//!   engine and the fitted linear Eq. (2) for the GEMM primitives, combined
//!   as `T_overall = max(T_DMA, T_compute)` under prefetching.
//! * [`tuner`] provides both the performance-model-based autotuner and the
//!   brute-force black-box autotuner it is compared against (Tab. 3, Fig. 9).
//! * [`codegen`] plans the coalesced SPM allocation, emits C-like source
//!   (the offline-compiler output) and produces an [`codegen::Executable`]
//!   the interpreter can run on a [`sw26010::CoreGroup`].
//! * [`ops`] is the operator library: matrix multiplication plus the three
//!   convolution decompositions (implicit-GEMM, explicit-GEMM, Winograd).
//! * [`telemetry`] records tuning spans, machine counters and model
//!   accuracy; [`observatory`] folds them into roofline metrics and a
//!   deterministic bottleneck attribution per executed candidate.

//! ```
//! use sw26010::MachineConfig;
//! use swatop::ops::MatmulOp;
//! use swatop::scheduler::{Operator, Scheduler};
//! use swatop::tuner::model_tune;
//!
//! let cfg = MachineConfig::default();
//! let op = MatmulOp::new(64, 64, 64);
//! let candidates = Scheduler::new(cfg.clone()).enumerate(&op);
//! let outcome = model_tune(&cfg, &candidates).unwrap();
//! assert!(outcome.cycles.get() > 0);
//! // The winner is executable C, too:
//! assert!(candidates[outcome.best].exe.emit_c().contains("spm_gemm("));
//! ```

pub mod chip;
pub mod codegen;
pub mod interp;
pub mod model;
pub mod observatory;
pub mod profiler;
pub mod ops;
pub mod optimizer;
pub mod scheduler;
pub mod telemetry;
pub mod tuner;

pub use codegen::Executable;
pub use interp::{execute, Binding};
pub use observatory::{Attribution, Bottleneck, BottleneckMix, MetricSet, Peaks};
pub use scheduler::{Candidate, Scheduler};
pub use telemetry::{Telemetry, TuneTelemetry};
pub use tuner::{
    blackbox_tune, blackbox_tune_jobs, model_tune, model_tune_jobs, tiered_tune,
    tiered_tune_validated, TierMode, TierPolicy, TuneOutcome,
};
