//! The performance observatory: derived metrics and roofline bottleneck
//! attribution.
//!
//! The machine counters ([`sw26010::Counters`]) say *what happened* during
//! a candidate execution; this module turns them into *answers*:
//!
//! 1. **Derived-metrics registry** — [`derive`] folds a counter block plus
//!    the execution's cycle count into a [`MetricSet`]: achieved GFLOPS and
//!    % of the 742.4 GFLOPS/CG peak, effective DMA bandwidth and % of the
//!    22.6 GB/s achievable peak, arithmetic intensity against the roofline
//!    ridge, per-pipe issue-slot utilisation, stall fraction and SPM
//!    occupancy. The schema ([`SCHEMA`]) is a fixed, ordered `name → f64`
//!    table — exporters ([`MetricSet::to_json`],
//!    [`MetricSet::prometheus_text`]) never reorder, drop or rename
//!    entries, so downstream scrapers can rely on it. Every value is
//!    finite by construction (degenerate inputs clamp to 0 or the
//!    documented neutral value); NaN/Infinity never reach an export.
//! 2. **Bottleneck attribution** — [`classify`] deterministically assigns
//!    each executed candidate one of four classes
//!    ([`Bottleneck`]): `dma` / `compute` / `stall` / `spm-capacity`,
//!    reproducing the paper's Fig. 9-style DMA-vs-compute analysis per
//!    candidate. The decision rules (documented on [`classify`] and in
//!    DESIGN.md §10) are pure functions of the deterministic counters, so
//!    the class is bit-identical across worker counts.
//!
//! The observatory is read-only over data the machine model already
//! collects: attaching it changes no tuning result, and with telemetry
//! disabled it costs nothing at all.

use sw26010::{Counters, MachineConfig};

use crate::telemetry::float_json;

/// The peak figures a roofline is drawn against, extracted once from a
/// [`MachineConfig`]. Defaults (the paper's machine): 742.4 GFLOPS/CG,
/// 34 GB/s theoretical / 22.6 GB/s achievable DMA bandwidth, 64 KB SPM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peaks {
    /// CPE clock in GHz (converts cycles to seconds).
    pub clock_ghz: f64,
    /// Peak single-precision compute throughput in GFLOPS.
    pub gflops: f64,
    /// Achievable DMA bandwidth in GB/s (the roofline's bandwidth roof).
    pub dma_gbps: f64,
    /// SPM capacity per CPE in bytes.
    pub spm_bytes: f64,
}

impl Peaks {
    pub fn of(cfg: &MachineConfig) -> Peaks {
        Peaks {
            clock_ghz: cfg.clock_ghz,
            gflops: cfg.peak_flops() / 1e9,
            dma_gbps: cfg.dma_achievable_bytes_per_sec() / 1e9,
            spm_bytes: cfg.spm_bytes as f64,
        }
    }

    /// Achievable DMA bytes per CPE-clock cycle.
    fn dma_bytes_per_cycle(&self) -> f64 {
        self.dma_gbps / self.clock_ghz
    }

    /// Roofline ridge point in flops/byte: intensities below it are
    /// bandwidth-limited, above it compute-limited.
    pub fn ridge_intensity(&self) -> f64 {
        self.gflops / self.dma_gbps
    }
}

/// What limits a candidate's performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bottleneck {
    /// DMA traffic dominates: the compute stream visibly stalls on
    /// transfers, or moving the bytes takes longer than computing on them.
    Dma,
    /// The issue pipes are busy: performance tracks the compute roof.
    Compute,
    /// Pipes are mostly idle without DMA pressure: dependency/latency
    /// stalls inside the micro-kernel (small fringe tiles, switch costs).
    Stall,
    /// Memory-dominated *and* the scratch pad is already nearly full:
    /// capacity caps the tile size, and with it the arithmetic intensity.
    SpmCapacity,
}

impl Bottleneck {
    /// Stable lower-case name used in every export and table.
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::Dma => "dma",
            Bottleneck::Compute => "compute",
            Bottleneck::Stall => "stall",
            Bottleneck::SpmCapacity => "spm-capacity",
        }
    }

    /// Parse a [`Bottleneck::name`] back (journal readers).
    pub fn parse(s: &str) -> Option<Bottleneck> {
        match s {
            "dma" => Some(Bottleneck::Dma),
            "compute" => Some(Bottleneck::Compute),
            "stall" => Some(Bottleneck::Stall),
            "spm-capacity" => Some(Bottleneck::SpmCapacity),
            _ => None,
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classification thresholds (pure constants so the attribution is a
/// documented, reproducible function — see DESIGN.md §10).
pub mod thresholds {
    /// A candidate is memory-dominated when at least this fraction of its
    /// cycles stalled in `dma_wait`…
    pub const DMA_STALL_FRAC: f64 = 0.10;
    /// …or when its issue pipes fill at least this fraction of dual-issue
    /// slots (compute-bound).
    pub const ISSUE_UTIL_COMPUTE: f64 = 0.50;
    /// SPM occupancy at or above this fraction marks a memory-dominated
    /// candidate spm-capacity-bound instead of plain dma-bound.
    pub const SPM_OCCUPANCY: f64 = 0.75;
}

/// One metric of the registry.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Stable snake_case key (also the Prometheus metric suffix).
    pub name: &'static str,
    /// One-line human description (Prometheus `# HELP`).
    pub help: &'static str,
}

/// The derived-metric schema, in export order. Append-only: adding a metric
/// is backwards-compatible, renaming or reordering is not.
pub const SCHEMA: &[MetricDef] = &[
    MetricDef { name: "cycles", help: "Simulated cycles of the execution" },
    MetricDef { name: "flops", help: "Floating-point operations performed by GEMM kernels" },
    MetricDef { name: "achieved_gflops", help: "Achieved GFLOPS over the whole execution" },
    MetricDef { name: "pct_peak_gflops", help: "Achieved GFLOPS as % of the CG compute peak" },
    MetricDef { name: "dma_payload_bytes", help: "Useful DMA bytes moved" },
    MetricDef { name: "dma_bus_bytes", help: "Bytes occupied on the DRAM bus" },
    MetricDef {
        name: "dma_effective_gbps",
        help: "Effective DMA bandwidth (bus bytes over wall cycles) in GB/s",
    },
    MetricDef {
        name: "pct_peak_dma_bw",
        help: "Effective DMA bandwidth as % of the achievable 22.6 GB/s peak",
    },
    MetricDef { name: "dma_efficiency", help: "Payload bytes per bus byte (1.0 = aligned)" },
    MetricDef {
        name: "arithmetic_intensity",
        help: "Flops per DRAM bus byte (0 when no DMA ran)",
    },
    MetricDef {
        name: "ridge_intensity",
        help: "Roofline ridge point of the machine in flops/byte",
    },
    MetricDef {
        name: "roofline_gflops",
        help: "Roofline bound at this intensity: min(peak, intensity × DMA peak)",
    },
    MetricDef { name: "pct_roofline", help: "Achieved GFLOPS as % of the roofline bound" },
    MetricDef {
        name: "dma_stall_frac",
        help: "Fraction of cycles the compute stream stalled in dma_wait",
    },
    MetricDef {
        name: "dma_busy_frac",
        help: "Bus traffic over achievable bandwidth, as a fraction of wall cycles",
    },
    MetricDef { name: "kernel_frac", help: "Fraction of cycles inside GEMM kernels" },
    MetricDef {
        name: "aux_compute_frac",
        help: "Fraction of cycles in auxiliary compute (transforms, padding)",
    },
    MetricDef { name: "issue_util_p0", help: "P0 (FP/vector) issue-slot utilisation" },
    MetricDef { name: "issue_util_p1", help: "P1 (memory/regcomm) issue-slot utilisation" },
    MetricDef { name: "issue_slot_util", help: "Combined dual-issue slot utilisation" },
    MetricDef { name: "spm_high_water_bytes", help: "Largest SPM extent touched, in bytes" },
    MetricDef { name: "spm_occupancy", help: "SPM high water as a fraction of capacity" },
    MetricDef {
        name: "overlap_efficiency",
        help: "Fraction of hideable DMA bus time actually hidden behind compute",
    },
];

/// Index of `name` in [`SCHEMA`].
fn schema_index(name: &str) -> Option<usize> {
    SCHEMA.iter().position(|d| d.name == name)
}

/// A filled metric schema: one finite `f64` per [`SCHEMA`] entry, in schema
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSet {
    values: Vec<f64>,
}

impl MetricSet {
    /// Value of a metric by schema name.
    pub fn get(&self, name: &str) -> Option<f64> {
        schema_index(name).map(|i| self.values[i])
    }

    /// `(name, value)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        SCHEMA.iter().zip(&self.values).map(|(d, &v)| (d.name, v))
    }

    /// JSON object `{"cycles":…, …}` in schema order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", float_json(Some(v))));
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition: `swatop_<name>{labels} value` with
    /// `# HELP` / `# TYPE gauge` headers, in schema order. `labels` are
    /// rendered verbatim (values are escaped per the exposition format).
    pub fn prometheus_text(&self, labels: &[(&str, &str)]) -> String {
        let rendered_labels = if labels.is_empty() {
            String::new()
        } else {
            let body: Vec<String> = labels
                .iter()
                .map(|(k, v)| {
                    // Exposition-format escapes for values; carriage returns
                    // fold into the newline escape so a hostile value can
                    // never split the sample line.
                    let v = v
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace(['\n', '\r'], "\\n");
                    // Label names have no escape syntax at all — coerce to
                    // the legal charset ([a-zA-Z_][a-zA-Z0-9_]*).
                    let mut k: String = k
                        .chars()
                        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
                        .collect();
                    if k.is_empty() || k.starts_with(|c: char| c.is_ascii_digit()) {
                        k.insert(0, '_');
                    }
                    format!("{k}=\"{v}\"")
                })
                .collect();
            format!("{{{}}}", body.join(","))
        };
        let mut out = String::new();
        for (d, &v) in SCHEMA.iter().zip(&self.values) {
            out.push_str(&format!(
                "# HELP swatop_{0} {1}\n# TYPE swatop_{0} gauge\nswatop_{0}{2} {3}\n",
                d.name,
                d.help,
                rendered_labels,
                // Prometheus accepts plain decimals; values are finite.
                float_json(Some(v))
            ));
        }
        out
    }
}

/// Safe ratio: 0 when the denominator is not positive.
fn frac(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Fold a counter block and its execution's cycle count into the derived
/// metric schema. Pure and total: any input (including all-zero counters)
/// produces finite values.
pub fn derive(peaks: &Peaks, cycles: u64, c: &Counters) -> MetricSet {
    let secs = cycles as f64 / (peaks.clock_ghz * 1e9);
    let achieved_gflops = frac(c.flops as f64 / 1e9, secs);
    let dma_effective_gbps = frac(c.dma_bus_bytes as f64 / 1e9, secs);
    let intensity = frac(c.flops as f64, c.dma_bus_bytes as f64);
    // No DMA traffic ⇒ the bandwidth roof is irrelevant; the roofline bound
    // is the compute peak.
    let roofline_gflops = if c.dma_bus_bytes == 0 {
        peaks.gflops
    } else {
        peaks.gflops.min(intensity * peaks.dma_gbps)
    };
    let cyc = cycles as f64;
    let kernel_cyc = c.kernel_cycles as f64;
    let mut values = vec![0.0; SCHEMA.len()];
    let mut set = |name: &str, v: f64| {
        let i = schema_index(name).expect("metric in schema");
        values[i] = if v.is_finite() { v } else { 0.0 };
    };
    set("cycles", cyc);
    set("flops", c.flops as f64);
    set("achieved_gflops", achieved_gflops);
    set("pct_peak_gflops", 100.0 * frac(achieved_gflops, peaks.gflops));
    set("dma_payload_bytes", c.dma_payload_bytes as f64);
    set("dma_bus_bytes", c.dma_bus_bytes as f64);
    set("dma_effective_gbps", dma_effective_gbps);
    set("pct_peak_dma_bw", 100.0 * frac(dma_effective_gbps, peaks.dma_gbps));
    set("dma_efficiency", c.dma_efficiency());
    set("arithmetic_intensity", intensity);
    set("ridge_intensity", peaks.ridge_intensity());
    set("roofline_gflops", roofline_gflops);
    set("pct_roofline", 100.0 * frac(achieved_gflops, roofline_gflops));
    set("dma_stall_frac", frac(c.dma_stall_cycles as f64, cyc));
    set("dma_busy_frac", frac(c.dma_bus_bytes as f64 / peaks.dma_bytes_per_cycle(), cyc));
    set("kernel_frac", frac(kernel_cyc, cyc));
    set("aux_compute_frac", frac(c.compute_cycles as f64, cyc));
    set("issue_util_p0", frac(c.issue_p0 as f64, kernel_cyc));
    set("issue_util_p1", frac(c.issue_p1 as f64, kernel_cyc));
    set("issue_slot_util", c.issue_slot_utilization());
    set("spm_high_water_bytes", (c.spm_high_water_elems * 4) as f64);
    set("spm_occupancy", frac((c.spm_high_water_elems * 4) as f64, peaks.spm_bytes));
    // Overlap efficiency: of the DMA bus time that *could* hide behind
    // compute (bounded by whichever of the two is shorter), how much did?
    // Bus time not spent stalling the compute stream counts as hidden.
    let dma_busy = c.dma_bus_bytes as f64 / peaks.dma_bytes_per_cycle();
    let compute_total = kernel_cyc + c.compute_cycles as f64;
    let max_overlap = dma_busy.min(compute_total);
    let achieved = (dma_busy - c.dma_stall_cycles as f64).clamp(0.0, max_overlap);
    set("overlap_efficiency", if max_overlap > 0.0 { achieved / max_overlap } else { 1.0 });
    MetricSet { values }
}

/// Deterministically classify what bounds an execution, from its derived
/// metrics. Decision rules, applied in order:
///
/// 1. *Memory-dominated?* — the compute stream stalled in `dma_wait` for at
///    least [`thresholds::DMA_STALL_FRAC`] of the run, **or** pushing the
///    observed bus traffic through the achievable DMA bandwidth takes
///    longer than the run's kernel + auxiliary compute time (transfers were
///    the long pole even if prefetching hid the stalls).
///    * SPM occupancy ≥ [`thresholds::SPM_OCCUPANCY`] ⇒
///      [`Bottleneck::SpmCapacity`] (the tile already fills the scratch
///      pad; only more capacity would raise intensity);
///    * otherwise ⇒ [`Bottleneck::Dma`].
/// 2. Not memory-dominated and dual-issue utilisation ≥
///    [`thresholds::ISSUE_UTIL_COMPUTE`] ⇒ [`Bottleneck::Compute`].
/// 3. Otherwise ⇒ [`Bottleneck::Stall`] (pipes idle without DMA pressure:
///    dependency latency, fringe tiles, switch overhead).
pub fn classify_metrics(m: &MetricSet) -> Bottleneck {
    let get = |n: &str| m.get(n).expect("schema metric");
    let memory_dominated = get("dma_stall_frac") >= thresholds::DMA_STALL_FRAC
        || get("dma_busy_frac") > get("kernel_frac") + get("aux_compute_frac");
    if memory_dominated {
        if get("spm_occupancy") >= thresholds::SPM_OCCUPANCY {
            Bottleneck::SpmCapacity
        } else {
            Bottleneck::Dma
        }
    } else if get("issue_slot_util") >= thresholds::ISSUE_UTIL_COMPUTE {
        Bottleneck::Compute
    } else {
        Bottleneck::Stall
    }
}

/// [`derive`] + [`classify_metrics`] in one step.
pub fn classify(peaks: &Peaks, cycles: u64, c: &Counters) -> Bottleneck {
    classify_metrics(&derive(peaks, cycles, c))
}

/// Full attribution of one execution: the derived metrics and the
/// bottleneck class they imply.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    pub metrics: MetricSet,
    pub bottleneck: Bottleneck,
}

/// Attribute one execution (the per-candidate unit the tables, span args
/// and journal records are built from).
pub fn attribute(peaks: &Peaks, cycles: u64, c: &Counters) -> Attribution {
    let metrics = derive(peaks, cycles, c);
    let bottleneck = classify_metrics(&metrics);
    Attribution { metrics, bottleneck }
}

/// Bottleneck class counts over a set of executed candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BottleneckMix {
    pub dma: usize,
    pub compute: usize,
    pub stall: usize,
    pub spm_capacity: usize,
}

impl BottleneckMix {
    pub fn note(&mut self, b: Bottleneck) {
        match b {
            Bottleneck::Dma => self.dma += 1,
            Bottleneck::Compute => self.compute += 1,
            Bottleneck::Stall => self.stall += 1,
            Bottleneck::SpmCapacity => self.spm_capacity += 1,
        }
    }

    pub fn total(&self) -> usize {
        self.dma + self.compute + self.stall + self.spm_capacity
    }

    /// The most common class; ties break in [`Bottleneck`] declaration
    /// order (dma > compute > stall > spm-capacity). `None` when empty.
    pub fn dominant(&self) -> Option<Bottleneck> {
        if self.total() == 0 {
            return None;
        }
        let counts = [
            (self.dma, Bottleneck::Dma),
            (self.compute, Bottleneck::Compute),
            (self.stall, Bottleneck::Stall),
            (self.spm_capacity, Bottleneck::SpmCapacity),
        ];
        // max_by_key keeps the *last* maximum; scanning reversed makes ties
        // resolve to the earliest-declared class.
        counts.iter().rev().max_by_key(|(n, _)| *n).map(|&(_, b)| b)
    }

    /// Compact human rendering, e.g. `dma 12 / compute 3 / stall 1 / spm 0`.
    pub fn summary(&self) -> String {
        format!(
            "dma {} / compute {} / stall {} / spm {}",
            self.dma, self.compute, self.stall, self.spm_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::validate_json;

    fn peaks() -> Peaks {
        Peaks::of(&MachineConfig::default())
    }

    #[test]
    fn schema_names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for d in SCHEMA {
            assert!(seen.insert(d.name), "duplicate metric {}", d.name);
            assert!(!d.help.is_empty());
            assert!(
                d.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{} not snake_case",
                d.name
            );
        }
    }

    #[test]
    fn default_peaks_match_paper_figures() {
        let p = peaks();
        assert!((p.gflops - 742.4).abs() < 0.1);
        assert!((p.dma_gbps - 22.6).abs() < 1e-9);
        // Ridge ≈ 742.4 / 22.6 ≈ 32.8 flops/byte.
        assert!((p.ridge_intensity() - 742.4 / 22.6).abs() < 0.1);
    }

    /// Counters of a healthy, compute-heavy run: pipes busy, modest DMA.
    fn compute_heavy() -> (u64, Counters) {
        let cycles = 1_000_000;
        let c = Counters {
            flops: 500_000_000, // ≈ 725 GFLOPS at 1.45 GHz
            kernel_cycles: 950_000,
            kernel_calls: 10,
            issue_p0: 900_000,
            issue_p1: 500_000,
            dma_payload_bytes: 1 << 20,
            dma_bus_bytes: 1 << 20,
            dma_batches: 16,
            spm_high_water_elems: 8 * 1024,
            ..Counters::default()
        };
        (cycles, c)
    }

    #[test]
    fn derive_matches_hand_computation() {
        let p = peaks();
        let (cycles, c) = compute_heavy();
        let m = derive(&p, cycles, &c);
        let secs = cycles as f64 / 1.45e9;
        let gflops = c.flops as f64 / 1e9 / secs;
        assert!((m.get("achieved_gflops").unwrap() - gflops).abs() < 1e-9);
        assert!((m.get("pct_peak_gflops").unwrap() - 100.0 * gflops / p.gflops).abs() < 1e-9);
        let gbps = c.dma_bus_bytes as f64 / 1e9 / secs;
        assert!((m.get("dma_effective_gbps").unwrap() - gbps).abs() < 1e-9);
        assert!(
            (m.get("arithmetic_intensity").unwrap()
                - c.flops as f64 / c.dma_bus_bytes as f64)
                .abs()
                < 1e-9
        );
        // 8K elements = 32 KB of the 64 KB SPM.
        assert!((m.get("spm_occupancy").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_counters_stay_finite() {
        let p = peaks();
        for (cycles, c) in [
            (0, Counters::default()),
            (100, Counters::default()),
            (0, compute_heavy().1),
        ] {
            let m = derive(&p, cycles, &c);
            for (name, v) in m.iter() {
                assert!(v.is_finite(), "{name} = {v} for cycles={cycles}");
            }
            validate_json(&m.to_json()).unwrap();
        }
    }

    #[test]
    fn classify_compute_bound() {
        let (cycles, c) = compute_heavy();
        assert_eq!(classify(&peaks(), cycles, &c), Bottleneck::Compute);
    }

    #[test]
    fn classify_dma_bound_by_stalls() {
        let (cycles, mut c) = compute_heavy();
        c.dma_stall_cycles = cycles / 5; // 20% of the run stalled
        assert_eq!(classify(&peaks(), cycles, &c), Bottleneck::Dma);
    }

    #[test]
    fn classify_dma_bound_by_traffic_volume() {
        let p = peaks();
        // Ten × more bus traffic than achievable bandwidth could move in the
        // run's compute time: memory is the long pole even without stalls.
        let cycles = 1_000_000u64;
        let c = Counters {
            dma_bus_bytes: (10.0 * p.dma_bytes_per_cycle() * cycles as f64) as u64,
            dma_payload_bytes: 1,
            kernel_cycles: 100_000,
            issue_p0: 190_000,
            issue_p1: 190_000,
            flops: 1000,
            ..Counters::default()
        };
        assert_eq!(classify(&p, cycles, &c), Bottleneck::Dma);
    }

    #[test]
    fn classify_spm_capacity_bound() {
        let (cycles, mut c) = compute_heavy();
        c.dma_stall_cycles = cycles / 5;
        c.spm_high_water_elems = 15 * 1024; // 60 KB of 64 KB: ≥ 75%
        assert_eq!(classify(&peaks(), cycles, &c), Bottleneck::SpmCapacity);
    }

    #[test]
    fn classify_stall_bound() {
        let (cycles, mut c) = compute_heavy();
        // Pipes mostly idle, no DMA pressure.
        c.issue_p0 = 100_000;
        c.issue_p1 = 100_000;
        assert_eq!(classify(&peaks(), cycles, &c), Bottleneck::Stall);
    }

    #[test]
    fn bottleneck_names_round_trip() {
        for b in
            [Bottleneck::Dma, Bottleneck::Compute, Bottleneck::Stall, Bottleneck::SpmCapacity]
        {
            assert_eq!(Bottleneck::parse(b.name()), Some(b));
        }
        assert_eq!(Bottleneck::parse("nope"), None);
    }

    #[test]
    fn mix_counts_and_dominates() {
        let mut mix = BottleneckMix::default();
        assert_eq!(mix.dominant(), None);
        for b in [Bottleneck::Dma, Bottleneck::Dma, Bottleneck::Compute] {
            mix.note(b);
        }
        assert_eq!(mix.total(), 3);
        assert_eq!(mix.dominant(), Some(Bottleneck::Dma));
        assert_eq!(mix.summary(), "dma 2 / compute 1 / stall 0 / spm 0");
        // Ties resolve in declaration order, not whichever count came last.
        let tied = BottleneckMix { dma: 0, compute: 2, stall: 1, spm_capacity: 2 };
        assert_eq!(tied.dominant(), Some(Bottleneck::Compute));
    }

    #[test]
    fn exporters_are_stable_and_valid() {
        let p = peaks();
        let (cycles, c) = compute_heavy();
        let m = derive(&p, cycles, &c);
        let json = m.to_json();
        validate_json(&json).unwrap();
        // Schema order is preserved in the JSON text.
        let mut last = 0;
        for d in SCHEMA {
            let key = format!("\"{}\":", d.name);
            let pos = json.find(&key).unwrap_or_else(|| panic!("{} missing", d.name));
            assert!(pos >= last, "{} out of order", d.name);
            last = pos;
        }
        let prom = m.prometheus_text(&[("op", "gemm \"x\""), ("candidate", "3")]);
        for d in SCHEMA {
            assert!(prom.contains(&format!("# TYPE swatop_{} gauge", d.name)));
            assert!(prom.contains(&format!("swatop_{}{{", d.name)));
        }
        assert!(prom.contains("op=\"gemm \\\"x\\\"\""));
        let bare = m.prometheus_text(&[]);
        assert!(bare.contains("swatop_cycles 1000000\n"));
    }

    #[test]
    fn prometheus_text_survives_hostile_labels() {
        let p = peaks();
        let (cycles, c) = compute_heavy();
        let m = derive(&p, cycles, &c);
        let prom = m.prometheus_text(&[
            ("op", "evil\ninjected_metric 1"),
            ("path", "C:\\spm\\\"quoted\""),
            ("crlf", "a\r\nb"),
            ("bad-key!", "v"),
            ("9lives", "v"),
        ]);
        // Every line is a HELP/TYPE comment or a sample — a newline in a
        // label value must never fabricate a new exposition line.
        for line in prom.lines() {
            assert!(
                line.starts_with("# HELP swatop_")
                    || line.starts_with("# TYPE swatop_")
                    || line.starts_with("swatop_"),
                "injected line: {line:?}"
            );
        }
        assert!(prom.contains("op=\"evil\\ninjected_metric 1\""));
        assert!(prom.contains("path=\"C:\\\\spm\\\\\\\"quoted\\\"\""));
        assert!(prom.contains("crlf=\"a\\n\\nb\""), "CR folds into the newline escape");
        assert!(prom.contains("bad_key_=\"v\""), "label names coerced to the legal charset");
        assert!(prom.contains("_9lives=\"v\""), "leading digit gets a prefix");
        // HELP/TYPE headers survive per metric, hostile labels or not.
        for d in SCHEMA {
            assert!(prom.contains(&format!("# HELP swatop_{} {}", d.name, d.help)));
            assert!(prom.contains(&format!("# TYPE swatop_{} gauge", d.name)));
        }
    }
}
