//! Code generation: SPM allocation planning and C source emission.
//!
//! The paper's code generator "analyzes the memory usage information in the
//! IR and allocates all buffers into a single coalesced region" (Sec. 4.7).
//! [`plan`] performs that allocation for the simulated machine and rejects
//! programs that exceed the 64 KB scratch pad — the same capacity filter the
//! scheduler applies while enumerating candidates.

pub mod c_emit;

use sw26010::{MachineConfig, MachineError, MachineResult};
use swatop_ir::{Program, SpmBufId};

/// A program with a concrete SPM allocation, ready to execute or emit.
#[derive(Debug, Clone, PartialEq)]
pub struct Executable {
    pub program: Program,
    /// Element offset of each SPM buffer within the coalesced region.
    pub spm_offsets: Vec<usize>,
    /// Total per-CPE SPM elements used.
    pub spm_used: usize,
}

impl Executable {
    /// Offset of an SPM buffer.
    pub fn spm_offset(&self, id: SpmBufId) -> usize {
        self.spm_offsets[id.0]
    }

    /// Checked variant of [`Executable::spm_offset`] for untrusted programs:
    /// a dangling SPM buffer id is a schedule bug, not a reason to panic.
    pub fn try_spm_offset(&self, id: SpmBufId) -> Option<usize> {
        self.spm_offsets.get(id.0).copied()
    }

    /// Emit C-like source for the program (the offline-compiler output).
    pub fn emit_c(&self) -> String {
        c_emit::emit(self)
    }
}

/// Plan the coalesced SPM allocation for `program` under `cfg`.
///
/// Buffers are packed in declaration order; the high-water mark must fit in
/// the SPM. A failure here marks the schedule candidate invalid.
pub fn plan(program: Program, cfg: &MachineConfig) -> MachineResult<Executable> {
    let mut planner = sw26010::spm::SpmPlanner::new();
    let mut offsets = Vec::with_capacity(program.spm_bufs.len());
    for b in &program.spm_bufs {
        offsets.push(planner.alloc(b.len));
    }
    if !planner.fits(cfg.spm_bytes) {
        return Err(MachineError::SpmOverflow {
            cpe: 0,
            offset: 0,
            len: planner.used(),
            capacity: cfg.spm_elems(),
        });
    }
    Ok(Executable { program, spm_offsets: offsets, spm_used: planner.used() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swatop_ir::Program;

    #[test]
    fn plan_packs_in_order() {
        let cfg = MachineConfig::default();
        let mut p = Program::new("t");
        let a = p.spm_buf("a", 100);
        let b = p.spm_buf("b", 50);
        let exe = plan(p, &cfg).unwrap();
        assert_eq!(exe.spm_offset(a), 0);
        assert_eq!(exe.spm_offset(b), 100);
        assert_eq!(exe.spm_used, 150);
    }

    #[test]
    fn plan_rejects_oversized() {
        let cfg = MachineConfig::default();
        let mut p = Program::new("t");
        p.spm_buf("big", cfg.spm_elems() + 1);
        assert!(plan(p, &cfg).is_err());
    }

    #[test]
    fn plan_accepts_exact_fit() {
        let cfg = MachineConfig::default();
        let mut p = Program::new("t");
        p.spm_buf("big", cfg.spm_elems());
        assert!(plan(p, &cfg).is_ok());
    }
}
