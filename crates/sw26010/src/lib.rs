//! # sw26010 — a deterministic machine model of one SW26010 core group
//!
//! The SW26010 many-core processor (Sunway TaihuLight) is not available in
//! this environment, so this crate substitutes a *simulated* core group (CG)
//! built from the architectural facts published in the swATOP paper (ICPP
//! 2019, Sec. 2 and Appendix) and its citations:
//!
//! * 64 computing processing elements (CPEs) arranged as an 8×8 mesh, each
//!   with a 64 KB software-managed scratch pad memory (SPM);
//! * a DMA engine moving data between main memory and the SPMs, in units of
//!   128-byte DRAM transactions, with continuous and strided access modes and
//!   asynchronous completion through *reply words*;
//! * a register-communication mesh offering low-latency row/column broadcast
//!   between CPEs;
//! * two in-order issue pipelines per CPE — P0 for floating-point (incl.
//!   256-bit vector MAC) and P1 for memory operations — modelled by a
//!   dual-issue scoreboard.
//!
//! The model is **bit-deterministic** and offers two execution modes:
//!
//! * [`ExecMode::Functional`] — data is really moved and computed on, so the
//!   correctness of generated schedules (DMA offsets, layouts, boundary
//!   handling) is observable;
//! * [`ExecMode::CostOnly`] — only the cycle clocks advance, which is what
//!   autotuners measure.
//!
//! ```
//! use sw26010::{CoreGroup, ExecMode, DmaDirection, DmaRequest};
//!
//! // Move 64 floats into CPE 3's scratch pad and back.
//! let mut cg = CoreGroup::with_mode(ExecMode::Functional);
//! let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
//! let src = cg.mem.alloc_from("src", &data);
//! let dst = cg.mem.alloc("dst", 64);
//! let (b_src, b_dst) = (cg.mem.base(src), cg.mem.base(dst));
//! let reply = cg.alloc_reply();
//! cg.dma(DmaDirection::MemToSpm,
//!        &[DmaRequest::contiguous(3, DmaDirection::MemToSpm, b_src, 0, 64)], reply).unwrap();
//! cg.dma_wait(reply, 1).unwrap();
//! cg.dma(DmaDirection::SpmToMem,
//!        &[DmaRequest::contiguous(3, DmaDirection::SpmToMem, b_dst, 0, 64)], reply).unwrap();
//! cg.dma_wait(reply, 1).unwrap();
//! assert_eq!(cg.mem.buffer(dst), data.as_slice());
//! assert!(cg.now().get() > 0); // the transfers cost simulated time
//! ```
//!
//! Time is counted in [`Cycles`] of the 1.45 GHz CPE clock. Overlap between
//! DMA and computation arises naturally: DMA issue reserves the (shared)
//! engine and records a completion time in the reply word; a later
//! [`CoreGroup::dma_wait`] advances the compute clock only if the transfer
//! has not finished yet. Double buffering therefore *actually* hides latency
//! in this model, exactly the effect the paper's Fig. 10 measures.

pub mod chrome_trace;
pub mod clock;
pub mod config;
pub mod counters;
pub mod dma;
pub mod error;
pub mod fault;
pub mod gldst;
pub mod json;
pub mod mem;
pub mod pipeline;
pub mod profile;
pub mod regcomm;
pub mod spm;
pub mod trace;

pub mod cluster;

pub use clock::Cycles;
pub use cluster::{CoreGroup, ExecMode};
pub use config::MachineConfig;
pub use counters::Counters;
pub use dma::{DmaDirection, DmaRequest, ReplyWord};
pub use error::{MachineError, MachineResult};
pub use fault::{FaultPlan, FaultSession};
pub use mem::{BufferId, MainMemory};
pub use pipeline::{Instruction, Pipe, Scoreboard};
pub use spm::Spm;

/// Number of CPEs in one core group.
pub const N_CPE: usize = 64;
/// Mesh side: the CPE cluster is an 8×8 grid.
pub const MESH: usize = 8;
/// Size of one f32 element in bytes.
pub const ELEM_BYTES: usize = 4;

/// Row id of a CPE within the 8×8 mesh.
#[inline]
pub fn rid(cpe: usize) -> usize {
    cpe / MESH
}

/// Column id of a CPE within the 8×8 mesh.
#[inline]
pub fn cid(cpe: usize) -> usize {
    cpe % MESH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_ids_cover_grid() {
        let mut seen = [[false; MESH]; MESH];
        for cpe in 0..N_CPE {
            seen[rid(cpe)][cid(cpe)] = true;
        }
        assert!(seen.iter().flatten().all(|&b| b));
    }
}
