//! Dual-issue in-order pipeline scoreboard.
//!
//! Each CPE decodes and issues up to two instructions per cycle: one on P0
//! (floating-point and vector operations) and one on P1 (memory and
//! register-communication operations). Issue is in order; an instruction
//! stalls until its source operands are ready (Read-After-Write hazard) and
//! its pipeline is free. The hand-written GEMM micro-kernels of swDNN/swATOP
//! are scheduled so that the 16 `vmad`s of a 4×4 register block dual-issue
//! with the loads of the *next* block, achieving "16 vmad operations in 16
//! cycles" (paper Appendix).
//!
//! This scoreboard is the ground truth that the autotuner's fitted linear
//! model (Eq. 2) approximates. It is deliberately more detailed than the
//! model: hazard stalls at small K, drained pipelines at block switches and
//! loop overheads make the simulated time a non-linear function of the tile
//! shape.

use crate::clock::Cycles;

/// Which pipeline an instruction issues on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipe {
    /// Floating-point / vector pipe.
    P0,
    /// Memory / register-communication pipe.
    P1,
}

/// A register id in the scoreboard's flat register file. The real CPE has 32
/// vector registers; the micro-kernel generators stay within that budget and
/// the scoreboard checks it.
pub type Reg = u16;

/// Maximum architectural vector registers per CPE.
pub const NUM_VREGS: usize = 32;

/// One scheduled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    pub pipe: Pipe,
    /// Destination register, if any (None for stores / control).
    pub dst: Option<Reg>,
    /// Up to three source registers.
    pub srcs: [Option<Reg>; 3],
    /// Result latency in cycles (issue → dst ready).
    pub latency: u64,
}

impl Instruction {
    pub fn new(pipe: Pipe, dst: Option<Reg>, srcs: &[Reg], latency: u64) -> Self {
        let mut s = [None; 3];
        for (slot, &r) in s.iter_mut().zip(srcs.iter()) {
            *slot = Some(r);
        }
        debug_assert!(srcs.len() <= 3, "at most 3 sources");
        Instruction { pipe, dst, srcs: s, latency }
    }
}

/// In-order dual-issue scoreboard simulator.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    reg_ready: Vec<u64>,
    pipe_free: [u64; 2],
    prev_issue: u64,
    finish: u64,
    issued: u64,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new(NUM_VREGS)
    }
}

impl Scoreboard {
    /// Create a scoreboard with `nregs` registers (all ready at cycle 0).
    pub fn new(nregs: usize) -> Self {
        Scoreboard {
            reg_ready: vec![0; nregs],
            pipe_free: [0, 0],
            prev_issue: 0,
            finish: 0,
            issued: 0,
        }
    }

    /// Issue one instruction, returning its issue cycle.
    pub fn issue(&mut self, ins: &Instruction) -> u64 {
        let pipe_idx = match ins.pipe {
            Pipe::P0 => 0,
            Pipe::P1 => 1,
        };
        // In-order issue: never earlier than the previous instruction's
        // issue cycle; one instruction per pipe per cycle; RAW stalls.
        let mut t = self.prev_issue.max(self.pipe_free[pipe_idx]);
        for src in ins.srcs.iter().flatten() {
            t = t.max(self.reg_ready[*src as usize]);
        }
        self.pipe_free[pipe_idx] = t + 1;
        self.prev_issue = t;
        if let Some(d) = ins.dst {
            self.reg_ready[d as usize] = t + ins.latency;
        }
        self.finish = self.finish.max(t + ins.latency);
        self.issued += 1;
        t
    }

    /// Run a whole instruction stream, returning the cycle at which the last
    /// result is available.
    pub fn run(&mut self, stream: &[Instruction]) -> Cycles {
        for ins in stream {
            self.issue(ins);
        }
        Cycles(self.finish)
    }

    /// Insert a full pipeline drain (e.g. a taken branch at a loop
    /// boundary): the next instruction cannot issue before all in-flight
    /// results complete, plus `penalty` cycles.
    pub fn drain(&mut self, penalty: u64) {
        let all_done = self
            .reg_ready
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.finish);
        self.prev_issue = self.prev_issue.max(all_done) + penalty;
        self.pipe_free = [self.prev_issue, self.prev_issue];
    }

    /// Advance the clock by `c` cycles of serial work (scalar loop
    /// book-keeping that dual-issues with nothing).
    pub fn serial(&mut self, c: u64) {
        self.prev_issue += c;
        self.pipe_free[0] = self.pipe_free[0].max(self.prev_issue);
        self.pipe_free[1] = self.pipe_free[1].max(self.prev_issue);
        self.finish = self.finish.max(self.prev_issue);
    }

    /// Cycle at which everything issued so far has completed.
    pub fn finish_time(&self) -> Cycles {
        Cycles(self.finish.max(self.prev_issue))
    }

    /// Instructions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VMAD: u64 = 7;
    const VLDD: u64 = 4;

    #[test]
    fn independent_ops_dual_issue() {
        // One P0 op and one P1 op with no deps issue in the same cycle.
        let mut sb = Scoreboard::new(8);
        let t0 = sb.issue(&Instruction::new(Pipe::P0, Some(0), &[], VMAD));
        let t1 = sb.issue(&Instruction::new(Pipe::P1, Some(1), &[], VLDD));
        assert_eq!(t0, 0);
        assert_eq!(t1, 0);
    }

    #[test]
    fn same_pipe_serialises() {
        let mut sb = Scoreboard::new(8);
        let t0 = sb.issue(&Instruction::new(Pipe::P0, Some(0), &[], VMAD));
        let t1 = sb.issue(&Instruction::new(Pipe::P0, Some(1), &[], VMAD));
        assert_eq!(t1, t0 + 1);
    }

    #[test]
    fn raw_hazard_stalls() {
        let mut sb = Scoreboard::new(8);
        sb.issue(&Instruction::new(Pipe::P1, Some(0), &[], VLDD));
        // Consumer of r0 must wait for the load latency.
        let t = sb.issue(&Instruction::new(Pipe::P0, Some(1), &[0], VMAD));
        assert_eq!(t, VLDD);
    }

    #[test]
    fn in_order_issue_is_monotonic() {
        let mut sb = Scoreboard::new(8);
        sb.issue(&Instruction::new(Pipe::P1, Some(0), &[], 20));
        let t_dep = sb.issue(&Instruction::new(Pipe::P0, Some(1), &[0], VMAD));
        // A later independent instruction cannot issue before the stalled one.
        let t_indep = sb.issue(&Instruction::new(Pipe::P1, Some(2), &[], VLDD));
        assert!(t_indep >= t_dep);
    }

    #[test]
    fn sixteen_vmads_in_sixteen_cycles() {
        // The paper's steady-state claim: with operands pre-loaded, a 4×4
        // register block of independent accumulations issues 1 vmad/cycle.
        let mut sb = Scoreboard::new(32);
        // Accumulators r0..r15, operands r16, r17 ready at time 0.
        let first = sb.issue(&Instruction::new(Pipe::P0, Some(0), &[16, 17, 0], VMAD));
        let mut last = first;
        for i in 1..16u16 {
            last = sb.issue(&Instruction::new(Pipe::P0, Some(i), &[16, 17, i], VMAD));
        }
        assert_eq!(last - first, 15, "16 vmads must issue in 16 cycles");
    }

    #[test]
    fn drain_forces_completion() {
        let mut sb = Scoreboard::new(8);
        sb.issue(&Instruction::new(Pipe::P0, Some(0), &[], 50));
        sb.drain(3);
        let t = sb.issue(&Instruction::new(Pipe::P0, Some(1), &[], 1));
        assert!(t >= 53);
    }

    #[test]
    fn serial_advances_clock() {
        let mut sb = Scoreboard::new(4);
        sb.serial(10);
        let t = sb.issue(&Instruction::new(Pipe::P0, Some(0), &[], 1));
        assert!(t >= 10);
        assert!(sb.finish_time().get() >= 11);
    }

    #[test]
    fn run_returns_final_latency() {
        let mut sb = Scoreboard::new(4);
        let stream =
            vec![Instruction::new(Pipe::P0, Some(0), &[], VMAD); 4];
        let done = sb.run(&stream);
        // 4 serial-issue vmads: issues at 0..3, last result at 3 + 7.
        assert_eq!(done, Cycles(3 + VMAD));
        assert_eq!(sb.issued(), 4);
    }
}
