//! Cycle counting and conversion to wall-clock / throughput units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A duration or timestamp measured in CPE clock cycles.
///
/// All costs in the machine model are expressed in cycles of the 1.45 GHz
/// CPE clock; conversion to seconds and GFLOPS happens only at reporting
/// time through [`MachineConfig`](crate::MachineConfig) helpers or
/// [`Cycles::seconds_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    pub const ZERO: Cycles = Cycles(0);

    #[inline]
    pub fn new(c: u64) -> Self {
        Cycles(c)
    }

    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Convert to seconds at a given clock frequency in GHz.
    #[inline]
    pub fn seconds_at(self, clock_ghz: f64) -> f64 {
        self.0 as f64 / (clock_ghz * 1e9)
    }

    /// Saturating subtraction, used when computing slack between clocks.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// Throughput in GFLOPS achieved by `flops` floating-point operations over
/// `cycles` at `clock_ghz`.
pub fn gflops(flops: u64, cycles: Cycles, clock_ghz: f64) -> f64 {
    if cycles.0 == 0 {
        return 0.0;
    }
    flops as f64 / cycles.seconds_at(clock_ghz) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversion() {
        let c = Cycles(1_450_000_000);
        assert!((c.seconds_at(1.45) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(9) - Cycles(4), Cycles(5));
        assert_eq!(Cycles(2).saturating_sub(Cycles(5)), Cycles(0));
        let s: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(s, Cycles(6));
    }

    #[test]
    fn gflops_of_peak() {
        // 64 CPEs * 8 flops/cycle at 1.45 GHz = 742.4 GFLOPS.
        let flops = 64u64 * 8 * 1_450_000_000;
        let g = gflops(flops, Cycles(1_450_000_000), 1.45);
        assert!((g - 742.4).abs() < 0.1, "got {g}");
    }

    #[test]
    fn zero_cycles_gives_zero_gflops() {
        assert_eq!(gflops(100, Cycles::ZERO, 1.45), 0.0);
    }
}
