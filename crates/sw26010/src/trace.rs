//! Execution trace: an optional, bounded event log for debugging generated
//! schedules and for asserting structural properties in tests (e.g. "the
//! double-buffered schedule issues the DMA for iteration i+1 before waiting
//! on iteration i").

use crate::clock::Cycles;
use crate::dma::DmaDirection;

/// One recorded machine event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A DMA batch was issued at `at`, completing at `done`.
    DmaIssue {
        at: Cycles,
        done: Cycles,
        direction: DmaDirection,
        payload_bytes: usize,
        bus_bytes: usize,
        tag: u32,
    },
    /// The compute stream waited for DMA tag `tag`; `stall` cycles were lost.
    DmaWait { at: Cycles, stall: Cycles, tag: u32 },
    /// A GEMM kernel executed.
    Gemm { at: Cycles, cycles: Cycles, m: usize, n: usize, k: usize },
    /// Scalar / auxiliary compute on the CPEs.
    Compute { at: Cycles, cycles: Cycles, what: &'static str },
    /// Register-communication traffic: the scatter phase of a broadcast DMA
    /// batch, serialised after the leader fetch completes.
    Regcomm { at: Cycles, cycles: Cycles, bytes: usize },
}

/// Bounded event trace. Disabled (zero-cost) by default.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
    cap: usize,
    truncated: bool,
}

impl Trace {
    pub fn disabled() -> Self {
        Trace { enabled: false, events: Vec::new(), cap: 0, truncated: false }
    }

    pub fn enabled(cap: usize) -> Self {
        Trace { enabled: true, events: Vec::new(), cap, truncated: false }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn push(&mut self, e: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(e);
        } else {
            // The bounded cap dropped this event: remember it, so consumers
            // (timeline builder, exporters) can flag the clipped window
            // instead of presenting a silently incomplete execution.
            self.truncated = true;
        }
    }

    /// Did the bounded cap drop any event? A truncated trace still holds
    /// the first `cap` events, but timelines built from it are incomplete.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.truncated = false;
    }

    /// Total cycles the compute stream stalled waiting on DMA.
    pub fn total_dma_stall(&self) -> Cycles {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::DmaWait { stall, .. } => Some(*stall),
                _ => None,
            })
            .sum()
    }

    /// Number of events of each broad kind (issue, wait, gemm, compute).
    /// Regcomm scatters describe a slice of the DMA batch that produced
    /// them, not a new machine operation, so they are not counted here.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for e in &self.events {
            match e {
                Event::DmaIssue { .. } => c.0 += 1,
                Event::DmaWait { .. } => c.1 += 1,
                Event::Gemm { .. } => c.2 += 1,
                Event::Compute { .. } => c.3 += 1,
                Event::Regcomm { .. } => {}
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(Event::Compute { at: Cycles(0), cycles: Cycles(1), what: "x" });
        assert!(t.events().is_empty());
    }

    #[test]
    fn bounded_capacity() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.push(Event::Compute { at: Cycles(i), cycles: Cycles(1), what: "x" });
        }
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn truncation_is_flagged_and_cleared() {
        let mut t = Trace::enabled(1);
        t.push(Event::Compute { at: Cycles(0), cycles: Cycles(1), what: "x" });
        assert!(!t.truncated(), "within cap: not truncated");
        t.push(Event::Compute { at: Cycles(1), cycles: Cycles(1), what: "y" });
        assert!(t.truncated(), "over cap: flagged");
        assert_eq!(t.events().len(), 1, "dropped events stay dropped");
        t.clear();
        assert!(!t.truncated(), "clear resets the flag");
        // A disabled trace never truncates — it records nothing at all.
        let mut d = Trace::disabled();
        d.push(Event::Compute { at: Cycles(0), cycles: Cycles(1), what: "x" });
        assert!(!d.truncated());
    }

    #[test]
    fn stall_accounting() {
        let mut t = Trace::enabled(16);
        t.push(Event::DmaWait { at: Cycles(5), stall: Cycles(10), tag: 0 });
        t.push(Event::DmaWait { at: Cycles(9), stall: Cycles(7), tag: 1 });
        t.push(Event::Gemm { at: Cycles(0), cycles: Cycles(3), m: 1, n: 1, k: 1 });
        assert_eq!(t.total_dma_stall(), Cycles(17));
        assert_eq!(t.counts(), (0, 2, 1, 0));
    }
}
