//! Chrome-trace export: render a recorded [`Trace`](crate::trace::Trace)
//! as a `chrome://tracing` / Perfetto JSON file, with the DMA engine and
//! the CPE compute stream as separate tracks.
//!
//! This is developer tooling for inspecting generated schedules — the
//! overlap (or lack of it) between the prefetched transfers and the GEMM
//! stream is immediately visible on the two tracks.

use std::fmt::Write as _;

use crate::trace::{Event, Trace};

/// Convert cycle timestamps to the JSON's microsecond unit.
fn us(cycles: u64, clock_ghz: f64) -> f64 {
    cycles as f64 / (clock_ghz * 1e3)
}

/// Re-export of the shared escape helper (historically defined here; the
/// single implementation now lives in [`crate::json`] with its own tests).
pub use crate::json::escape_json;

/// Render the trace as Chrome trace-event JSON ("traceEvents" array form).
///
/// Track (tid) 0 is the CPE compute stream (GEMMs, transforms, stalls);
/// track 1 is the DMA engine (one slice per batch, issue → completion).
pub fn to_chrome_json(trace: &Trace, clock_ghz: f64) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let emit = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for e in trace.events() {
        match e {
            Event::Gemm { at, cycles, m, n, k } => emit(
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                     \"ts\":{:.3},\"dur\":{:.3}}}",
                    escape_json(&format!("gemm {m}x{n}x{k}")),
                    us(at.get(), clock_ghz),
                    us(cycles.get(), clock_ghz)
                ),
                &mut out,
                &mut first,
            ),
            Event::Compute { at, cycles, what } => emit(
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                     \"ts\":{:.3},\"dur\":{:.3}}}",
                    escape_json(what),
                    us(at.get(), clock_ghz),
                    us(cycles.get(), clock_ghz)
                ),
                &mut out,
                &mut first,
            ),
            Event::DmaWait { at, stall, tag } => {
                if stall.get() > 0 {
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                             \"ts\":{:.3},\"dur\":{:.3}}}",
                            escape_json(&format!("stall (tag {tag})")),
                            us(at.get(), clock_ghz),
                            us(stall.get(), clock_ghz)
                        ),
                        &mut out,
                        &mut first,
                    );
                }
            }
            Event::DmaIssue { at, done, direction, payload_bytes, tag, .. } => emit(
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\
                     \"pid\":0,\"tid\":1,\"ts\":{:.3},\"dur\":{:.3}}}",
                    escape_json(&format!("dma {direction:?} {payload_bytes}B (tag {tag})")),
                    us(at.get(), clock_ghz),
                    us(done.get().saturating_sub(at.get()), clock_ghz)
                ),
                &mut out,
                &mut first,
            ),
            Event::Regcomm { at, cycles, bytes } => emit(
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\
                     \"pid\":0,\"tid\":1,\"ts\":{:.3},\"dur\":{:.3}}}",
                    escape_json(&format!("regcomm scatter {bytes}B")),
                    us(at.get(), clock_ghz),
                    us(cycles.get(), clock_ghz)
                ),
                &mut out,
                &mut first,
            ),
        }
    }
    // Track names.
    let mut meta = String::new();
    let _ = write!(
        meta,
        ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"CPE compute\"}}}},\n\
         {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\
         \"args\":{{\"name\":\"DMA engine\"}}}}"
    );
    if first {
        // No events: drop the leading comma of the metadata block.
        out.push_str(&meta[2..]);
    } else {
        out.push_str(&meta);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Cycles;
    use crate::trace::Trace;
    use crate::DmaDirection;

    #[test]
    fn renders_valid_shaped_json() {
        let mut t = Trace::enabled(16);
        t.push(Event::DmaIssue {
            at: Cycles(0),
            done: Cycles(500),
            direction: DmaDirection::MemToSpm,
            payload_bytes: 4096,
            bus_bytes: 4096,
            tag: 0,
        });
        t.push(Event::Gemm { at: Cycles(100), cycles: Cycles(400), m: 64, n: 64, k: 64 });
        t.push(Event::DmaWait { at: Cycles(500), stall: Cycles(20), tag: 1 });
        t.push(Event::Compute { at: Cycles(520), cycles: Cycles(30), what: "pack" });
        let json = to_chrome_json(&t, 1.45);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"gemm 64x64x64\""));
        assert!(json.contains("\"dma MemToSpm 4096B (tag 0)\""));
        assert!(json.contains("\"stall (tag 1)\""));
        assert!(json.contains("CPE compute"));
        assert!(json.contains("DMA engine"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_trace_still_valid() {
        let t = Trace::enabled(4);
        let json = to_chrome_json(&t, 1.45);
        assert!(json.contains("traceEvents"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn names_are_json_escaped() {
        let mut t = Trace::enabled(4);
        t.push(Event::Compute {
            at: Cycles(0),
            cycles: Cycles(10),
            what: "pack \"edge\" case\\path",
        });
        let json = to_chrome_json(&t, 1.45);
        assert!(json.contains("pack \\\"edge\\\" case\\\\path"));
        // The raw quote must not survive unescaped inside the name.
        assert!(!json.contains("\"pack \"edge\""));
    }

    #[test]
    fn zero_stalls_are_omitted() {
        let mut t = Trace::enabled(4);
        t.push(Event::DmaWait { at: Cycles(10), stall: Cycles(0), tag: 0 });
        let json = to_chrome_json(&t, 1.45);
        assert!(!json.contains("stall"));
    }
}
