//! The per-CPE scratch pad memory (SPM / LDM).
//!
//! Each CPE owns 64 KB of software-managed local store. There is no hardware
//! cache: every byte present in the SPM was put there explicitly by a DMA
//! transfer or a store, which is why the code generator must plan SPM buffer
//! allocation (the paper's "single coalesced region", Sec. 4.7). The model
//! bound-checks every access so that an allocation plan exceeding 64 KB is a
//! hard error, mirroring the validity filtering the scheduler performs.

use crate::error::{MachineError, MachineResult};
use crate::ELEM_BYTES;

/// One CPE's scratch pad, element-addressed (f32).
///
/// The backing store can be materialised lazily: cost-only tuning never
/// touches SPM *data*, so a lazily created SPM (see [`Spm::lazy`]) skips the
/// 64 KB zero-fill per CPE — 4 MB per core group — that otherwise dominates
/// per-candidate [`crate::CoreGroup`] construction in the autotuner's hot
/// loop. Bounds are always checked against the full capacity; reads of
/// never-written lazy storage observe the zero-initialised contents.
#[derive(Debug, Clone)]
pub struct Spm {
    cpe: usize,
    capacity: usize,
    data: Vec<f32>,
}

impl Spm {
    /// Create an SPM of `capacity_bytes` for CPE `cpe`, backing store
    /// allocated and zeroed eagerly.
    pub fn new(cpe: usize, capacity_bytes: usize) -> Self {
        let mut spm = Self::lazy(cpe, capacity_bytes);
        spm.materialise();
        spm
    }

    /// Create an SPM whose backing store is only allocated on first write
    /// (cost-only simulation never writes, so it never allocates).
    pub fn lazy(cpe: usize, capacity_bytes: usize) -> Self {
        Spm { cpe, capacity: capacity_bytes / ELEM_BYTES, data: Vec::new() }
    }

    fn materialise(&mut self) {
        if self.data.len() < self.capacity {
            self.data.resize(self.capacity, 0.0);
        }
    }

    /// Capacity in f32 elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Read-only view of a range.
    pub fn slice(&self, offset: usize, len: usize) -> MachineResult<&[f32]> {
        self.check(offset, len)?;
        if self.data.len() < offset + len {
            return Err(MachineError::Invalid(format!(
                "SPM {} sliced before any write (lazy cost-only storage)",
                self.cpe
            )));
        }
        Ok(&self.data[offset..offset + len])
    }

    /// Mutable view of a range.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> MachineResult<&mut [f32]> {
        self.check(offset, len)?;
        self.materialise();
        Ok(&mut self.data[offset..offset + len])
    }

    /// Load a single element.
    pub fn load(&self, offset: usize) -> MachineResult<f32> {
        self.check(offset, 1)?;
        Ok(self.data.get(offset).copied().unwrap_or(0.0))
    }

    /// Store a single element.
    pub fn store(&mut self, offset: usize, v: f32) -> MachineResult<()> {
        self.check(offset, 1)?;
        self.materialise();
        self.data[offset] = v;
        Ok(())
    }

    /// Bounds-check a range without touching (or materialising) the data.
    pub fn check_range(&self, offset: usize, len: usize) -> MachineResult<()> {
        self.check(offset, len)
    }

    /// Zero a range (used by lightweight padding of auxiliary buffers).
    pub fn zero(&mut self, offset: usize, len: usize) -> MachineResult<()> {
        self.slice_mut(offset, len)?.fill(0.0);
        Ok(())
    }

    fn check(&self, offset: usize, len: usize) -> MachineResult<()> {
        if offset + len > self.capacity {
            return Err(MachineError::SpmOverflow {
                cpe: self.cpe,
                offset,
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

/// A simple bump allocator for planning SPM layouts at code-generation time.
///
/// The code generator coalesces all SPM buffers of a schedule into one
/// region; this planner hands out element offsets and reports the high-water
/// mark so the scheduler can reject candidates that exceed the SPM.
#[derive(Debug, Clone, Default)]
pub struct SpmPlanner {
    next: usize,
    high_water: usize,
}

impl SpmPlanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `len` elements, returning the offset.
    pub fn alloc(&mut self, len: usize) -> usize {
        let off = self.next;
        self.next += len;
        self.high_water = self.high_water.max(self.next);
        off
    }

    /// Total elements reserved so far.
    pub fn used(&self) -> usize {
        self.high_water
    }

    /// Bytes reserved so far.
    pub fn used_bytes(&self) -> usize {
        self.high_water * ELEM_BYTES
    }

    /// Whether the plan fits in an SPM of `capacity_bytes`.
    pub fn fits(&self, capacity_bytes: usize) -> bool {
        self.used_bytes() <= capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut spm = Spm::new(0, 1024);
        assert_eq!(spm.capacity(), 256);
        spm.store(10, 3.5).unwrap();
        assert_eq!(spm.load(10).unwrap(), 3.5);
    }

    #[test]
    fn overflow_detected() {
        let mut spm = Spm::new(7, 64);
        let err = spm.store(16, 1.0).unwrap_err();
        match err {
            MachineError::SpmOverflow { cpe, .. } => assert_eq!(cpe, 7),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(spm.slice(12, 8).is_err());
    }

    #[test]
    fn zero_range() {
        let mut spm = Spm::new(0, 64);
        for i in 0..16 {
            spm.store(i, 1.0).unwrap();
        }
        spm.zero(4, 8).unwrap();
        assert_eq!(spm.slice(0, 16).unwrap()[3], 1.0);
        assert!(spm.slice(4, 8).unwrap().iter().all(|&x| x == 0.0));
        assert_eq!(spm.load(12).unwrap(), 1.0);
    }

    #[test]
    fn lazy_spm_materialises_on_write() {
        let mut spm = Spm::lazy(2, 1024);
        assert_eq!(spm.capacity(), 256);
        // Reads before any write observe zeros and enforce bounds.
        assert_eq!(spm.load(100).unwrap(), 0.0);
        assert!(spm.load(256).is_err());
        assert!(spm.slice(0, 4).is_err(), "unmaterialised slice is an error");
        spm.store(10, 2.5).unwrap();
        assert_eq!(spm.load(10).unwrap(), 2.5);
        assert_eq!(spm.slice(8, 4).unwrap(), &[0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn planner_tracks_high_water() {
        let mut p = SpmPlanner::new();
        let a = p.alloc(100);
        let b = p.alloc(28);
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(p.used(), 128);
        assert_eq!(p.used_bytes(), 512);
        assert!(p.fits(512));
        assert!(!p.fits(511));
    }
}
