//! The per-CPE scratch pad memory (SPM / LDM).
//!
//! Each CPE owns 64 KB of software-managed local store. There is no hardware
//! cache: every byte present in the SPM was put there explicitly by a DMA
//! transfer or a store, which is why the code generator must plan SPM buffer
//! allocation (the paper's "single coalesced region", Sec. 4.7). The model
//! bound-checks every access so that an allocation plan exceeding 64 KB is a
//! hard error, mirroring the validity filtering the scheduler performs.

use crate::error::{MachineError, MachineResult};
use crate::ELEM_BYTES;

/// One CPE's scratch pad, element-addressed (f32).
#[derive(Debug, Clone)]
pub struct Spm {
    cpe: usize,
    data: Vec<f32>,
}

impl Spm {
    /// Create an SPM of `capacity_bytes` for CPE `cpe`.
    pub fn new(cpe: usize, capacity_bytes: usize) -> Self {
        Spm { cpe, data: vec![0.0; capacity_bytes / ELEM_BYTES] }
    }

    /// Capacity in f32 elements.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of a range.
    pub fn slice(&self, offset: usize, len: usize) -> MachineResult<&[f32]> {
        self.check(offset, len)?;
        Ok(&self.data[offset..offset + len])
    }

    /// Mutable view of a range.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> MachineResult<&mut [f32]> {
        self.check(offset, len)?;
        Ok(&mut self.data[offset..offset + len])
    }

    /// Load a single element.
    pub fn load(&self, offset: usize) -> MachineResult<f32> {
        self.check(offset, 1)?;
        Ok(self.data[offset])
    }

    /// Store a single element.
    pub fn store(&mut self, offset: usize, v: f32) -> MachineResult<()> {
        self.check(offset, 1)?;
        self.data[offset] = v;
        Ok(())
    }

    /// Zero a range (used by lightweight padding of auxiliary buffers).
    pub fn zero(&mut self, offset: usize, len: usize) -> MachineResult<()> {
        self.slice_mut(offset, len)?.fill(0.0);
        Ok(())
    }

    fn check(&self, offset: usize, len: usize) -> MachineResult<()> {
        if offset + len > self.data.len() {
            return Err(MachineError::SpmOverflow {
                cpe: self.cpe,
                offset,
                len,
                capacity: self.data.len(),
            });
        }
        Ok(())
    }
}

/// A simple bump allocator for planning SPM layouts at code-generation time.
///
/// The code generator coalesces all SPM buffers of a schedule into one
/// region; this planner hands out element offsets and reports the high-water
/// mark so the scheduler can reject candidates that exceed the SPM.
#[derive(Debug, Clone, Default)]
pub struct SpmPlanner {
    next: usize,
    high_water: usize,
}

impl SpmPlanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `len` elements, returning the offset.
    pub fn alloc(&mut self, len: usize) -> usize {
        let off = self.next;
        self.next += len;
        self.high_water = self.high_water.max(self.next);
        off
    }

    /// Total elements reserved so far.
    pub fn used(&self) -> usize {
        self.high_water
    }

    /// Bytes reserved so far.
    pub fn used_bytes(&self) -> usize {
        self.high_water * ELEM_BYTES
    }

    /// Whether the plan fits in an SPM of `capacity_bytes`.
    pub fn fits(&self, capacity_bytes: usize) -> bool {
        self.used_bytes() <= capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut spm = Spm::new(0, 1024);
        assert_eq!(spm.capacity(), 256);
        spm.store(10, 3.5).unwrap();
        assert_eq!(spm.load(10).unwrap(), 3.5);
    }

    #[test]
    fn overflow_detected() {
        let mut spm = Spm::new(7, 64);
        let err = spm.store(16, 1.0).unwrap_err();
        match err {
            MachineError::SpmOverflow { cpe, .. } => assert_eq!(cpe, 7),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(spm.slice(12, 8).is_err());
    }

    #[test]
    fn zero_range() {
        let mut spm = Spm::new(0, 64);
        for i in 0..16 {
            spm.store(i, 1.0).unwrap();
        }
        spm.zero(4, 8).unwrap();
        assert_eq!(spm.slice(0, 16).unwrap()[3], 1.0);
        assert!(spm.slice(4, 8).unwrap().iter().all(|&x| x == 0.0));
        assert_eq!(spm.load(12).unwrap(), 1.0);
    }

    #[test]
    fn planner_tracks_high_water() {
        let mut p = SpmPlanner::new();
        let a = p.alloc(100);
        let b = p.alloc(28);
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(p.used(), 128);
        assert_eq!(p.used_bytes(), 512);
        assert!(p.fits(512));
        assert!(!p.fits(511));
    }
}
