//! Deterministic fault injection for the simulated core group.
//!
//! The paper's autotuner measures candidates on real SW26010 silicon, where
//! the measurement path is not perfect: DMA descriptors are occasionally
//! rejected or time out and must be reissued, the usable scratch-pad shrinks
//! when the runtime parks athread control blocks or debug buffers in SPM,
//! and wall-clock cycle counts jitter with DRAM refresh and network-on-chip
//! contention. Our simulator is bit-deterministic, so a tuner built only
//! against it would silently assume a perfect machine. This module injects
//! those three failure modes *deterministically* from a seeded [`FaultPlan`]:
//!
//! * **DMA transaction failures** — a batch issue returns
//!   [`MachineError::DmaFault`](crate::MachineError::DmaFault), which is
//!   transient: reissuing the batch (a fresh run / attempt) may succeed.
//! * **SPM capacity pressure** — a run may see a reduced effective SPM
//!   capacity, failing schedules that fit only with zero headroom.
//! * **Cycle-measurement jitter** — reported cycle counts are scaled by a
//!   bounded multiplicative factor, modelling noisy timers.
//!
//! Determinism contract: the fault stream of a run is a pure function of
//! `(plan, run, attempt)` — see [`FaultPlan::session`]. Tuners derive `run`
//! from the candidate's index and `attempt` from the retry counter, so
//! results are bit-identical for any worker count and any evaluation order.
//!
//! All knobs are integers (parts-per-million rates, per-mille magnitudes)
//! and all arithmetic is integral, so the model stays exactly reproducible
//! across platforms.

use crate::clock::Cycles;

/// Odd constant of the splitmix64 increment (Weyl sequence step).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64: advances `state` by the Weyl constant and returns a scrambled
/// output. Statistically solid for this purpose and trivially seedable —
/// every 64-bit seed gives an independent-looking stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded description of which faults to inject and how often.
///
/// A plan is pure data (no RNG state); per-run state lives in
/// [`FaultSession`]. Rates are parts-per-million so that `Eq`/`Hash` hold
/// exactly and a plan can sit inside [`MachineConfig`](crate::MachineConfig)
/// without breaking its `PartialEq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Master seed; every injected fault derives from it.
    pub seed: u64,
    /// Probability (ppm) that a DMA batch issue fails transiently.
    pub dma_fail_ppm: u32,
    /// Probability (ppm) that a run executes under SPM capacity pressure.
    pub spm_pressure_ppm: u32,
    /// Maximum fraction (per-mille) of SPM stolen when pressure strikes.
    pub spm_steal_max_permille: u32,
    /// Half-width (per-mille) of the multiplicative jitter applied to
    /// observed cycle counts; `0` disables jitter (and repeat measurement).
    pub jitter_permille: u32,
    /// Wedge hook for stall-watchdog testing: the run whose id equals this
    /// value sleeps [`FaultPlan::wedge_ms`] *host* milliseconds before
    /// executing. `None` (the default) wedges nothing.
    pub wedge_run: Option<u64>,
    /// Host milliseconds the wedged run sleeps; `0` disables the hook.
    /// Pure host wall-clock — simulated cycles are untouched, so tuning
    /// results are bit-identical with or without a wedge.
    pub wedge_ms: u32,
}

impl FaultPlan {
    /// A plan with the default fault mix: 0.01% DMA batch failures, 2% of
    /// runs under SPM pressure stealing up to 25% of capacity, and ±2%
    /// timing jitter. The DMA rate is *per batch issue*, so a run's failure
    /// probability compounds with how much data it moves — small GEMM tiles
    /// almost never fault, interpreting a large conv occasionally does,
    /// which is exactly the size-dependence of the real machine. Rates high
    /// enough to kill most attempts of a big program belong in targeted
    /// stress tests, not the default envelope.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            dma_fail_ppm: 100,
            spm_pressure_ppm: 20_000,
            spm_steal_max_permille: 250,
            jitter_permille: 20,
            wedge_run: None,
            wedge_ms: 0,
        }
    }

    /// Does `run` trip the wedge hook? When true, the measurement harness
    /// sleeps [`FaultPlan::wedge_ms`] host milliseconds before executing
    /// (see the field docs for the determinism argument).
    pub fn wedges(&self, run: u64) -> bool {
        self.wedge_ms > 0 && self.wedge_run == Some(run)
    }

    /// Build a plan from the `SWATOP_FAULT_SEED` environment variable
    /// (decimal u64). Returns `None` when unset, empty, or unparseable, so
    /// callers can fall back to a fault-free machine.
    pub fn from_env() -> Option<Self> {
        std::env::var("SWATOP_FAULT_SEED")
            .ok()
            .filter(|s| !s.is_empty())
            .and_then(|s| s.trim().parse::<u64>().ok())
            .map(Self::with_seed)
    }

    /// Derive the fault stream for one measurement run. `run` identifies the
    /// unit of work (tuners use the candidate's stable index in the
    /// enumerated space) and `attempt` the retry ordinal, so a retried run
    /// sees a *different* stream — that is what makes DMA faults transient —
    /// while re-executing the same `(run, attempt)` reproduces it exactly.
    pub fn session(&self, run: u64, attempt: u32) -> FaultSession {
        // Mix seed, run and attempt through distinct odd multipliers so
        // neighbouring runs/attempts land in unrelated streams.
        let mut state = self.seed ^ 0xA076_1D64_78BD_642F;
        state = state.wrapping_add(run.wrapping_mul(GOLDEN_GAMMA));
        state = state.wrapping_add((u64::from(attempt) + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        // Burn one output so correlated seeds decorrelate before first use.
        splitmix64(&mut state);

        // SPM pressure is drawn once up front: the effective capacity must
        // be stable for the whole run, or mid-program capacity checks would
        // disagree with each other.
        let mut session = FaultSession { plan: *self, state, spm_stolen_permille: 0 };
        if self.spm_steal_max_permille > 0 && session.draw_ppm() < u64::from(self.spm_pressure_ppm)
        {
            let max = u64::from(self.spm_steal_max_permille.min(999));
            session.spm_stolen_permille = (1 + session.next() % max.max(1)) as u32;
        }
        session
    }
}

/// Per-run fault state derived from a [`FaultPlan`]; see
/// [`FaultPlan::session`] for the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSession {
    plan: FaultPlan,
    state: u64,
    spm_stolen_permille: u32,
}

impl FaultSession {
    #[inline]
    fn next(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// One uniform draw in `[0, 1_000_000)`.
    #[inline]
    fn draw_ppm(&mut self) -> u64 {
        self.next() % 1_000_000
    }

    /// Does the next DMA batch issue fail? Each call consumes one draw.
    pub fn dma_fault(&mut self) -> bool {
        self.plan.dma_fail_ppm > 0 && self.draw_ppm() < u64::from(self.plan.dma_fail_ppm)
    }

    /// Effective SPM capacity for this run, given the nominal capacity in
    /// elements. Identical to `full` unless this run drew capacity pressure.
    pub fn spm_capacity(&self, full: usize) -> usize {
        full - full * self.spm_stolen_permille as usize / 1000
    }

    /// Fraction of SPM stolen this run, in per-mille (0 = no pressure).
    pub fn spm_stolen_permille(&self) -> u32 {
        self.spm_stolen_permille
    }

    /// Apply multiplicative measurement jitter to an observed cycle count:
    /// `c · (1000 + d) / 1000` with `d` uniform in `[-j, +j]` per-mille.
    /// Integer arithmetic keeps the result exactly reproducible.
    pub fn jitter(&mut self, c: Cycles) -> Cycles {
        let j = u64::from(self.plan.jitter_permille.min(999));
        if j == 0 {
            return c;
        }
        let d = (self.next() % (2 * j + 1)) as i64 - j as i64;
        let scaled = c.get() as i128 * (1000 + d as i128) / 1000;
        Cycles(scaled as u64)
    }
}

/// Corruption classes of the seeded *miscompile injector*.
///
/// Where [`FaultPlan`] models an honest machine that fails loudly (dropped
/// batches, stolen SPM, noisy timers), the miscompile injector models the
/// failure mode a schedule verifier exists for: silent wrong answers. Each
/// class corrupts functional data movement without touching the clock
/// model, so a cost-only measurement of the same program is bit-identical —
/// exactly the corruption a tuner cannot see and a differential validator
/// must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MiscompileKind {
    /// Corrupt one DMA payload: after a per-CPE functional copy lands, a
    /// bit is flipped in the destination's first element (an exponent bit,
    /// so the value change always dwarfs ulp-level tolerance).
    CorruptPayload,
    /// Swap ping/pong parity: a sparse subset of `SpmSlot::Double`
    /// resolutions picks the wrong half, so a consumer reads the buffer the
    /// prefetcher is still filling. A *global* swap would be self-consistent
    /// and correct — sparseness is what makes it a hazard.
    SwapParity,
    /// Drop a fused wait: the functional copy of a chained (fused) batch is
    /// elided, modelling a wait that under-counted its chain — compute reads
    /// whatever the SPM held before the fused get.
    DropFusedWait,
}

impl MiscompileKind {
    /// Every corruption class, for injection-matrix sweeps.
    pub const ALL: [MiscompileKind; 3] =
        [MiscompileKind::CorruptPayload, MiscompileKind::SwapParity, MiscompileKind::DropFusedWait];

    /// Stable lowercase name (telemetry, CLI, test matrices).
    pub fn name(&self) -> &'static str {
        match self {
            MiscompileKind::CorruptPayload => "corrupt-payload",
            MiscompileKind::SwapParity => "swap-parity",
            MiscompileKind::DropFusedWait => "drop-fused-wait",
        }
    }
}

/// Seeded description of one injected miscompile. Pure data, like
/// [`FaultPlan`]; per-run state lives in [`MiscompileSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MiscompilePlan {
    pub kind: MiscompileKind,
    /// Phase seed: selects *which* payloads / parities / chains are hit, so
    /// a seed matrix exercises different victims deterministically.
    pub seed: u64,
}

impl MiscompilePlan {
    pub fn new(kind: MiscompileKind, seed: u64) -> Self {
        MiscompilePlan { kind, seed }
    }

    /// Fresh per-run injection state.
    pub fn session(&self) -> MiscompileSession {
        MiscompileSession { plan: *self, copies: 0, chains: 0, parities: 0, fired: 0 }
    }
}

/// Periods of the deterministic firing rules. Chosen small enough that any
/// realistic schedule trips its class at least once (a full-mesh get alone
/// issues 64 per-CPE copies; a double-buffered nest resolves slots every
/// iteration; fused runs chain several batches), and coprime so different
/// classes don't shadow each other.
const CORRUPT_PERIOD: u64 = 61;
const PARITY_PERIOD: u64 = 7;
const CHAIN_PERIOD: u64 = 2;

/// Per-run miscompile state; the event stream is a pure function of the
/// plan and the program's own deterministic operation order, so an injected
/// run is exactly reproducible (and bit-identical across worker counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiscompileSession {
    plan: MiscompilePlan,
    copies: u64,
    chains: u64,
    parities: u64,
    fired: u64,
}

impl MiscompileSession {
    pub fn kind(&self) -> MiscompileKind {
        self.plan.kind
    }

    /// How many corruption events have fired so far. A validator test that
    /// sees zero events must not claim the injection was "caught".
    pub fn events(&self) -> u64 {
        self.fired
    }

    #[inline]
    fn strike(counter: &mut u64, period: u64, seed: u64) -> bool {
        let i = *counter;
        *counter += 1;
        i % period == seed % period
    }

    /// Should the functional copy that just landed be corrupted? Counts
    /// every per-CPE copy; fires only under [`MiscompileKind::CorruptPayload`].
    pub fn corrupt_copy(&mut self) -> bool {
        let hit = Self::strike(&mut self.copies, CORRUPT_PERIOD, self.plan.seed)
            && self.plan.kind == MiscompileKind::CorruptPayload;
        self.fired += u64::from(hit);
        hit
    }

    /// Should this *chained* batch's functional copies be dropped? Called
    /// once per fused batch; fires only under [`MiscompileKind::DropFusedWait`].
    pub fn drop_fused_copy(&mut self) -> bool {
        let hit = Self::strike(&mut self.chains, CHAIN_PERIOD, self.plan.seed)
            && self.plan.kind == MiscompileKind::DropFusedWait;
        self.fired += u64::from(hit);
        hit
    }

    /// Should this double-buffer slot resolution read the wrong parity?
    /// Counts every `SpmSlot::Double` resolution; fires only under
    /// [`MiscompileKind::SwapParity`].
    pub fn flip_parity(&mut self) -> bool {
        let hit = Self::strike(&mut self.parities, PARITY_PERIOD, self.plan.seed)
            && self.plan.kind == MiscompileKind::SwapParity;
        self.fired += u64::from(hit);
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::with_seed(0xF00D)
    }

    #[test]
    fn same_run_and_attempt_reproduces_the_stream() {
        let (mut a, mut b) = (plan().session(17, 2), plan().session(17, 2));
        assert_eq!(a.spm_stolen_permille(), b.spm_stolen_permille());
        for _ in 0..256 {
            assert_eq!(a.dma_fault(), b.dma_fault());
            assert_eq!(a.jitter(Cycles(1_000_000)), b.jitter(Cycles(1_000_000)));
        }
    }

    #[test]
    fn different_attempts_decorrelate() {
        // A retried run must not replay the exact same faults, otherwise
        // retrying a failed DMA would loop forever. Use a high rate so the
        // sequences have enough hits to compare.
        let mut p = plan();
        p.dma_fail_ppm = 100_000;
        let mut a = p.session(17, 0);
        let mut b = p.session(17, 1);
        let seq_a: Vec<bool> = (0..512).map(|_| a.dma_fault()).collect();
        let seq_b: Vec<bool> = (0..512).map(|_| b.dma_fault()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn dma_fault_rate_tracks_the_plan() {
        let mut p = plan();
        p.dma_fail_ppm = 100_000; // 10%
        let mut s = p.session(0, 0);
        let hits = (0..100_000).filter(|_| s.dma_fault()).count();
        assert!((8_000..12_000).contains(&hits), "10% rate drifted: {hits}/100000");
    }

    #[test]
    fn jitter_is_bounded_and_zero_rate_is_identity() {
        let mut s = plan().session(3, 0);
        for _ in 0..1000 {
            let c = s.jitter(Cycles(1_000_000)).get();
            assert!((980_000..=1_020_000).contains(&c), "±2% bound violated: {c}");
        }
        let mut quiet = plan();
        quiet.jitter_permille = 0;
        let mut s = quiet.session(3, 0);
        assert_eq!(s.jitter(Cycles(12_345)), Cycles(12_345));
    }

    #[test]
    fn spm_pressure_is_bounded() {
        let p = plan();
        let mut pressured = 0;
        for run in 0..10_000u64 {
            let s = p.session(run, 0);
            let stolen = s.spm_stolen_permille();
            assert!(stolen <= p.spm_steal_max_permille);
            if stolen > 0 {
                pressured += 1;
                assert!(s.spm_capacity(16_384) < 16_384);
            } else {
                assert_eq!(s.spm_capacity(16_384), 16_384);
            }
        }
        // 2% of runs, 10k trials: expect ~200.
        assert!((100..400).contains(&pressured), "pressure rate drifted: {pressured}");
    }

    #[test]
    fn from_env_parses_or_declines() {
        // Only exercises the parse path that doesn't depend on ambient env.
        assert_eq!(FaultPlan::with_seed(7).seed, 7);
        assert!(FaultPlan::with_seed(7).dma_fail_ppm > 0);
    }

    #[test]
    fn miscompile_classes_are_disjoint() {
        // A session only fires events of its own class: the other two hooks
        // advance their counters but never strike.
        for kind in MiscompileKind::ALL {
            let mut s = MiscompilePlan::new(kind, 3).session();
            let (mut c, mut p, mut d) = (0u64, 0u64, 0u64);
            for _ in 0..1000 {
                c += u64::from(s.corrupt_copy());
                p += u64::from(s.flip_parity());
                d += u64::from(s.drop_fused_copy());
            }
            assert_eq!(c > 0, kind == MiscompileKind::CorruptPayload, "{}", kind.name());
            assert_eq!(p > 0, kind == MiscompileKind::SwapParity, "{}", kind.name());
            assert_eq!(d > 0, kind == MiscompileKind::DropFusedWait, "{}", kind.name());
            assert_eq!(s.events(), c + p + d);
        }
    }

    #[test]
    fn miscompile_firing_is_periodic_and_guaranteed() {
        // Any program issuing at least one full-period window of operations
        // is guaranteed a strike, for every seed.
        for seed in 0..200u64 {
            let mut s = MiscompilePlan::new(MiscompileKind::CorruptPayload, seed).session();
            assert!((0..61).any(|_| s.corrupt_copy()), "seed {seed} never struck");
            let mut s = MiscompilePlan::new(MiscompileKind::SwapParity, seed).session();
            assert!((0..7).any(|_| s.flip_parity()), "seed {seed} never struck");
            let mut s = MiscompilePlan::new(MiscompileKind::DropFusedWait, seed).session();
            assert!((0..2).any(|_| s.drop_fused_copy()), "seed {seed} never struck");
        }
    }

    #[test]
    fn miscompile_sessions_replay_exactly() {
        let mk = || MiscompilePlan::new(MiscompileKind::SwapParity, 42).session();
        let (mut a, mut b) = (mk(), mk());
        let sa: Vec<bool> = (0..256).map(|_| a.flip_parity()).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.flip_parity()).collect();
        assert_eq!(sa, sb);
        // Different seeds strike different victims.
        let mut c = MiscompilePlan::new(MiscompileKind::SwapParity, 43).session();
        let sc: Vec<bool> = (0..256).map(|_| c.flip_parity()).collect();
        assert_ne!(sa, sc);
    }
}
