//! Aggregate per-execution machine counters.
//!
//! Every [`CoreGroup`](crate::CoreGroup) carries a [`Counters`] block that
//! the machine primitives increment unconditionally as a program runs: DMA
//! payload/bus traffic and batch counts, stall cycles burnt waiting on
//! reply words, register-communication broadcast loads, per-CPE pipeline
//! issue counts and the SPM high-water mark. The increments are plain
//! integer adds on an inline `Copy` struct — no allocation, no branching on
//! a "telemetry enabled" flag — so cost-only candidate evaluation in the
//! autotuner pays nothing measurable for them and stays bit-deterministic.
//!
//! The counters answer the observability question behind the paper's
//! Sec. 4 analysis: *why* is a schedule slow — DMA-bound (high
//! `dma_stall_cycles`, low [`Counters::dma_efficiency`]), issue-bound
//! (high [`Counters::issue_slot_utilization`]), or SPM-capacity-limited
//! (high `spm_high_water_elems`)? Tuning telemetry surfaces them per
//! candidate.

/// Machine counters accumulated over one execution (or merged over many).
///
/// Pipeline issue counts (`issue_p0`, `issue_p1`, `regcomm_broadcasts`) are
/// *per-CPE*: the 64 CPEs run in lockstep and execute identical instruction
/// streams, so the per-CPE figure is also the utilization-relevant one. DMA
/// byte/batch counts are cluster aggregates, matching the single shared DMA
/// engine. `spm_high_water_elems` is the largest SPM extent (offset + span,
/// in f32 elements) any primitive touched on any CPE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Useful DMA bytes moved (requested payload).
    pub dma_payload_bytes: u64,
    /// Bytes occupied on the DRAM bus (payload rounded up to transactions).
    pub dma_bus_bytes: u64,
    /// DMA batches issued.
    pub dma_batches: u64,
    /// Cycles the compute stream stalled in `dma_wait` for unfinished
    /// transfers (0 under perfect prefetch overlap).
    pub dma_stall_cycles: u64,
    /// `dma_wait` calls performed.
    pub dma_waits: u64,
    /// GEMM kernel invocations.
    pub kernel_calls: u64,
    /// Cycles spent inside GEMM kernels.
    pub kernel_cycles: u64,
    /// Floating-point operations performed by GEMM kernels (2·M·N·K per
    /// call). Auxiliary transforms are accounted as cycles, not flops, so
    /// this matches the paper's direct-normalised numerator.
    pub flops: u64,
    /// Cycles spent in auxiliary compute (transforms, padding copies).
    pub compute_cycles: u64,
    /// Per-CPE P0 (floating-point/vector) instructions issued.
    pub issue_p0: u64,
    /// Per-CPE P1 (memory/register-comm) instructions issued.
    pub issue_p1: u64,
    /// Per-CPE register-communication broadcast loads (a subset of
    /// `issue_p1`): row/column broadcasts feeding the GEMM micro-kernel.
    pub regcomm_broadcasts: u64,
    /// Broadcast DMA batches: batches where one leader CPE per mesh
    /// row/column fetched the whole line's panels and scattered them over
    /// the register-communication bus (a subset of `dma_batches`).
    pub dma_bcast_batches: u64,
    /// Bytes forwarded over the register-communication mesh by broadcast-DMA
    /// scatters (leader → 7 peers; not DRAM bus traffic).
    pub regcomm_bytes: u64,
    /// Largest SPM extent touched, in f32 elements (high-water mark; merged
    /// with `max`, not `+`).
    pub spm_high_water_elems: u64,
}

impl Counters {
    /// Accumulate another counter block into this one: sums everywhere,
    /// `max` for the SPM high-water mark.
    pub fn merge(&mut self, o: &Counters) {
        self.dma_payload_bytes += o.dma_payload_bytes;
        self.dma_bus_bytes += o.dma_bus_bytes;
        self.dma_batches += o.dma_batches;
        self.dma_stall_cycles += o.dma_stall_cycles;
        self.dma_waits += o.dma_waits;
        self.kernel_calls += o.kernel_calls;
        self.kernel_cycles += o.kernel_cycles;
        self.flops += o.flops;
        self.compute_cycles += o.compute_cycles;
        self.issue_p0 += o.issue_p0;
        self.issue_p1 += o.issue_p1;
        self.regcomm_broadcasts += o.regcomm_broadcasts;
        self.dma_bcast_batches += o.dma_bcast_batches;
        self.regcomm_bytes += o.regcomm_bytes;
        self.spm_high_water_elems = self.spm_high_water_elems.max(o.spm_high_water_elems);
    }

    /// Raise the SPM high-water mark to at least `elems`.
    #[inline]
    pub fn note_spm_use(&mut self, elems: u64) {
        if elems > self.spm_high_water_elems {
            self.spm_high_water_elems = elems;
        }
    }

    /// Payload bytes per bus byte: 1.0 for perfectly transaction-aligned
    /// transfers, lower when strided blocks waste bus transactions
    /// (Eq. 1's `ceil(block/transaction)` effect). 1.0 when no DMA ran.
    pub fn dma_efficiency(&self) -> f64 {
        if self.dma_bus_bytes == 0 {
            1.0
        } else {
            self.dma_payload_bytes as f64 / self.dma_bus_bytes as f64
        }
    }

    /// DRAM transactions implied by the bus traffic, at `txn_bytes` per
    /// transaction.
    pub fn dma_transactions(&self, txn_bytes: usize) -> u64 {
        if txn_bytes == 0 {
            0
        } else {
            self.dma_bus_bytes.div_ceil(txn_bytes as u64)
        }
    }

    /// Fraction of dual-issue slots filled during kernel execution:
    /// `(P0 + P1 issues) / (2 · kernel cycles)`. 0.0 when no kernel ran.
    pub fn issue_slot_utilization(&self) -> f64 {
        if self.kernel_cycles == 0 {
            0.0
        } else {
            (self.issue_p0 + self.issue_p1) as f64 / (2.0 * self.kernel_cycles as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Counters {
            dma_payload_bytes: 100,
            dma_bus_bytes: 128,
            dma_batches: 1,
            dma_stall_cycles: 10,
            dma_waits: 1,
            kernel_calls: 2,
            kernel_cycles: 1000,
            flops: 4096,
            compute_cycles: 50,
            issue_p0: 800,
            issue_p1: 600,
            regcomm_broadcasts: 500,
            dma_bcast_batches: 2,
            regcomm_bytes: 700,
            spm_high_water_elems: 4096,
        };
        let b = Counters { spm_high_water_elems: 2048, dma_batches: 3, ..a };
        a.merge(&b);
        assert_eq!(a.dma_payload_bytes, 200);
        assert_eq!(a.dma_batches, 4);
        assert_eq!(a.kernel_cycles, 2000);
        assert_eq!(a.flops, 8192);
        assert_eq!(a.dma_bcast_batches, 4);
        assert_eq!(a.regcomm_bytes, 1400);
        assert_eq!(a.spm_high_water_elems, 4096, "high water merges with max");
        let mut c = Counters::default();
        c.merge(&b);
        assert_eq!(c.spm_high_water_elems, 2048);
    }

    #[test]
    fn derived_ratios() {
        let c = Counters {
            dma_payload_bytes: 96,
            dma_bus_bytes: 128,
            kernel_cycles: 100,
            issue_p0: 100,
            issue_p1: 60,
            ..Counters::default()
        };
        assert!((c.dma_efficiency() - 0.75).abs() < 1e-12);
        assert_eq!(c.dma_transactions(128), 1);
        assert_eq!(c.dma_transactions(64), 2);
        assert!((c.issue_slot_utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_safe_ratios() {
        let c = Counters::default();
        assert_eq!(c.dma_efficiency(), 1.0);
        assert_eq!(c.issue_slot_utilization(), 0.0);
        assert_eq!(c.dma_transactions(128), 0);
        assert_eq!(c.dma_transactions(0), 0);
    }

    #[test]
    fn note_spm_use_is_monotone() {
        let mut c = Counters::default();
        c.note_spm_use(100);
        c.note_spm_use(50);
        assert_eq!(c.spm_high_water_elems, 100);
        c.note_spm_use(200);
        assert_eq!(c.spm_high_water_elems, 200);
    }
}
