//! Machine configuration: clocks, bandwidths and micro-architectural
//! latencies of the simulated core group.
//!
//! Default values come from the swATOP paper (Sec. 2) and the SW26010
//! benchmarking literature it cites: 1.45 GHz CPE clock, 34 GB/s theoretical
//! memory bandwidth per core group (136 GB/s for four CGs), 22.6 GB/s
//! achievable DMA bandwidth, 128-byte DRAM transactions, 64 KB SPM per CPE,
//! 647 GB/s aggregate register-communication bandwidth per cluster.

use crate::clock::Cycles;
use crate::fault::FaultPlan;
use crate::{ELEM_BYTES, N_CPE};

/// Fraction of the theoretical memory bandwidth the DMA engine can actually
/// sustain: 22.6 GB/s of 34 GB/s per core group (paper Sec. 2).
pub const DMA_ACHIEVABLE_FRACTION: f64 = 22.6 / 34.0;

/// Static description of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// CPE clock frequency in GHz.
    pub clock_ghz: f64,
    /// SPM capacity per CPE in bytes.
    pub spm_bytes: usize,
    /// DRAM transaction granularity in bytes; partial touches still transfer
    /// the full transaction ("even if just 1 byte of a transaction is
    /// touched, the entire transaction will be transferred").
    pub dram_transaction_bytes: usize,
    /// Theoretical peak main-memory bandwidth of one CG in bytes/cycle.
    pub mem_bytes_per_cycle: f64,
    /// Fixed start-up latency of one DMA batch (descriptor setup, engine
    /// arbitration). This is the `T_latency` term of the paper's Eq. (1).
    pub dma_startup: Cycles,
    /// Per-block descriptor-processing overhead inside the DMA engine.
    /// Strided transfers with many small blocks pay this repeatedly, which is
    /// why real SW26010 codes prefer large contiguous blocks.
    pub dma_block_overhead: Cycles,
    /// Compute-pipeline cost of *issuing* an asynchronous DMA (the CPE-side
    /// instruction cost; the transfer itself proceeds in the background).
    pub dma_issue_cost: Cycles,
    /// Cost of a `dma_wait` poll when the transfer already completed.
    pub dma_wait_poll: Cycles,
    /// Latency of a vectorised fused multiply-add (`vmad`) on pipeline P0.
    pub vmad_latency: u64,
    /// Latency of an SPM vector load (`vldd`) on pipeline P1.
    pub vldd_latency: u64,
    /// Latency of a load-and-broadcast over the row/column communication bus
    /// (`vlddr`/`vlddc`/`vldder`/`vlddec`): SPM read plus mesh traversal.
    pub bcast_latency: u64,
    /// Latency of an SPM vector store.
    pub vstd_latency: u64,
    /// Extra cycles to switch the register-communication pattern
    /// (row-broadcast ↔ column-broadcast), paid between K-panels.
    pub regcomm_switch: Cycles,
    /// Fixed per-call overhead of a GEMM primitive invocation (argument
    /// setup, register save/restore). Part of Eq. (2)'s δ term.
    pub kernel_call_overhead: Cycles,
    /// Cost of launching a CPE kernel (athread spawn + join). Launching is
    /// expensive on SW26010 (tens of microseconds), which is one reason
    /// fused generated code beats a sequence of library calls.
    pub kernel_launch: Cycles,
    /// Cost of *signalling* an already-resident CPE kernel (warm wake of a
    /// parked athread group: MPE writes the argument block and rings a
    /// doorbell, the spin-waiting CPEs pick it up). Tuned operators keep the
    /// athread group resident across invocations, so measured candidates pay
    /// this per call instead of the cold [`MachineConfig::kernel_launch`];
    /// library-call baselines respawn per call and still pay the full
    /// launch.
    pub kernel_signal: Cycles,
    /// Optional fault-injection plan simulating flaky hardware (transient
    /// DMA failures, SPM capacity pressure, cycle-measurement jitter).
    /// `None` — the default — keeps the machine perfect and deterministic in
    /// the PR-1 sense; `Some` keeps it deterministic too, but per
    /// `(seed, run, attempt)` as documented in [`FaultPlan::session`].
    pub fault: Option<FaultPlan>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            clock_ghz: 1.45,
            spm_bytes: 64 * 1024,
            dram_transaction_bytes: 128,
            // 34 GB/s per CG at 1.45 GHz ⇒ 23.45 bytes per cycle.
            mem_bytes_per_cycle: 34.0e9 / 1.45e9,
            dma_startup: Cycles(600),
            dma_block_overhead: Cycles(4),
            dma_issue_cost: Cycles(24),
            dma_wait_poll: Cycles(8),
            vmad_latency: 7,
            vldd_latency: 4,
            bcast_latency: 11,
            vstd_latency: 2,
            regcomm_switch: Cycles(32),
            kernel_call_overhead: Cycles(140),
            kernel_launch: Cycles(120_000),
            kernel_signal: Cycles(2_000),
            fault: None,
        }
    }
}

impl MachineConfig {
    /// Peak single-precision throughput of the CG in FLOPS: 64 CPEs × one
    /// 4-wide FMA per cycle (8 flops).
    pub fn peak_flops(&self) -> f64 {
        (N_CPE * 8) as f64 * self.clock_ghz * 1e9
    }

    /// Peak memory bandwidth of the CG in bytes/second.
    pub fn peak_bw_bytes_per_sec(&self) -> f64 {
        self.mem_bytes_per_cycle * self.clock_ghz * 1e9
    }

    /// *Achievable* DMA bandwidth in bytes/second: the SW26010 literature
    /// measures 22.6 GB/s of the 34 GB/s theoretical peak actually reachable
    /// through the DMA engine. Expressed as a fixed fraction of the
    /// theoretical peak so it scales with a re-configured machine; this is
    /// the bandwidth roof the observatory's roofline analysis uses.
    pub fn dma_achievable_bytes_per_sec(&self) -> f64 {
        self.peak_bw_bytes_per_sec() * DMA_ACHIEVABLE_FRACTION
    }

    /// SPM capacity per CPE in f32 elements.
    pub fn spm_elems(&self) -> usize {
        self.spm_bytes / ELEM_BYTES
    }

    /// Convert a cycle count into seconds on this machine.
    pub fn seconds(&self, c: Cycles) -> f64 {
        c.seconds_at(self.clock_ghz)
    }

    /// Efficiency (fraction of peak) achieved by `flops` in `cycles`.
    pub fn efficiency(&self, flops: u64, cycles: Cycles) -> f64 {
        if cycles.get() == 0 {
            return 0.0;
        }
        flops as f64 / self.seconds(cycles) / self.peak_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_peaks_match_paper() {
        let c = MachineConfig::default();
        // One CG: 742.4 GFLOPS single precision; 34 GB/s.
        assert!((c.peak_flops() / 1e9 - 742.4).abs() < 0.1);
        assert!((c.peak_bw_bytes_per_sec() / 1e9 - 34.0).abs() < 1e-9);
        assert!((c.dma_achievable_bytes_per_sec() / 1e9 - 22.6).abs() < 1e-9);
        assert_eq!(c.spm_elems(), 16 * 1024);
    }

    #[test]
    fn efficiency_at_peak_is_one() {
        let c = MachineConfig::default();
        let cycles = Cycles(1000);
        let flops = (N_CPE * 8 * 1000) as u64;
        assert!((c.efficiency(flops, cycles) - 1.0).abs() < 1e-12);
    }
}
