//! Error type for machine-model operations.

use std::fmt;

/// Errors raised by the machine model. These correspond to conditions that
/// would be silent corruption or a hardware fault on the real chip; the
/// simulator turns them into checkable errors so that generated schedules
/// can be validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// An SPM access (or allocation) exceeded the 64 KB scratch pad.
    SpmOverflow {
        cpe: usize,
        offset: usize,
        len: usize,
        capacity: usize,
    },
    /// A main-memory access fell outside the allocated buffer arena.
    MainMemoryOutOfBounds { offset: usize, len: usize, size: usize },
    /// A DMA request was malformed (zero blocks, stride smaller than block…).
    BadDmaRequest(String),
    /// A reply word was waited on for more completions than were issued.
    ReplyUnderflow { expected: usize, issued: usize },
    /// A GEMM primitive was invoked with parameters violating its contract
    /// (dimension not divisible by the mesh, vector dim not divisible by 4…).
    BadKernelArgs(String),
    /// A transient DMA transaction failure injected by the machine's
    /// [`FaultPlan`](crate::fault::FaultPlan): the engine dropped the batch.
    /// Unlike the structural errors above, retrying the run may succeed.
    DmaFault { batch: u64 },
    /// Generic invariant violation inside generated code.
    Invalid(String),
}

impl MachineError {
    /// Is this error transient — i.e. may the same operation succeed when
    /// retried? Structural errors (overflows, malformed requests, contract
    /// violations) are permanent; injected DMA faults are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, MachineError::DmaFault { .. })
    }

    /// Is this error a *deterministic* property of the program — guaranteed
    /// to recur on any fault-free re-execution? Retrying one of these burns
    /// budget on an error that cannot go away. The one context-dependent
    /// case is [`MachineError::SpmOverflow`]: deterministic on a perfect
    /// machine (the footprint simply doesn't fit) but possibly caused by
    /// injected capacity pressure when a fault plan is active — which is why
    /// retry policies take the fault context into account (see
    /// `swatop::tuner::RetryPolicy::should_retry`).
    pub fn is_deterministic(&self) -> bool {
        !self.is_transient()
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::SpmOverflow { cpe, offset, len, capacity } => write!(
                f,
                "SPM overflow on CPE {cpe}: access [{offset}, {}) exceeds capacity {capacity} elems",
                offset + len
            ),
            MachineError::MainMemoryOutOfBounds { offset, len, size } => write!(
                f,
                "main-memory access [{offset}, {}) out of bounds (arena size {size} elems)",
                offset + len
            ),
            MachineError::BadDmaRequest(msg) => write!(f, "bad DMA request: {msg}"),
            MachineError::ReplyUnderflow { expected, issued } => write!(
                f,
                "dma_wait expected {expected} completions but only {issued} were issued"
            ),
            MachineError::BadKernelArgs(msg) => write!(f, "bad kernel arguments: {msg}"),
            MachineError::DmaFault { batch } => {
                write!(f, "transient DMA fault: engine dropped batch {batch} (injected)")
            }
            MachineError::Invalid(msg) => write!(f, "invalid machine operation: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenience result alias for machine operations.
pub type MachineResult<T> = Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MachineError::SpmOverflow { cpe: 3, offset: 100, len: 50, capacity: 120 };
        let s = e.to_string();
        assert!(s.contains("CPE 3") && s.contains("150"));
    }
}
