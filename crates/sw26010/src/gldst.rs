//! Global load/store (gld/gst): the CPE's *other* path to main memory.
//!
//! Besides the DMA engine, a CPE can address main memory directly with
//! global load/store instructions. The Stream Triad benchmark the paper
//! cites (Xu/Lin/Matsuoka 2017) measures **1.48 GB/s** for gld/gst against
//! **22.6 GB/s** for DMA — a ~15× gap that is the reason "exploring
//! utilization of DMA is important in optimization" and why no generated
//! schedule in this reproduction uses gld/gst for bulk data.
//!
//! The model is provided for completeness and for quantifying that design
//! rule: a per-element cost derived from the measured bandwidth, plus the
//! functional transfer.

use crate::clock::Cycles;
use crate::config::MachineConfig;
use crate::error::MachineResult;
use crate::{CoreGroup, ExecMode};

/// Measured aggregate gld/gst bandwidth (bytes/second) from the cited
/// benchmark: 1.48 GB/s.
pub const GLDST_BW_BYTES_PER_SEC: f64 = 1.48e9;

/// Cycles for one CPE to move `elems` f32 elements over gld/gst.
pub fn gldst_cycles(cfg: &MachineConfig, elems: usize) -> Cycles {
    let bytes = (elems * crate::ELEM_BYTES) as f64;
    let secs = bytes / GLDST_BW_BYTES_PER_SEC;
    Cycles((secs * cfg.clock_ghz * 1e9).ceil() as u64)
}

/// Functionally load `elems` elements from main memory (absolute offset)
/// into a CPE's SPM through global loads, charging the gld/gst cost on the
/// compute clock (the transfer is synchronous — no engine, no overlap).
pub fn gld_to_spm(
    cg: &mut CoreGroup,
    cpe: usize,
    mem_offset: usize,
    spm_offset: usize,
    elems: usize,
) -> MachineResult<()> {
    let cost = gldst_cycles(&cg.cfg, elems);
    cg.compute(cost, "gld");
    if cg.mode() == ExecMode::Functional {
        cg.mem.check_abs(mem_offset, elems)?;
        let data: Vec<f32> = cg.mem.arena()[mem_offset..mem_offset + elems].to_vec();
        cg.spm_mut(cpe).slice_mut(spm_offset, elems)?.copy_from_slice(&data);
    } else {
        cg.spm(cpe).check_range(spm_offset, elems)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::{DmaDirection, DmaRequest};
    use crate::MachineConfig;

    #[test]
    fn gldst_is_an_order_of_magnitude_slower_than_dma() {
        // The design rule the paper states, as an assertion: moving the
        // same 64 KB through gld/gst vs the DMA engine.
        let cfg = MachineConfig::default();
        let elems = 16 * 1024;
        let gld = gldst_cycles(&cfg, elems);
        let mut engine = crate::dma::DmaEngine::new();
        let dma = engine
            .schedule(
                &cfg,
                Cycles(0),
                &[DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, elems)],
            )
            .unwrap();
        assert!(
            gld.get() > 10 * dma.get(),
            "gld {gld} must be ≫ dma {dma} (the paper's 1.48 vs 22.6 GB/s)"
        );
    }

    #[test]
    fn functional_gld_moves_data_and_costs_time() {
        let mut cg = CoreGroup::with_mode(ExecMode::Functional);
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let buf = cg.mem.alloc_from("x", &data);
        let base = cg.mem.base(buf);
        let before = cg.now();
        gld_to_spm(&mut cg, 9, base, 0, 32).unwrap();
        assert!(cg.now() > before);
        assert_eq!(cg.spm(9).load(31).unwrap(), 31.0);
    }

    #[test]
    fn cost_scales_linearly() {
        let cfg = MachineConfig::default();
        let one = gldst_cycles(&cfg, 256).get();
        let four = gldst_cycles(&cfg, 1024).get();
        assert!((four as f64 / one as f64 - 4.0).abs() < 0.05);
    }
}
