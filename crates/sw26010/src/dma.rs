//! The DMA engine: asynchronous, transaction-quantised strided transfers
//! between main memory and the SPMs.
//!
//! The swATOP paper models DMA time as (Eq. 1)
//!
//! ```text
//! T_DMA = T_latency + Σ_i (block_size + waste_size_i) / (PEAK_BW / #CPE)
//! ```
//!
//! where the waste comes from 128-byte DRAM transactions: "even if just 1
//! byte of a transaction is touched, the entire transaction will be
//! transferred". The *model* in the autotuner uses exactly Eq. (1); the
//! *engine* simulated here is more detailed — it additionally charges a
//! per-block descriptor overhead and serialises all CPEs' requests through
//! the shared engine — so the autotuner's model is a genuine approximation
//! of the machine, which is what the paper's Fig. 9 quantifies.

use crate::clock::Cycles;
use crate::config::MachineConfig;
use crate::error::{MachineError, MachineResult};
use crate::ELEM_BYTES;

/// Direction of a DMA transfer, mirroring `swMemcpyDirection`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Main memory → SPM (`DMA get`).
    MemToSpm,
    /// SPM → main memory (`DMA put`).
    SpmToMem,
}

/// One CPE's strided DMA request, mirroring the paper's `DMA_CPE` node:
/// `DMA_CPE(source, destination, direction, offset, block, stride, size)`.
///
/// All sizes are in f32 elements. The transfer touches `n_blocks` blocks of
/// `block_elems` contiguous elements; consecutive blocks start
/// `stride_elems` apart in **main memory** while the SPM side is packed
/// contiguously (this is how the real engine's strided mode works: one side
/// strided, one side dense).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DmaRequest {
    /// Which CPE issues this request (0..64).
    pub cpe: usize,
    pub direction: DmaDirection,
    /// Absolute element offset of the first block in main memory.
    pub mem_offset: usize,
    /// Element offset in the issuing CPE's SPM.
    pub spm_offset: usize,
    /// Elements per contiguous block.
    pub block_elems: usize,
    /// Main-memory distance between block starts, in elements.
    /// Must be ≥ `block_elems` when `n_blocks > 1`.
    pub stride_elems: usize,
    /// Number of blocks.
    pub n_blocks: usize,
}

impl DmaRequest {
    /// Convenience constructor for a fully contiguous transfer.
    pub fn contiguous(
        cpe: usize,
        direction: DmaDirection,
        mem_offset: usize,
        spm_offset: usize,
        elems: usize,
    ) -> Self {
        DmaRequest {
            cpe,
            direction,
            mem_offset,
            spm_offset,
            block_elems: elems,
            stride_elems: elems,
            n_blocks: 1,
        }
    }

    /// Total payload elements moved by this request.
    pub fn total_elems(&self) -> usize {
        self.block_elems * self.n_blocks
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_elems() * ELEM_BYTES
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> MachineResult<()> {
        if self.cpe >= crate::N_CPE {
            return Err(MachineError::BadDmaRequest(format!("cpe {} out of range", self.cpe)));
        }
        if self.block_elems == 0 || self.n_blocks == 0 {
            return Err(MachineError::BadDmaRequest("zero-sized transfer".into()));
        }
        if self.n_blocks > 1 && self.stride_elems < self.block_elems {
            return Err(MachineError::BadDmaRequest(format!(
                "stride {} < block {} with {} blocks",
                self.stride_elems, self.block_elems, self.n_blocks
            )));
        }
        Ok(())
    }

    /// Bytes actually crossing the DRAM bus, counting whole 128-byte
    /// transactions per block (the waste term of Eq. 1).
    pub fn bus_bytes(&self, txn_bytes: usize) -> usize {
        bus_bytes(self.mem_offset, self.block_elems, self.stride_elems, self.n_blocks, txn_bytes)
    }
}

/// Transaction-quantised bus bytes of a strided transfer (standalone form
/// used by the cost-only fast path, which avoids building request
/// structures).
pub fn bus_bytes(
    mem_offset: usize,
    block_elems: usize,
    stride_elems: usize,
    n_blocks: usize,
    txn_bytes: usize,
) -> usize {
    let span = |start_bytes: usize| -> usize {
        let end = start_bytes + block_elems * ELEM_BYTES;
        (end.div_ceil(txn_bytes) - start_bytes / txn_bytes) * txn_bytes
    };
    if n_blocks == 1 {
        return span(mem_offset * ELEM_BYTES);
    }
    // A block's transaction waste depends only on its start address modulo
    // the transaction size, and starts advance by a fixed stride — so the
    // per-block cost is periodic with period txn / gcd(stride, txn) ≤ 32.
    let stride_bytes = stride_elems * ELEM_BYTES;
    let period = txn_bytes / gcd(stride_bytes % txn_bytes, txn_bytes).max(1);
    let period = period.max(1).min(n_blocks);
    let mut cycle_total = 0usize;
    for b in 0..period {
        cycle_total += span((mem_offset + b * stride_elems) * ELEM_BYTES);
    }
    let full_cycles = n_blocks / period;
    let mut total = cycle_total * full_cycles;
    for b in full_cycles * period..n_blocks {
        total += span((mem_offset + b * stride_elems) * ELEM_BYTES);
    }
    total
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The shared per-CG DMA engine.
///
/// The engine is a single resource: batches issued while a previous batch is
/// in flight queue behind it (`free_at`). Completion times are delivered
/// through [`ReplyWord`]s, matching the asynchronous `swDMA`/`swDMAWait`
/// primitive pair.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    free_at: Cycles,
    /// Total payload bytes moved (statistics).
    pub payload_bytes: u64,
    /// Total bus bytes moved including transaction waste (statistics).
    pub bus_bytes: u64,
    /// Number of batches issued.
    pub batches: u64,
}

impl DmaEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time at which the engine becomes idle.
    pub fn free_at(&self) -> Cycles {
        self.free_at
    }

    /// Compute the transfer duration of a batch of per-CPE requests and
    /// schedule it at `now`, returning the completion time.
    pub fn schedule(
        &mut self,
        cfg: &MachineConfig,
        now: Cycles,
        requests: &[DmaRequest],
    ) -> MachineResult<Cycles> {
        self.schedule_with(cfg, now, requests, false)
    }

    /// [`DmaEngine::schedule`] with explicit batch chaining: a `chained`
    /// batch is issued back-to-back with its predecessor, so its descriptors
    /// ride the already-open engine pipeline and the per-batch start-up
    /// latency is waived (only the descriptor and transfer terms remain).
    pub fn schedule_with(
        &mut self,
        cfg: &MachineConfig,
        now: Cycles,
        requests: &[DmaRequest],
        chained: bool,
    ) -> MachineResult<Cycles> {
        let mut bus = 0usize;
        let mut blocks = 0usize;
        let mut payload = 0usize;
        for r in requests {
            r.validate()?;
            bus += r.bus_bytes(cfg.dram_transaction_bytes);
            blocks += r.n_blocks;
            payload += r.total_bytes();
        }
        Ok(self.schedule_totals_with(cfg, now, bus, blocks, payload, chained))
    }

    /// Schedule a batch from pre-aggregated totals (the cost-only fast
    /// path: callers compute bus bytes per request without materialising
    /// request structures). Semantically identical to [`DmaEngine::schedule`]
    /// on the same batch.
    pub fn schedule_totals(
        &mut self,
        cfg: &MachineConfig,
        now: Cycles,
        bus_bytes: usize,
        blocks: usize,
        payload_bytes: usize,
    ) -> Cycles {
        self.schedule_totals_with(cfg, now, bus_bytes, blocks, payload_bytes, false)
    }

    /// [`DmaEngine::schedule_totals`] with explicit batch chaining (see
    /// [`DmaEngine::schedule_with`]). Chained batches still queue behind the
    /// engine's in-flight work — only the start-up term is dropped — and do
    /// not open a new batch group in the statistics.
    pub fn schedule_totals_with(
        &mut self,
        cfg: &MachineConfig,
        now: Cycles,
        bus_bytes: usize,
        blocks: usize,
        payload_bytes: usize,
        chained: bool,
    ) -> Cycles {
        let transfer = (bus_bytes as f64 / cfg.mem_bytes_per_cycle).ceil() as u64;
        let startup = if chained { Cycles::ZERO } else { cfg.dma_startup };
        let duration =
            startup + Cycles(cfg.dma_block_overhead.get() * blocks as u64) + Cycles(transfer);
        let start = now.max(self.free_at);
        let finish = start + duration;
        self.free_at = finish;
        self.payload_bytes += payload_bytes as u64;
        self.bus_bytes += bus_bytes as u64;
        if !chained {
            self.batches += 1;
        }
        finish
    }

    /// Reset the engine clock (fresh program run) keeping statistics zeroed.
    pub fn reset(&mut self) {
        *self = DmaEngine::new();
    }

    /// Achieved bandwidth efficiency so far: payload / bus bytes.
    pub fn efficiency(&self) -> f64 {
        if self.bus_bytes == 0 {
            1.0
        } else {
            self.payload_bytes as f64 / self.bus_bytes as f64
        }
    }
}

/// Completion bookkeeping shared by `swDMA`/`swDMAWait`: the reply word is
/// incremented by the engine when a transfer finishes; `swDMAWait(reply, n)`
/// spins until `n` completions arrived. The model stores the completion
/// *times* so a wait advances the compute clock to the latest one.
#[derive(Debug, Clone, Default)]
pub struct ReplyWord {
    completions: Vec<Cycles>,
    waited: usize,
}

impl ReplyWord {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transfer completing at `at`.
    pub fn push(&mut self, at: Cycles) {
        self.completions.push(at);
    }

    /// Number of completions issued so far.
    pub fn issued(&self) -> usize {
        self.completions.len()
    }

    /// Wait for `n` more completions (beyond those already waited for);
    /// returns the cycle at which the last of them finishes.
    pub fn wait(&mut self, n: usize) -> MachineResult<Cycles> {
        let end = self.waited + n;
        if end > self.completions.len() {
            return Err(MachineError::ReplyUnderflow {
                expected: end,
                issued: self.completions.len(),
            });
        }
        let at = self.completions[self.waited..end]
            .iter()
            .copied()
            .max()
            .unwrap_or(Cycles::ZERO);
        self.waited = end;
        Ok(at)
    }

    /// Completions not yet waited for.
    pub fn pending(&self) -> usize {
        self.completions.len() - self.waited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    #[test]
    fn contiguous_bus_bytes_aligned() {
        // 128 elements * 4 B = 512 B starting at offset 0: exactly 4 txns.
        let r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 128);
        assert_eq!(r.bus_bytes(128), 512);
    }

    #[test]
    fn misaligned_block_pays_waste() {
        // 1 element at byte offset 4: still one full 128-byte transaction.
        let r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 1, 0, 1);
        assert_eq!(r.bus_bytes(128), 128);
        // A block straddling a txn boundary pays two transactions.
        let r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 31, 0, 2);
        assert_eq!(r.bus_bytes(128), 256);
    }

    #[test]
    fn strided_blocks_each_pay_waste() {
        let r = DmaRequest {
            cpe: 0,
            direction: DmaDirection::MemToSpm,
            mem_offset: 0,
            spm_offset: 0,
            block_elems: 4, // 16 B
            stride_elems: 100,
            n_blocks: 10,
        };
        // Each 16 B block needs at least one 128 B transaction (maybe 2 if
        // straddling). Strides of 100 elems = 400 B are not txn-aligned.
        let bus = r.bus_bytes(128);
        assert!(bus >= 10 * 128, "bus {bus}");
        assert!(bus <= 10 * 256, "bus {bus}");
        assert_eq!(r.total_bytes(), 160);
    }

    #[test]
    fn periodic_bus_bytes_matches_naive_enumeration() {
        let naive = |off: usize, block: usize, stride: usize, n: usize, txn: usize| -> usize {
            (0..n)
                .map(|b| {
                    let start = (off + b * stride) * 4;
                    let end = start + block * 4;
                    (end.div_ceil(txn) - start / txn) * txn
                })
                .sum()
        };
        for &(off, block, stride, n) in &[
            (0usize, 4usize, 100usize, 10usize),
            (1, 1, 3, 77),
            (31, 2, 33, 64),
            (5, 16, 16, 40),
            (0, 32, 32, 64),
            (7, 9, 129, 50),
            (3, 200, 1000, 13),
        ] {
            assert_eq!(
                bus_bytes(off, block, stride, n, 128),
                naive(off, block, stride, n, 128),
                "off={off} block={block} stride={stride} n={n}"
            );
        }
    }

    #[test]
    fn chained_batch_waives_startup_and_batch_count() {
        let cfg = cfg();
        let r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 128);
        let mut plain = DmaEngine::new();
        let f_plain = plain.schedule_with(&cfg, Cycles::ZERO, std::slice::from_ref(&r), false).unwrap();
        let mut chained = DmaEngine::new();
        let f_chained = chained.schedule_with(&cfg, Cycles::ZERO, &[r], true).unwrap();
        // A chained batch skips exactly the start-up term ...
        assert_eq!(f_plain, f_chained + cfg.dma_startup);
        // ... does not open a new batch group ...
        assert_eq!((plain.batches, chained.batches), (1, 0));
        // ... but still moves the same bytes.
        assert_eq!(plain.bus_bytes, chained.bus_bytes);
        assert_eq!(plain.payload_bytes, chained.payload_bytes);
    }

    #[test]
    fn chained_batch_still_queues_behind_in_flight_work() {
        let cfg = cfg();
        let r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 128);
        let mut e = DmaEngine::new();
        let first = e.schedule_with(&cfg, Cycles::ZERO, std::slice::from_ref(&r), false).unwrap();
        // Issued at t=0 while the first batch is in flight: starts at its
        // completion, not at issue time.
        let second = e.schedule_with(&cfg, Cycles::ZERO, &[r], true).unwrap();
        assert!(second > first);
        assert_eq!(second - first, f_duration(&cfg));
    }

    fn f_duration(cfg: &MachineConfig) -> Cycles {
        // Duration of the chained 512 B contiguous batch above: block
        // overhead + transfer, no start-up.
        Cycles(cfg.dma_block_overhead.get())
            + Cycles((512f64 / cfg.mem_bytes_per_cycle).ceil() as u64)
    }

    #[test]
    fn validate_rejects_bad_requests() {
        let mut r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 4);
        r.block_elems = 0;
        assert!(r.validate().is_err());
        let r = DmaRequest {
            cpe: 0,
            direction: DmaDirection::MemToSpm,
            mem_offset: 0,
            spm_offset: 0,
            block_elems: 8,
            stride_elems: 4,
            n_blocks: 2,
        };
        assert!(r.validate().is_err());
        let r = DmaRequest::contiguous(64, DmaDirection::MemToSpm, 0, 0, 4);
        assert!(r.validate().is_err());
    }

    #[test]
    fn engine_serialises_batches() {
        let mut e = DmaEngine::new();
        let c = cfg();
        let reqs = vec![DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 1024)];
        let f1 = e.schedule(&c, Cycles(0), &reqs).unwrap();
        // Second batch issued at time 0 must queue behind the first.
        let f2 = e.schedule(&c, Cycles(0), &reqs).unwrap();
        assert!(f2.get() >= 2 * f1.get());
        assert_eq!(e.batches, 2);
        assert_eq!(e.payload_bytes, 2 * 4096);
    }

    #[test]
    fn engine_duration_scales_with_bytes() {
        let mut e = DmaEngine::new();
        let c = cfg();
        let small = vec![DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 256)];
        let big = vec![DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, 256 * 64)];
        let f_small = e.schedule(&c, Cycles(0), &small).unwrap();
        let mut e2 = DmaEngine::new();
        let f_big = e2.schedule(&c, Cycles(0), &big).unwrap();
        assert!(f_big > f_small);
        // Large contiguous transfers approach peak bandwidth: efficiency 1.
        assert!((e2.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reply_word_wait_semantics() {
        let mut r = ReplyWord::new();
        r.push(Cycles(100));
        r.push(Cycles(50));
        assert_eq!(r.pending(), 2);
        assert_eq!(r.wait(2).unwrap(), Cycles(100));
        assert_eq!(r.pending(), 0);
        assert!(r.wait(1).is_err());
        r.push(Cycles(70));
        assert_eq!(r.wait(1).unwrap(), Cycles(70));
    }
}
