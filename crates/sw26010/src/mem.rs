//! Main-memory arena shared by the MPE and the CPE cluster.
//!
//! The real machine exposes a flat DDR3 address space per core group. The
//! model keeps a single `Vec<f32>` arena; buffers are carved out by a bump
//! allocator and identified by [`BufferId`]. Addresses used by DMA requests
//! are absolute element offsets into the arena, so a generated schedule that
//! computes a wrong offset reads or writes *somewhere else* — exactly like
//! the hardware — and is caught by functional tests rather than masked.

use crate::error::{MachineError, MachineResult};

/// Handle to a buffer allocated in main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub usize);

#[derive(Debug, Clone)]
struct BufferMeta {
    base: usize,
    len: usize,
    name: String,
}

/// The main-memory arena (element-addressed, f32).
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    data: Vec<f32>,
    buffers: Vec<BufferMeta>,
    /// Total allocated elements, including virtual (cost-only) buffers whose
    /// backing store was never materialised.
    end: usize,
}

impl MainMemory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a zero-initialised buffer of `len` f32 elements.
    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        let id = self.alloc_lazy(name, len);
        self.ensure(self.end);
        id
    }

    /// Allocate a buffer *address range* without materialising its backing
    /// store. Cost-only simulation only needs bases and bounds; skipping the
    /// zero-fill keeps per-candidate machine construction cheap in the
    /// autotuner. The range materialises (zeroed) on first write.
    pub fn alloc_lazy(&mut self, name: &str, len: usize) -> BufferId {
        let base = self.end;
        self.end += len;
        self.buffers.push(BufferMeta { base, len, name: name.to_string() });
        BufferId(self.buffers.len() - 1)
    }

    fn ensure(&mut self, upto: usize) {
        if self.data.len() < upto {
            self.data.resize(upto, 0.0);
        }
    }

    /// Allocate and fill from a slice.
    pub fn alloc_from(&mut self, name: &str, src: &[f32]) -> BufferId {
        let id = self.alloc(name, src.len());
        self.write(id, 0, src).expect("fresh buffer write cannot fail");
        id
    }

    /// Absolute element offset of the start of a buffer.
    pub fn base(&self, id: BufferId) -> usize {
        self.buffers[id.0].base
    }

    /// Length in elements of a buffer.
    pub fn len_of(&self, id: BufferId) -> usize {
        self.buffers[id.0].len
    }

    /// Debug name of a buffer.
    pub fn name_of(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    /// Total arena size in elements (virtual buffers included).
    pub fn arena_len(&self) -> usize {
        self.end
    }

    /// Read a whole buffer. The buffer must be materialised (allocated with
    /// [`MainMemory::alloc`] or written at least once).
    pub fn buffer(&self, id: BufferId) -> &[f32] {
        let m = &self.buffers[id.0];
        &self.data[m.base..m.base + m.len]
    }

    /// Mutable view of a whole buffer (materialises lazy storage).
    pub fn buffer_mut(&mut self, id: BufferId) -> &mut [f32] {
        let m = self.buffers[id.0].clone();
        self.ensure(m.base + m.len);
        &mut self.data[m.base..m.base + m.len]
    }

    /// Copy `dst.len()` elements out of a buffer starting at `offset`
    /// (relative to the buffer base).
    pub fn read(&self, id: BufferId, offset: usize, dst: &mut [f32]) -> MachineResult<()> {
        let m = &self.buffers[id.0];
        self.check(m, offset, dst.len())?;
        if m.base + offset + dst.len() > self.data.len() {
            return Err(MachineError::Invalid(format!(
                "read of buffer '{}' before any write (lazy cost-only storage)",
                m.name
            )));
        }
        dst.copy_from_slice(&self.data[m.base + offset..m.base + offset + dst.len()]);
        Ok(())
    }

    /// Copy `src` into a buffer starting at `offset` (materialises lazy
    /// storage).
    pub fn write(&mut self, id: BufferId, offset: usize, src: &[f32]) -> MachineResult<()> {
        let m = self.buffers[id.0].clone();
        self.check(&m, offset, src.len())?;
        self.ensure(m.base + m.len);
        self.data[m.base + offset..m.base + offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Raw arena access by absolute element offset (used by the DMA engine).
    pub(crate) fn arena(&self) -> &[f32] {
        &self.data
    }

    pub(crate) fn arena_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Validate that an absolute range lies within the arena (virtual
    /// buffers included).
    pub fn check_abs(&self, offset: usize, len: usize) -> MachineResult<()> {
        if offset + len > self.end {
            return Err(MachineError::MainMemoryOutOfBounds { offset, len, size: self.end });
        }
        Ok(())
    }

    fn check(&self, m: &BufferMeta, offset: usize, len: usize) -> MachineResult<()> {
        if offset + len > m.len {
            return Err(MachineError::MainMemoryOutOfBounds {
                offset: m.base + offset,
                len,
                size: m.base + m.len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut mem = MainMemory::new();
        let a = mem.alloc("a", 8);
        let b = mem.alloc_from("b", &[1.0, 2.0, 3.0]);
        assert_eq!(mem.base(a), 0);
        assert_eq!(mem.base(b), 8);
        assert_eq!(mem.len_of(b), 3);
        assert_eq!(mem.name_of(b), "b");

        mem.write(a, 2, &[9.0, 8.0]).unwrap();
        let mut out = [0.0; 4];
        mem.read(a, 1, &mut out).unwrap();
        assert_eq!(out, [0.0, 9.0, 8.0, 0.0]);
        assert_eq!(mem.buffer(b), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut mem = MainMemory::new();
        let a = mem.alloc("a", 4);
        let err = mem.write(a, 3, &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MachineError::MainMemoryOutOfBounds { .. }));
        let mut dst = [0.0; 5];
        assert!(mem.read(a, 0, &mut dst).is_err());
    }

    #[test]
    fn lazy_alloc_tracks_bounds_without_backing_store() {
        let mut mem = MainMemory::new();
        let a = mem.alloc_lazy("a", 1000);
        assert_eq!(mem.base(a), 0);
        assert_eq!(mem.len_of(a), 1000);
        assert_eq!(mem.arena_len(), 1000);
        assert!(mem.check_abs(0, 1000).is_ok());
        assert!(mem.check_abs(500, 501).is_err());
        // First write materialises the whole buffer, zero-filled.
        mem.write(a, 10, &[7.0]).unwrap();
        assert_eq!(mem.buffer(a)[10], 7.0);
        assert_eq!(mem.buffer(a)[9], 0.0);
        // Eager allocation after a lazy one stays disjoint.
        let b = mem.alloc_from("b", &[1.0, 2.0]);
        assert_eq!(mem.base(b), 1000);
        assert_eq!(mem.buffer(b), &[1.0, 2.0]);
        assert_eq!(mem.buffer(a)[10], 7.0);
    }

    #[test]
    fn buffers_are_zero_initialised() {
        let mut mem = MainMemory::new();
        let a = mem.alloc("a", 1000);
        assert!(mem.buffer(a).iter().all(|&x| x == 0.0));
    }
}
