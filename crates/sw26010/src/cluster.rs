//! The core group: 64 CPEs + SPMs + DMA engine + clocks, glued together.
//!
//! Generated programs (IR interpreters, hand-written baselines, micro-kernel
//! drivers) run against this structure. The CPEs execute in lockstep — every
//! operation we model (DMA batches, GEMM primitives, auxiliary compute) is
//! data-parallel and symmetric across the cluster, so a single compute clock
//! suffices; asymmetry would show up as load imbalance, which none of the
//! schedules in the paper produce.

use crate::clock::Cycles;
use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::dma::{DmaDirection, DmaEngine, DmaRequest, ReplyWord};
use crate::error::{MachineError, MachineResult};
use crate::fault::{FaultSession, MiscompilePlan, MiscompileSession};
use crate::mem::MainMemory;
use crate::spm::Spm;
use crate::trace::{Event, Trace};
use crate::N_CPE;

/// Whether data is actually moved/computed or only clocks advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Move real data; results are checkable against references.
    Functional,
    /// Advance clocks only. Used by autotuners measuring simulated time on
    /// workloads too large to compute functionally.
    CostOnly,
}

/// Handle to a reply word registered with the core group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplyId(pub usize);

/// One simulated core group.
#[derive(Debug, Clone)]
pub struct CoreGroup {
    pub cfg: MachineConfig,
    pub mem: MainMemory,
    spms: Vec<Spm>,
    dma: DmaEngine,
    now: Cycles,
    replies: Vec<ReplyWord>,
    pub trace: Trace,
    mode: ExecMode,
    /// Floating-point operations executed (for efficiency reporting).
    pub flops: u64,
    /// Aggregate machine counters for the current run (DMA traffic, stall
    /// cycles, kernel issue counts, SPM high-water mark). Incremented
    /// unconditionally — plain integer adds on a `Copy` struct, so the
    /// cost-only hot path stays allocation-free.
    pub counters: Counters,
    next_tag: u32,
    /// One-shot chaining flag set by [`CoreGroup::dma_chain_next`]: the next
    /// DMA batch is issued back-to-back with its predecessor and skips the
    /// engine start-up latency.
    chain_next: bool,
    /// Active fault stream, present iff `cfg.fault` is set. Rearmed per
    /// measurement run via [`CoreGroup::arm_faults`].
    faults: Option<FaultSession>,
    /// Active miscompile injection, armed explicitly via
    /// [`CoreGroup::arm_miscompile`] (validator self-tests only — never part
    /// of a machine config). Only functional data movement is affected, so
    /// cost-only clocks stay bit-identical with and without an injection.
    mis: Option<MiscompileSession>,
}

impl CoreGroup {
    pub fn new(cfg: MachineConfig, mode: ExecMode) -> Self {
        // Cost-only simulation never reads or writes SPM contents, so the
        // 64 × 64 KB backing stores stay lazy — constructing a core group
        // per tuning candidate (and per worker thread) is then allocation-
        // free up to the first functional write.
        let spms = (0..N_CPE)
            .map(|i| match mode {
                ExecMode::Functional => Spm::new(i, cfg.spm_bytes),
                ExecMode::CostOnly => Spm::lazy(i, cfg.spm_bytes),
            })
            .collect();
        let faults = cfg.fault.map(|p| p.session(0, 0));
        CoreGroup {
            cfg,
            mem: MainMemory::new(),
            spms,
            dma: DmaEngine::new(),
            now: Cycles::ZERO,
            replies: Vec::new(),
            trace: Trace::disabled(),
            mode,
            flops: 0,
            counters: Counters::default(),
            next_tag: 0,
            chain_next: false,
            faults,
            mis: None,
        }
    }

    /// Re-derive the fault stream for a specific `(run, attempt)` pair; see
    /// [`FaultPlan::session`](crate::fault::FaultPlan::session). No-op on a
    /// fault-free machine. Tuners call this before every timed execution so
    /// injected faults depend only on the candidate's identity, never on
    /// worker count or evaluation order.
    pub fn arm_faults(&mut self, run: u64, attempt: u32) {
        self.faults = self.cfg.fault.map(|p| p.session(run, attempt));
    }

    /// Arm (or disarm, with `None`) a seeded miscompile injection for the
    /// next execution; see [`MiscompilePlan`]. Used by validator self-tests
    /// to prove that differential validation catches each corruption class.
    pub fn arm_miscompile(&mut self, plan: Option<MiscompilePlan>) {
        self.mis = plan.map(|p| p.session());
    }

    /// Number of miscompile events the armed injection has fired so far.
    /// Zero with no injection armed. A test asserting "the validator caught
    /// the injection" must also assert this is nonzero, or a schedule that
    /// never exercised the corrupted path would pass vacuously.
    pub fn miscompile_events(&self) -> u64 {
        self.mis.as_ref().map_or(0, MiscompileSession::events)
    }

    /// Should this `SpmSlot::Double` resolution read the wrong parity?
    /// Consulted by IR interpreters; fires only in functional mode (and only
    /// under an armed [`MiscompileKind::SwapParity`](crate::fault::MiscompileKind)
    /// injection), so cost-only execution is untouched.
    pub fn miscompile_flip_parity(&mut self) -> bool {
        self.mode == ExecMode::Functional
            && self.mis.as_mut().is_some_and(MiscompileSession::flip_parity)
    }

    /// Effective SPM capacity (in f32 elements) for the current run: the
    /// nominal capacity, minus whatever the active fault session stole.
    pub fn spm_capacity_elems(&self) -> usize {
        let full = self.cfg.spm_elems();
        self.faults.as_ref().map_or(full, |f| f.spm_capacity(full))
    }

    /// Filter a measured cycle count through the fault session's jitter
    /// model. Identity on a fault-free machine. Callers apply this once per
    /// observation — at the measurement boundary, not inside the simulation,
    /// so functional/cost-only clock equality is untouched.
    pub fn observed(&mut self, c: Cycles) -> Cycles {
        match &mut self.faults {
            Some(f) => f.jitter(c),
            None => c,
        }
    }

    /// Convenience: default config.
    pub fn with_mode(mode: ExecMode) -> Self {
        Self::new(MachineConfig::default(), mode)
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Current compute-stream time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Reset clocks, DMA engine, reply words, flop counter and machine
    /// counters, keeping memory contents. Call between timed program runs.
    pub fn reset_clocks(&mut self) {
        self.now = Cycles::ZERO;
        self.dma.reset();
        self.replies.clear();
        self.flops = 0;
        self.counters = Counters::default();
        self.next_tag = 0;
        self.chain_next = false;
        self.trace.clear();
    }

    /// Mark the next DMA batch as *chained*: it is issued back-to-back with
    /// the immediately preceding batch (no intervening wait or compute), so
    /// its descriptors ride the engine's open pipeline — the per-batch
    /// start-up latency is waived and no new batch group is counted. The
    /// flag is consumed by the next `dma*` call. Interpreters set it for
    /// IR nodes carrying the optimizer's batch-fusion mark.
    pub fn dma_chain_next(&mut self) {
        self.chain_next = true;
    }

    /// Advance the compute stream by `c` cycles of work.
    pub fn advance(&mut self, c: Cycles) {
        self.now += c;
    }

    /// Record `c` cycles of auxiliary compute (transform, padding copy…)
    /// with an explanatory label.
    pub fn compute(&mut self, c: Cycles, what: &'static str) {
        if self.trace.is_enabled() {
            let at = self.now;
            self.trace.push(Event::Compute { at, cycles: c, what });
        }
        self.now += c;
        self.counters.compute_cycles += c.get();
    }

    /// Record a GEMM kernel execution of `c` cycles performing `flops`.
    pub fn kernel(&mut self, c: Cycles, flops: u64, m: usize, n: usize, k: usize) {
        if self.trace.is_enabled() {
            let at = self.now;
            self.trace.push(Event::Gemm { at, cycles: c, m, n, k });
        }
        self.now += c;
        self.flops += flops;
        self.counters.kernel_calls += 1;
        self.counters.kernel_cycles += c.get();
        self.counters.flops += flops;
    }

    /// Register a fresh reply word.
    pub fn alloc_reply(&mut self) -> ReplyId {
        self.replies.push(ReplyWord::new());
        ReplyId(self.replies.len() - 1)
    }

    /// Pending (issued, un-waited) completions on a reply word. Unknown
    /// reply ids report zero pending completions.
    pub fn reply_pending(&self, id: ReplyId) -> usize {
        self.replies.get(id.0).map_or(0, ReplyWord::pending)
    }

    /// Checked mutable access to a reply word: generated code referencing a
    /// reply it never allocated is a schedule bug, surfaced as an error
    /// instead of an index panic.
    fn reply_mut(&mut self, id: ReplyId) -> MachineResult<&mut ReplyWord> {
        let n = self.replies.len();
        self.replies.get_mut(id.0).ok_or_else(|| {
            MachineError::Invalid(format!("unknown reply word {} ({n} allocated)", id.0))
        })
    }

    /// Charge the issue cost and consult the fault session; shared prologue
    /// of [`CoreGroup::dma`] and [`CoreGroup::dma_totals`]. A hit models the
    /// engine dropping the batch after the CPE already paid for the issue.
    fn dma_issue(&mut self) -> MachineResult<()> {
        self.now += self.cfg.dma_issue_cost;
        if let Some(f) = &mut self.faults {
            if f.dma_fault() {
                return Err(MachineError::DmaFault { batch: self.dma.batches });
            }
        }
        Ok(())
    }

    /// Issue an asynchronous DMA batch (the `swDMA` primitive, one request
    /// per participating CPE). The compute stream pays only the issue cost;
    /// the transfer proceeds in the background and its completion time is
    /// recorded on `reply`.
    pub fn dma(
        &mut self,
        direction: DmaDirection,
        requests: &[DmaRequest],
        reply: ReplyId,
    ) -> MachineResult<()> {
        if requests.is_empty() {
            return Err(MachineError::BadDmaRequest("empty batch".into()));
        }
        for r in requests {
            if r.direction != direction {
                return Err(MachineError::BadDmaRequest(
                    "mixed directions in one batch".into(),
                ));
            }
        }
        let chained = std::mem::take(&mut self.chain_next);
        self.dma_issue()?;
        let finish = self.dma.schedule_with(&self.cfg, self.now, requests, chained)?;
        // Functional data movement happens "at issue": the engine snapshots
        // the source. Generated programs must not overwrite a source before
        // waiting, which the wait discipline of the IR interpreter enforces.
        if self.mode == ExecMode::Functional {
            let dropped =
                chained && self.mis.as_mut().is_some_and(MiscompileSession::drop_fused_copy);
            if !dropped {
                for r in requests {
                    self.copy(r)?;
                    if self.mis.as_mut().is_some_and(MiscompileSession::corrupt_copy) {
                        self.corrupt(r)?;
                    }
                }
            }
        }
        let payload: usize = requests.iter().map(|r| r.total_bytes()).sum();
        let bus: usize = requests
            .iter()
            .map(|r| r.bus_bytes(self.cfg.dram_transaction_bytes))
            .sum();
        self.counters.dma_payload_bytes += payload as u64;
        self.counters.dma_bus_bytes += bus as u64;
        if !chained {
            self.counters.dma_batches += 1;
        }
        for r in requests {
            if r.direction == DmaDirection::MemToSpm {
                self.counters.note_spm_use((r.spm_offset + r.total_elems()) as u64);
            }
        }
        if self.trace.is_enabled() {
            let at = self.now;
            let tag = self.next_tag;
            self.trace.push(Event::DmaIssue {
                at,
                done: finish,
                direction,
                payload_bytes: payload,
                bus_bytes: bus,
                tag,
            });
        }
        self.reply_mut(reply)?.push(finish);
        self.next_tag += 1;
        Ok(())
    }

    /// Issue a *broadcast* DMA batch: one leader CPE per mesh row (or
    /// column) fetches the whole line's panels from DRAM and scatters them
    /// to its 7 peers over the register-communication bus. The DRAM side of
    /// the batch is `leader_requests` (8 wide fetches instead of 64 narrow
    /// ones — fewer descriptors, full transactions); `requests` still
    /// describes the per-CPE destination blocks and is what moves data in
    /// functional mode, so delivered SPM bytes are identical to the
    /// non-broadcast batch. The scatter (`scatter` cycles, see
    /// [`crate::regcomm::dma_scatter_cycles`]) serialises after the
    /// transfer and before the reply-word completion; the panel streams
    /// through the leader's registers, so no extra SPM staging is modelled.
    pub fn dma_bcast(
        &mut self,
        direction: DmaDirection,
        leader_requests: &[DmaRequest],
        requests: &[DmaRequest],
        scatter: Cycles,
        reply: ReplyId,
    ) -> MachineResult<()> {
        if leader_requests.is_empty() || requests.is_empty() {
            return Err(MachineError::BadDmaRequest("empty broadcast batch".into()));
        }
        for r in leader_requests.iter().chain(requests) {
            if r.direction != direction {
                return Err(MachineError::BadDmaRequest(
                    "mixed directions in one batch".into(),
                ));
            }
        }
        let chained = std::mem::take(&mut self.chain_next);
        self.dma_issue()?;
        let finish =
            self.dma.schedule_with(&self.cfg, self.now, leader_requests, chained)? + scatter;
        if self.mode == ExecMode::Functional {
            let dropped =
                chained && self.mis.as_mut().is_some_and(MiscompileSession::drop_fused_copy);
            if !dropped {
                for r in requests {
                    self.copy(r)?;
                    if self.mis.as_mut().is_some_and(MiscompileSession::corrupt_copy) {
                        self.corrupt(r)?;
                    }
                }
            }
        }
        let payload: usize = leader_requests.iter().map(|r| r.total_bytes()).sum();
        let bus: usize = leader_requests
            .iter()
            .map(|r| r.bus_bytes(self.cfg.dram_transaction_bytes))
            .sum();
        self.counters.dma_payload_bytes += payload as u64;
        self.counters.dma_bus_bytes += bus as u64;
        if !chained {
            self.counters.dma_batches += 1;
        }
        self.counters.dma_bcast_batches += 1;
        // 7 of every 8 panel bytes travel the mesh from a leader to a peer.
        self.counters.regcomm_bytes += (payload as u64 / 8) * 7;
        for r in requests {
            if r.direction == DmaDirection::MemToSpm {
                self.counters.note_spm_use((r.spm_offset + r.total_elems()) as u64);
            }
        }
        if self.trace.is_enabled() {
            let at = self.now;
            let tag = self.next_tag;
            self.trace.push(Event::DmaIssue {
                at,
                done: finish,
                direction,
                payload_bytes: payload,
                bus_bytes: bus,
                tag,
            });
            let scatter_bytes = (payload / 8) * 7;
            self.trace.push(Event::Regcomm {
                at: finish.saturating_sub(scatter),
                cycles: scatter,
                bytes: scatter_bytes,
            });
        }
        self.reply_mut(reply)?.push(finish);
        self.next_tag += 1;
        Ok(())
    }

    /// Cost-only fast path for [`CoreGroup::dma_bcast`], mirroring
    /// [`CoreGroup::dma_totals`]: the caller aggregated the *leader*
    /// requests' bus/block/payload totals; the scatter delay is appended to
    /// the completion time and the broadcast counters are bumped.
    pub fn dma_totals_bcast(
        &mut self,
        bus_bytes: usize,
        blocks: usize,
        payload_bytes: usize,
        scatter: Cycles,
        reply: ReplyId,
    ) -> MachineResult<()> {
        let chained = std::mem::take(&mut self.chain_next);
        self.dma_issue()?;
        let finish = self
            .dma
            .schedule_totals_with(&self.cfg, self.now, bus_bytes, blocks, payload_bytes, chained)
            + scatter;
        self.counters.dma_payload_bytes += payload_bytes as u64;
        self.counters.dma_bus_bytes += bus_bytes as u64;
        if !chained {
            self.counters.dma_batches += 1;
        }
        self.counters.dma_bcast_batches += 1;
        self.counters.regcomm_bytes += (payload_bytes as u64 / 8) * 7;
        // Pure observation — the cost-only profiler reads the same event
        // stream the functional path records; no clock is touched.
        if self.trace.is_enabled() {
            let at = self.now;
            let tag = self.next_tag;
            self.trace.push(Event::DmaIssue {
                at,
                done: finish,
                direction: DmaDirection::MemToSpm,
                payload_bytes,
                bus_bytes,
                tag,
            });
            self.trace.push(Event::Regcomm {
                at: finish.saturating_sub(scatter),
                cycles: scatter,
                bytes: (payload_bytes / 8) * 7,
            });
        }
        self.reply_mut(reply)?.push(finish);
        self.next_tag += 1;
        Ok(())
    }

    /// Cost-only fast path for [`CoreGroup::dma`]: the caller aggregated
    /// the batch's bus-byte/block/payload totals itself (no request
    /// structures are built, no data moves). Clock semantics are identical
    /// to issuing the equivalent batch through [`CoreGroup::dma`].
    pub fn dma_totals(
        &mut self,
        bus_bytes: usize,
        blocks: usize,
        payload_bytes: usize,
        reply: ReplyId,
    ) -> MachineResult<()> {
        self.dma_totals_directed(DmaDirection::MemToSpm, bus_bytes, blocks, payload_bytes, reply)
    }

    /// [`CoreGroup::dma_totals`] with an explicit transfer direction, so the
    /// trace (and the timelines built from it) labels cost-only batches
    /// correctly. `dma_totals` itself defaults to mem→SPM for callers that
    /// don't care.
    pub fn dma_totals_directed(
        &mut self,
        direction: DmaDirection,
        bus_bytes: usize,
        blocks: usize,
        payload_bytes: usize,
        reply: ReplyId,
    ) -> MachineResult<()> {
        let chained = std::mem::take(&mut self.chain_next);
        self.dma_issue()?;
        let finish = self.dma.schedule_totals_with(
            &self.cfg,
            self.now,
            bus_bytes,
            blocks,
            payload_bytes,
            chained,
        );
        self.counters.dma_payload_bytes += payload_bytes as u64;
        self.counters.dma_bus_bytes += bus_bytes as u64;
        if !chained {
            self.counters.dma_batches += 1;
        }
        // Pure observation — no clock is touched; with the trace disabled
        // this path is bit-identical to the pre-profiler behaviour.
        if self.trace.is_enabled() {
            let at = self.now;
            let tag = self.next_tag;
            self.trace.push(Event::DmaIssue {
                at,
                done: finish,
                direction,
                payload_bytes,
                bus_bytes,
                tag,
            });
        }
        self.reply_mut(reply)?.push(finish);
        self.next_tag += 1;
        Ok(())
    }

    /// Wait for `times` completions on `reply` (the `swDMAWait` primitive).
    pub fn dma_wait(&mut self, reply: ReplyId, times: usize) -> MachineResult<()> {
        self.now += self.cfg.dma_wait_poll;
        let done = self.reply_mut(reply)?.wait(times)?;
        let stall = done.saturating_sub(self.now);
        self.counters.dma_waits += 1;
        self.counters.dma_stall_cycles += stall.get();
        if self.trace.is_enabled() {
            let at = self.now;
            let tag = self.next_tag;
            self.trace.push(Event::DmaWait { at, stall, tag });
        }
        self.now = self.now.max(done);
        Ok(())
    }

    /// Immutable access to one CPE's SPM.
    pub fn spm(&self, cpe: usize) -> &Spm {
        &self.spms[cpe]
    }

    /// Mutable access to one CPE's SPM.
    pub fn spm_mut(&mut self, cpe: usize) -> &mut Spm {
        &mut self.spms[cpe]
    }

    /// DMA engine statistics: (payload bytes, bus bytes, batches).
    pub fn dma_stats(&self) -> (u64, u64, u64) {
        (self.dma.payload_bytes, self.dma.bus_bytes, self.dma.batches)
    }

    /// Achieved GFLOPS of the run so far.
    pub fn achieved_gflops(&self) -> f64 {
        crate::clock::gflops(self.flops, self.now, self.cfg.clock_ghz)
    }

    /// Fraction of peak achieved so far.
    pub fn efficiency(&self) -> f64 {
        self.cfg.efficiency(self.flops, self.now)
    }

    /// Flip an exponent bit of the first destination element of a request
    /// that just copied — the [`MiscompileKind::CorruptPayload`]
    /// (crate::fault::MiscompileKind) event. The change is far above any
    /// ulp-level comparison tolerance, so a validator that re-reads the
    /// result must see it (if the element ever reaches an output).
    fn corrupt(&mut self, r: &DmaRequest) -> MachineResult<()> {
        let flip = |x: f32| f32::from_bits(x.to_bits() ^ 0x4000_0000);
        match r.direction {
            DmaDirection::MemToSpm => {
                let s = self.spms[r.cpe].slice_mut(r.spm_offset, 1)?;
                s[0] = flip(s[0]);
            }
            DmaDirection::SpmToMem => {
                self.mem.check_abs(r.mem_offset, 1)?;
                let a = self.mem.arena_mut();
                a[r.mem_offset] = flip(a[r.mem_offset]);
            }
        }
        Ok(())
    }

    fn copy(&mut self, r: &DmaRequest) -> MachineResult<()> {
        let total = r.total_elems();
        match r.direction {
            DmaDirection::MemToSpm => {
                self.spms[r.cpe].slice(r.spm_offset, total)?;
                for b in 0..r.n_blocks {
                    let src = r.mem_offset + b * r.stride_elems;
                    self.mem.check_abs(src, r.block_elems)?;
                    let dst_off = r.spm_offset + b * r.block_elems;
                    let arena = self.mem.arena();
                    let block = &arena[src..src + r.block_elems];
                    self.spms[r.cpe]
                        .slice_mut(dst_off, r.block_elems)?
                        .copy_from_slice(block);
                }
            }
            DmaDirection::SpmToMem => {
                self.spms[r.cpe].slice(r.spm_offset, total)?;
                for b in 0..r.n_blocks {
                    let dst = r.mem_offset + b * r.stride_elems;
                    self.mem.check_abs(dst, r.block_elems)?;
                    let src_off = r.spm_offset + b * r.block_elems;
                    let block: Vec<f32> =
                        self.spms[r.cpe].slice(src_off, r.block_elems)?.to_vec();
                    self.mem.arena_mut()[dst..dst + r.block_elems].copy_from_slice(&block);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaDirection::*;

    fn cg() -> CoreGroup {
        CoreGroup::with_mode(ExecMode::Functional)
    }

    #[test]
    fn dma_roundtrip_moves_data() {
        let mut cg = cg();
        let src: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let a = cg.mem.alloc_from("a", &src);
        let b = cg.mem.alloc("b", 256);
        let base_a = cg.mem.base(a);
        let base_b = cg.mem.base(b);

        let reply = cg.alloc_reply();
        cg.dma(MemToSpm, &[DmaRequest::contiguous(3, MemToSpm, base_a, 0, 256)], reply)
            .unwrap();
        cg.dma_wait(reply, 1).unwrap();
        assert_eq!(cg.spm(3).load(255).unwrap(), 255.0);

        cg.dma(SpmToMem, &[DmaRequest::contiguous(3, SpmToMem, base_b, 0, 256)], reply)
            .unwrap();
        cg.dma_wait(reply, 1).unwrap();
        assert_eq!(cg.mem.buffer(b), src.as_slice());
    }

    #[test]
    fn strided_gather_distributes_rows() {
        // An 8×8 matrix in memory; CPE r takes row r via a strided request of
        // 1 block — then CPE 0 takes column 0 via 8 strided blocks of 1 elem.
        let mut cg = cg();
        let m: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let a = cg.mem.alloc_from("a", &m);
        let base = cg.mem.base(a);
        let reply = cg.alloc_reply();
        let req = DmaRequest {
            cpe: 0,
            direction: MemToSpm,
            mem_offset: base,
            spm_offset: 0,
            block_elems: 1,
            stride_elems: 8,
            n_blocks: 8,
        };
        cg.dma(MemToSpm, &[req], reply).unwrap();
        cg.dma_wait(reply, 1).unwrap();
        for r in 0..8 {
            assert_eq!(cg.spm(0).load(r).unwrap(), (r * 8) as f32);
        }
    }

    #[test]
    fn wait_stalls_until_completion() {
        let mut cg = cg();
        let a = cg.mem.alloc("a", 1 << 16);
        let base = cg.mem.base(a);
        let reply = cg.alloc_reply();
        cg.dma(MemToSpm, &[DmaRequest::contiguous(0, MemToSpm, base, 0, 8192)], reply)
            .unwrap();
        let before = cg.now();
        cg.dma_wait(reply, 1).unwrap();
        assert!(cg.now() > before, "wait must advance to DMA completion");
    }

    #[test]
    fn overlapped_compute_hides_dma() {
        // Issue DMA, do compute of equal length, then wait: total ≈ max.
        let mut cg = cg();
        let a = cg.mem.alloc("a", 1 << 16);
        let base = cg.mem.base(a);
        let reply = cg.alloc_reply();
        cg.dma(MemToSpm, &[DmaRequest::contiguous(0, MemToSpm, base, 0, 8192)], reply)
            .unwrap();
        let dma_len = {
            // Duration the engine will take (issue already accounted).
            let mut probe = cg.clone();
            let t0 = probe.now();
            probe.dma_wait(reply, 1).unwrap();
            probe.now() - t0
        };
        cg.kernel(dma_len, 0, 0, 0, 0); // compute as long as the transfer
        let before_wait = cg.now();
        cg.dma_wait(reply, 1).unwrap();
        let stall = cg.now() - before_wait;
        assert!(
            stall.get() <= cg.cfg.dma_wait_poll.get(),
            "fully overlapped DMA must not stall (stall = {stall})"
        );
    }

    #[test]
    fn cost_only_mode_skips_data() {
        let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
        let src: Vec<f32> = vec![5.0; 64];
        let a = cg.mem.alloc_from("a", &src);
        let base = cg.mem.base(a);
        let reply = cg.alloc_reply();
        cg.dma(MemToSpm, &[DmaRequest::contiguous(0, MemToSpm, base, 0, 64)], reply)
            .unwrap();
        cg.dma_wait(reply, 1).unwrap();
        // Clocks advanced but SPM stayed zero.
        assert!(cg.now().get() > 0);
        assert_eq!(cg.spm(0).load(0).unwrap(), 0.0);
    }

    #[test]
    fn mixed_direction_batch_rejected() {
        let mut cg = cg();
        let a = cg.mem.alloc("a", 64);
        let base = cg.mem.base(a);
        let reply = cg.alloc_reply();
        let reqs = vec![
            DmaRequest::contiguous(0, MemToSpm, base, 0, 8),
            DmaRequest::contiguous(1, SpmToMem, base, 0, 8),
        ];
        assert!(cg.dma(MemToSpm, &reqs, reply).is_err());
    }

    #[test]
    fn reset_clocks_keeps_memory() {
        let mut cg = cg();
        let a = cg.mem.alloc_from("a", &[1.0, 2.0]);
        cg.advance(Cycles(100));
        cg.flops += 10;
        cg.reset_clocks();
        assert_eq!(cg.now(), Cycles::ZERO);
        assert_eq!(cg.flops, 0);
        assert_eq!(cg.mem.buffer(a), &[1.0, 2.0]);
    }

    #[test]
    fn efficiency_reporting() {
        let mut cg = cg();
        cg.kernel(Cycles(1000), (64 * 8 * 1000) as u64, 8, 8, 8);
        assert!((cg.efficiency() - 1.0).abs() < 1e-12);
        assert!((cg.achieved_gflops() - 742.4).abs() < 0.1);
    }

    #[test]
    fn unknown_reply_is_an_error_not_a_panic() {
        let mut cg = cg();
        let stale = ReplyId(7); // never allocated on this core group
        assert!(cg.dma_wait(stale, 1).is_err());
        assert_eq!(cg.reply_pending(stale), 0);
        let a = cg.mem.alloc("a", 64);
        let base = cg.mem.base(a);
        let req = [DmaRequest::contiguous(0, MemToSpm, base, 0, 64)];
        assert!(cg.dma(MemToSpm, &req, stale).is_err());
        assert!(cg.dma_totals(128, 1, 128, stale).is_err());
    }

    fn faulty_cfg(dma_ppm: u32, steal: u32, jitter: u32) -> MachineConfig {
        MachineConfig {
            fault: Some(crate::fault::FaultPlan {
                seed: 0xBAD_5EED,
                dma_fail_ppm: dma_ppm,
                spm_pressure_ppm: if steal > 0 { 1_000_000 } else { 0 },
                spm_steal_max_permille: steal,
                jitter_permille: jitter,
                wedge_run: None,
                wedge_ms: 0,
            }),
            ..MachineConfig::default()
        }
    }

    #[test]
    fn certain_dma_fault_fails_both_issue_paths_transiently() {
        let mut cg = CoreGroup::new(faulty_cfg(1_000_000, 0, 0), ExecMode::CostOnly);
        let reply = cg.alloc_reply();
        let err = cg.dma_totals(128, 1, 128, reply).unwrap_err();
        assert!(err.is_transient(), "injected DMA fault must be retryable: {err}");
        let a = cg.mem.alloc("a", 64);
        let base = cg.mem.base(a);
        let req = [DmaRequest::contiguous(0, MemToSpm, base, 0, 64)];
        let err = cg.dma(MemToSpm, &req, reply).unwrap_err();
        assert!(matches!(err, MachineError::DmaFault { .. }));
    }

    #[test]
    fn spm_pressure_shrinks_effective_capacity_only_under_faults() {
        let cg = CoreGroup::new(faulty_cfg(0, 250, 0), ExecMode::CostOnly);
        let full = cg.cfg.spm_elems();
        assert!(cg.spm_capacity_elems() < full, "certain pressure must steal capacity");
        assert!(cg.spm_capacity_elems() >= full - full / 4, "steal bounded at 25%");
        let clean = CoreGroup::with_mode(ExecMode::CostOnly);
        assert_eq!(clean.spm_capacity_elems(), clean.cfg.spm_elems());
    }

    #[test]
    fn observed_is_identity_without_faults_and_bounded_with() {
        let mut clean = CoreGroup::with_mode(ExecMode::CostOnly);
        assert_eq!(clean.observed(Cycles(123_456)), Cycles(123_456));
        let mut noisy = CoreGroup::new(faulty_cfg(0, 0, 20), ExecMode::CostOnly);
        let c = noisy.observed(Cycles(1_000_000)).get();
        assert!((980_000..=1_020_000).contains(&c));
    }

    #[test]
    fn counters_track_dma_kernel_and_compute() {
        let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
        let a = cg.mem.alloc("a", 1 << 12);
        let base = cg.mem.base(a);
        let reply = cg.alloc_reply();
        // One strided request: 7-elem blocks waste part of each transaction,
        // so bus bytes exceed payload bytes.
        let req = DmaRequest {
            cpe: 0,
            direction: MemToSpm,
            mem_offset: base,
            spm_offset: 16,
            block_elems: 7,
            stride_elems: 64,
            n_blocks: 4,
        };
        cg.dma(MemToSpm, &[req], reply).unwrap();
        cg.dma_wait(reply, 1).unwrap();
        cg.kernel(Cycles(500), 1000, 8, 8, 8);
        cg.compute(Cycles(30), "pack");
        let c = cg.counters;
        assert_eq!(c.dma_payload_bytes, 4 * 7 * 4);
        assert!(c.dma_bus_bytes > c.dma_payload_bytes, "strided blocks waste bus bytes");
        assert_eq!(c.dma_batches, 1);
        assert_eq!(c.dma_waits, 1);
        assert!(c.dma_stall_cycles > 0, "nothing overlapped this transfer");
        assert_eq!(c.kernel_calls, 1);
        assert_eq!(c.kernel_cycles, 500);
        assert_eq!(c.compute_cycles, 30);
        assert_eq!(c.spm_high_water_elems, (16 + 4 * 7) as u64);
        assert!(c.dma_efficiency() < 1.0);
    }

    #[test]
    fn counters_match_between_dma_and_dma_totals() {
        // The cost-only fast path must account the same traffic as the
        // request-based path for an equivalent batch.
        let mut a = CoreGroup::with_mode(ExecMode::CostOnly);
        let buf = a.mem.alloc("a", 1 << 12);
        let base = a.mem.base(buf);
        let ra = a.alloc_reply();
        let req = DmaRequest::contiguous(0, MemToSpm, base, 0, 256);
        let (payload, bus) =
            (req.total_bytes(), req.bus_bytes(a.cfg.dram_transaction_bytes));
        a.dma(MemToSpm, &[req], ra).unwrap();

        let mut b = CoreGroup::with_mode(ExecMode::CostOnly);
        let rb = b.alloc_reply();
        b.dma_totals(bus, 1, payload, rb).unwrap();

        assert_eq!(a.counters.dma_payload_bytes, b.counters.dma_payload_bytes);
        assert_eq!(a.counters.dma_bus_bytes, b.counters.dma_bus_bytes);
        assert_eq!(a.counters.dma_batches, b.counters.dma_batches);
    }

    #[test]
    fn bcast_delivers_same_bytes_with_leader_side_traffic() {
        // 8×64 panel: row leaders fetch 64 contiguous elems each; the
        // per-CPE view is 8 elems per CPE. Broadcast must deliver exactly
        // what the plain batch delivers, while accounting DRAM traffic from
        // the 8 leader requests only.
        let src: Vec<f32> = (0..512).map(|i| i as f32).collect();
        let mk = |bcast: bool| -> CoreGroup {
            let mut cg = cg();
            let a = cg.mem.alloc_from("a", &src);
            let base = cg.mem.base(a);
            let reply = cg.alloc_reply();
            let per_cpe: Vec<DmaRequest> = (0..64)
                .map(|cpe| DmaRequest::contiguous(cpe, MemToSpm, base + cpe * 8, 0, 8))
                .collect();
            if bcast {
                let leaders: Vec<DmaRequest> = (0..8)
                    .map(|r| DmaRequest::contiguous(r * 8, MemToSpm, base + r * 64, 0, 64))
                    .collect();
                cg.dma_bcast(MemToSpm, &leaders, &per_cpe, Cycles(100), reply).unwrap();
            } else {
                cg.dma(MemToSpm, &per_cpe, reply).unwrap();
            }
            cg.dma_wait(reply, 1).unwrap();
            cg
        };
        let plain = mk(false);
        let bc = mk(true);
        for cpe in 0..64 {
            for e in 0..8 {
                assert_eq!(
                    bc.spm(cpe).load(e).unwrap(),
                    plain.spm(cpe).load(e).unwrap(),
                    "cpe {cpe} elem {e}"
                );
            }
        }
        assert_eq!(bc.counters.dma_payload_bytes, plain.counters.dma_payload_bytes);
        assert_eq!(bc.counters.dma_bcast_batches, 1);
        assert_eq!(plain.counters.dma_bcast_batches, 0);
        assert_eq!(bc.counters.regcomm_bytes, 512 * 4 / 8 * 7);
        // Same payload in 8 descriptors instead of 64 finishes sooner even
        // after paying the scatter.
        assert!(bc.now() < plain.now(), "bcast {} !< plain {}", bc.now(), plain.now());
    }

    #[test]
    fn reset_clocks_clears_counters() {
        let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
        cg.kernel(Cycles(100), 10, 8, 8, 8);
        cg.counters.note_spm_use(999);
        assert_ne!(cg.counters, Counters::default());
        cg.reset_clocks();
        assert_eq!(cg.counters, Counters::default());
    }

    #[test]
    fn arm_faults_makes_runs_reproducible() {
        let cfg = faulty_cfg(500_000, 0, 0);
        let run = |run_id: u64, attempt: u32| -> Vec<bool> {
            let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
            cg.arm_faults(run_id, attempt);
            let reply = cg.alloc_reply();
            (0..64).map(|_| cg.dma_totals(128, 1, 128, reply).is_err()).collect()
        };
        assert_eq!(run(9, 0), run(9, 0), "same (run, attempt) must replay faults");
        assert_ne!(run(9, 0), run(9, 1), "retry must see a fresh stream");
    }
}
