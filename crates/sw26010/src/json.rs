//! Hand-rolled JSON utilities shared by every exporter in the workspace.
//!
//! The machine-model stack is dependency-free, so the Chrome-trace export,
//! the telemetry snapshot/Perfetto exporters and the bench journal all emit
//! JSON by hand. The pieces they share live here exactly once:
//!
//! * [`escape_json`] — string-literal escaping (quotes, backslashes,
//!   control characters; everything else, including non-ASCII, passes
//!   through as UTF-8);
//! * [`fmt_f64`] — floats as plain decimal JSON numbers, `null` when
//!   non-finite (JSON has no NaN/Infinity);
//! * [`Json`] / [`parse`] — a minimal value model and recursive-descent
//!   parser for readers (journal, tooling) that must not trust their input.
//!
//! Numbers are kept as their literal text ([`Json::Num`] stores the raw
//! slice) so integer fields survive the round trip exactly — `u64::MAX`
//! cycles would be corrupted by an intermediate `f64`.

use std::fmt::Write as _;

/// Escape a string for embedding inside a JSON string literal. Handles
/// quotes, backslashes and control characters; everything else passes
/// through.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON value: plain decimal, or `null` when
/// non-finite. Rust's `Display` for finite floats is exponent-free only for
/// moderate magnitudes; extreme ones are re-rendered with a fixed number of
/// fraction digits so the output is always a valid JSON number.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('e') || s.contains('E') {
        format!("{v:.6}")
    } else {
        s
    }
}

/// A parsed JSON value. Numbers keep their literal text; convert with
/// [`Json::as_u64`] / [`Json::as_f64`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// The literal number text, e.g. `"-1.5e3"`.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match; the writers never duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but with a contextual error.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key \"{key}\""))
    }

    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => {
                n.parse().map_err(|_| format!("{what}: {n:?} is not an unsigned integer"))
            }
            _ => Err(format!("{what}: expected a number")),
        }
    }

    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => n.parse().map_err(|_| format!("{what}: {n:?} is not a number")),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    /// A float that may be written as `null` (absent / non-finite).
    pub fn as_opt_f64(&self, what: &str) -> Result<Option<f64>, String> {
        match self {
            Json::Null => Ok(None),
            _ => self.as_f64(what).map(Some),
        }
    }

    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    pub fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected an array")),
        }
    }
}

/// Parse a complete JSON document. Rejects trailing data, raw control bytes
/// in strings, malformed escapes and truncated input — a hand-edited or
/// corrupted file is reported, not trusted.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn lit(&mut self, lit: &[u8], v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.lit(b"null", Json::Null),
            b't' => self.lit(b"true", Json::Bool(true)),
            b'f' => self.lit(b"false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if self.peek()? != b':' {
                        return Err(format!("expected ':' at byte {}", self.pos));
                    }
                    self.pos += 1;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            c if c == b'-' || c.is_ascii_digit() => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos - s
        };
        if digits(self) == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if digits(self) == 0 {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if digits(self) == 0 {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek()? != b'"' {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\' | 0x00..=0x1f)) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(0x00..=0x1f) => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.bytes.get(self.pos).ok_or_else(|| "truncated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => return Err(format!("unknown escape '\\{}'", *c as char)),
                    }
                }
                Some(_) => unreachable!("scan stops only at quote, backslash or control"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(hex)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("lone high surrogate".to_string());
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".to_string());
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid code point {code:#x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape_json("x\ny\tz\r"), "x\\ny\\tz\\r");
        assert_eq!(escape_json("\u{1}\u{1f}"), "\\u0001\\u001f");
        // 0x20 (space) and above pass through.
        assert_eq!(escape_json(" !"), " !");
    }

    #[test]
    fn escape_passes_non_ascii_through() {
        assert_eq!(escape_json("héllo \u{1F600} 中文"), "héllo \u{1F600} 中文");
    }

    #[test]
    fn escaped_strings_parse_back_to_the_original() {
        for s in ["quote \" back \\ slash", "tab\there\nnewline", "\u{1} café \u{1F600}"] {
            let doc = format!("\"{}\"", escape_json(s));
            assert_eq!(parse(&doc).unwrap(), Json::Str(s.to_string()), "{doc}");
        }
    }

    #[test]
    fn fmt_f64_is_always_valid_json() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        // Extreme magnitudes would Display with an exponent; re-rendered.
        assert!(!fmt_f64(1e-9).contains('e'));
    }

    #[test]
    fn parse_accepts_the_full_value_model() {
        let v = parse("{\"a\":[1,-2.5,3e4,\"x\",true,false,null],\"b\":{}}").unwrap();
        let a = v.field("a").unwrap().as_arr("a").unwrap();
        assert_eq!(a.len(), 7);
        assert_eq!(a[0].as_u64("n").unwrap(), 1);
        assert!((a[1].as_f64("f").unwrap() + 2.5).abs() < 1e-12);
        assert!((a[2].as_f64("e").unwrap() - 3e4).abs() < 1e-9);
        assert_eq!(a[3].as_str("s").unwrap(), "x");
        assert_eq!(a[4], Json::Bool(true));
        assert_eq!(a[6], Json::Null);
        assert_eq!(v.field("b").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn numbers_keep_u64_exactness() {
        let v = parse(&format!("{{\"c\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.field("c").unwrap().as_u64("c").unwrap(), u64::MAX);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"raw\x01control\"").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn opt_f64_treats_null_as_absent() {
        let v = parse("{\"x\":null,\"y\":2.5}").unwrap();
        assert_eq!(v.field("x").unwrap().as_opt_f64("x").unwrap(), None);
        assert_eq!(v.field("y").unwrap().as_opt_f64("y").unwrap(), Some(2.5));
    }
}
