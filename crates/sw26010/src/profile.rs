//! Cycle-resolved execution profile built from the bounded [`Trace`].
//!
//! The trace records raw machine events (DMA issues, waits, GEMMs, scalar
//! compute, regcomm scatters). This module folds that stream into a
//! **timeline**: per-engine busy intervals, a three-phase segmentation
//! (prologue / steady-state / epilogue, split at the first and last compute
//! event), and per-phase occupancy and overlap metrics. The timeline is the
//! substrate for the schedule profiler and diff tool in the `swatop` crates:
//! it answers *where inside the candidate* the cycles go, which the
//! aggregate machine counters cannot.
//!
//! Everything here is pure observation over an already-recorded trace —
//! building a timeline never touches machine state, and all derived numbers
//! are integer cycle counts (ratios are computed at render time), so the
//! exports are bit-deterministic.

use std::fmt::Write as _;

use crate::json::{escape_json, fmt_f64};
use crate::trace::{Event, Trace};

/// A half-open busy interval `[start, end)` in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: u64,
    pub end: u64,
}

impl Interval {
    pub fn new(start: u64, end: u64) -> Self {
        Interval { start, end: end.max(start) }
    }

    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Cycles of this interval that fall inside `window`.
    pub fn clip(&self, window: Interval) -> u64 {
        let s = self.start.max(window.start);
        let e = self.end.min(window.end);
        e.saturating_sub(s)
    }
}

/// Sort raw intervals and merge overlapping/adjacent ones into a disjoint,
/// ascending cover. The per-engine busy cycles are the sum of the merged
/// lengths — double-counting concurrent DMA batches would overstate
/// occupancy.
fn merge(mut raw: Vec<Interval>) -> Vec<Interval> {
    raw.retain(|iv| !iv.is_empty());
    raw.sort_by_key(|iv| (iv.start, iv.end));
    let mut out: Vec<Interval> = Vec::with_capacity(raw.len());
    for iv in raw {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => out.push(iv),
        }
    }
    out
}

/// Total cycles of `spans` (disjoint, merged) falling inside `window`.
fn busy_in(spans: &[Interval], window: Interval) -> u64 {
    spans.iter().map(|iv| iv.clip(window)).sum()
}

/// Cycles where both (merged, disjoint) span sets are busy at once, inside
/// `window`. Classic two-pointer sweep over sorted interval lists.
fn overlap_in(a: &[Interval], b: &[Interval], window: Interval) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let s = a[i].start.max(b[j].start).max(window.start);
        let e = a[i].end.min(b[j].end).min(window.end);
        total += e.saturating_sub(s);
        if a[i].end < b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// The three schedule phases a pipelined candidate decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Before the first compute event: initial DMA fills (pipeline ramp-up).
    Prologue,
    /// First compute start to last compute end: the pipelined main loop.
    Steady,
    /// After the last compute event: trailing write-backs (pipeline drain).
    Epilogue,
}

impl PhaseKind {
    pub fn name(&self) -> &'static str {
        match self {
            PhaseKind::Prologue => "prologue",
            PhaseKind::Steady => "steady",
            PhaseKind::Epilogue => "epilogue",
        }
    }
}

/// One phase of the timeline with its activity accounting.
#[derive(Debug, Clone)]
pub struct Phase {
    pub kind: PhaseKind,
    pub span: Interval,
    /// Cycles the DMA engine was busy inside this phase.
    pub dma_busy: u64,
    /// Cycles the compute stream (GEMM + scalar) was busy inside this phase.
    pub compute_busy: u64,
    /// Cycles the compute stream stalled on DMA waits inside this phase.
    pub stall: u64,
    /// Cycles spent in register-communication scatters inside this phase.
    pub regcomm: u64,
    /// Cycles where DMA and compute were busy simultaneously.
    pub overlap: u64,
}

impl Phase {
    pub fn cycles(&self) -> u64 {
        self.span.len()
    }

    /// Fraction of the phase the DMA engine was busy (0 for empty phases).
    pub fn dma_occupancy(&self) -> f64 {
        ratio(self.dma_busy, self.cycles())
    }

    /// Fraction of the phase the compute stream was busy.
    pub fn compute_occupancy(&self) -> f64 {
        ratio(self.compute_busy, self.cycles())
    }

    /// How much of the *hideable* traffic was actually hidden: overlap over
    /// the smaller of the two busy totals. 1.0 means the shorter stream ran
    /// entirely under the longer one.
    pub fn overlap_efficiency(&self) -> f64 {
        ratio(self.overlap, self.dma_busy.min(self.compute_busy))
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-engine activity timeline with phase segmentation, built from a
/// recorded [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Last cycle any engine was active (the profile's time horizon).
    pub total: u64,
    /// The source trace hit its bounded cap — this timeline is incomplete.
    pub truncated: bool,
    /// Number of events the timeline was built from.
    pub events: usize,
    /// Merged DMA-engine busy spans (issue → completion).
    pub dma: Vec<Interval>,
    /// Merged compute busy spans (GEMM + scalar compute).
    pub compute: Vec<Interval>,
    /// Merged compute-stream stall spans (DMA waits with non-zero loss).
    pub stall: Vec<Interval>,
    /// Merged register-communication scatter spans.
    pub regcomm: Vec<Interval>,
    /// Exactly three phases, in order prologue / steady / epilogue. Phases
    /// that do not occur (e.g. no compute events at all) have zero-length
    /// spans, so diffing two timelines can always align phase-by-phase.
    pub phases: Vec<Phase>,
}

impl Timeline {
    pub fn build(trace: &Trace) -> Timeline {
        let mut dma = Vec::new();
        let mut compute = Vec::new();
        let mut stall = Vec::new();
        let mut regcomm = Vec::new();
        for e in trace.events() {
            match *e {
                Event::DmaIssue { at, done, .. } => {
                    dma.push(Interval::new(at.get(), done.get()));
                }
                Event::Gemm { at, cycles, .. } | Event::Compute { at, cycles, .. } => {
                    compute.push(Interval::new(at.get(), at.get() + cycles.get()));
                }
                Event::DmaWait { at, stall: s, .. } => {
                    if s.get() > 0 {
                        stall.push(Interval::new(at.get(), at.get() + s.get()));
                    }
                }
                Event::Regcomm { at, cycles, .. } => {
                    regcomm.push(Interval::new(at.get(), at.get() + cycles.get()));
                }
            }
        }
        // Phase boundaries come from the *raw* compute events, before
        // merging, but merging preserves min-start/max-end so either works.
        let dma = merge(dma);
        let compute = merge(compute);
        let stall = merge(stall);
        let regcomm = merge(regcomm);
        let total = [&dma, &compute, &stall, &regcomm]
            .iter()
            .filter_map(|spans| spans.last().map(|iv| iv.end))
            .max()
            .unwrap_or(0);
        // Split at the first compute start and the last compute end. With no
        // compute at all, everything is prologue (a fill that never fed a
        // kernel); steady and epilogue collapse to zero length at `total`.
        let (fc, lc) = match (compute.first(), compute.last()) {
            (Some(f), Some(l)) => (f.start, l.end),
            _ => (total, total),
        };
        let windows = [
            (PhaseKind::Prologue, Interval::new(0, fc)),
            (PhaseKind::Steady, Interval::new(fc, lc)),
            (PhaseKind::Epilogue, Interval::new(lc, total)),
        ];
        let phases = windows
            .into_iter()
            .map(|(kind, span)| Phase {
                kind,
                span,
                dma_busy: busy_in(&dma, span),
                compute_busy: busy_in(&compute, span),
                stall: busy_in(&stall, span),
                regcomm: busy_in(&regcomm, span),
                overlap: overlap_in(&dma, &compute, span),
            })
            .collect();
        Timeline {
            total,
            truncated: trace.truncated(),
            events: trace.events().len(),
            dma,
            compute,
            stall,
            regcomm,
            phases,
        }
    }

    /// Total DMA-engine busy cycles across the whole timeline.
    pub fn dma_busy(&self) -> u64 {
        self.dma.iter().map(Interval::len).sum()
    }

    /// Total compute busy cycles across the whole timeline.
    pub fn compute_busy(&self) -> u64 {
        self.compute.iter().map(Interval::len).sum()
    }

    /// Total stall cycles across the whole timeline.
    pub fn stall_cycles(&self) -> u64 {
        self.stall.iter().map(Interval::len).sum()
    }

    /// Total regcomm scatter cycles across the whole timeline.
    pub fn regcomm_cycles(&self) -> u64 {
        self.regcomm.iter().map(Interval::len).sum()
    }

    /// Total DMA/compute overlap cycles across the whole timeline.
    pub fn overlap_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.overlap).sum()
    }

    /// Phase lookup by kind (the three phases always exist).
    pub fn phase(&self, kind: PhaseKind) -> &Phase {
        self.phases.iter().find(|p| p.kind == kind).expect("timeline always has 3 phases")
    }

    /// Deterministic JSON rendering of the timeline: integer cycle counts,
    /// per-engine merged interval lists, and per-phase metrics. All ratio
    /// fields go through [`fmt_f64`] so the bytes are stable.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(
            out,
            "\"total_cycles\":{},\"truncated\":{},\"events\":{}",
            self.total, self.truncated, self.events
        );
        let engines: [(&str, &[Interval]); 4] = [
            ("dma", &self.dma),
            ("compute", &self.compute),
            ("stall", &self.stall),
            ("regcomm", &self.regcomm),
        ];
        out.push_str(",\"engines\":{");
        for (i, (name, spans)) in engines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let busy: u64 = spans.iter().map(Interval::len).sum();
            let _ = write!(out, "\"{name}\":{{\"busy_cycles\":{busy},\"intervals\":[");
            for (j, iv) in spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", iv.start, iv.end);
            }
            out.push_str("]}");
        }
        out.push_str("},\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"start\":{},\"end\":{},\"cycles\":{},\
                 \"dma_busy\":{},\"compute_busy\":{},\"stall\":{},\"regcomm\":{},\
                 \"overlap\":{},\"dma_occupancy\":{},\"compute_occupancy\":{},\
                 \"overlap_efficiency\":{}}}",
                p.kind.name(),
                p.span.start,
                p.span.end,
                p.cycles(),
                p.dma_busy,
                p.compute_busy,
                p.stall,
                p.regcomm,
                p.overlap,
                fmt_f64(p.dma_occupancy()),
                fmt_f64(p.compute_occupancy()),
                fmt_f64(p.overlap_efficiency())
            );
        }
        out.push_str("]}");
        out
    }

    /// Render as Chrome/Perfetto trace-event JSON: an enclosing candidate
    /// slice (explicit `B`/`E` pair), one slice track per engine, one track
    /// of phase slices, and per-phase occupancy counter tracks. Timestamps
    /// are microseconds of the given clock.
    pub fn to_perfetto_json(&self, clock_ghz: f64, label: &str) -> String {
        let us = |cycles: u64| cycles as f64 / (clock_ghz * 1e3);
        let mut ev: Vec<String> = Vec::new();
        // Enclosing candidate span as a begin/end pair: exporters must keep
        // these balanced, which the perfetto tests assert explicitly.
        ev.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":{},\
             \"args\":{{\"total_cycles\":{},\"truncated\":{}}}}}",
            escape_json(label),
            fmt_f64(us(0)),
            self.total,
            self.truncated
        ));
        for p in &self.phases {
            if p.span.is_empty() {
                continue;
            }
            ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":{},\"dur\":{},\
                 \"args\":{{\"dma_busy\":{},\"compute_busy\":{},\"stall\":{},\
                 \"regcomm\":{},\"overlap\":{}}}}}",
                p.kind.name(),
                fmt_f64(us(p.span.start)),
                fmt_f64(us(p.span.len())),
                p.dma_busy,
                p.compute_busy,
                p.stall,
                p.regcomm,
                p.overlap
            ));
        }
        let engines: [(&str, u32, &[Interval]); 4] = [
            ("dma busy", 1, &self.dma),
            ("compute busy", 2, &self.compute),
            ("stall", 3, &self.stall),
            ("regcomm", 4, &self.regcomm),
        ];
        for (name, tid, spans) in engines {
            for iv in spans {
                ev.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
                     \"ts\":{},\"dur\":{}}}",
                    fmt_f64(us(iv.start)),
                    fmt_f64(us(iv.len()))
                ));
            }
        }
        // Occupancy counters: one sample at each phase start (plus a closing
        // zero) renders as a step curve over the candidate. They live on
        // their own track (tid 5): phase starts rewind to earlier timestamps
        // than the slice tracks above, and each track must stay monotonic.
        for p in &self.phases {
            if p.span.is_empty() {
                continue;
            }
            ev.push(format!(
                "{{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":5,\"ts\":{},\
                 \"args\":{{\"dma\":{},\"compute\":{},\"overlap_eff\":{}}}}}",
                fmt_f64(us(p.span.start)),
                fmt_f64(p.dma_occupancy()),
                fmt_f64(p.compute_occupancy()),
                fmt_f64(p.overlap_efficiency())
            ));
        }
        ev.push(format!(
            "{{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":5,\"ts\":{},\
             \"args\":{{\"dma\":0,\"compute\":0,\"overlap_eff\":0}}}}",
            fmt_f64(us(self.total))
        ));
        ev.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":{}}}",
            escape_json(label),
            fmt_f64(us(self.total))
        ));
        for (tid, name) in [
            (0, "schedule phases"),
            (1, "DMA engine"),
            (2, "CPE compute"),
            (3, "DMA stall"),
            (4, "regcomm"),
            (5, "occupancy"),
        ] {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Cycles;
    use crate::dma::DmaDirection;

    fn issue(at: u64, done: u64) -> Event {
        Event::DmaIssue {
            at: Cycles(at),
            done: Cycles(done),
            direction: DmaDirection::MemToSpm,
            payload_bytes: 64,
            bus_bytes: 128,
            tag: 0,
        }
    }

    fn gemm(at: u64, cycles: u64) -> Event {
        Event::Gemm { at: Cycles(at), cycles: Cycles(cycles), m: 8, n: 8, k: 8 }
    }

    #[test]
    fn merge_coalesces_overlaps() {
        let m = merge(vec![
            Interval::new(10, 20),
            Interval::new(0, 5),
            Interval::new(18, 30),
            Interval::new(30, 31),
            Interval::new(40, 40), // empty, dropped
        ]);
        assert_eq!(m, vec![Interval::new(0, 5), Interval::new(10, 31)]);
    }

    #[test]
    fn overlap_sweep_matches_hand_count() {
        let a = vec![Interval::new(0, 10), Interval::new(20, 30)];
        let b = vec![Interval::new(5, 25)];
        let w = Interval::new(0, 100);
        assert_eq!(overlap_in(&a, &b, w), 5 + 5);
        // Clipped window cuts both sides.
        assert_eq!(overlap_in(&a, &b, Interval::new(6, 22)), 4 + 2);
    }

    #[test]
    fn phases_partition_the_timeline() {
        let mut t = Trace::enabled(64);
        t.push(issue(0, 100)); // prologue fill
        t.push(gemm(100, 50));
        t.push(issue(110, 180)); // overlapped fetch
        t.push(Event::DmaWait { at: Cycles(150), stall: Cycles(30), tag: 1 });
        t.push(gemm(180, 40));
        t.push(issue(220, 300)); // epilogue write-back
        let tl = Timeline::build(&t);
        assert_eq!(tl.total, 300);
        assert!(!tl.truncated);
        assert_eq!(tl.phases.len(), 3);
        let pro = tl.phase(PhaseKind::Prologue);
        let std = tl.phase(PhaseKind::Steady);
        let epi = tl.phase(PhaseKind::Epilogue);
        assert_eq!((pro.span.start, pro.span.end), (0, 100));
        assert_eq!((std.span.start, std.span.end), (100, 220));
        assert_eq!((epi.span.start, epi.span.end), (220, 300));
        // The three phases cover [0, total] with no gaps.
        assert_eq!(pro.cycles() + std.cycles() + epi.cycles(), tl.total);
        assert_eq!(pro.dma_busy, 100);
        assert_eq!(std.compute_busy, 90);
        assert_eq!(std.stall, 30);
        // Steady-state overlap: dma [110,180) vs compute [100,150)+[180,220)
        // → [110,150) = 40 cycles.
        assert_eq!(std.overlap, 40);
        assert_eq!(epi.dma_busy, 80);
        assert_eq!(epi.compute_busy, 0);
    }

    #[test]
    fn no_compute_means_everything_is_prologue() {
        let mut t = Trace::enabled(8);
        t.push(issue(0, 50));
        let tl = Timeline::build(&t);
        assert_eq!(tl.phase(PhaseKind::Prologue).cycles(), 50);
        assert_eq!(tl.phase(PhaseKind::Steady).cycles(), 0);
        assert_eq!(tl.phase(PhaseKind::Epilogue).cycles(), 0);
    }

    #[test]
    fn empty_trace_builds_empty_timeline() {
        let tl = Timeline::build(&Trace::enabled(8));
        assert_eq!(tl.total, 0);
        assert_eq!(tl.phases.len(), 3);
        assert!(tl.to_json().contains("\"total_cycles\":0"));
    }

    #[test]
    fn truncation_propagates_into_exports() {
        let mut t = Trace::enabled(1);
        t.push(gemm(0, 10));
        t.push(gemm(10, 10)); // dropped: sets the flag
        let tl = Timeline::build(&t);
        assert!(tl.truncated);
        assert!(tl.to_json().contains("\"truncated\":true"));
        assert!(tl.to_perfetto_json(1.45, "cand").contains("\"truncated\":true"));
    }

    #[test]
    fn json_is_deterministic() {
        let mut t = Trace::enabled(64);
        t.push(issue(0, 100));
        t.push(gemm(100, 50));
        let a = Timeline::build(&t).to_json();
        let b = Timeline::build(&t).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn perfetto_begin_end_balanced_and_escaped() {
        let mut t = Trace::enabled(8);
        t.push(gemm(0, 10));
        let json = Timeline::build(&t).to_perfetto_json(1.45, "cand \"x\"");
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
        assert!(json.contains("cand \\\"x\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn regcomm_events_land_on_their_own_engine() {
        let mut t = Trace::enabled(8);
        t.push(issue(0, 100));
        t.push(Event::Regcomm { at: Cycles(80), cycles: Cycles(20), bytes: 1024 });
        t.push(gemm(100, 10));
        let tl = Timeline::build(&t);
        assert_eq!(tl.regcomm_cycles(), 20);
        assert_eq!(tl.phase(PhaseKind::Prologue).regcomm, 20);
    }
}
