//! Register-communication cost model.
//!
//! The CPE mesh offers register-level data sharing: a CPE can broadcast a
//! 256-bit register to all CPEs in its row or column in a handful of cycles
//! (aggregate bandwidth 647.25 GB/s per cluster, Xu et al. 2017). The GEMM
//! micro-kernels consume this through the `vlddr`/`vlddc` (load-and-
//! broadcast a vector) and `vldder`/`vlddec` (load-scalar-extend-and-
//! broadcast) instructions, which the pipeline scoreboard costs directly.
//!
//! This module provides the standalone helpers used when reasoning about
//! panel rotation outside the scoreboard: switching the communication
//! pattern (row ↔ column) drains the bus and costs
//! [`MachineConfig::regcomm_switch`] cycles.

use crate::clock::Cycles;
use crate::config::MachineConfig;
use crate::MESH;

/// Which mesh bus a broadcast travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BcastBus {
    Row,
    Column,
}

/// Cost of rotating through all 8 producers of a row/column panel: each of
/// the `MESH` steps re-targets the broadcast source, which costs a bus
/// turnaround on top of the per-vector costs already counted by the
/// scoreboard.
pub fn panel_rotation_overhead(cfg: &MachineConfig) -> Cycles {
    Cycles(cfg.regcomm_switch.get() * MESH as u64)
}

/// Cost of switching between row and column broadcast patterns.
pub fn switch_overhead(cfg: &MachineConfig) -> Cycles {
    cfg.regcomm_switch
}

/// Minimum cycles to broadcast `vectors` 256-bit registers over one bus,
/// assuming full pipelining (1 vector/cycle issue) plus the initial mesh
/// traversal latency. Used for sanity checks and documentation; the
/// authoritative cost comes from the scoreboard.
pub fn bcast_min_cycles(cfg: &MachineConfig, vectors: u64) -> Cycles {
    if vectors == 0 {
        return Cycles::ZERO;
    }
    Cycles(cfg.bcast_latency + (vectors - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_mesh_switches() {
        let cfg = MachineConfig::default();
        assert_eq!(
            panel_rotation_overhead(&cfg).get(),
            cfg.regcomm_switch.get() * 8
        );
    }

    #[test]
    fn bcast_pipelines() {
        let cfg = MachineConfig::default();
        assert_eq!(bcast_min_cycles(&cfg, 0), Cycles::ZERO);
        let one = bcast_min_cycles(&cfg, 1);
        let many = bcast_min_cycles(&cfg, 101);
        // 100 extra vectors cost exactly 100 extra cycles when pipelined.
        assert_eq!(many.get() - one.get(), 100);
    }
}
