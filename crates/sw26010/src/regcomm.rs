//! Register-communication cost model.
//!
//! The CPE mesh offers register-level data sharing: a CPE can broadcast a
//! 256-bit register to all CPEs in its row or column in a handful of cycles
//! (aggregate bandwidth 647.25 GB/s per cluster, Xu et al. 2017). The GEMM
//! micro-kernels consume this through the `vlddr`/`vlddc` (load-and-
//! broadcast a vector) and `vldder`/`vlddec` (load-scalar-extend-and-
//! broadcast) instructions, which the pipeline scoreboard costs directly.
//!
//! This module provides the standalone helpers used when reasoning about
//! panel rotation outside the scoreboard: switching the communication
//! pattern (row ↔ column) drains the bus and costs
//! [`MachineConfig::regcomm_switch`] cycles.

use crate::clock::Cycles;
use crate::config::MachineConfig;
use crate::MESH;

/// Which mesh bus a broadcast travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BcastBus {
    Row,
    Column,
}

/// Cost of rotating through all 8 producers of a row/column panel: each of
/// the `MESH` steps re-targets the broadcast source, which costs a bus
/// turnaround on top of the per-vector costs already counted by the
/// scoreboard.
pub fn panel_rotation_overhead(cfg: &MachineConfig) -> Cycles {
    Cycles(cfg.regcomm_switch.get() * MESH as u64)
}

/// Cost of switching between row and column broadcast patterns.
pub fn switch_overhead(cfg: &MachineConfig) -> Cycles {
    cfg.regcomm_switch
}

/// Minimum cycles to broadcast `vectors` 256-bit registers over one bus,
/// assuming full pipelining (1 vector/cycle issue) plus the initial mesh
/// traversal latency. Used for sanity checks and documentation; the
/// authoritative cost comes from the scoreboard.
pub fn bcast_min_cycles(cfg: &MachineConfig, vectors: u64) -> Cycles {
    if vectors == 0 {
        return Cycles::ZERO;
    }
    Cycles(cfg.bcast_latency + (vectors - 1))
}

/// Cycles for one leader CPE to scatter a just-arrived DMA panel to the
/// other `MESH - 1` CPEs on its row/column bus: one bus turnaround to claim
/// the bus, the initial mesh-traversal latency, then fully pipelined 256-bit
/// (4 × f32) register pushes — each recipient's `elems` elements stream past
/// every hop, so the bus is busy for `ceil(elems / 4)` cycles per recipient.
/// Used by broadcast-DMA tiling, where only the leader pays the DRAM cost
/// and the mesh fans the panel out.
pub fn dma_scatter_cycles(cfg: &MachineConfig, elems_per_cpe: usize) -> Cycles {
    if elems_per_cpe == 0 {
        return Cycles::ZERO;
    }
    let vectors = elems_per_cpe.div_ceil(4) as u64;
    Cycles(cfg.regcomm_switch.get() + cfg.bcast_latency + vectors * (MESH as u64 - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_mesh_switches() {
        let cfg = MachineConfig::default();
        assert_eq!(
            panel_rotation_overhead(&cfg).get(),
            cfg.regcomm_switch.get() * 8
        );
    }

    #[test]
    fn scatter_scales_with_panel_and_is_free_when_empty() {
        let cfg = MachineConfig::default();
        assert_eq!(dma_scatter_cycles(&cfg, 0), Cycles::ZERO);
        let small = dma_scatter_cycles(&cfg, 4);
        let big = dma_scatter_cycles(&cfg, 400);
        // 99 extra vectors per recipient, 7 recipients on the bus.
        assert_eq!(big.get() - small.get(), 99 * 7);
        assert!(small.get() > cfg.regcomm_switch.get());
    }

    #[test]
    fn bcast_pipelines() {
        let cfg = MachineConfig::default();
        assert_eq!(bcast_min_cycles(&cfg, 0), Cycles::ZERO);
        let one = bcast_min_cycles(&cfg, 1);
        let many = bcast_min_cycles(&cfg, 101);
        // 100 extra vectors cost exactly 100 extra cycles when pipelined.
        assert_eq!(many.get() - one.get(), 100);
    }
}
