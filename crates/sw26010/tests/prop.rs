//! Property-based tests for the machine substrate.

use proptest::prelude::*;
use sw26010::dma::{bus_bytes, DmaRequest};
use sw26010::pipeline::{Instruction, Pipe, Scoreboard};
use sw26010::{CoreGroup, Cycles, DmaDirection, ExecMode, MachineConfig};

proptest! {
    /// The periodic bus-byte computation equals the naive per-block sum.
    #[test]
    fn bus_bytes_matches_naive(
        off in 0usize..512,
        block in 1usize..96,
        extra in 0usize..128,
        n in 1usize..80,
    ) {
        let stride = block + extra;
        let naive: usize = (0..n)
            .map(|b| {
                let start = (off + b * stride) * 4;
                let end = start + block * 4;
                (end.div_ceil(128) - start / 128) * 128
            })
            .sum();
        prop_assert_eq!(bus_bytes(off, block, stride, n, 128), naive);
    }

    /// Bus bytes never undercount the payload.
    #[test]
    fn bus_bytes_at_least_payload(
        off in 0usize..512,
        block in 1usize..64,
        extra in 0usize..64,
        n in 1usize..32,
    ) {
        let stride = block + extra;
        prop_assert!(bus_bytes(off, block, stride, n, 128) >= block * n * 4);
    }

    /// Scoreboard issue times are monotonically non-decreasing (in-order
    /// machine), and the finish time covers every instruction.
    #[test]
    fn scoreboard_in_order(instrs in proptest::collection::vec(
        (0u8..2, 0u16..8, 0u16..8, 1u64..12), 1..40)
    ) {
        let mut sb = Scoreboard::new(8);
        let mut last = 0;
        let mut max_done = 0;
        for (pipe, dst, src, lat) in instrs {
            let pipe = if pipe == 0 { Pipe::P0 } else { Pipe::P1 };
            let t = sb.issue(&Instruction::new(pipe, Some(dst), &[src], lat));
            prop_assert!(t >= last, "in-order issue violated");
            last = t;
            max_done = max_done.max(t + lat);
        }
        prop_assert!(sb.finish_time().get() >= max_done);
    }

    /// DMA engine time grows monotonically with transfer size.
    #[test]
    fn dma_engine_monotone(elems in 1usize..4096) {
        let cfg = MachineConfig::default();
        let mk = |n: usize| {
            let mut e = sw26010::dma::DmaEngine::new();
            let r = DmaRequest::contiguous(0, DmaDirection::MemToSpm, 0, 0, n);
            e.schedule(&cfg, Cycles(0), &[r]).unwrap()
        };
        prop_assert!(mk(elems + 64) >= mk(elems));
    }

    /// Functional DMA round trip preserves arbitrary data exactly.
    #[test]
    fn dma_roundtrip_preserves_data(data in proptest::collection::vec(-1e6f32..1e6, 1..256)) {
        let mut cg = CoreGroup::with_mode(ExecMode::Functional);
        let src = cg.mem.alloc_from("src", &data);
        let dst = cg.mem.alloc("dst", data.len());
        let (bsrc, bdst) = (cg.mem.base(src), cg.mem.base(dst));
        let reply = cg.alloc_reply();
        cg.dma(
            DmaDirection::MemToSpm,
            &[DmaRequest::contiguous(5, DmaDirection::MemToSpm, bsrc, 0, data.len())],
            reply,
        )
        .unwrap();
        cg.dma_wait(reply, 1).unwrap();
        cg.dma(
            DmaDirection::SpmToMem,
            &[DmaRequest::contiguous(5, DmaDirection::SpmToMem, bdst, 0, data.len())],
            reply,
        )
        .unwrap();
        cg.dma_wait(reply, 1).unwrap();
        prop_assert_eq!(cg.mem.buffer(dst), data.as_slice());
    }
}
