//! Convolution layers of the three classic CNNs (paper Sec. 5.1.1):
//! VGG16 (Simonyan & Zisserman 2014), ResNet (He et al. 2016) and YOLO
//! (Redmon et al. 2016).
//!
//! Each table lists the *distinct* convolution shapes in network order
//! (repeated identical blocks appear once, as is standard in per-layer
//! evaluations). The first layer of each network has `Ni = 3`, which is
//! why the paper excludes it from the implicit-conv comparison.

use swtensor::ConvShape;

/// One named convolution layer.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    pub name: &'static str,
    pub ni: usize,
    pub no: usize,
    /// Output spatial size (square).
    pub out: usize,
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvLayer {
    const fn new(
        name: &'static str,
        ni: usize,
        no: usize,
        out: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        ConvLayer { name, ni, no, out, k, stride, pad }
    }

    /// Concretise with a batch size and an optional spatial cap.
    pub fn shape(&self, batch: usize, spatial_cap: Option<usize>) -> ConvShape {
        let out = spatial_cap.map_or(self.out, |cap| self.out.min(cap));
        ConvShape {
            b: batch,
            ni: self.ni,
            no: self.no,
            ro: out,
            co: out,
            kr: self.k,
            kc: self.k,
            stride: self.stride,
            pad: self.pad,
        }
    }
}

/// The three evaluated networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    Vgg16,
    ResNet,
    Yolo,
}

impl Network {
    pub fn name(&self) -> &'static str {
        match self {
            Network::Vgg16 => "VGG16",
            Network::ResNet => "ResNet",
            Network::Yolo => "Yolo",
        }
    }

    pub fn layers(&self) -> &'static [ConvLayer] {
        match self {
            Network::Vgg16 => vgg16_layers(),
            Network::ResNet => resnet_layers(),
            Network::Yolo => yolo_layers(),
        }
    }

    pub const ALL: [Network; 3] = [Network::Vgg16, Network::ResNet, Network::Yolo];
}

/// The 13 convolution layers of VGG16 (all 3×3, stride 1, pad 1).
pub fn vgg16_layers() -> &'static [ConvLayer] {
    const L: &[ConvLayer] = &[
        ConvLayer::new("conv1_1", 3, 64, 224, 3, 1, 1),
        ConvLayer::new("conv1_2", 64, 64, 224, 3, 1, 1),
        ConvLayer::new("conv2_1", 64, 128, 112, 3, 1, 1),
        ConvLayer::new("conv2_2", 128, 128, 112, 3, 1, 1),
        ConvLayer::new("conv3_1", 128, 256, 56, 3, 1, 1),
        ConvLayer::new("conv3_2", 256, 256, 56, 3, 1, 1),
        ConvLayer::new("conv3_3", 256, 256, 56, 3, 1, 1),
        ConvLayer::new("conv4_1", 256, 512, 28, 3, 1, 1),
        ConvLayer::new("conv4_2", 512, 512, 28, 3, 1, 1),
        ConvLayer::new("conv4_3", 512, 512, 28, 3, 1, 1),
        ConvLayer::new("conv5_1", 512, 512, 14, 3, 1, 1),
        ConvLayer::new("conv5_2", 512, 512, 14, 3, 1, 1),
        ConvLayer::new("conv5_3", 512, 512, 14, 3, 1, 1),
    ];
    L
}

/// The distinct convolution shapes of ResNet-50: the 7×7 stem plus the
/// 1×1 / 3×3 bottleneck convolutions of each stage (strided variants
/// included).
pub fn resnet_layers() -> &'static [ConvLayer] {
    const L: &[ConvLayer] = &[
        ConvLayer::new("conv1", 3, 64, 112, 7, 2, 3),
        // Stage 2 (56×56).
        ConvLayer::new("res2_1x1a", 64, 64, 56, 1, 1, 0),
        ConvLayer::new("res2_3x3", 64, 64, 56, 3, 1, 1),
        ConvLayer::new("res2_1x1b", 64, 256, 56, 1, 1, 0),
        ConvLayer::new("res2_proj", 256, 64, 56, 1, 1, 0),
        // Stage 3 (28×28).
        ConvLayer::new("res3_down", 256, 128, 28, 1, 2, 0),
        ConvLayer::new("res3_3x3", 128, 128, 28, 3, 1, 1),
        ConvLayer::new("res3_1x1b", 128, 512, 28, 1, 1, 0),
        ConvLayer::new("res3_proj", 512, 128, 28, 1, 1, 0),
        // Stage 4 (14×14).
        ConvLayer::new("res4_down", 512, 256, 14, 1, 2, 0),
        ConvLayer::new("res4_3x3", 256, 256, 14, 3, 1, 1),
        ConvLayer::new("res4_1x1b", 256, 1024, 14, 1, 1, 0),
        ConvLayer::new("res4_proj", 1024, 256, 14, 1, 1, 0),
        // Stage 5 (7×7).
        ConvLayer::new("res5_down", 1024, 512, 7, 1, 2, 0),
        ConvLayer::new("res5_3x3", 512, 512, 7, 3, 1, 1),
        ConvLayer::new("res5_1x1b", 512, 2048, 7, 1, 1, 0),
    ];
    L
}

/// The distinct convolution shapes of YOLOv1's 24-layer backbone.
pub fn yolo_layers() -> &'static [ConvLayer] {
    const L: &[ConvLayer] = &[
        ConvLayer::new("conv1", 3, 64, 224, 7, 2, 3),
        ConvLayer::new("conv2", 64, 192, 112, 3, 1, 1),
        ConvLayer::new("conv3_1", 192, 128, 56, 1, 1, 0),
        ConvLayer::new("conv3_2", 128, 256, 56, 3, 1, 1),
        ConvLayer::new("conv3_3", 256, 256, 56, 1, 1, 0),
        ConvLayer::new("conv3_4", 256, 512, 56, 3, 1, 1),
        ConvLayer::new("conv4_1", 512, 256, 28, 1, 1, 0),
        ConvLayer::new("conv4_2", 256, 512, 28, 3, 1, 1),
        ConvLayer::new("conv4_3", 512, 512, 28, 1, 1, 0),
        ConvLayer::new("conv4_4", 512, 1024, 28, 3, 1, 1),
        ConvLayer::new("conv5_1", 1024, 512, 14, 1, 1, 0),
        ConvLayer::new("conv5_2", 512, 1024, 14, 3, 1, 1),
        ConvLayer::new("conv5_3", 1024, 1024, 14, 3, 1, 1),
        ConvLayer::new("conv5_4", 1024, 1024, 7, 3, 2, 1),
        ConvLayer::new("conv6_1", 1024, 1024, 7, 3, 1, 1),
        ConvLayer::new("conv6_2", 1024, 1024, 7, 3, 1, 1),
    ];
    L
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_has_13_conv_layers() {
        assert_eq!(vgg16_layers().len(), 13);
        // All 3×3 stride-1 pad-1.
        assert!(vgg16_layers().iter().all(|l| l.k == 3 && l.stride == 1 && l.pad == 1));
    }

    #[test]
    fn first_layers_have_rgb_input() {
        for net in Network::ALL {
            assert_eq!(net.layers()[0].ni, 3, "{}", net.name());
        }
    }

    #[test]
    fn shape_concretisation_and_cap() {
        let l = &vgg16_layers()[1]; // 64→64 @224
        let s = l.shape(32, Some(28));
        assert_eq!((s.b, s.ni, s.no, s.ro), (32, 64, 64, 28));
        let full = l.shape(1, None);
        assert_eq!(full.ro, 224);
        // Same-padding conv keeps spatial size.
        assert_eq!(full.ri(), 224);
    }

    #[test]
    fn resnet_contains_strided_convs() {
        assert!(resnet_layers().iter().any(|l| l.stride == 2));
    }

    #[test]
    fn all_shapes_are_consistent() {
        for net in Network::ALL {
            for l in net.layers() {
                let s = l.shape(4, Some(16));
                // ri/ci arithmetic must not underflow.
                assert!(s.ri() >= s.kr.saturating_sub(2 * s.pad), "{}", l.name);
                assert!(s.macs() > 0);
            }
        }
    }
}
