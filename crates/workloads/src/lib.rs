//! # workloads — the evaluation inputs of the paper
//!
//! * [`networks`] — the convolution layers of the three classic CNNs the
//!   paper evaluates (Sec. 5.1.1): VGG16, ResNet and YOLO;
//! * [`sweep`] — the synthetic parameter sweeps: Listing 1 (75 convolution
//!   configurations × 3 batch sizes = 225 cases) and Listing 2 (216
//!   unaligned + 343 aligned = 559 matrix-multiplication cases).
//!
//! Because the machine is simulated, the harness optionally *caps the
//! spatial size* of network layers (`spatial_cap`): channels, batch and
//! kernel geometry — the parameters that drive schedule choice — are kept
//! verbatim, while 224×224 feature maps are scaled down so simulating a
//! whole network stays in seconds. `EXPERIMENTS.md` records the caps used
//! for every reported number.

pub mod networks;
pub mod sweep;

pub use networks::{resnet_layers, vgg16_layers, yolo_layers, ConvLayer, Network};
pub use sweep::{conv_sweep, gemm_sweep, GemmCase, CONV_BATCHES};
