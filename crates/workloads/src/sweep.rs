//! The paper's synthetic parameter sweeps.
//!
//! **Listing 1** (convolution versatility, Tab. 1 / Fig. 8 / Fig. 9):
//!
//! ```sh
//! for Ni in 64 128 256 384 512;
//! for No in 64 128 256 384 512;
//! for Ro in 16 32 64 128 256;
//! if [ $Ni >= $No ] ./test_swATOP $B $Ni $No $Ro
//! ```
//!
//! With the `Ni ≥ No` filter there are 15 channel pairs × 5 spatial sizes
//! = **75 configurations**, evaluated at batch sizes 1/32/128 → the 225
//! cases of Tab. 1. (The paper prints `Ro in 32 64 128 256`, which yields
//! 60 configurations; we add `Ro = 16` to match the reported count of 75 —
//! see DESIGN.md.)
//!
//! **Listing 2** (matrix multiplication, Tab. 2):
//! 6³ = 216 unaligned shapes from {200, 500, 1000, 2000, 4000, 8000} and
//! 7³ = 343 aligned shapes from {256, 512, 768, 1024, 2048, 4096, 8192},
//! totalling the paper's 559 parameters.

use swtensor::ConvShape;

/// The three batch sizes of the evaluation (1 = inference, 32/128 =
/// training).
pub const CONV_BATCHES: [usize; 3] = [1, 32, 128];

const NI_NO: [usize; 5] = [64, 128, 256, 384, 512];
const RO: [usize; 5] = [16, 32, 64, 128, 256];

/// The 75 Listing-1 convolution configurations for one batch size
/// (3×3, stride 1, no padding), optionally spatially capped.
pub fn conv_sweep(batch: usize, spatial_cap: Option<usize>) -> Vec<ConvShape> {
    let mut out = Vec::with_capacity(75);
    for &ni in &NI_NO {
        for &no in &NI_NO {
            if ni < no {
                continue;
            }
            for &ro in &RO {
                let ro = spatial_cap.map_or(ro, |cap| ro.min(cap));
                out.push(ConvShape::square(batch, ni, no, ro));
            }
        }
    }
    out
}

/// One matrix-multiplication case of Listing 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmCase {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Whether the case comes from the aligned list (no boundary
    /// processing needed).
    pub aligned: bool,
}

const UNALIGNED: [usize; 6] = [200, 500, 1000, 2000, 4000, 8000];
const ALIGNED: [usize; 7] = [256, 512, 768, 1024, 2048, 4096, 8192];

/// The 559 Listing-2 cases (216 unaligned + 343 aligned). `dim_cap`
/// optionally clips dimensions for quick runs.
pub fn gemm_sweep(dim_cap: Option<usize>) -> Vec<GemmCase> {
    let clip = |d: usize| dim_cap.map_or(d, |cap| d.min(cap));
    let mut out = Vec::with_capacity(559);
    for &m in &UNALIGNED {
        for &n in &UNALIGNED {
            for &k in &UNALIGNED {
                out.push(GemmCase { m: clip(m), n: clip(n), k: clip(k), aligned: false });
            }
        }
    }
    for &m in &ALIGNED {
        for &n in &ALIGNED {
            for &k in &ALIGNED {
                out.push(GemmCase { m: clip(m), n: clip(n), k: clip(k), aligned: true });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_counts() {
        for b in CONV_BATCHES {
            let sweep = conv_sweep(b, None);
            assert_eq!(sweep.len(), 75);
            assert!(sweep.iter().all(|s| s.ni >= s.no && s.b == b));
            assert!(sweep.iter().all(|s| s.kr == 3 && s.stride == 1 && s.pad == 0));
        }
    }

    #[test]
    fn listing2_counts() {
        let sweep = gemm_sweep(None);
        assert_eq!(sweep.len(), 559);
        assert_eq!(sweep.iter().filter(|c| !c.aligned).count(), 216);
        assert_eq!(sweep.iter().filter(|c| c.aligned).count(), 343);
    }

    #[test]
    fn caps_apply() {
        let sweep = conv_sweep(1, Some(64));
        assert!(sweep.iter().all(|s| s.ro <= 64));
        let gemms = gemm_sweep(Some(1024));
        assert!(gemms.iter().all(|c| c.m <= 1024 && c.n <= 1024 && c.k <= 1024));
        // Unaligned dims stay unaligned after capping.
        assert!(gemms.iter().any(|c| c.m == 200));
    }
}
