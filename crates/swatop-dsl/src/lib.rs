//! # swatop-dsl — describing computations and schedule spaces
//!
//! The paper's DSL (Sec. 4.2, Fig. 4) is embedded in C++; here it is
//! embedded in Rust. Two things are described separately:
//!
//! * the **schedule seed** — *what* is computed: dimension variables,
//!   tensors, and a tensorized computation (a GEMM, or one of the three
//!   convolution decompositions of Fig. 2);
//! * the **schedule space** — *how* it may be computed: `FactorVar`s for
//!   loop splits (swATOP "automatically traverses all valid candidates of
//!   the factor"), explicit reorder candidates ("since there are extremely
//!   numerous permutations of a set, reorder requires explicit candidates"),
//!   layout choices and vectorization choices.
//!
//! A [`SchedulePoint`] is one concrete assignment of every knob; the
//! scheduler in the `swatop` crate enumerates all points, filters invalid
//! ones (SPM capacity, divisibility, vector-width constraints) and lowers
//! each survivor to IR.
//!
//! ```
//! use swatop_dsl::{Seed, ComputeDesc, ScheduleSpace, factors_of};
//! use swtensor::ConvShape;
//!
//! // Schedule seed: an implicit-GEMM convolution (paper Alg. 2).
//! let shape = ConvShape::square(32, 64, 64, 32);
//! let seed = Seed::implicit_conv("conv3x3", shape);
//! assert_eq!(seed.compute, ComputeDesc::ImplicitConv { shape });
//!
//! // Schedule space: split factors, a reorder choice, a vectorization
//! // choice — the Fig. 4 vocabulary.
//! let mut space = ScheduleSpace::new();
//! space.factor("t_no", factors_of(shape.no));
//! space.factor("t_co", factors_of(shape.co));
//! space.choice("order", vec!["ro_co_kr_kc".into(), "kr_kc_ro_co".into()]);
//! space.toggle("vec_m");
//! assert!(space.size() >= 4);
//! ```

pub mod seed;
pub mod space;

pub use seed::{ComputeDesc, Dim, Seed, TensorDecl};
pub use space::{factors_of, factors_of_min, Knob, SchedulePoint, ScheduleSpace};
