//! Schedule seeds: the computation half of the DSL.

use swtensor::ConvShape;

/// A dimension in a tensor declaration: a named extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    pub name: String,
    pub extent: usize,
}

impl Dim {
    pub fn new(name: impl Into<String>, extent: usize) -> Self {
        Dim { name: name.into(), extent }
    }
}

/// A tensor declared by the seed (logical, layout-free — layout is a
/// *schedule* decision).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorDecl {
    pub name: String,
    pub dims: Vec<Dim>,
}

impl TensorDecl {
    pub fn numel(&self) -> usize {
        self.dims.iter().map(|d| d.extent).product()
    }
}

/// The tensorized computation the seed performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeDesc {
    /// `C[M,N] += A[M,K] · B[K,N]`.
    Matmul { m: usize, n: usize, k: usize },
    /// Implicit-GEMM convolution (paper Alg. 2 / Fig. 2 right).
    ImplicitConv { shape: ConvShape },
    /// Explicit-GEMM (im2col) convolution (Fig. 2 left).
    ExplicitConv { shape: ConvShape },
    /// Winograd F(2×2,3×3) convolution (Fig. 2 middle).
    WinogradConv { shape: ConvShape },
}

/// A schedule seed: "an initial tensorized implementation that only
/// describes the computation" (Sec. 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Seed {
    pub name: String,
    pub tensors: Vec<TensorDecl>,
    pub compute: ComputeDesc,
}

impl Seed {
    /// Matrix multiplication seed.
    pub fn matmul(name: impl Into<String>, m: usize, n: usize, k: usize) -> Self {
        Seed {
            name: name.into(),
            tensors: vec![
                TensorDecl { name: "A".into(), dims: vec![Dim::new("M", m), Dim::new("K", k)] },
                TensorDecl { name: "B".into(), dims: vec![Dim::new("K", k), Dim::new("N", n)] },
                TensorDecl { name: "C".into(), dims: vec![Dim::new("M", m), Dim::new("N", n)] },
            ],
            compute: ComputeDesc::Matmul { m, n, k },
        }
    }

    fn conv_tensors(shape: &ConvShape) -> Vec<TensorDecl> {
        vec![
            TensorDecl {
                name: "in".into(),
                dims: vec![
                    Dim::new("B", shape.b),
                    Dim::new("Ni", shape.ni),
                    Dim::new("Ri", shape.ri()),
                    Dim::new("Ci", shape.ci()),
                ],
            },
            TensorDecl {
                name: "weight".into(),
                dims: vec![
                    Dim::new("No", shape.no),
                    Dim::new("Ni", shape.ni),
                    Dim::new("Kr", shape.kr),
                    Dim::new("Kc", shape.kc),
                ],
            },
            TensorDecl {
                name: "out".into(),
                dims: vec![
                    Dim::new("B", shape.b),
                    Dim::new("No", shape.no),
                    Dim::new("Ro", shape.ro),
                    Dim::new("Co", shape.co),
                ],
            },
        ]
    }

    /// Implicit-GEMM convolution seed.
    pub fn implicit_conv(name: impl Into<String>, shape: ConvShape) -> Self {
        Seed {
            name: name.into(),
            tensors: Self::conv_tensors(&shape),
            compute: ComputeDesc::ImplicitConv { shape },
        }
    }

    /// Explicit-GEMM (im2col) convolution seed.
    pub fn explicit_conv(name: impl Into<String>, shape: ConvShape) -> Self {
        Seed {
            name: name.into(),
            tensors: Self::conv_tensors(&shape),
            compute: ComputeDesc::ExplicitConv { shape },
        }
    }

    /// Winograd convolution seed (requires a 3×3 stride-1 shape).
    pub fn winograd_conv(name: impl Into<String>, shape: ConvShape) -> Self {
        assert!(shape.winograd_applicable(), "winograd needs 3×3 stride-1");
        Seed {
            name: name.into(),
            tensors: Self::conv_tensors(&shape),
            compute: ComputeDesc::WinogradConv { shape },
        }
    }

    /// Render the seed the way the paper's Fig. 4 (left) presents a DSL
    /// program: variables, tensors and the tensorized computation.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "// schedule seed: {}", self.name);
        for t in &self.tensors {
            let dims: Vec<String> =
                t.dims.iter().map(|d| format!("{}={}", d.name, d.extent)).collect();
            let _ = writeln!(out, "Tensor {}({});", t.name, dims.join(", "));
        }
        let comp = match &self.compute {
            ComputeDesc::Matmul { m, n, k } => {
                format!("C[M,N] += A[M,K] * B[K,N];  // M={m} N={n} K={k}")
            }
            ComputeDesc::ImplicitConv { .. } => {
                "out[b,no,ro,co] += in[b,ni,ro+kr,co+kc] * weight[no,ni,kr,kc];                   // tensorized: GEMM over (No × Ni × B·t_co)"
                    .to_string()
            }
            ComputeDesc::ExplicitConv { .. } => {
                "cols = im2col(in); prod = weight · cols;  // explicit GEMM".to_string()
            }
            ComputeDesc::WinogradConv { .. } => {
                "V = BᵀdB; U = GgGᵀ; M[pos] = U[pos]·V[pos] (16 GEMMs); out = AᵀMA;"
                    .to_string()
            }
        };
        let _ = writeln!(out, "Compute {{ {comp} }}");
        out
    }

    /// Total FLOPs of the described computation, normalised to direct-conv
    /// FLOPs for convolutions (the paper's efficiency denominator).
    pub fn flops(&self) -> u64 {
        match &self.compute {
            ComputeDesc::Matmul { m, n, k } => 2 * (*m as u64) * (*n as u64) * (*k as u64),
            ComputeDesc::ImplicitConv { shape }
            | ComputeDesc::ExplicitConv { shape }
            | ComputeDesc::WinogradConv { shape } => shape.flops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_seed_tensors() {
        let s = Seed::matmul("mm", 128, 256, 64);
        assert_eq!(s.tensors.len(), 3);
        assert_eq!(s.tensors[0].numel(), 128 * 64);
        assert_eq!(s.flops(), 2 * 128 * 256 * 64);
    }

    #[test]
    fn conv_seed_tensors() {
        let shape = ConvShape::square(2, 8, 4, 6);
        let s = Seed::implicit_conv("c", shape);
        assert_eq!(s.tensors[0].dims[2].extent, shape.ri());
        assert_eq!(s.flops(), shape.flops());
    }

    #[test]
    fn winograd_flops_are_direct_conv_flops() {
        let shape = ConvShape::square(1, 16, 16, 8);
        let w = Seed::winograd_conv("w", shape);
        let i = Seed::implicit_conv("i", shape);
        assert_eq!(w.flops(), i.flops());
    }

    #[test]
    fn describe_renders_tensors_and_compute() {
        let s = Seed::matmul("mm", 8, 9, 10);
        let d = s.describe();
        assert!(d.contains("Tensor A(M=8, K=10);"), "{d}");
        assert!(d.contains("C[M,N] += A[M,K] * B[K,N]"), "{d}");
        let c = Seed::implicit_conv("c", ConvShape::square(1, 8, 8, 4));
        assert!(c.describe().contains("in[b,ni,ro+kr,co+kc]"));
    }

    #[test]
    #[should_panic(expected = "winograd")]
    fn winograd_seed_rejects_strided() {
        let mut shape = ConvShape::square(1, 8, 8, 8);
        shape.stride = 2;
        Seed::winograd_conv("w", shape);
    }
}
