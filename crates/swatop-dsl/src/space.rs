//! Schedule spaces: the optimisation half of the DSL.
//!
//! A space is an ordered list of knobs; its points are the Cartesian
//! product of the knob candidate lists. The scheduler enumerates points in
//! a stable order, so a point's `index` is a reproducible identifier for a
//! schedule strategy.

/// One degree of freedom of the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Knob {
    /// A split factor (`FactorVar` in the paper): the candidates are the
    /// admissible factors.
    Factor { name: String, candidates: Vec<usize> },
    /// A named enumeration (reorder candidates, layout candidates…).
    Choice { name: String, candidates: Vec<String> },
    /// A boolean (e.g. "vectorise along M?").
    Toggle { name: String },
}

impl Knob {
    pub fn name(&self) -> &str {
        match self {
            Knob::Factor { name, .. } | Knob::Choice { name, .. } | Knob::Toggle { name } => name,
        }
    }

    pub fn arity(&self) -> usize {
        match self {
            Knob::Factor { candidates, .. } => candidates.len(),
            Knob::Choice { candidates, .. } => candidates.len(),
            Knob::Toggle { .. } => 2,
        }
    }
}

/// The schedule space: all valid combinations of knob values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleSpace {
    knobs: Vec<Knob>,
}

impl ScheduleSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a split-factor knob.
    pub fn factor(&mut self, name: impl Into<String>, candidates: Vec<usize>) -> &mut Self {
        assert!(!candidates.is_empty(), "factor knob needs candidates");
        self.knobs.push(Knob::Factor { name: name.into(), candidates });
        self
    }

    /// Add an enumerated-choice knob.
    pub fn choice(&mut self, name: impl Into<String>, candidates: Vec<String>) -> &mut Self {
        assert!(!candidates.is_empty(), "choice knob needs candidates");
        self.knobs.push(Knob::Choice { name: name.into(), candidates });
        self
    }

    /// Add a boolean knob.
    pub fn toggle(&mut self, name: impl Into<String>) -> &mut Self {
        self.knobs.push(Knob::Toggle { name: name.into() });
        self
    }

    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// Number of points (Cartesian product of arities).
    pub fn size(&self) -> usize {
        self.knobs.iter().map(Knob::arity).product()
    }

    /// The point with the given linear index (row-major over knob order).
    pub fn point(&self, mut index: usize) -> SchedulePoint {
        assert!(index < self.size(), "point index out of range");
        let mut sel = vec![0usize; self.knobs.len()];
        for (i, k) in self.knobs.iter().enumerate().rev() {
            let a = k.arity();
            sel[i] = index % a;
            index /= a;
        }
        SchedulePoint { sel }
    }

    /// Iterate all points in index order.
    pub fn points(&self) -> impl Iterator<Item = SchedulePoint> + '_ {
        (0..self.size()).map(|i| self.point(i))
    }

    /// Whether a knob with this name exists — lowering code shared between
    /// operators probes optional knobs with this before reading them.
    pub fn has_knob(&self, name: &str) -> bool {
        self.knobs.iter().any(|k| k.name() == name)
    }

    fn knob_index(&self, name: &str) -> usize {
        self.knobs
            .iter()
            .position(|k| k.name() == name)
            .unwrap_or_else(|| panic!("unknown knob '{name}'"))
    }
}

/// A concrete assignment of every knob of a space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedulePoint {
    sel: Vec<usize>,
}

impl SchedulePoint {
    /// The chosen factor value of a `Factor` knob.
    pub fn factor(&self, space: &ScheduleSpace, name: &str) -> usize {
        let i = space.knob_index(name);
        match &space.knobs[i] {
            Knob::Factor { candidates, .. } => candidates[self.sel[i]],
            other => panic!("knob '{name}' is not a factor ({other:?})"),
        }
    }

    /// The chosen string of a `Choice` knob.
    pub fn choice<'s>(&self, space: &'s ScheduleSpace, name: &str) -> &'s str {
        let i = space.knob_index(name);
        match &space.knobs[i] {
            Knob::Choice { candidates, .. } => &candidates[self.sel[i]],
            other => panic!("knob '{name}' is not a choice ({other:?})"),
        }
    }

    /// The chosen boolean of a `Toggle` knob.
    pub fn toggle(&self, space: &ScheduleSpace, name: &str) -> bool {
        let i = space.knob_index(name);
        match &space.knobs[i] {
            Knob::Toggle { .. } => self.sel[i] == 1,
            other => panic!("knob '{name}' is not a toggle ({other:?})"),
        }
    }

    /// Linear index of this point in its space.
    pub fn index(&self, space: &ScheduleSpace) -> usize {
        let mut idx = 0;
        for (i, k) in space.knobs.iter().enumerate() {
            idx = idx * k.arity() + self.sel[i];
        }
        idx
    }

    /// Human-readable description against its space.
    pub fn describe(&self, space: &ScheduleSpace) -> String {
        let mut parts = Vec::new();
        for (i, k) in space.knobs.iter().enumerate() {
            let v = match k {
                Knob::Factor { candidates, .. } => candidates[self.sel[i]].to_string(),
                Knob::Choice { candidates, .. } => candidates[self.sel[i]].clone(),
                Knob::Toggle { .. } => (self.sel[i] == 1).to_string(),
            };
            parts.push(format!("{}={v}", k.name()));
        }
        parts.join(", ")
    }
}

/// All divisors of `n`, ascending (`FactorVar` default candidate set).
pub fn factors_of(n: usize) -> Vec<usize> {
    let mut f: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    f.sort_unstable();
    f
}

/// Divisors of `n` that are themselves multiples of `m` (e.g. tile sizes
/// that keep a dimension mesh- and vector-aligned).
pub fn factors_of_min(n: usize, m: usize) -> Vec<usize> {
    factors_of(n).into_iter().filter(|d| d % m == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_space() -> ScheduleSpace {
        let mut s = ScheduleSpace::new();
        s.factor("t", vec![1, 2, 4]);
        s.choice("ord", vec!["ab".into(), "ba".into()]);
        s.toggle("vec_m");
        s
    }

    #[test]
    fn size_is_product() {
        assert_eq!(demo_space().size(), 3 * 2 * 2);
    }

    #[test]
    fn point_roundtrip_through_index() {
        let s = demo_space();
        for i in 0..s.size() {
            let p = s.point(i);
            assert_eq!(p.index(&s), i);
        }
    }

    #[test]
    fn points_enumerate_all_combinations() {
        let s = demo_space();
        let mut seen = std::collections::HashSet::new();
        for p in s.points() {
            let key = (p.factor(&s, "t"), p.choice(&s, "ord").to_string(), p.toggle(&s, "vec_m"));
            assert!(seen.insert(key), "duplicate point");
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn accessors_typed() {
        let s = demo_space();
        let p = s.point(s.size() - 1);
        assert_eq!(p.factor(&s, "t"), 4);
        assert_eq!(p.choice(&s, "ord"), "ba");
        assert!(p.toggle(&s, "vec_m"));
        let d = p.describe(&s);
        assert!(d.contains("t=4") && d.contains("ord=ba") && d.contains("vec_m=true"));
    }

    #[test]
    #[should_panic(expected = "unknown knob")]
    fn unknown_knob_panics() {
        let s = demo_space();
        s.point(0).factor(&s, "nope");
    }

    #[test]
    fn factor_helpers() {
        assert_eq!(factors_of(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(factors_of_min(64, 32), vec![32, 64]);
        assert_eq!(factors_of(1), vec![1]);
        assert!(factors_of_min(12, 5).is_empty());
    }
}
