//! Criterion benches for the machine substrate: dual-issue scoreboard and
//! DMA engine cost evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use sw26010::dma::{DmaEngine, DmaRequest};
use sw26010::pipeline::{Instruction, Pipe, Scoreboard};
use sw26010::{Cycles, DmaDirection, MachineConfig};

fn bench_scoreboard(c: &mut Criterion) {
    // A realistic software-pipelined stream: 16 vmads + 8 loads per step.
    let mut stream = Vec::new();
    for k in 0..64u16 {
        let set = (k % 2) * 8;
        for i in 0..8u16 {
            stream.push(Instruction::new(Pipe::P1, Some(16 + set + i), &[], 11));
        }
        for i in 0..16u16 {
            stream.push(Instruction::new(
                Pipe::P0,
                Some(i),
                &[16 + set, 17 + set, i],
                7,
            ));
        }
    }
    c.bench_function("scoreboard_64_steps", |b| {
        b.iter(|| {
            let mut sb = Scoreboard::default();
            std::hint::black_box(sb.run(&stream))
        })
    });
}

fn bench_dma_engine(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let reqs: Vec<DmaRequest> = (0..64)
        .map(|cpe| DmaRequest {
            cpe,
            direction: DmaDirection::MemToSpm,
            mem_offset: cpe * 1024,
            spm_offset: 0,
            block_elems: 32,
            stride_elems: 256,
            n_blocks: 8,
        })
        .collect();
    c.bench_function("dma_schedule_batch64", |b| {
        b.iter(|| {
            let mut e = DmaEngine::new();
            std::hint::black_box(e.schedule(&cfg, Cycles(0), &reqs).unwrap())
        })
    });
}

criterion_group!(benches, bench_scoreboard, bench_dma_engine);
criterion_main!(benches);
