//! Criterion benches for the hardware-dependent layer: micro-kernel cost
//! simulation and the functional `spm_gemm` primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sw26010::{CoreGroup, ExecMode, MachineConfig};
use swkernels::spm_gemm::{load_distributed, SpmMatrix};
use swkernels::{gemm_cycles, spm_gemm, VecDim, ALL_VARIANTS};
use swtensor::init::random_vec;
use swtensor::MatLayout::RowMajor;

fn bench_gemm_cost(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let mut g = c.benchmark_group("gemm_cycles");
    for &(m, n, k) in &[(64usize, 64usize, 64usize), (256, 256, 256)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}x{k}")),
            &(m, n, k),
            |b, &(m, n, k)| {
                // Rotate variants so the memo cache doesn't trivialise the
                // measurement entirely (hits still dominate, as in tuning).
                let mut i = 0;
                b.iter(|| {
                    let v = ALL_VARIANTS[i % 8];
                    i += 1;
                    std::hint::black_box(gemm_cycles(&cfg, v, m, n, k))
                });
            },
        );
    }
    g.finish();
}

fn bench_spm_gemm_functional(c: &mut Criterion) {
    let (m, n, k) = (64usize, 64usize, 64usize);
    let mut cg = CoreGroup::with_mode(ExecMode::Functional);
    let a_desc = SpmMatrix::new(0, RowMajor, k / 8);
    let b_desc = SpmMatrix::new(64, RowMajor, n / 8);
    let c_desc = SpmMatrix::new(128, RowMajor, n / 8);
    load_distributed(&mut cg, a_desc, &random_vec(m * k, 1), m, k).unwrap();
    load_distributed(&mut cg, b_desc, &random_vec(k * n, 2), k, n).unwrap();
    c.bench_function("spm_gemm_functional_64", |b| {
        b.iter(|| {
            spm_gemm(&mut cg, m, n, k, 1.0, a_desc, b_desc, 0.0, c_desc, VecDim::M).unwrap();
        })
    });
}

fn bench_spm_gemm_cost_only(c: &mut Criterion) {
    let (m, n, k) = (256usize, 256usize, 64usize);
    let mut cg = CoreGroup::with_mode(ExecMode::CostOnly);
    let a_desc = SpmMatrix::new(0, RowMajor, k / 8);
    let b_desc = SpmMatrix::new(4096, RowMajor, n / 8);
    let c_desc = SpmMatrix::new(8192, RowMajor, n / 8);
    c.bench_function("spm_gemm_cost_only_256", |b| {
        b.iter(|| {
            spm_gemm(&mut cg, m, n, k, 1.0, a_desc, b_desc, 1.0, c_desc, VecDim::N).unwrap();
        })
    });
}

criterion_group!(benches, bench_gemm_cost, bench_spm_gemm_functional, bench_spm_gemm_cost_only);
criterion_main!(benches);
