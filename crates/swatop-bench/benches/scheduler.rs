//! Criterion benches for the hardware-agnostic machinery: schedule-space
//! enumeration/lowering and static model estimation — the per-candidate
//! costs that give the model-based autotuner its Table-3 advantage.

use criterion::{criterion_group, criterion_main, Criterion};
use sw26010::MachineConfig;
use swatop::model::{estimate_program, GemmModel};
use swatop::ops::{ImplicitConvOp, MatmulOp};
use swatop::scheduler::{Operator, Scheduler};
use swtensor::ConvShape;

fn bench_enumerate(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let op = ImplicitConvOp::new(ConvShape::square(32, 64, 64, 16));
    let sched = Scheduler::new(cfg);
    c.bench_function("enumerate_implicit_conv_space", |b| {
        b.iter(|| std::hint::black_box(sched.enumerate(&op).len()))
    });
}

fn bench_lower_one(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let op = MatmulOp::new(500, 500, 500);
    let sched = Scheduler::new(cfg);
    let space = op.space();
    let point = space.point(0);
    c.bench_function("lower_matmul_point", |b| {
        b.iter(|| std::hint::black_box(sched.lower_point(&op, &space, &point).is_some()))
    });
}

fn bench_model_estimate(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let model = GemmModel::calibrate(&cfg);
    let op = ImplicitConvOp::new(ConvShape::square(32, 64, 64, 16));
    let sched = Scheduler::new(cfg.clone());
    let cands = sched.enumerate(&op);
    let raw = &cands[cands.len() / 2].raw;
    c.bench_function("model_estimate_program", |b| {
        b.iter(|| std::hint::black_box(estimate_program(&cfg, &model, raw)))
    });
}

criterion_group!(benches, bench_enumerate, bench_lower_one, bench_model_estimate);
criterion_main!(benches);
