//! Criterion benches comparing the two autotuners end to end on one
//! operator — the microcosm of Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use sw26010::MachineConfig;
use swatop::model::GemmModel;
use swatop::ops::ImplicitConvOp;
use swatop::scheduler::Scheduler;
use swatop::tuner::{blackbox_tune, model_tune, run_candidate};
use swtensor::ConvShape;

fn bench_tuners(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    // Warm the one-time calibration and kernel-cost caches.
    let _ = GemmModel::calibrate(&cfg);
    let op = ImplicitConvOp::new(ConvShape::square(32, 32, 32, 8));
    let sched = Scheduler::new(cfg.clone());
    let cands = sched.enumerate(&op);
    for cand in &cands {
        let _ = run_candidate(&cfg, cand);
    }

    let mut g = c.benchmark_group("autotuners");
    g.sample_size(10);
    g.bench_function("model_tune", |b| {
        b.iter(|| std::hint::black_box(model_tune(&cfg, &cands).unwrap().cycles))
    });
    g.bench_function("blackbox_tune", |b| {
        b.iter(|| std::hint::black_box(blackbox_tune(&cfg, &cands).unwrap().cycles))
    });
    g.finish();
}

fn bench_candidate_execution(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let op = ImplicitConvOp::new(ConvShape::square(32, 32, 32, 8));
    let sched = Scheduler::new(cfg.clone());
    let cands = sched.enumerate(&op);
    let cand = &cands[0];
    c.bench_function("run_candidate_cost_only", |b| {
        b.iter(|| std::hint::black_box(run_candidate(&cfg, cand).unwrap()))
    });
}

criterion_group!(benches, bench_tuners, bench_candidate_execution);
criterion_main!(benches);
