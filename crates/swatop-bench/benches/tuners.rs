//! Criterion benches comparing the two autotuners end to end on one
//! operator — the microcosm of Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use sw26010::MachineConfig;
use swatop::model::GemmModel;
use swatop::ops::ImplicitConvOp;
use swatop::scheduler::Scheduler;
use swatop::tuner::{blackbox_tune, blackbox_tune_jobs, model_tune, run_candidate};
use swtensor::ConvShape;

fn bench_tuners(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    // Warm the one-time calibration and kernel-cost caches.
    let _ = GemmModel::calibrate(&cfg);
    let op = ImplicitConvOp::new(ConvShape::square(32, 32, 32, 8));
    let sched = Scheduler::new(cfg.clone());
    let cands = sched.enumerate(&op);
    for cand in &cands {
        let _ = run_candidate(&cfg, cand);
    }

    let mut g = c.benchmark_group("autotuners");
    g.sample_size(10);
    g.bench_function("model_tune", |b| {
        b.iter(|| std::hint::black_box(model_tune(&cfg, &cands).unwrap().cycles))
    });
    g.bench_function("blackbox_tune", |b| {
        b.iter(|| std::hint::black_box(blackbox_tune(&cfg, &cands).unwrap().cycles))
    });
    g.finish();
}

/// Parallel scaling of the black-box tuner at 1/2/4 workers on a larger
/// space (the tentpole's speedup claim; the results are identical across
/// job counts, only wall-clock should change). On a single-core host the
/// three times should be within noise of each other — the engine must not
/// *cost* anything when parallelism is unavailable.
fn bench_tuner_scaling(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let _ = GemmModel::cached(&cfg);
    let op = ImplicitConvOp::new(ConvShape::square(32, 64, 64, 16));
    let sched = Scheduler::new(cfg.clone());
    let cands = sched.enumerate(&op);
    for cand in &cands {
        let _ = run_candidate(&cfg, cand);
    }

    let mut g = c.benchmark_group("tuner-scaling");
    g.sample_size(10);
    for jobs in [1usize, 2, 4] {
        g.bench_function(format!("blackbox_jobs_{jobs}"), |b| {
            b.iter(|| {
                std::hint::black_box(blackbox_tune_jobs(&cfg, &cands, jobs).unwrap().cycles)
            })
        });
    }
    g.finish();
}

fn bench_candidate_execution(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    let op = ImplicitConvOp::new(ConvShape::square(32, 32, 32, 8));
    let sched = Scheduler::new(cfg.clone());
    let cands = sched.enumerate(&op);
    let cand = &cands[0];
    c.bench_function("run_candidate_cost_only", |b| {
        b.iter(|| std::hint::black_box(run_candidate(&cfg, cand).unwrap()))
    });
}

criterion_group!(benches, bench_tuners, bench_tuner_scaling, bench_candidate_execution);
criterion_main!(benches);
