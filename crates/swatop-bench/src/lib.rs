//! # swatop-bench — shared harness utilities for the experiment binaries
//!
//! Each table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/`; this library holds the table formatting, summary
//! statistics and experiment-runner plumbing they share. See `DESIGN.md`
//! for the per-experiment index.

pub mod experiments;
pub mod flight;
pub mod journal;
pub mod report;
pub mod runner;

pub use report::{fmt_speedup, roofline_table, telemetry_summary, Table};
pub use runner::{
    tune_conv, tune_conv_jobs, tune_conv_opts, tune_conv_sweep, tune_conv_sweep_opts, tune_gemm,
    tune_gemm_jobs, tune_gemm_opts, tune_gemm_sweep, tune_gemm_sweep_opts, ConvMethod, TunedOp,
};
