//! Regenerates the paper's table1 (see DESIGN.md for the experiment index).
//! Usage: cargo run --release -p swatop-bench --bin table1 [--full|--smoke|--cap N]

use swatop_bench::experiments::{table1, Opts};

fn main() {
    let opts = Opts::from_args();
    println!("swATOP reproduction — table1 (opts: {opts:?})\n");
    for t in table1::run(&opts).tables {
        t.print();
    }
}
