//! `swatop_cli` — the offline-compiler front end.
//!
//! ```text
//! swatop_cli gemm M N K [--out FILE] [--trace FILE]
//! swatop_cli conv B NI NO RO [--method implicit|winograd|explicit|auto]
//!            [--kernel K] [--stride S] [--pad P] [--out FILE] [--trace FILE]
//! swatop_cli bwd-data B NI NO RO [--out FILE]
//! swatop_cli bwd-filter B NI NO RO [--out FILE]
//! ```
//!
//! Tunes the requested operator with the performance-model autotuner,
//! reports the chosen schedule and simulated performance, writes the
//! generated C (`--out`) and optionally a Chrome trace of the winning
//! schedule's execution (`--trace`, open in `chrome://tracing`/Perfetto).

use std::collections::HashMap;

use sw26010::{CoreGroup, ExecMode, MachineConfig};
use swatop::interp::{execute, instantiate};
use swatop::ops::{
    ConvBackwardDataOp, ConvBackwardFilterOp, ExplicitConvOp, ImplicitConvOp, MatmulOp,
    WinogradConvOp,
};
use swatop::scheduler::{Candidate, Operator, Scheduler};
use swatop::tuner::{model_tune_jobs, pool};
use swtensor::ConvShape;

fn usage() -> ! {
    eprintln!(
        "usage:\n  swatop_cli gemm M N K [--jobs N] [--out FILE] [--trace FILE]\n  \
         swatop_cli conv B NI NO RO [--method implicit|winograd|explicit|auto] \
         [--kernel K] [--stride S] [--pad P] [--jobs N] [--out FILE] [--trace FILE]\n  \
         swatop_cli bwd-data B NI NO RO [--jobs N] [--out FILE] [--trace FILE]\n  \
         swatop_cli bwd-filter B NI NO RO [--jobs N] [--out FILE] [--trace FILE]\n\
         --jobs N: tuner worker threads (0/omitted = all cores, 1 = serial;\n\
         the chosen schedule is identical for every value)"
    );
    std::process::exit(2);
}

struct Args {
    positional: Vec<usize>,
    flags: HashMap<String, String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            i += 1;
            if i >= args.len() {
                usage();
            }
            flags.insert(name.to_string(), args[i].clone());
        } else {
            positional.push(args[i].parse().unwrap_or_else(|_| usage()));
        }
        i += 1;
    }
    Args { positional, flags }
}

fn tune(cfg: &MachineConfig, op: &dyn Operator, jobs: usize) -> Option<(Candidate, u64)> {
    let cands = Scheduler::new(cfg.clone()).enumerate(op);
    let outcome = model_tune_jobs(cfg, &cands, jobs)?;
    Some((cands[outcome.best].clone(), outcome.cycles.get()))
}

fn report(cfg: &MachineConfig, name: &str, flops: u64, winner: &Candidate, cycles: u64, a: &Args) {
    println!("operator : {name}");
    println!("schedule : {}", winner.describe);
    println!(
        "time     : {cycles} cycles = {:.3} ms on one CG",
        1e3 * cfg.seconds(sw26010::Cycles(cycles))
    );
    println!(
        "perf     : {:.0} GFLOPS ({:.0}% of CG peak, direct-normalised)",
        sw26010::clock::gflops(flops, sw26010::Cycles(cycles), cfg.clock_ghz),
        100.0 * cfg.efficiency(flops, sw26010::Cycles(cycles))
    );
    if let Some(path) = a.flags.get("out") {
        std::fs::write(path, winner.exe.emit_c()).expect("write C file");
        println!("C code   : {path}");
    }
    if let Some(path) = a.flags.get("trace") {
        let mut cg = CoreGroup::new(cfg.clone(), ExecMode::CostOnly);
        cg.trace = sw26010::trace::Trace::enabled(1_000_000);
        let binding = instantiate(&mut cg, &winner.exe);
        execute(&mut cg, &winner.exe, &binding).expect("trace run");
        let json = sw26010::chrome_trace::to_chrome_json(&cg.trace, cfg.clock_ghz);
        std::fs::write(path, json).expect("write trace");
        println!("trace    : {path} (open in chrome://tracing)");
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cfg = MachineConfig::default();
    let cmd = argv[0].as_str();
    let a = parse_args(&argv[1..]);
    let jobs = pool::resolve_jobs(
        a.flags.get("jobs").map(|v| v.parse().unwrap_or_else(|_| usage())),
    );
    match cmd {
        "gemm" => {
            let [m, n, k] = a.positional[..] else { usage() };
            let op = MatmulOp::new(m, n, k);
            let (winner, cycles) = tune(&cfg, &op, jobs).expect("no valid schedule");
            report(&cfg, &op.name(), op.flops(), &winner, cycles, &a);
        }
        "conv" | "bwd-data" | "bwd-filter" => {
            let [b, ni, no, ro] = a.positional[..] else { usage() };
            let get = |k: &str, d: usize| {
                a.flags.get(k).map_or(d, |v| v.parse().unwrap_or_else(|_| usage()))
            };
            let shape = ConvShape {
                b,
                ni,
                no,
                ro,
                co: ro,
                kr: get("kernel", 3),
                kc: get("kernel", 3),
                stride: get("stride", 1),
                pad: get("pad", 0),
            };
            let ops: Vec<Box<dyn Operator>> = match cmd {
                "bwd-data" => vec![Box::new(ConvBackwardDataOp::new(shape))],
                "bwd-filter" => vec![Box::new(ConvBackwardFilterOp::new(shape))],
                _ => match a.flags.get("method").map(String::as_str).unwrap_or("auto") {
                    "implicit" => vec![Box::new(ImplicitConvOp::new(shape))],
                    "winograd" => vec![Box::new(WinogradConvOp::new(shape))],
                    "explicit" => vec![Box::new(ExplicitConvOp::new(shape))],
                    "auto" => vec![
                        Box::new(ImplicitConvOp::new(shape)),
                        Box::new(WinogradConvOp::new(shape)),
                        Box::new(ExplicitConvOp::new(shape)),
                    ],
                    _ => usage(),
                },
            };
            let mut best: Option<(String, u64, Candidate, u64)> = None;
            for op in &ops {
                if let Some((winner, cycles)) = tune(&cfg, op.as_ref(), jobs) {
                    if best.as_ref().is_none_or(|(_, c, _, _)| cycles < *c) {
                        best = Some((op.name(), cycles, winner, op.flops()));
                    }
                }
            }
            let (name, cycles, winner, flops) =
                best.expect("no applicable method for this shape");
            report(&cfg, &name, flops, &winner, cycles, &a);
        }
        _ => usage(),
    }
}
